"""Shared fixtures for the test suite."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import gnp_random_graph


@pytest.fixture
def small_graph() -> CSRGraph:
    """A hand-built graph with known structure:

        0-1, 0-2, 1-2 (triangle), 2-3, 3-4, 4-5, 5-3 (triangle), 0-5
    """
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3), (0, 5)]
    return CSRGraph.from_edges(6, edges)


@pytest.fixture
def random_graph() -> CSRGraph:
    return gnp_random_graph(50, 0.15, seed=11)


@pytest.fixture
def dense_graph() -> CSRGraph:
    return gnp_random_graph(30, 0.5, seed=23)


def to_networkx(graph: CSRGraph) -> nx.Graph:
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.num_vertices))
    nxg.add_edges_from(map(tuple, graph.edge_array()))
    return nxg


@pytest.fixture
def nx_of():
    return to_networkx


def random_edge_list(n: int, m: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return np.column_stack([src, dst])
