"""Tests for the static-analysis layer: the plan effect system and
hazard verifier, the dynamic burst-contract checker, and the project
contract linter (plus the satellite exception-handling fixes that rode
along with them)."""

from __future__ import annotations

from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static import (
    AnalysisReport,
    DEFAULT_RULES,
    analyze_batch,
    available_lint_rules,
    check_plan_dynamic,
    lint_paths,
    lint_source,
)
from repro.analysis.static.effects import EffectSet, normalize_tokens
from repro.analysis.static.smoke import (
    compile_batch,
    full_grid,
    make_session,
    soak_batch,
)
from repro.errors import ConfigError, HazardError, ReproError, SisaError
from repro.graphs.generators import gnp_random_graph
from repro.graphs.streams import EdgeBatch, canonical_edges
from repro.session import (
    ExecutionConfig,
    PlanExecutor,
    SessionPool,
    SisaSession,
)
from repro.session.plan import BurstUnit, PlanStage

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def _graph(seed=3, n=60, p=0.12):
    return gnp_random_graph(n, p, seed=seed)


def _session(graph=None):
    return SisaSession(graph or _graph(), ExecutionConfig(threads=8))


# ---------------------------------------------------------------------------
# Effect-token model
# ---------------------------------------------------------------------------


class TestEffects:
    def test_bare_names_expand_to_struct_tokens(self):
        assert normalize_tokens(("oriented",)) == {
            "struct:oriented",
            "struct:order",
        }
        assert normalize_tokens(("both",)) == {
            "struct:undirected",
            "struct:oriented",
            "struct:order",
        }
        assert normalize_tokens(("none",)) == frozenset()
        assert normalize_tokens(("state:triangles",)) == {"state:triangles"}

    def test_conflicts_raw_war_waw(self):
        a = EffectSet.of(reads=("state:x",), writes=("state:y",))
        b = EffectSet.of(reads=("state:y",), writes=("state:x",))
        kinds = {k for k, _ in a.conflicts(b)}
        assert kinds == {"RAW", "WAR"}
        waw = EffectSet.of(writes=("state:y",)).conflicts(
            EffectSet.of(writes=("state:y",))
        )
        assert ("WAW", "state:y") in waw

    def test_struct_writes_are_build_once_not_waw(self):
        a = EffectSet.of(writes=("oriented",))
        b = EffectSet.of(writes=("oriented",))
        assert a.conflicts(b) == []

    def test_qualification_separates_plan_private_state(self):
        a = EffectSet.of(writes=("state:triangles",)).qualified("p0")
        b = EffectSet.of(writes=("state:triangles",)).qualified("p1")
        assert a.conflicts(b) == []


# ---------------------------------------------------------------------------
# Static verifier
# ---------------------------------------------------------------------------


class TestVerifier:
    def test_every_registered_workload_certifies(self):
        session = make_session()
        grid = full_grid(session.graph.num_vertices)
        # Each plan certifies alone...
        for (name, params), plan in zip(
            grid, compile_batch(session, grid)
        ):
            report = analyze_batch([plan])
            assert report.certified, (name, report.summary())
        # ...and the whole grid certifies as one batch.
        report = analyze_batch(compile_batch(session, grid))
        assert isinstance(report, AnalysisReport)
        assert report.certified, report.summary()
        assert len(report.plans) == len(grid)
        assert report.as_dict()["certified"] is True

    def test_soak_batch_certifies(self):
        session = make_session()
        report = analyze_batch(soak_batch(session))
        assert report.certified, report.summary()

    def test_illegal_burst_write_rejected_with_structured_report(self):
        session = _session()
        tri = session.compile("triangles")
        lc = session.compile("local_clustering")
        for stage in lc.stages:
            if stage.kind == "bursts":
                stage.writes = ("sets:session",)
        report = analyze_batch([tri, lc])
        assert not report.certified
        kinds = {h.kind for h in report.hazards}
        assert "illegal-burst-write" in kinds
        # The hazard names the offending token, plan and stage.
        hazard = next(
            h for h in report.hazards if h.kind == "illegal-burst-write"
        )
        assert hazard.token == "sets:session"
        assert hazard.plans == ("p1:local_clustering",)
        assert hazard.stages == ("bursts:local_triangles",)
        # A burst writing shared state also collides with the other
        # plan's implicit sets:session read.
        assert "WAR" in kinds or "RAW" in kinds

    def test_verify_true_raises_hazard_error_with_details(self):
        session = _session()
        tri = session.compile("triangles")
        lc = session.compile("local_clustering")
        for stage in lc.stages:
            if stage.kind == "bursts":
                stage.writes = ("sets:session",)
        executor = PlanExecutor(session, fuse=True, verify=True)
        with pytest.raises(HazardError) as err:
            executor.execute([tri, lc])
        details = err.value.details
        assert details["certified"] is False
        assert details["hazards"]
        assert executor.last_analysis is not None
        assert not executor.last_analysis.certified

    def test_dedup_divergence_when_seed_shape_mismatches(self):
        session = _session()
        plan = session.compile("triangles")
        for stage in plan.stages:
            if stage.kind == "bursts":
                stage.seeds = ("state:wrong_slot",)
        report = analyze_batch([plan])
        assert not report.certified
        assert {h.kind for h in report.hazards} == {"dedup-divergence"}

    def test_unsatisfied_state_read_detected(self):
        session = _session()
        plan = session.compile("clustering_coefficient")
        # Drop the burst stage that feeds state:triangles to the
        # finalize stage.
        plan.stages = [
            s for s in plan.stages if s.kind != "bursts"
        ]
        report = analyze_batch([plan])
        assert any(h.kind == "unsatisfied-read" for h in report.hazards)

    def test_stale_plan_is_a_hazard(self):
        session = _session()
        dyn = session.attach_stream()
        plan = session.compile("triangles")
        edges = canonical_edges(
            np.asarray([[0, 5], [1, 11]], dtype=np.int64),
            session.graph.num_vertices,
        )
        dyn.apply_batch(
            EdgeBatch(
                insertions=edges,
                deletions=np.empty((0, 2), dtype=np.int64),
            )
        )
        report = analyze_batch([plan])
        assert any(h.kind == "stale-plan" for h in report.hazards)

    def test_verified_fused_run_is_unchanged_and_matches_reference(self):
        graph = _graph()
        batch = [
            ("triangles", {}),
            ("clustering_coefficient", {}),
            ("local_clustering", {}),
        ]
        plain = _session(graph).run_many(batch, fuse=True)
        verified = _session(graph).run_many(batch, fuse=True, verify=True)
        sequential = _session(graph).run_many(batch, fuse=False)
        for p, v, s in zip(plain, verified, sequential):
            # verify=True is pure host-side analysis: outputs and
            # modeled cycles are bit-identical to the unverified run.
            assert repr(v.output) == repr(p.output)
            assert v.report.runtime_cycles == p.report.runtime_cycles
            assert v.stats == p.stats
            assert repr(v.output) == repr(s.output)

    def test_pool_run_verify_flag(self):
        graph = _graph()
        pool = SessionPool(ExecutionConfig(threads=8))
        pool.submit("g", "triangles", graph=graph, tenant="a")
        pool.submit("g", "clustering_coefficient", tenant="b")
        results = pool.run(verify=True)
        assert [r.workload for r in results] == [
            "triangles",
            "clustering_coefficient",
        ]


_MIX = [
    ("triangles", {}),
    ("clustering_coefficient", {}),
    ("local_clustering", {}),
    ("kclique", {"k": 3}),
    ("bfs", {"root": 0}),
]


class TestVerifierProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        idx=st.lists(
            st.integers(min_value=0, max_value=len(_MIX) - 1),
            min_size=1,
            max_size=6,
        )
    )
    def test_certified_batches_execute_bit_identical(self, idx):
        graph = _graph()
        batch = [_MIX[i] for i in idx]
        session = _session(graph)
        plans = [session.compile(n, **dict(p)) for n, p in batch]
        report = analyze_batch(plans)
        assert report.certified, report.summary()
        fused = PlanExecutor(session, fuse=True, verify=True).execute(plans)
        reference = _session(graph).run_many(batch, fuse=False)
        for f, r in zip(fused, reference):
            assert repr(f.output) == repr(r.output), f.workload


# ---------------------------------------------------------------------------
# Dynamic burst-contract checker
# ---------------------------------------------------------------------------


def _stub_plan(name, stages):
    return SimpleNamespace(
        name=name,
        params={},
        stages=stages,
        check_version=lambda: None,
    )


class TestDynamicChecker:
    @pytest.mark.parametrize(
        "name,params",
        [
            ("triangles", {}),
            ("clustering_coefficient", {}),
            ("local_clustering", {}),
        ],
    )
    def test_clean_plans_pass_under_maximal_deferral(self, name, params):
        session = _session()
        report = check_plan_dynamic(session, session.compile(name, **params))
        assert report.certified, [v.as_dict() for v in report.violations]
        assert report.matches_reference is True

    def test_generator_reading_sink_state_is_caught(self):
        session = _session()

        def units(sess, state):
            sg = sess.setgraph
            ctx = sess.ctx
            state["acc"] = 0

            def sink(counts):
                state["acc"] += int(counts.sum())

            for u in range(4):
                lane = ctx.begin_task()
                nbrs = ctx.elements(sg.neighborhood(u))
                if not nbrs.size:
                    continue
                yield BurstUnit(
                    a=sg.neighborhood(u),
                    bs=[sg.neighborhood(int(v)) for v in nbrs],
                    kind="intersect",
                    lane=lane,
                    sink=sink,
                    writes=("state:acc",),
                )
                state["acc"]  # contract violation: reads a deferred sink

        stage = PlanStage(
            kind="bursts",
            label="bursts:bad",
            reads=("undirected",),
            units=units,
            result=lambda state: state["acc"],
            writes=("state:acc",),
        )
        report = check_plan_dynamic(
            session, _stub_plan("bad", [stage]), compare=False
        )
        assert not report.certified
        kinds = {v.kind for v in report.violations}
        assert "generator-reads-sink-state" in kinds

    def test_undeclared_sink_effect_is_caught(self):
        session = _session()

        def units(sess, state):
            sg = sess.setgraph
            ctx = sess.ctx
            state["acc"] = 0

            def sink(counts):
                state["acc"] += int(counts.sum())
                state["smuggled"] = True  # not declared anywhere

            lane = ctx.begin_task()
            nbrs = ctx.elements(sg.neighborhood(0))
            yield BurstUnit(
                a=sg.neighborhood(0),
                bs=[sg.neighborhood(int(v)) for v in nbrs],
                kind="intersect",
                lane=lane,
                sink=sink,
                writes=("state:acc",),
            )

        stage = PlanStage(
            kind="bursts",
            label="bursts:smuggler",
            reads=("undirected",),
            units=units,
            result=lambda state: state["acc"],
            writes=("state:acc",),
        )
        report = check_plan_dynamic(
            session, _stub_plan("smuggler", [stage]), compare=False
        )
        assert any(
            v.kind == "undeclared-effect" and v.slot == "smuggled"
            for v in report.violations
        )


# ---------------------------------------------------------------------------
# Contract linter
# ---------------------------------------------------------------------------


class TestLinter:
    def test_all_default_rules_registered(self):
        rules = available_lint_rules()
        for name in DEFAULT_RULES:
            assert name in rules and rules[name]

    def test_unseeded_rng(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert [v.rule for v in lint_source(src)] == ["unseeded-rng"]
        src = "import numpy as np\ng = np.random.default_rng()\n"
        assert [v.rule for v in lint_source(src)] == ["unseeded-rng"]
        src = "import numpy as np\ng = np.random.default_rng(7)\n"
        assert lint_source(src) == []

    def test_overbroad_except(self):
        src = "try:\n    pass\nexcept Exception:\n    pass\n"
        assert [v.rule for v in lint_source(src)] == ["overbroad-except"]
        # A handler that re-raises is an allowed cleanup idiom.
        src = "try:\n    pass\nexcept BaseException:\n    raise\n"
        assert lint_source(src) == []
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert lint_source(src) == []

    def test_library_assert_and_pragma(self):
        assert [v.rule for v in lint_source("assert True\n")] == [
            "library-assert"
        ]
        suppressed = "assert True  # repolint: disable=library-assert\n"
        assert lint_source(suppressed) == []

    def test_error_details(self):
        src = "raise ReproError('x')\n"
        assert [v.rule for v in lint_source(src)] == ["error-details"]
        src = "raise ValidationError('x', details={'k': 1})\n"
        assert lint_source(src) == []
        # Other error types are not required to carry details.
        src = "raise ConfigError('x')\n"
        assert lint_source(src) == []

    def test_mutable_default_arg(self):
        src = "def f(xs=[]):\n    pass\n"
        assert [v.rule for v in lint_source(src)] == ["mutable-default-arg"]
        src = "def f(xs=None, n=3, s='a'):\n    pass\n"
        assert lint_source(src) == []

    def test_unguarded_obs(self):
        src = (
            "def f(self):\n"
            "    self.obs.ping()\n"
        )
        assert [v.rule for v in lint_source(src)] == ["unguarded-obs"]
        src = (
            "def f(self):\n"
            "    if self.obs is not None:\n"
            "        self.obs.ping()\n"
        )
        assert lint_source(src) == []

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError):
            lint_source("x = 1\n", rules=("no-such-rule",))

    def test_repository_is_lint_clean(self):
        violations = lint_paths([SRC])
        assert violations == [], "\n".join(v.render() for v in violations)


# ---------------------------------------------------------------------------
# Satellite: exception-handling contracts
# ---------------------------------------------------------------------------


class TestExceptionContracts:
    def test_isolated_run_converts_repro_errors_to_failed_results(self):
        session = _session()
        plan = session.compile("triangles")
        # Sabotage one stage with a package-taxonomy error.
        def boom(sess, state):
            raise SisaError("synthetic kernel fault", details={"x": 1})

        plan.stages[0].run = boom
        (failed,) = session.run_many([plan], isolate=True)
        assert failed.reason == "error"
        assert isinstance(failed.error, SisaError)

    def test_isolated_run_propagates_foreign_exceptions(self):
        session = _session()
        plan = session.compile("triangles")

        def boom(sess, state):
            raise RuntimeError("a genuine bug, not a fault")

        plan.stages[0].run = boom
        with pytest.raises(RuntimeError, match="genuine bug"):
            session.run_many([plan], isolate=True)

    def test_hardened_pool_propagates_foreign_exceptions(self):
        graph = _graph()
        from repro.serving import RetryPolicy

        pool = SessionPool(ExecutionConfig(threads=8), retry=RetryPolicy())
        plan = pool.submit("g", "triangles", graph=graph, tenant="a")

        def boom(sess, state):
            raise RuntimeError("a genuine bug, not a fault")

        plan.stages[0].run = boom
        with pytest.raises(RuntimeError, match="genuine bug"):
            pool.run()

    def test_internal_invariant_errors_carry_details(self):
        with pytest.raises(ReproError) as err:
            raise SisaError("internal error: example", details={"k": 1})
        assert err.value.details == {"k": 1}
