"""Unit tests for graph property calculations (the Fig. 7a data)."""

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    chung_lu_graph,
    complete_graph,
    gnp_random_graph,
    star_graph,
)
from repro.graphs.properties import (
    degree_histogram,
    degree_stats,
    degeneracy,
    is_heavy_tailed,
    triangle_count_reference,
)


class TestDegreeStats:
    def test_complete_graph(self):
        stats = degree_stats(complete_graph(10))
        assert stats.max_degree == 9
        assert stats.avg_degree == 9.0
        assert stats.max_degree_fraction == 0.9
        assert stats.gini < 0.01  # perfectly uniform

    def test_star_graph_skew(self):
        stats = degree_stats(star_graph(100))
        assert stats.max_degree == 99
        assert stats.max_degree_fraction == 0.99
        # Half of the degree mass sits in one vertex: Gini ~ 0.5.
        assert stats.gini > 0.4

    def test_empty(self):
        stats = degree_stats(CSRGraph.empty(0))
        assert stats.num_vertices == 0
        assert stats.gini == 0.0

    def test_isolated_vertices(self):
        stats = degree_stats(CSRGraph.empty(10))
        assert stats.max_degree == 0
        assert stats.avg_degree == 0.0


class TestHistogram:
    def test_bins_cover_degrees(self, random_graph):
        edges, counts = degree_histogram(random_graph)
        positive = random_graph.degrees[random_graph.degrees > 0]
        assert counts.sum() == positive.size

    def test_empty_graph(self):
        edges, counts = degree_histogram(CSRGraph.empty(3))
        assert counts.sum() == 0


class TestHeavyTail:
    def test_genome_like_is_heavy(self):
        g = chung_lu_graph(800, 12_000, gamma=1.9, seed=1)
        assert is_heavy_tailed(g)

    def test_near_regular_is_light(self):
        g = gnp_random_graph(1000, 0.01, seed=1)
        assert not is_heavy_tailed(g)


class TestReferences:
    def test_triangle_reference_complete(self):
        assert triangle_count_reference(complete_graph(6)) == 20

    def test_triangle_reference_star(self):
        assert triangle_count_reference(star_graph(10)) == 0

    def test_degeneracy_helper(self):
        assert degeneracy(complete_graph(5)) == 4
