"""Correctness tests for VF2 subgraph isomorphism, including labels."""

import networkx as nx
import pytest

from repro.algorithms.subgraph_iso import star_pattern, subgraph_isomorphism
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import complete_graph, gnp_random_graph, path_graph
from repro.graphs.labels import Labeling

from conftest import to_networkx


def nx_monomorphism_count(graph, pattern):
    gm = nx.algorithms.isomorphism.GraphMatcher(
        to_networkx(graph), to_networkx(pattern)
    )
    return sum(1 for __ in gm.subgraph_monomorphisms_iter())


class TestUnlabeled:
    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_triangle_pattern_matches_networkx(self, mode):
        g = gnp_random_graph(18, 0.35, seed=1)
        triangle = complete_graph(3)
        expected = nx_monomorphism_count(g, triangle)
        run = subgraph_isomorphism(g, triangle, threads=2, mode=mode)
        assert run.output == expected

    def test_star_pattern_count(self):
        # Embeddings of a k-star = sum over centers of d*(d-1)*...*(d-k+1).
        g = gnp_random_graph(20, 0.3, seed=2)
        k = 2
        expected = 0
        for v in range(g.num_vertices):
            d = g.degree(v)
            expected += d * (d - 1)
        run = subgraph_isomorphism(g, star_pattern(k), threads=2)
        assert run.output == expected

    def test_path_pattern_matches_networkx(self):
        g = gnp_random_graph(15, 0.3, seed=3)
        pattern = path_graph(4)
        expected = nx_monomorphism_count(g, pattern)
        run = subgraph_isomorphism(g, pattern, threads=2)
        assert run.output == expected

    def test_no_match_when_pattern_too_dense(self):
        run = subgraph_isomorphism(path_graph(6), complete_graph(3), threads=1)
        assert run.output == 0

    def test_collect_returns_mappings(self):
        g = complete_graph(4)
        run = subgraph_isomorphism(g, complete_graph(3), threads=1, collect=True)
        assert len(run.output) == 24  # 4P3 ordered embeddings
        for mapping in run.output:
            values = list(mapping.values())
            assert len(set(values)) == 3

    def test_cutoff(self):
        g = complete_graph(8)
        run = subgraph_isomorphism(
            g, complete_graph(3), threads=1, max_matches=10
        )
        assert run.output == 10

    def test_star_pattern_shape(self):
        p = star_pattern(4)
        assert p.num_vertices == 5
        assert p.degree(0) == 4


class TestLabeled:
    def test_labels_restrict_matches(self):
        g = complete_graph(6)
        pattern = complete_graph(3)
        unlabeled = subgraph_isomorphism(g, pattern, threads=1).output
        target_labels = Labeling(g, [0, 0, 0, 1, 1, 1])
        pattern_labels = Labeling(pattern, [0, 0, 0])
        labeled = subgraph_isomorphism(
            g,
            pattern,
            threads=1,
            target_labels=target_labels,
            pattern_labels=pattern_labels,
        ).output
        assert labeled < unlabeled
        assert labeled == 6  # permutations of {0, 1, 2}

    def test_labels_match_bruteforce(self):
        g = gnp_random_graph(14, 0.4, seed=4)
        pattern = complete_graph(3)
        target_labels = Labeling.random(g, 2, seed=7)
        pattern_labels = Labeling(pattern, [0, 1, 0])
        run = subgraph_isomorphism(
            g,
            pattern,
            threads=1,
            target_labels=target_labels,
            pattern_labels=pattern_labels,
        )
        # Brute force over ordered vertex triples.
        expected = 0
        n = g.num_vertices
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    if len({a, b, c}) != 3:
                        continue
                    if not (
                        g.has_edge(a, b) and g.has_edge(b, c) and g.has_edge(a, c)
                    ):
                        continue
                    if (
                        target_labels.vertex_label(a) == 0
                        and target_labels.vertex_label(b) == 1
                        and target_labels.vertex_label(c) == 0
                    ):
                        expected += 1
        assert run.output == expected

    def test_labeled_run_is_faster(self):
        """The paper: labels prune recursion, so labeled SI is usually
        faster despite extra label checks."""
        g = gnp_random_graph(40, 0.3, seed=5)
        pattern = star_pattern(3)
        unlabeled = subgraph_isomorphism(g, pattern, threads=4, max_matches=3000)
        labeled = subgraph_isomorphism(
            g,
            pattern,
            threads=4,
            max_matches=3000,
            target_labels=Labeling.random(g, 3, seed=1),
            pattern_labels=Labeling(pattern, [0, 1, 2, 0]),
        )
        assert labeled.runtime_cycles < unlabeled.runtime_cycles

    def test_edge_labels_checked(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        pattern = CSRGraph.from_edges(2, [(0, 1)])
        target_labels = Labeling(
            g, [0, 0, 0], edge_labels={(0, 1): 1, (1, 2): 2, (0, 2): 1}
        )
        pattern_labels = Labeling(pattern, [0, 0], edge_labels={(0, 1): 2})
        run = subgraph_isomorphism(
            g,
            pattern,
            threads=1,
            target_labels=target_labels,
            pattern_labels=pattern_labels,
        )
        # Only the edge (1, 2) carries label 2; two ordered embeddings.
        assert run.output == 2
