"""Unit tests for directed graphs and order-based orientation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.generators import gnp_random_graph
from repro.graphs.orientation import degeneracy_order


class TestDiGraph:
    def test_from_arcs(self):
        dg = DiGraph.from_arcs(3, [(0, 1), (1, 2), (0, 2)])
        assert dg.num_arcs == 3
        assert list(dg.out_neighbors(0)) == [1, 2]
        assert list(dg.out_neighbors(2)) == []

    def test_duplicate_arcs_removed(self):
        dg = DiGraph.from_arcs(2, [(0, 1), (0, 1)])
        assert dg.num_arcs == 1

    def test_arcs_are_directed(self):
        dg = DiGraph.from_arcs(2, [(0, 1)])
        assert dg.has_arc(0, 1)
        assert not dg.has_arc(1, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            DiGraph.from_arcs(2, [(0, 3)])

    def test_out_neighbors_sorted(self):
        dg = DiGraph.from_arcs(5, [(0, 4), (0, 2), (0, 3)])
        assert list(dg.out_neighbors(0)) == [2, 3, 4]

    def test_empty(self):
        dg = DiGraph.from_arcs(3, [])
        assert dg.num_arcs == 0
        assert dg.max_out_degree == 0


class TestOrientation:
    def test_orient_preserves_edge_count(self):
        g = gnp_random_graph(40, 0.2, seed=1)
        order = degeneracy_order(g).order
        dg = orient_by_order(g, order)
        assert dg.num_arcs == g.num_edges

    def test_orient_is_acyclic_by_rank(self):
        g = gnp_random_graph(30, 0.3, seed=2)
        order = degeneracy_order(g).order
        rank = np.empty(g.num_vertices, dtype=np.int64)
        rank[order] = np.arange(g.num_vertices)
        dg = orient_by_order(g, order)
        for v in range(dg.num_vertices):
            for w in dg.out_neighbors(v):
                assert rank[v] < rank[int(w)]

    def test_degeneracy_bounds_out_degree(self):
        g = gnp_random_graph(40, 0.25, seed=3)
        result = degeneracy_order(g)
        dg = orient_by_order(g, result.order)
        assert dg.max_out_degree <= result.degeneracy

    def test_bad_order_rejected(self):
        g = CSRGraph.from_edges(3, [(0, 1)])
        with pytest.raises(GraphError):
            orient_by_order(g, np.array([0, 0, 1]))

    def test_identity_order(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        dg = orient_by_order(g, np.array([0, 1, 2]))
        assert dg.has_arc(0, 1)
        assert dg.has_arc(1, 2)
        assert not dg.has_arc(2, 1)
