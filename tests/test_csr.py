"""Unit tests for the CSR graph core."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph


class TestConstruction:
    def test_from_edges_basic(self, small_graph):
        assert small_graph.num_vertices == 6
        assert small_graph.num_edges == 8

    def test_neighbors_sorted(self, small_graph):
        for v in range(small_graph.num_vertices):
            nbrs = small_graph.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_duplicate_edges_removed(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (2, 2)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_empty_graph(self):
        g = CSRGraph.empty(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_zero_vertices(self):
        g = CSRGraph.empty(0)
        assert g.num_vertices == 0

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(-1, 0)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, np.array([[0, 1, 2]]))

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(-1, [])

    def test_invalid_offsets_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))


class TestAccessors:
    def test_degrees(self, small_graph):
        assert small_graph.degree(0) == 3
        assert small_graph.degree(2) == 3
        assert int(small_graph.degrees.sum()) == 2 * small_graph.num_edges

    def test_max_degree(self, small_graph):
        assert small_graph.max_degree == 3

    def test_has_edge_symmetric(self, small_graph):
        assert small_graph.has_edge(0, 1)
        assert small_graph.has_edge(1, 0)
        assert not small_graph.has_edge(0, 4)

    def test_neighbors_out_of_range(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.neighbors(100)

    def test_edges_each_once(self, small_graph):
        edges = list(small_graph.edges())
        assert len(edges) == small_graph.num_edges
        assert all(u < v for u, v in edges)

    def test_edge_array_matches_edges(self, small_graph):
        arr = small_graph.edge_array()
        assert sorted(map(tuple, arr)) == sorted(small_graph.edges())

    def test_vertices_range(self, small_graph):
        assert list(small_graph.vertices()) == list(range(6))


class TestDerived:
    def test_subgraph_triangle(self, small_graph):
        sub = small_graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_subgraph_relabels(self, small_graph):
        sub = small_graph.subgraph([3, 4, 5])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3  # the 3-4-5 triangle

    def test_subgraph_empty_selection(self, small_graph):
        sub = small_graph.subgraph([])
        assert sub.num_vertices == 0

    def test_subgraph_out_of_range(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.subgraph([99])

    def test_equality(self, small_graph):
        other = CSRGraph.from_edges(
            6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3), (0, 5)]
        )
        assert small_graph == other

    def test_inequality(self, small_graph):
        other = CSRGraph.from_edges(6, [(0, 1)])
        assert small_graph != other

    def test_repr(self, small_graph):
        assert "n=6" in repr(small_graph)
