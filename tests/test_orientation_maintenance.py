"""Incremental orientation maintenance + epoch-keyed result cache.

Contracts under test:

* ``induced_out_degrees`` (the vectorized primitive behind
  ``result_from_order``) matches the reference per-vertex loop,
* a maintained orientation is *equivalent* to a fresh re-peel: same
  triangle and k-clique outputs, same per-vertex out-degrees as the
  orientation induced by the maintained rank, out-degree within the
  ``(2 + eps) * c`` drift bound — as a hypothesis property over mixed
  insert/delete/churn batches,
* drift past the bound triggers localized repair (or a full re-peel)
  and the state stays consistent,
* a session with ``maintain_orientation()`` runs oriented workloads
  warm after epoch advances with **zero** full re-peels while drift is
  within bound (asserted via the maintainer stats),
* updates applied outside the hook protocol force a charged resync
  instead of silently computing on a stale orientation,
* reading a released :class:`GraphSnapshot` raises ``SisaError`` (in
  ``session.run(view=...)``, on the snapshot itself, and in the
  incremental maintainer constructors),
* the session result cache answers repeated identical runs in O(1),
  misses on any stream mutation or parameter change, and supports
  explicit invalidation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.triangles import triangle_count_oriented
from repro.errors import ConfigError, SisaError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import chung_lu_graph, gnp_random_graph
from repro.graphs.orientation import (
    degeneracy_order,
    induced_out_degrees,
    result_from_order,
)
from repro.graphs.streams import EdgeBatch, canonical_edges
from repro.session import ExecutionConfig, SisaSession
from repro.streaming import (
    DynamicSetGraph,
    IncrementalOrientation,
    IncrementalTriangleCount,
    StreamingEngine,
)
from repro.algorithms.common import make_context
from repro.graphs.digraph import orient_by_order
from repro.runtime.setgraph import SetGraph


def _edge_batch(insertions=(), deletions=()):
    def arr(edges):
        if len(edges) == 0:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(edges, dtype=np.int64)

    return EdgeBatch(insertions=arr(insertions), deletions=arr(deletions))


def _fresh_triangles(n, edges, threads=8):
    graph = CSRGraph.from_edges(n, edges)
    return SisaSession(graph, ExecutionConfig(threads=threads)).run("triangles")


def _maintained(graph, **kwargs):
    ctx = make_context(threads=8)
    dyn = DynamicSetGraph.from_graph(graph, ctx)
    seed = degeneracy_order(graph)
    oriented = SetGraph.from_digraph(orient_by_order(graph, seed.order), ctx)
    maintainer = IncrementalOrientation(dyn, oriented, seed, **kwargs)
    return ctx, dyn, maintainer


# ---------------------------------------------------------------------------
# Vectorized orientation primitives
# ---------------------------------------------------------------------------


class TestInducedOutDegrees:
    @given(
        n=st.integers(min_value=0, max_value=60),
        p=st.floats(min_value=0.0, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_loop(self, n, p, seed):
        graph = gnp_random_graph(n, p, seed=seed)
        rng = np.random.default_rng(seed)
        rank = rng.permutation(max(n, 1))[:n].astype(np.int64)
        out = induced_out_degrees(graph, rank)
        expected = np.zeros(n, dtype=np.int64)
        for v in range(n):
            nbrs = graph.neighbors(v)
            expected[v] = int(np.count_nonzero(rank[nbrs] > rank[v]))
        assert np.array_equal(out, expected)

    def test_non_dense_ranks(self):
        """Ranks need not be a permutation of 0..n-1 (rank repair
        appends past n)."""
        graph = gnp_random_graph(20, 0.3, seed=1)
        rank = (np.arange(20, dtype=np.int64) * 7 + 100)
        out = induced_out_degrees(graph, rank)
        assert int(out.sum()) == graph.num_edges

    def test_result_from_order_matches_exact_peel(self):
        graph = gnp_random_graph(40, 0.2, seed=5)
        exact = degeneracy_order(graph)
        repackaged = result_from_order(graph, exact.order)
        assert np.array_equal(repackaged.rank, exact.rank)
        # The exact peel's degeneracy equals the induced max out-degree.
        assert repackaged.degeneracy == exact.degeneracy


# ---------------------------------------------------------------------------
# Maintained-orientation equivalence (hypothesis property)
# ---------------------------------------------------------------------------


def _random_batches(rng, n, count, size):
    """Mixed insert/delete batches over a fixed vertex universe."""
    batches = []
    for __ in range(count):
        ins = rng.integers(0, n, size=(size, 2))
        dels = rng.integers(0, n, size=(size, 2))
        batches.append(_edge_batch(ins, dels))
    return batches


class TestMaintainedEquivalence:
    @given(
        n=st.integers(min_value=8, max_value=36),
        p=st.floats(min_value=0.05, max_value=0.35),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_equivalent_to_fresh_repeel_under_churn(self, n, p, seed):
        graph = gnp_random_graph(n, p, seed=seed)
        ctx, dyn, maintainer = _maintained(graph)
        engine = StreamingEngine(dyn, [maintainer])
        rng = np.random.default_rng(seed)
        for batch in _random_batches(rng, n, count=3, size=max(2, n // 4)):
            engine.step(batch)
            # Full structural equivalence with the orientation the
            # maintained rank induces on the current graph.
            maintainer.assert_consistent()
            # Functional equivalence with a fresh exact re-peel.
            count = triangle_count_oriented(maintainer.oriented, ctx)
            fresh = _fresh_triangles(n, dyn.edge_array())
            assert count == fresh.output
            # Quality: out-degree within the drift bound (or the exact
            # degeneracy right after an internal re-peel).
            assert maintainer.max_out_degree <= max(
                maintainer.bound, maintainer.base_degeneracy
            )

    def test_kclique_outputs_match_after_epochs(self):
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        session.maintain_orientation()
        rng = np.random.default_rng(11)
        for batch in _random_batches(rng, 60, count=2, size=20):
            dyn.apply_batch(batch)
        run = session.run("kclique", k=4)
        rebuilt = CSRGraph.from_edges(60, dyn.edge_array())
        fresh = SisaSession(rebuilt, ExecutionConfig(threads=8)).run(
            "kclique", k=4
        )
        assert run.output == fresh.output

    def test_repeel_every_batch_reference_policy(self):
        graph = gnp_random_graph(30, 0.2, seed=3)
        ctx, dyn, maintainer = _maintained(graph, repeel_every_batch=True)
        engine = StreamingEngine(dyn, [maintainer])
        engine.step(_edge_batch(insertions=[[0, 9], [1, 17], [2, 21]]))
        assert maintainer.stats.full_repeels == 1
        maintainer.assert_consistent()
        count = triangle_count_oriented(maintainer.oriented, ctx)
        assert count == _fresh_triangles(30, dyn.edge_array()).output

    def test_drift_triggers_repair_and_stays_consistent(self):
        """A near-empty seed graph has c ~ 1; wiring a hub past the
        bound must trigger repair (localized or full) and leave the
        orientation consistent and within bound."""
        n = 40
        graph = CSRGraph.from_edges(n, np.asarray([[0, 1]], dtype=np.int64))
        ctx, dyn, maintainer = _maintained(graph, eps=0.5)
        engine = StreamingEngine(dyn, [maintainer])
        bound = maintainer.bound
        # Wire the lowest-ranked vertex to the highest-ranked ones, so
        # every new arc leaves the hub: guaranteed drift past the bound.
        hub = int(np.argmin(maintainer.rank))
        spokes = np.argsort(maintainer.rank)[-(bound + 5):]
        hub_edges = [[hub, int(v)] for v in spokes if int(v) != hub]
        engine.step(_edge_batch(insertions=hub_edges))
        assert (
            maintainer.stats.repairs > 0 or maintainer.stats.full_repeels > 0
        )
        maintainer.assert_consistent()
        count = triangle_count_oriented(maintainer.oriented, ctx)
        assert count == _fresh_triangles(n, dyn.edge_array()).output

    def test_repair_limit_zero_falls_back_to_full_repeel(self):
        n = 30
        graph = CSRGraph.from_edges(n, np.asarray([[0, 1]], dtype=np.int64))
        __, dyn, maintainer = _maintained(graph, eps=0.5, repair_limit=0)
        engine = StreamingEngine(dyn, [maintainer])
        hub = int(np.argmin(maintainer.rank))
        spokes = np.argsort(maintainer.rank)[-(maintainer.bound + 3):]
        engine.step(
            _edge_batch(
                insertions=[[hub, int(v)] for v in spokes if int(v) != hub]
            )
        )
        assert maintainer.stats.full_repeels == 1
        assert maintainer.stats.repairs == 0
        maintainer.assert_consistent()

    def test_constructor_validation(self):
        graph = gnp_random_graph(10, 0.2, seed=1)
        ctx, dyn, __ = _maintained(graph)
        seed = degeneracy_order(graph)
        oriented = SetGraph.from_digraph(
            orient_by_order(graph, seed.order), ctx
        )
        with pytest.raises(ConfigError):
            IncrementalOrientation(dyn, oriented, seed, eps=0.0)
        with pytest.raises(ConfigError):
            IncrementalOrientation(dyn, oriented, seed, repair_limit=-1)


# ---------------------------------------------------------------------------
# Session integration: warm oriented workloads across epochs
# ---------------------------------------------------------------------------


class TestSessionOrientationMaintenance:
    def _streaming_session(self):
        graph = chung_lu_graph(80, 320, gamma=2.2, seed=5)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        return graph, session, dyn

    def test_zero_repeels_and_warm_runs_across_epochs(self):
        graph, session, dyn = self._streaming_session()
        maintainer = session.maintain_orientation()
        session.run("triangles")
        for seed in (3, 4, 5):
            rng = np.random.default_rng(seed)
            dyn.apply_batch(
                _edge_batch(
                    insertions=rng.integers(0, 80, size=(6, 2)),
                    deletions=rng.integers(0, 80, size=(6, 2)),
                )
            )
            run = session.run("triangles")
            # Warm at the new epoch: maintained orientation, no rebuild.
            assert run.warm
            assert run.registrations == 0
            rebuilt = CSRGraph.from_edges(80, dyn.edge_array())
            fresh = SisaSession(rebuilt, ExecutionConfig(threads=8)).run(
                "triangles"
            )
            assert run.output == fresh.output
        # The acceptance criterion: drift stayed within bound, so the
        # maintained path performed zero full re-peels (engine stats).
        assert maintainer.stats.full_repeels == 0
        assert session.orientation_stats is maintainer.stats
        assert session.orientation_maintainer is maintainer

    def test_hookless_updates_force_resync(self):
        graph, session, dyn = self._streaming_session()
        maintainer = session.maintain_orientation()
        session.run("triangles")
        # Raw update: bypasses the hook protocol entirely.
        dyn.apply_insertions(
            canonical_edges(
                np.asarray([[0, 9], [1, 17], [2, 33]], dtype=np.int64), 80
            )
        )
        assert not maintainer.in_sync
        run = session.run("triangles")
        assert maintainer.stats.resyncs == 1
        assert maintainer.in_sync
        rebuilt = CSRGraph.from_edges(80, dyn.edge_array())
        fresh = SisaSession(rebuilt, ExecutionConfig(threads=8)).run(
            "triangles"
        )
        assert run.output == fresh.output

    def test_maintain_orientation_requires_stream(self):
        graph = gnp_random_graph(20, 0.2, seed=1)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        with pytest.raises(ConfigError):
            session.maintain_orientation()
        with pytest.raises(ConfigError):
            session.orientation_stats

    def test_maintain_orientation_is_idempotent(self):
        __, session, __ = self._streaming_session()
        first = session.maintain_orientation()
        assert session.maintain_orientation() is first
        # Conflicting parameters must not be silently ignored.
        with pytest.raises(ConfigError, match="different parameters"):
            session.maintain_orientation(eps=0.05)

    def test_digraph_reflects_maintained_orientation(self):
        graph, session, dyn = self._streaming_session()
        session.maintain_orientation()
        session.run("triangles")
        dyn.apply_batch(_edge_batch(insertions=[[0, 9], [1, 17]]))
        digraph = session.digraph
        rebuilt = CSRGraph.from_edges(80, dyn.edge_array())
        assert digraph.num_arcs == rebuilt.num_edges
        # Cached between mutations, rebuilt after the next batch.
        assert session.digraph is digraph
        dyn.apply_batch(_edge_batch(insertions=[[3, 41]]))
        assert session.digraph is not digraph


# ---------------------------------------------------------------------------
# Snapshot use-after-release
# ---------------------------------------------------------------------------


class TestSnapshotReleaseGuard:
    def _snapshot(self):
        graph = chung_lu_graph(40, 120, gamma=2.2, seed=3)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        session.attach_stream()
        return session, session.snapshot()

    def test_session_run_rejects_released_snapshot(self):
        session, snap = self._snapshot()
        before = session.run("triangles", view=snap).output
        snap.release()
        with pytest.raises(SisaError, match="released"):
            session.run("triangles", view=snap)
        # The live path still works.
        assert session.run("triangles").output == before

    def test_snapshot_reads_raise_after_release(self):
        session, snap = self._snapshot()
        snap.release()
        assert snap.released
        for access in (
            lambda: snap.neighborhood(0),
            lambda: snap.degree(0),
            lambda: snap.neighborhood_counts(0, [1, 2]),
            lambda: snap.has_edge(0, 1),
            lambda: snap.edge_array(),
        ):
            with pytest.raises(SisaError, match="released"):
                access()

    def test_release_is_idempotent(self):
        __, snap = self._snapshot()
        snap.release()
        snap.release()  # no error, no double free

    def test_maintainers_reject_released_snapshot(self):
        session, snap = self._snapshot()
        snap.release()
        with pytest.raises(SisaError, match="released"):
            IncrementalTriangleCount(snap)
        seed = degeneracy_order(session.graph)
        with pytest.raises(SisaError, match="released"):
            IncrementalOrientation(snap, session.oriented_setgraph, seed)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def _session(self, **overrides):
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        return SisaSession(graph, ExecutionConfig(threads=8, **overrides))

    def test_repeated_identical_run_is_cached(self):
        session = self._session()
        first = session.run("triangles")
        second = session.run("triangles")
        assert not first.cached
        assert second.cached and second.warm
        assert second.output == first.output
        assert second.instructions == 0
        assert second.runtime_cycles == 0
        assert second.registrations == 0
        assert session.cache_stats.hits == 1

    def test_param_change_misses(self):
        session = self._session()
        k3 = session.run("kclique", k=3)
        k4 = session.run("kclique", k=4)
        assert not k4.cached
        assert session.run("kclique", k=3).cached
        assert session.run("kclique", k=3).output == k3.output
        assert session.run("kclique", k=4).output == k4.output

    def test_array_params_key_by_value(self):
        session = self._session()
        pairs = np.asarray([[0, 5], [1, 9], [2, 11]], dtype=np.int64)
        first = session.run("similarity_pairs", pairs=pairs, measure="jaccard")
        # An equal-valued but distinct array must hit.
        again = session.run(
            "similarity_pairs", pairs=pairs.copy(), measure="jaccard"
        )
        assert again.cached
        assert np.array_equal(again.output, first.output)
        other = session.run(
            "similarity_pairs", pairs=pairs[:2], measure="jaccard"
        )
        assert not other.cached

    def test_stream_mutation_invalidates_by_key(self):
        session = self._session()
        dyn = session.attach_stream()
        before = session.run("triangles")
        assert session.run("triangles").cached
        dyn.apply_batch(_edge_batch(insertions=[[0, 9], [1, 17]]))
        after = session.run("triangles")
        assert not after.cached  # new stream version, natural miss
        rebuilt = CSRGraph.from_edges(
            session.graph.num_vertices, dyn.edge_array()
        )
        fresh = SisaSession(rebuilt, ExecutionConfig(threads=8)).run(
            "triangles"
        )
        assert after.output == fresh.output
        assert session.run("triangles").cached  # stable again

    def test_explicit_invalidation(self):
        session = self._session()
        session.run("triangles")
        session.run("kclique", k=3)
        assert session.invalidate_results("triangles") == 1
        assert not session.run("triangles").cached
        assert session.run("kclique", k=3).cached
        assert session.invalidate_results() == 2
        assert not session.run("kclique", k=3).cached

    def test_cache_can_be_disabled(self):
        session = self._session(result_cache=False)
        session.run("triangles")
        second = session.run("triangles")
        assert not second.cached
        assert second.instructions > 0

    def test_view_runs_are_not_cached(self):
        session = self._session()
        session.attach_stream()
        snap = session.snapshot()
        one = session.run("triangles", view=snap)
        two = session.run("triangles", view=snap)
        assert not one.cached and not two.cached
        snap.release()

    def test_uncacheable_params_skip_quietly(self):
        from repro.session import workload
        from repro.session.registry import _REGISTRY

        session = self._session()

        class Odd:
            pass

        @workload("_test_uncacheable", requires="none")
        def _probe(session, *, marker=None):
            return 42

        try:
            # A legitimate parameter whose value cannot be
            # canonicalized: the run must succeed uncached (skip
            # counted), never crash the cache or false-hit.
            one = session.run("_test_uncacheable", marker=Odd())
            two = session.run("_test_uncacheable", marker=Odd())
            assert one.output == two.output == 42
            assert not one.cached and not two.cached
            assert session.cache_stats.skips >= 2
            assert session.cache_stats.hits == 0
        finally:
            del _REGISTRY["_test_uncacheable"]

    def test_unknown_params_rejected_before_the_cache(self):
        session = self._session()

        class Odd:
            pass

        with pytest.raises(ConfigError, match="junk"):
            # Misspelled/unknown parameters fail at plan compile —
            # before the cache is ever consulted.
            session.run("kclique", k=3, junk=Odd())
        assert session.cache_stats.skips == 0

    def test_cache_size_validation(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(result_cache_size=0)

    def test_isolate_output_preserves_types(self):
        import dataclasses
        from typing import NamedTuple

        from repro.session.cache import isolate_output

        class Point(NamedTuple):
            xs: np.ndarray
            label: str

        point = Point(xs=np.arange(3), label="p")
        copied = isolate_output(point)
        assert isinstance(copied, Point) and copied.label == "p"
        copied.xs[:] = -1
        assert np.array_equal(point.xs, np.arange(3))

        @dataclasses.dataclass
        class Scores:
            values: np.ndarray

        scores = Scores(values=np.arange(4))
        isolated = isolate_output(scores)
        isolated.values[:] = -1
        assert np.array_equal(scores.values, np.arange(4))

    def test_mutating_a_result_does_not_poison_the_cache(self):
        session = self._session()
        first = session.run("local_clustering")
        expected = first.output.copy()
        first.output[:] = -1.0  # caller scribbles on its result
        second = session.run("local_clustering")
        assert second.cached
        assert np.array_equal(second.output, expected)
        second.output[:] = -2.0  # hit results are isolated too
        assert np.array_equal(session.run("local_clustering").output, expected)
