"""Observability-layer tests: metrics registry semantics (including
the label-cardinality cap), span-tree recording and cycle accounting,
the exporters (Prometheus text, Chrome-trace JSON, periodic JSONL
sink), the health-snapshot hardening, and the load-bearing invariant
of the whole layer — enabling observability changes *nothing* about
modeled cycles or outputs, asserted as a hypothesis property over a
mixed faulted multi-tenant batch."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graphs.generators import gnp_random_graph
from repro.observability import (
    OVERFLOW_LABEL,
    JsonlSink,
    MetricsRegistry,
    Observability,
    SpanRecorder,
    prometheus_text,
    write_chrome_trace,
)
from repro.serving import FaultInjector, RetryPolicy, TenantQuota
from repro.serving.health import HealthSnapshot, TenantHealth
from repro.session import ExecutionConfig, SessionPool, SisaSession


def _graph(n=24, p=0.25, seed=7):
    return gnp_random_graph(n, p, seed=seed)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "h", ("workload",))
        c.inc(("triangles",))
        c.inc(("triangles",), 2.0)
        assert reg.counter_value("hits_total", ("triangles",)) == 3.0
        assert reg.counter_value("hits_total", ("bfs",)) == 0.0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "d", ("tenant",))
        g.set(("a",), 4)
        g.set(("a",), 2)
        assert g.get(("a",)) == 2

    def test_histogram_buckets_and_sum(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "l", (), buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe((), v)
        s = h.series[()]
        assert s.counts == [1, 1, 1]  # <=1, <=10, +Inf
        assert s.count == 3 and s.sum == 55.5

    def test_redeclaration_with_same_shape_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x", ("k",))
        assert reg.counter("x_total", "x", ("k",)) is a

    def test_redeclaration_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "x", ("k",))
        with pytest.raises(ConfigError):
            reg.counter("x_total", "x", ("other",))
        with pytest.raises(ConfigError):
            reg.gauge("x_total", "x", ("k",))

    def test_cardinality_cap_folds_into_overflow(self):
        reg = MetricsRegistry(max_series=3)
        c = reg.counter("req_total", "r", ("request_id",))
        for i in range(10):
            c.inc((f"req-{i}",))
        # Three real series admitted, the rest folded — totals exact.
        assert len(c.series) == 4  # 3 admitted + the overflow series
        assert c.series[(OVERFLOW_LABEL,)] == 7.0
        assert c.dropped_series == 7
        assert sum(c.series.values()) == 10.0
        # Admitted series keep accumulating under their own key.
        c.inc(("req-0",))
        assert c.series[("req-0",)] == 2.0
        assert c.dropped_series == 7

    def test_cap_applies_per_family_in_hub(self):
        obs = Observability(max_series=2)
        for i in range(6):
            obs.cache_event("miss", f"workload-{i}")
        fam = obs.registry.families()["result_cache_events_total"]
        assert fam.dropped_series == 4
        assert fam.series[(OVERFLOW_LABEL, OVERFLOW_LABEL)] == 4.0

    def test_snapshot_is_json_safe_and_delta_diffs(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total", "", ("k",))
        h = reg.histogram("v", "", (), buckets=(1.0,))
        c.inc(("a",))
        h.observe((), 0.5)
        first = reg.snapshot()
        json.dumps(first)  # round-trippable
        c.inc(("a",), 2.0)
        c.inc(("b",))
        h.observe((), 3.0)
        second = reg.snapshot()
        d = MetricsRegistry.delta(second, first)
        assert d["n_total"] == {"a": 2.0, "b": 1.0}
        assert d["v"][""] == {"count": 1, "sum": 3.0}
        assert MetricsRegistry.delta(second, dict(second)) == {}


# ---------------------------------------------------------------------------
# Span recorder
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting_and_walk(self):
        rec = SpanRecorder()
        a = rec.start("a")
        b = rec.start("b")
        rec.end(b, cycles=10.0)
        rec.end(a, cycles=25.0)
        assert [s.name for s, __ in a.walk()] == ["a", "b"]
        assert b.parent is a and a.cycles == 25.0
        assert rec.max_depth() == 2

    def test_end_of_detached_span_does_not_wipe_stack(self):
        rec = SpanRecorder()
        root = rec.start("root")
        d = rec.start_detached("detached", root)
        assert rec.current is root
        rec.end(d)
        assert rec.current is root  # detached end never pops the stack
        rec.end(root)
        assert rec.current is None

    def test_enter_exit_reparents_interleaved_work(self):
        rec = SpanRecorder()
        root = rec.start("root")
        d = rec.start_detached("slice", root)
        rec.enter(d)
        child = rec.start("inner")
        rec.end(child)
        rec.exit(d)
        assert child.parent is d
        assert rec.current is root

    def test_span_cap_drops_and_counts(self):
        rec = SpanRecorder(max_spans=2)
        a = rec.start("a")
        rec.start("b")
        c = rec.start("c")  # past the cap: recorded nowhere
        assert rec.count == 2 and rec.dropped == 1
        assert all(ch.name != "c" for ch, __ in a.walk())
        rec.end(c)
        assert rec.current is not None  # ending a dropped span is safe

    def test_chrome_trace_round_trips_with_depths(self, tmp_path):
        rec = SpanRecorder()
        with rec.span("outer"):
            with rec.span("inner", {"tenant": "a"}):
                pass
        path = tmp_path / "trace.json"
        write_chrome_trace(rec, path)
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        by_name = {e["name"]: e for e in events}
        assert by_name["outer"]["args"]["depth"] == 0
        assert by_name["inner"]["args"]["depth"] == 1
        assert by_name["inner"]["args"]["tenant"] == "a"
        assert all(e["ph"] == "X" for e in events)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExport:
    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", "cache hits", ("workload",))
        c.inc(("triangles",), 3)
        h = reg.histogram("lat_seconds", "latency", (), buckets=(1.0, 10.0))
        h.observe((), 0.5)
        h.observe((), 5.0)
        text = prometheus_text(reg)
        assert "# HELP hits_total cache hits" in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{workload="triangles"} 3' in text
        # Histogram: cumulative buckets, +Inf, _sum/_count.
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="10"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 5.5" in text
        assert "lat_seconds_count 2" in text

    def test_jsonl_sink_flushes_every_n(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        sink = JsonlSink(path, every=3)
        reg = MetricsRegistry()
        c = reg.counter("n_total", "", ())
        wrote = []
        for i in range(7):
            c.inc(())
            wrote.append(sink.maybe_write(reg, {"ok": True}, runs=i + 1))
        assert wrote == [False, False, True, False, False, True, False]
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == 2
        # Each record carries the delta since the previous one.
        assert records[0]["metrics_delta"]["n_total"][""] == 3.0
        assert records[1]["metrics_delta"]["n_total"][""] == 3.0
        assert records[1]["runs"] == 6
        assert records[0]["health"] == {"ok": True}

    def test_jsonl_sink_rejects_bad_period(self, tmp_path):
        with pytest.raises(ConfigError):
            JsonlSink(tmp_path / "t.jsonl", every=0)


# ---------------------------------------------------------------------------
# Health snapshot hardening (satellite)
# ---------------------------------------------------------------------------


class TestHealthSnapshot:
    def _snap(self, **kw):
        base = dict(
            sessions=1, pending=0, deferred=0, completed=2, failed=0,
            retries=0, drift_recompiles=0, wasted_cycles=0.0, rejections=0,
            cache_corruptions=0, cache_evictions=0, orientation_resyncs=0,
        )
        base.update(kw)
        return HealthSnapshot(**base)

    def test_tenant_lookup_is_mapping_backed(self):
        tenants = tuple(
            TenantHealth(
                tenant=f"t{i}", cycles=float(i), retry_cycles=0.0,
                queued=0, deferred=0, rejections=0,
            )
            for i in range(50)
        )
        snap = self._snap(tenants=tenants)
        assert snap.tenant("t42").cycles == 42.0
        assert snap._by_tenant["t42"] is snap.tenant("t42")
        with pytest.raises(KeyError):
            snap.tenant("nope")

    def test_injected_faults_cannot_be_mutated(self):
        live = {"drift": 2}
        snap = self._snap(injected_faults=live)
        with pytest.raises(TypeError):
            snap.injected_faults["drift"] = 99
        # ...and does not alias the dict it was built from.
        live["drift"] = 99
        assert snap.injected_faults["drift"] == 2

    def test_as_dict_is_a_defensive_copy(self):
        snap = self._snap(
            injected_faults={"cache": 1},
            tenants=(
                TenantHealth(
                    tenant="a", cycles=1.0, retry_cycles=0.0,
                    queued=0, deferred=0, rejections=0, cycle_budget=10.0,
                ),
            ),
        )
        out = snap.as_dict()
        json.dumps(out)
        out["injected_faults"]["cache"] = 99
        out["tenants"][0]["cycles"] = 99.0
        assert snap.injected_faults["cache"] == 1
        assert snap.tenant("a").cycles == 1.0
        assert out["tenants"][0]["spent_cycles"] == 1.0
        assert out["degraded"] is False and out["healthy"] is True


# ---------------------------------------------------------------------------
# The serving stack feeds
# ---------------------------------------------------------------------------


def _drain(pool, limit=50):
    results = []
    for __ in range(limit):
        results.extend(pool.run())
        if pool.pending == 0 and pool.deferred == 0:
            return results
    raise AssertionError("pool failed to drain")


class TestPoolObservability:
    def test_metrics_raise_when_disabled(self):
        pool = SessionPool()
        with pytest.raises(ConfigError):
            pool.metrics()
        with pytest.raises(ConfigError):
            pool.metrics_text()
        assert pool.obs is None

    def test_tenant_counters_mirror_ledgers_exactly(self):
        pool = SessionPool(observability=True, threads=4)
        pool.session("g", _graph()).attach_stream()
        for tenant in ("alice", "bob", "alice"):
            pool.submit("g", "triangles", tenant=tenant)
            pool.submit("g", "bfs", tenant=tenant, root=0)
        results = _drain(pool)
        assert all(r.ok for r in results)
        reg = pool.obs.registry
        for tenant, cycles in pool.tenant_cycles.items():
            assert (
                reg.counter_value("tenant_work_cycles_total", (tenant,))
                == cycles  # exact float equality, not approx
            )

    def test_span_tree_cycles_match_engine_reports(self):
        pool = SessionPool(observability=True, threads=4)
        pool.session("g", _graph())
        pool.submit("g", "triangles", tenant="a")
        pool.submit("g", "clustering_coefficient", tenant="b")
        results = _drain(pool)
        for result in results:
            root = result.spans
            assert root is not None and root.name.startswith("plan:")
            # The plan span carries exactly the run's attributed work.
            assert root.cycles == result.report.work_cycles
            # Parent/child accounting: the stage spans partition the
            # plan's work (kernel spans nest inside stages).
            stage_cycles = sum(
                ch.cycles for ch in root.children
                if ch.name.startswith("stage:")
            )
            assert stage_cycles == pytest.approx(root.cycles, rel=1e-9)

    def test_batch_trace_has_five_span_levels(self, tmp_path):
        pool = SessionPool(observability=True, threads=4)
        pool.session("g", _graph())
        pool.submit("g", "triangles")
        pool.submit("g", "kclique", k=3)
        _drain(pool)
        assert pool.obs.spans.max_depth() >= 5
        path = tmp_path / "batch.json"
        write_chrome_trace(pool.obs.spans, path)
        events = json.loads(path.read_text())["traceEvents"]
        assert 1 + max(e["args"]["depth"] for e in events) >= 5
        names = {e["name"] for e in events}
        assert any(n.startswith("session:") for n in names)
        assert any(n.startswith("plan:") for n in names)
        assert any(n.startswith("stage:") for n in names)
        assert any(n.startswith("kernel:") for n in names)

    def test_submit_spans_cover_compile_validate_admit(self):
        pool = SessionPool(
            observability=True,
            threads=4,
            default_quota=TenantQuota(max_queue_depth=8),
        )
        pool.session("g", _graph())
        pool.submit("g", "triangles", tenant="a")
        submit = next(
            r for r in pool.obs.spans.roots if r.name == "submit"
        )
        names = [s.name for s, __ in submit.walk()]
        assert names[0] == "submit"
        assert "compile" in names and "validate" in names
        assert "admit" in names
        reg = pool.obs.registry
        assert (
            reg.counter_value("admission_decisions_total", ("admit", "a"))
            == 1.0
        )

    def test_cache_and_dispatch_counters_fire(self):
        pool = SessionPool(observability=True, threads=4)
        pool.session("g", _graph())
        pool.submit("g", "triangles")
        _drain(pool)
        pool.submit("g", "triangles")
        _drain(pool)  # second run: result-cache hit
        snap = pool.metrics()
        cache = snap["metrics"]["result_cache_events_total"]["series"]
        assert cache.get("miss|triangles", 0) >= 1
        assert cache.get("hit|triangles", 0) >= 1
        dispatch = snap["metrics"]["sisa_dispatch_total"]["series"]
        assert sum(dispatch.values()) > 0
        assert snap["metrics"]["pool_runs_total"]["series"][""] == 2.0
        # Fig. 9b per-tenant set-size aggregation saw real sets.
        assert snap["set_sizes"]["default"]["total"] > 0

    def test_retry_cycles_mirrored_into_counters(self):
        class FailOnceLate:
            # Fail at a late stage, after charged work, so the wasted
            # attempt's modeled cycles are visibly nonzero.
            def __init__(self):
                self.armed = True

            def before_batch(self, session, plans):
                pass

            def before_plan(self, session, plan):
                pass

            def on_stage(self, plan, stage):
                if self.armed and stage.startswith("finalize"):
                    self.armed = False
                    raise RuntimeError("injected late-stage failure")

        pool = SessionPool(
            observability=True,
            threads=4,
            retry=RetryPolicy(max_retries=2),
            fault_injector=FailOnceLate(),
        )
        pool.session("g", _graph())
        pool.submit("g", "clustering_coefficient", tenant="a")
        (result,) = _drain(pool)
        assert result.ok
        retry = pool.tenant_retry_cycles["a"]
        assert retry > 0
        assert (
            pool.obs.registry.counter_value(
                "tenant_retry_cycles_total", ("a",)
            )
            == retry
        )

    def test_telemetry_sink_writes_health_and_deltas(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        pool = SessionPool(
            observability=True, threads=4, telemetry_path=path
        )
        pool.session("g", _graph())
        pool.submit("g", "triangles")
        _drain(pool)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records
        assert records[0]["health"]["completed"] == 1
        assert "tenant_work_cycles_total" in records[0]["metrics_delta"]

    def test_telemetry_path_requires_observability(self, tmp_path):
        with pytest.raises(ConfigError):
            SessionPool(telemetry_path=tmp_path / "t.jsonl")

    def test_shared_hub_instance_is_used_verbatim(self):
        hub = Observability()
        pool = SessionPool(observability=hub, threads=4)
        session = pool.session("g", _graph())
        assert pool.obs is hub
        assert session.obs is hub and session.ctx.scu.obs is hub

    def test_session_level_observability_without_pool(self):
        session = SisaSession(
            _graph(), ExecutionConfig(threads=4), observability=True
        )
        run = session.run("triangles")
        assert session.obs is not None
        reg = session.obs.registry
        fam = reg.families()["sisa_dispatch_total"]
        assert sum(fam.series.values()) == run.instructions

    def test_orientation_events_feed_counters(self):
        import numpy as np

        from repro.graphs.streams import EdgeBatch

        pool = SessionPool(observability=True, threads=4)
        session = pool.session("g", _graph())
        stream = session.attach_stream()
        maintainer = session.maintain_orientation()
        absent = stream.absent_edges(
            np.array(
                [[u, v] for u in range(8) for v in range(u + 1, 8)],
                dtype=np.int64,
            )
        )
        stream.apply_batch(
            EdgeBatch(
                insertions=absent[:2],
                deletions=np.empty((0, 2), dtype=np.int64),
            )
        )
        maintainer.mark_desynced()
        maintainer.resync()
        series = pool.metrics()["metrics"]["orientation_events_total"][
            "series"
        ]
        assert series.get("batch", 0) >= 1
        assert series.get("desync", 0) == 1
        assert series.get("resync", 0) == 1


# ---------------------------------------------------------------------------
# The invariant: observability never changes what is computed
# ---------------------------------------------------------------------------

_WORKLOADS = [
    ("triangles", {}),
    ("clustering_coefficient", {}),
    ("bfs", {"root": 0}),
    ("kclique", {"k": 3}),
]


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    picks=st.lists(
        st.integers(0, len(_WORKLOADS) - 1), min_size=2, max_size=6
    ),
    drift_rate=st.floats(0.0, 1.0),
    kernel_rate=st.floats(0.0, 0.8),
)
def test_observability_is_bit_identical_to_disabled(
    seed, picks, drift_rate, kernel_rate
):
    """A mixed faulted multi-tenant batch computes bit-identical
    outputs, modeled cycles and tenant ledgers whether observability is
    on or off — instrumentation is observation-only by construction,
    and this property keeps it that way."""
    graph = gnp_random_graph(16, 0.3, seed=3)

    def build(observability):
        pool = SessionPool(
            quotas={
                "alice": TenantQuota(max_queue_depth=4, max_deferred=16),
                "bob": TenantQuota(max_queue_depth=4, max_deferred=16),
            },
            retry=RetryPolicy(max_retries=4),
            fault_injector=FaultInjector(
                seed=seed,
                drift_rate=drift_rate,
                kernel_rate=kernel_rate,
                max_per_kind=2,
            ),
            threads=2,
            observability=observability,
        )
        session = pool.session("g", graph)
        session.attach_stream()
        for i, pick in enumerate(picks):
            name, params = _WORKLOADS[pick]
            pool.submit("g", name, tenant=("alice", "bob")[i % 2], **params)
        return pool

    plain = build(False)
    observed = build(True)
    base = _drain(plain)
    inst = _drain(observed)

    assert len(base) == len(inst) == len(picks)
    for clean, traced in zip(base, inst):
        assert clean.ok == traced.ok
        if clean.ok:
            assert repr(clean.output) == repr(traced.output)
            assert (
                clean.report.runtime_cycles == traced.report.runtime_cycles
            )
            assert traced.spans is not None
    assert plain.tenant_cycles == observed.tenant_cycles
    assert plain.tenant_retry_cycles == observed.tenant_retry_cycles
