"""Plan/execute split: compiled WorkloadPlans, the fusing executor and
the multi-tenant SessionPool.

Contracts under test:

* ``session.compile`` is declarative (no instructions, no structure
  builds) and pins the stream version; executing a stale plan fails
  fast with ``SisaError``,
* a fusion-disabled ``run_many`` is **bit-identical** to sequential
  ``session.run`` calls — outputs, per-plan simulated cycles, dispatch
  stats and set registrations (hypothesis property, including across a
  stream epoch advance),
* a fused ``run_many`` returns identical outputs while dedicating no
  instructions to deduped sub-requests (the triangle count inside
  ``clustering_coefficient``), fusing cross-plan bursts into macros,
  and never issuing *more* instructions per plan than the sequential
  stream,
* ``SessionPool`` shares SCU decision memos bit-identically, evicts
  sessions LRU, schedules tenants round-robin and accounts modeled
  cycles per tenant.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SisaError
from repro.graphs.generators import chung_lu_graph, gnp_random_graph
from repro.graphs.streams import EdgeBatch, canonical_edges
from repro.session import (
    ExecutionConfig,
    PlanExecutor,
    SessionPool,
    SisaSession,
    WorkloadPlan,
)


def _graph(seed=3, n=60, p=0.12):
    return gnp_random_graph(n, p, seed=seed)


def _watchlist(n, count, seed=7):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, n, size=(count * 2, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]][:count]
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def _mix(graph):
    """The mixed workload batch the serving layer targets."""
    pairs = _watchlist(graph.num_vertices, 40)
    return [
        ("triangles", {}),
        ("clustering_coefficient", {}),
        ("similarity_pairs", {"pairs": pairs, "measure": "jaccard"}),
        ("similarity_pairs", {"pairs": pairs, "measure": "total_neighbors"}),
        ("local_clustering", {}),
        ("kclique", {"k": 3}),  # opaque call-stage plan
    ]


def _run_sequential(graph, batch, config):
    session = SisaSession(graph, config)
    return session, [session.run(name, **params) for name, params in batch]


def _assert_results_identical(expected, actual):
    for e, a in zip(expected, actual):
        assert repr(a.output) == repr(e.output)
        assert a.runtime_cycles == e.runtime_cycles
        assert a.instructions == e.instructions
        assert a.opcode_counts() == e.opcode_counts()
        assert a.registrations == e.registrations
        assert a.warm == e.warm
        assert a.cached == e.cached


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


class TestCompile:
    def test_compile_is_declarative(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        plan = session.compile("triangles")
        assert isinstance(plan, WorkloadPlan)
        assert plan.version == (0, 0)
        assert plan.requires == "oriented"
        assert plan.fusable
        assert plan.describe() == ["prep:oriented", "bursts:triangles"]
        # Nothing built, nothing dispatched.
        assert session.ctx.instruction_count == 0
        assert session._oriented is None
        assert session._setgraph is None

    def test_opaque_fallback_for_undecomposed_workloads(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        plan = session.compile("kclique", k=3)
        assert not plan.fusable
        assert plan.describe() == ["run:kclique"]
        # batch=False makes even triangles non-decomposable.
        scalar = session.compile("triangles", batch=False)
        assert not scalar.fusable

    def test_clustering_shares_the_triangle_subrequest_key(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        tri = session.compile("triangles")
        cc = session.compile("clustering_coefficient")
        tri_keys = [s.key for s in tri.stages if s.kind == "bursts"]
        cc_keys = [s.key for s in cc.stages if s.kind == "bursts"]
        assert tri_keys == cc_keys != [None]

    def test_compile_rejects_views_and_unknown_names(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        with pytest.raises(ConfigError):
            session.compile("triangles", view=object())
        with pytest.raises(ConfigError, match="available"):
            session.compile("triangle")

    def test_unknown_parameters_rejected_at_compile(self):
        """A decomposed plan never calls the workload fn, so misspelled
        parameters must fail at compile instead of silently computing
        the defaults."""
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        with pytest.raises(ConfigError, match="bogus"):
            session.compile("triangles", bogus=123)
        with pytest.raises(ConfigError, match="measur"):
            session.run(
                "similarity_pairs",
                pairs=_watchlist(60, 5),
                measur="overlap",  # typo'd 'measure'
            )

    def test_foreign_plan_rejected(self):
        a = SisaSession(_graph(), ExecutionConfig(threads=8))
        b = SisaSession(_graph(), ExecutionConfig(threads=8))
        plan = a.compile("triangles")
        with pytest.raises(ConfigError, match="SessionPool"):
            b.run_many([plan])


# ---------------------------------------------------------------------------
# Stream-version pinning
# ---------------------------------------------------------------------------


def _insert_batch(edges):
    return EdgeBatch(
        insertions=np.asarray(edges, dtype=np.int64),
        deletions=np.empty((0, 2), dtype=np.int64),
    )


class TestVersionPinning:
    def test_stale_plan_fails_fast(self):
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        plan = session.compile("triangles")
        assert not plan.stale
        edges = canonical_edges(
            np.asarray([[0, 5], [1, 11]], dtype=np.int64), graph.num_vertices
        )
        dyn.apply_batch(_insert_batch(edges))
        assert plan.stale
        with pytest.raises(SisaError, match="recompile"):
            session.run_many([plan])
        # A plan compiled at the new version runs fine and matches a
        # fresh session over the evolved graph.
        fresh = SisaSession(
            session.current_graph.__class__.from_edges(
                graph.num_vertices, dyn.edge_array()
            ),
            ExecutionConfig(threads=8),
        ).run("triangles")
        (rerun,) = session.run_many([session.compile("triangles")])
        assert rerun.output == fresh.output

    def test_midbatch_mutation_also_drifts(self):
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        plan = session.compile("triangles")
        dyn.apply_insertions(
            canonical_edges(
                np.asarray([[0, 5]], dtype=np.int64), graph.num_vertices
            )
        )  # epoch not advanced, but mutations counted
        with pytest.raises(SisaError):
            session.run_many([plan], fuse=True)


# ---------------------------------------------------------------------------
# Fusion-disabled executor == sequential session.run (bit-identical)
# ---------------------------------------------------------------------------


class TestSequentialIdentity:
    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_mixed_batch_bit_identical(self, mode):
        graph = _graph()
        batch = _mix(graph)
        config = ExecutionConfig(threads=8, mode=mode)
        ref_session, expected = _run_sequential(graph, batch, config)

        session = SisaSession(graph, config)
        results = session.run_many(
            [(name, params) for name, params in batch], fuse=False
        )
        _assert_results_identical(expected, results)
        assert session.ctx.runtime_cycles == ref_session.ctx.runtime_cycles
        assert session.ctx.opcode_counts() == ref_session.ctx.opcode_counts()
        assert (
            session.ctx.scu.smb.stats.hits == ref_session.ctx.scu.smb.stats.hits
        )

    def test_duplicate_plans_hit_the_cache_like_repeated_runs(self):
        graph = _graph()
        config = ExecutionConfig(threads=8)
        batch = [("triangles", {}), ("triangles", {})]
        ref_session, expected = _run_sequential(graph, batch, config)
        assert expected[1].cached
        session = SisaSession(graph, config)
        results = session.run_many(batch, fuse=False)
        _assert_results_identical(expected, results)

    @given(
        n=st.integers(min_value=10, max_value=40),
        p=st.floats(min_value=0.05, max_value=0.35),
        seed=st.integers(min_value=0, max_value=2**16),
        order=st.permutations(list(range(4))),
    )
    @settings(max_examples=12, deadline=None)
    def test_property_any_plan_order_matches_sequential(self, n, p, seed, order):
        """Property: for any graph and any plan ordering, the
        fusion-disabled executor is bit-identical to sequential
        ``session.run`` calls, and the fused executor returns identical
        outputs while issuing per plan no more instructions than the
        sequential stream."""
        graph = gnp_random_graph(n, p, seed=seed)
        pairs = _watchlist(n, 12, seed=seed % 97)
        menu = [
            ("triangles", {}),
            ("clustering_coefficient", {}),
            ("similarity_pairs", {"pairs": pairs, "measure": "jaccard"}),
            ("local_clustering", {}),
        ]
        batch = [menu[i] for i in order]
        config = ExecutionConfig(threads=4)
        ref_session, expected = _run_sequential(graph, batch, config)

        session = SisaSession(graph, config)
        results = session.run_many(batch, fuse=False)
        _assert_results_identical(expected, results)

        fused_session = SisaSession(graph, config)
        fused = fused_session.run_many(batch, fuse=True)
        for e, f in zip(expected, fused):
            np.testing.assert_array_equal(
                np.asarray(e.output), np.asarray(f.output)
            )
            assert f.instructions <= e.instructions
            assert f.fused

    def test_property_holds_across_epoch_advance(self):
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=11)
        batch = [("triangles", {}), ("clustering_coefficient", {})]
        config = ExecutionConfig(threads=8)
        edges = canonical_edges(
            np.asarray([[0, 7], [2, 13], [5, 31]], dtype=np.int64),
            graph.num_vertices,
        )

        def drive(session, fuse):
            dyn = session.attach_stream()
            first = session.run_many(batch, fuse=fuse)
            dyn.apply_batch(_insert_batch(edges))
            second = session.run_many(batch, fuse=fuse)
            return first + second

        ref_session = SisaSession(graph, config)
        dyn = ref_session.attach_stream()
        expected = [ref_session.run(n, **p) for n, p in batch]
        dyn.apply_batch(_insert_batch(edges))
        expected += [ref_session.run(n, **p) for n, p in batch]

        plain = drive(SisaSession(graph, config), fuse=False)
        _assert_results_identical(expected, plain)
        fused = drive(SisaSession(graph, config), fuse=True)
        for e, f in zip(expected, fused):
            np.testing.assert_array_equal(
                np.asarray(e.output), np.asarray(f.output)
            )


# ---------------------------------------------------------------------------
# Fused execution
# ---------------------------------------------------------------------------


class TestFusedExecution:
    def test_subrequest_dedup_spends_zero_instructions(self):
        """clustering_coefficient's triangle count dedups against the
        triangles plan in the same batch: after shared prep, the
        clustering plan issues nothing.  With the result cache off the
        dedup runs on the batch-local map alone."""
        graph = _graph()
        session = SisaSession(
            graph, ExecutionConfig(threads=8, result_cache=False)
        )
        session.run("triangles")  # warm the orientation
        tri, cc = session.run_many(
            ["triangles", "clustering_coefficient"], fuse=True
        )
        assert cc.instructions == 0
        assert tri.instructions > 0
        ref = SisaSession(graph, ExecutionConfig(threads=8))
        assert cc.output == ref.run("clustering_coefficient").output
        assert tri.output == ref.run("triangles").output

    def test_subrequest_dedup_through_the_result_cache(self):
        """A warm cached ``triangles`` result satisfies the triangle
        sub-request inside a later ``clustering_coefficient`` plan —
        the normalized key makes every spelling of the request meet."""
        graph = _graph()
        session = SisaSession(graph, ExecutionConfig(threads=8))
        session.run("triangles")  # computes and caches
        (cc,) = session.run_many(["clustering_coefficient"], fuse=True)
        assert cc.instructions == 0
        ref = SisaSession(graph, ExecutionConfig(threads=8))
        assert cc.output == ref.run("clustering_coefficient").output

    def test_fused_macros_cross_plans(self):
        graph = _graph()
        pairs = _watchlist(graph.num_vertices, 30)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        before = session.ctx.scu.stats.fused_macros
        results = session.run_many(
            [
                ("triangles", {}),
                ("similarity_pairs", {"pairs": pairs, "measure": "jaccard"}),
            ],
            fuse=True,
            fuse_width=4,
        )
        macros = session.ctx.scu.stats.fused_macros - before
        assert macros > 0
        assert all(r.fused for r in results)
        # Fewer macro decodes than constituent bursts: fusion crossed
        # the begin_task boundary.
        total_tasks = sum(r.report.tasks for r in results)
        assert macros < total_tasks

    def test_fused_total_cycles_beat_sequential_on_the_mix(self):
        graph = chung_lu_graph(400, 1600, gamma=2.3, seed=5)
        pairs = _watchlist(400, 60)
        batch = [
            ("triangles", {}),
            ("clustering_coefficient", {}),
            ("similarity_pairs", {"pairs": pairs, "measure": "jaccard"}),
        ]
        config = ExecutionConfig(threads=8, result_cache=False)

        seq = SisaSession(graph, config)
        seq.run("triangles")
        seq.run("similarity_pairs", pairs=pairs, measure="jaccard")
        mark = seq.ctx.mark()
        for name, params in batch:
            seq.run(name, **params)
        seq_cycles = seq.ctx.report_since(mark).runtime_cycles

        fused = SisaSession(graph, config)
        fused.run("triangles")
        fused.run("similarity_pairs", pairs=pairs, measure="jaccard")
        mark = fused.ctx.mark()
        fused.run_many(batch, fuse=True)
        fused_cycles = fused.ctx.report_since(mark).runtime_cycles
        assert fused_cycles < seq_cycles

    def test_fused_batch_seeds_the_result_cache(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        session.run_many(["triangles"], fuse=True)
        hit = session.run("triangles")
        assert hit.cached
        assert hit.instructions == 0

    def test_identical_plans_dedup_within_the_batch(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        first, second = session.run_many(["triangles", "triangles"], fuse=True)
        assert first.output == second.output
        assert second.cached
        assert second.instructions == 0

    def test_host_baseline_runs_without_fusion(self):
        graph = _graph()
        session = SisaSession(graph, ExecutionConfig(threads=8, mode="cpu-set"))
        results = session.run_many(
            ["triangles", "clustering_coefficient"], fuse=True
        )
        assert session.ctx.scu.stats.fused_macros == 0
        ref = SisaSession(graph, ExecutionConfig(threads=8, mode="cpu-set"))
        assert results[0].output == ref.run("triangles").output
        # Dedup still applies on the host.
        assert results[1].instructions == 0

    def test_executor_validates_fuse_width(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        with pytest.raises(ConfigError):
            PlanExecutor(session, fuse_width=0)

    def test_empty_batch(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        assert session.run_many([], fuse=True) == []
        assert session.run_many([], fuse=False) == []

    def test_failed_fused_batch_leaks_no_tenant_state(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        plans = [
            session.compile("triangles"),
            session.compile("fsm", sigma=0.5),
        ]

        # Malformed params now fail at compile (the serving rule
        # engine), so force the mid-batch failure with a stage fault on
        # the second plan instead: the first plan has already executed
        # attributed slices when the batch dies.
        class _FailSecondPlan:
            def on_stage(self, plan, stage):
                if plan.name == "fsm":
                    raise SisaError("injected mid-batch failure")

        with pytest.raises(Exception):
            session.run_many(
                plans, fuse=True, fault_injector=_FailSecondPlan()
            )
        assert session.ctx.engine._tenants == {}
        # The session still serves follow-up batches normally.
        (tri,) = session.run_many(["triangles"], fuse=True)
        ref = SisaSession(_graph(), ExecutionConfig(threads=8)).run("triangles")
        assert tri.output == ref.output


# ---------------------------------------------------------------------------
# SessionPool
# ---------------------------------------------------------------------------


class TestSessionPool:
    def test_session_reuse_and_unknown_key(self):
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=2)
        g = _graph()
        s1 = pool.session("g", g)
        assert pool.session("g") is s1
        with pytest.raises(ConfigError, match="unknown session key"):
            pool.session("other")

    def test_lru_eviction(self):
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=2)
        pool.session("a", _graph(seed=1))
        pool.session("b", _graph(seed=2))
        pool.session("a")  # refresh a: b is now LRU
        pool.session("c", _graph(seed=3))
        assert pool.session_keys == ("a", "c")
        assert pool.evictions == 1

    def test_pending_sessions_are_pinned(self):
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=1)
        pool.submit("a", "triangles", graph=_graph(seed=1))
        pool.session("b", _graph(seed=2))
        # "a" has a queued plan, so it survives past the bound.
        assert "a" in pool and "b" in pool
        pool.run()
        pool.session("c", _graph(seed=3))
        assert "a" not in pool

    def test_shared_memo_is_bit_identical(self):
        graph = _graph()
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=4)
        s1 = pool.session("g1", graph)
        s2 = pool.session("g2", graph)
        assert s1.ctx.scu._decision_memo is s2.ctx.scu._decision_memo
        r1 = s1.run("triangles")
        r2 = s2.run("triangles")  # served from a memo s1's run warmed
        standalone = SisaSession(graph, ExecutionConfig(threads=8)).run(
            "triangles"
        )
        assert r1.output == r2.output == standalone.output
        assert r1.runtime_cycles == r2.runtime_cycles == standalone.runtime_cycles
        assert r1.opcode_counts() == standalone.opcode_counts()

    def test_different_machine_signatures_do_not_share(self):
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=4)
        s1 = pool.session("a", _graph(seed=1))
        s2 = pool.session(
            "b", _graph(seed=2), config=ExecutionConfig(threads=8, mode="cpu-set")
        )
        assert s1.ctx.scu._decision_memo is not s2.ctx.scu._decision_memo

    def test_round_robin_and_tenant_accounting(self):
        graph = chung_lu_graph(200, 800, gamma=2.2, seed=5)
        pairs = _watchlist(200, 30)
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=2)
        pool.submit("g", "triangles", tenant="alice", graph=graph)
        pool.submit("g", "similarity_pairs", tenant="bob", pairs=pairs)
        pool.submit("g", "clustering_coefficient", tenant="alice")
        results = pool.run()
        assert pool.pending == 0
        assert [r.workload for r in results] == [
            "triangles",
            "similarity_pairs",
            "clustering_coefficient",
        ]  # submission order, whatever the schedule
        cycles = pool.tenant_cycles
        assert cycles["alice"] > 0 and cycles["bob"] > 0
        assert pool.tenant_runs == {"alice": 2, "bob": 1}
        ref = SisaSession(graph, ExecutionConfig(threads=8))
        assert results[0].output == ref.run("triangles").output
        np.testing.assert_array_equal(
            results[1].output,
            ref.run("similarity_pairs", pairs=pairs).output,
        )

    def test_cross_graph_batches(self):
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=4)
        g1, g2 = _graph(seed=1), _graph(seed=2)
        pool.submit("g1", "triangles", tenant="t1", graph=g1)
        pool.submit("g2", "triangles", tenant="t2", graph=g2)
        r1, r2 = pool.run()
        assert r1.output == SisaSession(g1, threads=8).run("triangles").output
        assert r2.output == SisaSession(g2, threads=8).run("triangles").output

    def test_pool_validates_max_sessions(self):
        with pytest.raises(ConfigError):
            SessionPool(max_sessions=0)

    def test_key_collision_with_different_graph_rejected(self):
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=2)
        g1, g2 = _graph(seed=1), _graph(seed=2)
        pool.submit("k", "triangles", graph=g1)
        with pytest.raises(ConfigError, match="different graph"):
            pool.submit("k", "triangles", graph=g2)
        pool.submit("k", "triangles", graph=g1)  # same graph object is fine

    def test_stale_plan_fails_before_any_tenant_work(self):
        """One tenant's stale plan must not cost another tenant's
        results: run() fails fast with the whole queue intact, and
        discard_stale() recovers."""
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=2)
        pool.submit("a", "triangles", tenant="alice", graph=graph)
        session_a = pool.session("a")
        dyn = session_a.attach_stream()
        stale = pool.submit("a", "clustering_coefficient", tenant="bob")
        dyn.apply_batch(
            _insert_batch(
                canonical_edges(
                    np.asarray([[0, 9]], dtype=np.int64), graph.num_vertices
                )
            )
        )
        # Wait: the triangles plan was compiled before attach_stream, at
        # version (0, 0); both plans are stale now.
        assert stale.stale
        with pytest.raises(SisaError):
            pool.run()
        assert pool.pending == 2  # nothing was dequeued or executed
        assert pool.tenant_runs == {}
        dropped = pool.discard_stale()
        assert len(dropped) == 2 and pool.pending == 0
        pool.submit("a", "triangles", tenant="alice")
        (result,) = pool.run()
        rebuilt = SisaSession(
            session_a.current_graph, ExecutionConfig(threads=8)
        ).run("triangles")
        assert result.output == rebuilt.output

    def test_tenant_work_includes_all_lanes(self):
        graph = chung_lu_graph(120, 480, gamma=2.2, seed=5)
        pool = SessionPool(ExecutionConfig(threads=8), max_sessions=2)
        pool.submit("g", "triangles", tenant="solo", graph=graph)
        (result,) = pool.run()
        assert pool.tenant_cycles["solo"] >= sum(result.report.lane_times)
        assert pool.tenant_cycles["solo"] >= result.runtime_cycles > 0


class TestInvalidation:
    def test_per_workload_invalidation_drops_subrequests(self):
        """Explicitly invalidating clustering_coefficient must also
        drop the triangle sub-request it could otherwise seed from —
        the re-run has to issue instructions again."""
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        session.run_many(["triangles", "clustering_coefficient"], fuse=True)
        dropped = session.invalidate_results("clustering_coefficient")
        assert dropped >= 2  # its own entry + the triangles sub-request
        (rerun,) = session.run_many(["clustering_coefficient"], fuse=True)
        assert not rerun.cached
        assert rerun.instructions > 0
