"""Unit tests for SetGraph representation selection."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graphs.generators import chung_lu_graph, star_graph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


@pytest.fixture
def heavy_graph():
    return chung_lu_graph(300, 3000, gamma=1.9, seed=8)


class TestSelection:
    def test_fraction_policy_counts(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(heavy_graph, ctx, t=0.4, budget=10.0)
        # With an ample budget, ~40% of neighborhoods become DBs.
        assert abs(sg.dense_fraction - 0.4) < 0.05

    def test_t_zero_all_sparse(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(heavy_graph, ctx, t=0.0)
        assert sg.num_dense == 0

    def test_t_one_with_budget_zero_all_sparse(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(heavy_graph, ctx, t=1.0, budget=0.0)
        # Zero budget admits only DBs that are smaller than their SA
        # (degree >= n / W).
        word_bits = ctx.hw.word_bits
        for v in range(sg.num_vertices):
            if sg.dense_mask[v]:
                assert heavy_graph.degree(v) * word_bits >= heavy_graph.num_vertices

    def test_dense_selects_largest_first(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(heavy_graph, ctx, t=0.2, budget=10.0)
        degrees = heavy_graph.degrees
        chosen = degrees[sg.dense_mask]
        not_chosen = degrees[~sg.dense_mask]
        if chosen.size and not_chosen.size:
            assert chosen.min() >= not_chosen.max() - 1

    def test_threshold_policy(self):
        g = star_graph(100)
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(g, ctx, t=0.5, budget=10.0, policy="threshold")
        # Only the hub has degree >= 0.5 * n.
        assert sg.num_dense == 1
        assert sg.dense_mask[0]

    def test_budget_limits_storage(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        word_bits = ctx.hw.word_bits
        sa_total = word_bits * int(heavy_graph.degrees.sum())
        sg = SetGraph.from_graph(heavy_graph, ctx, t=1.0, budget=0.1)
        assert sg.storage_bits <= 1.1 * sa_total + heavy_graph.num_vertices

    def test_cpu_mode_never_dense(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="cpu-set")
        sg = SetGraph.from_graph(heavy_graph, ctx, t=0.4)
        assert sg.num_dense == 0

    def test_invalid_params(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        with pytest.raises(ConfigError):
            SetGraph.from_graph(heavy_graph, ctx, t=1.5)
        with pytest.raises(ConfigError):
            SetGraph.from_graph(heavy_graph, ctx, budget=-1)
        with pytest.raises(ConfigError):
            SetGraph.from_graph(heavy_graph, ctx, policy="magic")


class TestContent:
    def test_neighborhood_contents_preserved(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(heavy_graph, ctx, t=0.4)
        for v in range(0, heavy_graph.num_vertices, 17):
            stored = ctx.value(sg.neighborhood(v)).to_array()
            assert np.array_equal(stored, heavy_graph.neighbors(v))

    def test_degree_matches_metadata(self, heavy_graph):
        ctx = SisaContext(threads=1, mode="sisa")
        sg = SetGraph.from_graph(heavy_graph, ctx)
        for v in range(0, heavy_graph.num_vertices, 23):
            assert sg.degree(v) == heavy_graph.degree(v)

    def test_from_digraph(self, heavy_graph):
        from repro.graphs.digraph import orient_by_order
        from repro.graphs.orientation import degeneracy_order

        ctx = SisaContext(threads=1, mode="sisa")
        dg = orient_by_order(heavy_graph, degeneracy_order(heavy_graph).order)
        sg = SetGraph.from_digraph(dg, ctx)
        for v in range(0, dg.num_vertices, 29):
            stored = ctx.value(sg.neighborhood(v)).to_array()
            assert np.array_equal(stored, dg.out_neighbors(v))
