"""Element-update instructions: scalar round-trips and batched bursts.

Contracts under test:

* ``with_element``/``without_element`` are part of the ``VertexSet``
  base interface (every representation implements them),
* scalar ``insert``/``remove`` round-trips on both SA and DB
  representations and keeps the ``SetMeta`` cardinality in sync,
* ``insert_batch``/``remove_batch`` are functionally identical and
  cycle-identical (stats, SMB, simulated cycles) to the sequential
  scalar stream — batching amortizes Python overhead, not modeled
  cost,
* ``convert_representation`` swaps SA ↔ DB in place, preserving the
  set id, the elements and the metadata.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.common import make_context
from repro.sets.base import Representation, VertexSet
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

UNIVERSE = 96

subsets = st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), max_size=30)
elements = st.lists(
    st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=20
)


class TestBaseInterface:
    def test_update_methods_are_abstract(self):
        assert "with_element" in VertexSet.__abstractmethods__
        assert "without_element" in VertexSet.__abstractmethods__

    @given(start=subsets, xs=elements)
    @settings(max_examples=60, deadline=None)
    def test_bulk_updates_match_scalar_folds(self, start, xs):
        arr = np.asarray(sorted(start), dtype=np.int64)
        xs_arr = np.asarray(xs, dtype=np.int64)
        for value in (
            SparseArray(arr, UNIVERSE),
            SparseArray(arr, UNIVERSE).shuffled(5),
            DenseBitvector.from_elements(arr, UNIVERSE),
        ):
            folded = value
            for x in xs:
                folded = folded.with_element(int(x))
            bulk = value.with_elements(xs_arr)
            assert np.array_equal(bulk.to_array(), folded.to_array())
            assert bulk.representation is folded.representation
            folded = value
            for x in xs:
                folded = folded.without_element(int(x))
            bulk = value.without_elements(xs_arr)
            assert np.array_equal(bulk.to_array(), folded.to_array())
            assert bulk.representation is folded.representation

    @given(start=subsets, xs=elements)
    @settings(max_examples=40, deadline=None)
    def test_contains_many(self, start, xs):
        arr = np.asarray(sorted(start), dtype=np.int64)
        xs_arr = np.asarray(xs, dtype=np.int64)
        expected = np.asarray([x in start for x in xs], dtype=bool)
        for value in (
            SparseArray(arr, UNIVERSE),
            SparseArray(arr, UNIVERSE).shuffled(7),
            DenseBitvector.from_elements(arr, UNIVERSE),
        ):
            assert np.array_equal(value.contains_many(xs_arr), expected)


@pytest.mark.parametrize("dense", [False, True])
def test_scalar_round_trip_keeps_metadata_in_sync(dense):
    """Regression: insert/remove round-trips on SA and DB, with the SM
    cardinality tracking every step."""
    ctx = make_context(threads=1)
    sid = ctx.create_set([2, 9, 40], universe=UNIVERSE, dense=dense)
    rep = Representation.DENSE if dense else Representation.SPARSE_SORTED

    ctx.insert(sid, 17)
    assert ctx.sm.meta(sid).cardinality == 4
    assert ctx.sm.meta(sid).cardinality == ctx.value(sid).cardinality
    assert ctx.member(sid, 17)

    ctx.insert(sid, 17)  # no-op insert still dispatches, state unchanged
    assert ctx.sm.meta(sid).cardinality == 4

    ctx.remove(sid, 17)
    assert ctx.sm.meta(sid).cardinality == 3
    assert not ctx.member(sid, 17)

    ctx.remove(sid, 17)  # no-op remove
    assert ctx.sm.meta(sid).cardinality == 3

    assert np.array_equal(ctx.value(sid).to_array(), [2, 9, 40])
    assert ctx.sm.meta(sid).representation is rep
    assert ctx.value(sid).representation is rep


update_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # which set
        st.integers(min_value=0, max_value=UNIVERSE - 1),
    ),
    min_size=1,
    max_size=25,
)


class TestBatchedElementUpdates:
    def _fresh(self, mode="sisa"):
        ctx = make_context(threads=4, mode=mode)
        sids = [
            ctx.create_set([1, 5, 9, 30], universe=UNIVERSE),
            ctx.create_set([5, 6], universe=UNIVERSE, dense=(mode == "sisa")),
            ctx.create_set([], universe=UNIVERSE),
        ]
        return ctx, sids

    @given(stream=update_streams, insert=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_batch_is_cycle_identical_to_scalar_stream(self, stream, insert):
        for mode in ("sisa", "cpu-set"):
            ctx_b, sids_b = self._fresh(mode)
            ctx_s, sids_s = self._fresh(mode)
            updates_b = [(sids_b[i], x) for i, x in stream]
            for i, x in stream:
                if insert:
                    ctx_s.insert(sids_s[i], x)
                else:
                    ctx_s.remove(sids_s[i], x)
            if insert:
                flags = ctx_b.insert_batch(updates_b)
            else:
                flags = ctx_b.remove_batch(updates_b)
            assert flags.shape == (len(stream),)
            assert ctx_b.runtime_cycles == ctx_s.runtime_cycles
            assert ctx_b.scu.stats == ctx_s.scu.stats
            assert ctx_b.scu.smb.stats.hits == ctx_s.scu.smb.stats.hits
            assert ctx_b.scu.smb.stats.misses == ctx_s.scu.smb.stats.misses
            for sb, ss in zip(sids_b, sids_s):
                assert np.array_equal(
                    ctx_b.value(sb).to_array(), ctx_s.value(ss).to_array()
                )
                assert ctx_b.sm.meta(sb).cardinality == ctx_s.sm.meta(ss).cardinality
                assert (
                    ctx_b.sm.meta(sb).representation
                    is ctx_s.sm.meta(ss).representation
                )

    def test_effect_flags(self):
        ctx, sids = self._fresh()
        flags = ctx.insert_batch(
            [(sids[0], 2), (sids[0], 5), (sids[0], 2), (sids[2], 0)]
        )
        # new, already present, duplicate within burst, new
        assert flags.tolist() == [True, False, False, True]
        flags = ctx.remove_batch(
            [(sids[0], 2), (sids[0], 2), (sids[0], 77)]
        )
        assert flags.tolist() == [True, False, False]

    def test_empty_batch(self):
        ctx, _ = self._fresh()
        before = ctx.runtime_cycles
        assert ctx.insert_batch([]).size == 0
        assert ctx.remove_batch([]).size == 0
        assert ctx.runtime_cycles == before


class TestConvertRepresentation:
    def test_sa_to_db_and_back(self):
        ctx = make_context(threads=1)
        sid = ctx.create_set([3, 8, 64], universe=UNIVERSE)
        before = ctx.runtime_cycles
        assert ctx.convert_representation(sid, dense=True)
        assert ctx.runtime_cycles > before
        assert ctx.sm.meta(sid).representation is Representation.DENSE
        assert ctx.sm.meta(sid).cardinality == 3
        assert np.array_equal(ctx.value(sid).to_array(), [3, 8, 64])
        assert ctx.convert_representation(sid, dense=False)
        assert ctx.sm.meta(sid).representation is Representation.SPARSE_SORTED
        assert np.array_equal(ctx.value(sid).to_array(), [3, 8, 64])

    def test_noop_conversion_charges_nothing(self):
        ctx = make_context(threads=1)
        sid = ctx.create_set([3, 8], universe=UNIVERSE)
        before = ctx.runtime_cycles
        assert not ctx.convert_representation(sid, dense=False)
        assert ctx.runtime_cycles == before
