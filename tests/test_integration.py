"""End-to-end integration tests: dataset -> SetGraph -> algorithm ->
counts & cycles, determinism, and the paper's qualitative claims."""

import pytest

from repro.algorithms.bron_kerbosch import maximal_cliques
from repro.algorithms.kclique import kclique_count
from repro.algorithms.subgraph_iso import star_pattern, subgraph_isomorphism
from repro.algorithms.triangles import triangle_count
from repro.baselines.nonset import kclique_count_nonset
from repro.datasets import load
from repro.graphs.labels import Labeling
from repro.hw.config import commodity_cpu_config
from repro.isa.opcodes import Opcode


class TestDeterminism:
    def test_same_run_same_cycles(self):
        g = load("int-antCol5-d1")
        a = kclique_count(g, 4, threads=8, max_patterns=5000)
        b = kclique_count(g, 4, threads=8, max_patterns=5000)
        assert a.output == b.output
        assert a.runtime_cycles == b.runtime_cycles

    def test_modes_agree_functionally(self):
        g = load("bn-flyMedulla")
        sisa = triangle_count(g, threads=8)
        cpu = triangle_count(g, threads=8, mode="cpu-set")
        assert sisa.output == cpu.output


class TestPaperClaims:
    def test_sisa_uses_both_pum_and_pnm(self):
        """With t = 0.4 on a heavy-tailed dataset, both in-situ and
        near-memory instructions are executed (Section 8.1).  Triangle
        counting intersects neighborhoods pairwise, so heavy hubs
        produce DB∩DB (PUM) work while the tail stays on PNM."""
        g = load("bio-SC-GT")
        run = triangle_count(g, threads=8)
        stats = run.context.scu.stats
        assert stats.pum_ops > 0
        assert stats.pnm_ops > 0

    def test_pure_sa_run_never_uses_pum_for_pairs(self):
        g = load("soc-fbMsg")
        run = kclique_count(g, 4, threads=8, t=0.0, max_patterns=5000)
        counts = run.output
        opcodes = run.context.opcode_counts()
        assert Opcode.INTERSECT_DB_DB not in opcodes
        assert counts >= 0

    def test_commodity_cpu_flattens(self):
        """The Fig. 1 phenomenon: on the commodity CPU config, going
        from 8 to 32 threads barely helps a memory-bound baseline."""
        g = load("int-antCol6-d2")
        cpu = commodity_cpu_config()
        t8 = kclique_count_nonset(g, 4, threads=8, cpu=cpu, max_patterns=20_000)
        t32 = kclique_count_nonset(g, 4, threads=32, cpu=cpu, max_patterns=20_000)
        speedup = t8.runtime_cycles / t32.runtime_cycles
        assert speedup < 2.5  # nowhere near the 4x thread increase

    def test_stall_fraction_rises_with_threads(self):
        g = load("int-antCol6-d2")
        cpu = commodity_cpu_config()
        t1 = kclique_count_nonset(g, 4, threads=1, cpu=cpu, max_patterns=20_000)
        t32 = kclique_count_nonset(g, 4, threads=32, cpu=cpu, max_patterns=20_000)
        assert t32.report.avg_stall_fraction > t1.report.avg_stall_fraction

    def test_labeled_si_prunes(self):
        """The paper (Section 9.2, 'Labels'): label constraints
        eliminate recursive calls early, so *full* labeled runs are
        usually faster despite the extra label checks."""
        from repro.graphs.generators import gnp_random_graph

        g = gnp_random_graph(60, 0.2, seed=12)
        pattern = star_pattern(3)
        unlabeled = subgraph_isomorphism(g, pattern, threads=8)
        labeled = subgraph_isomorphism(
            g,
            pattern,
            threads=8,
            target_labels=Labeling.random(g, 3, seed=0),
            pattern_labels=Labeling(pattern, [0, 1, 2, 0]),
        )
        assert labeled.output < unlabeled.output
        assert labeled.runtime_cycles < unlabeled.runtime_cycles

    def test_smb_cache_helps_single_thread(self):
        """Section 9.2: disabling the SCU cache costs ~1.5x at T=1."""
        g = load("int-antCol4") if False else load("intD-antCol4")
        with_cache = kclique_count(g, 4, threads=1, max_patterns=5000)
        without = kclique_count(
            g, 4, threads=1, max_patterns=5000, smb_enabled=False
        )
        assert without.runtime_cycles > with_cache.runtime_cycles

    def test_dense_fraction_tracks_t(self):
        g = load("bio-CE-PG")
        low = kclique_count(g, 4, threads=4, t=0.1, max_patterns=1000)
        high = kclique_count(g, 4, threads=4, t=0.8, max_patterns=1000)
        assert low.output == high.output

    def test_mc_runs_on_dataset(self):
        g = load("int-HosWardProx")
        run = maximal_cliques(g, threads=8, max_patterns=2000)
        assert len(run.output) > 0
        assert run.runtime_cycles > 0
