"""Unit tests for the Table 7 dataset stand-ins."""

import pytest

from repro.datasets import dataset_names, dataset_spec, load
from repro.datasets.registry import BIO, DIMACS, INTERACTION, SOCIAL
from repro.errors import DatasetError
from repro.graphs.properties import degree_stats, is_heavy_tailed


class TestRegistry:
    def test_all_paper_datasets_present(self):
        names = dataset_names()
        # The Table 7 suite: 20 small + 6 large graphs.
        assert len(names) == 26
        for required in (
            "bio-SC-GT",
            "int-antCol3-d1",
            "econ-beacxc",
            "soc-fbMsg",
            "dimacs-c500-9",
            "soc-orkut",
            "bio-humanGene",
        ):
            assert required in names

    def test_small_large_split(self):
        assert len(dataset_names(large=False)) == 20
        assert len(dataset_names(large=True)) == 6

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            dataset_spec("nope")
        with pytest.raises(DatasetError):
            load("nope")

    def test_specs_record_scaling(self):
        spec = dataset_spec("soc-orkut")
        assert spec.large
        assert spec.scale > 1
        assert spec.num_vertices == max(64, spec.paper_vertices // spec.scale)


class TestGeneratedGraphs:
    def test_deterministic(self):
        assert load("bio-SC-GT") is load("bio-SC-GT")  # cached
        g1 = load("soc-fbMsg")
        load.cache_clear()
        g2 = load("soc-fbMsg")
        assert g1 == g2

    def test_small_graph_sizes_match_paper(self):
        for name in ("bio-SC-GT", "econ-beacxc", "int-antCol3-d1"):
            spec = dataset_spec(name)
            g = load(name)
            assert g.num_vertices == spec.paper_vertices
            # Edge counts are sampled; allow a generous band.
            assert g.num_edges > 0.3 * spec.paper_edges

    def test_regimes_have_expected_structure(self):
        assert dataset_spec("bio-SC-GT").regime == BIO
        assert dataset_spec("int-antCol3-d1").regime == INTERACTION
        assert dataset_spec("soc-fbMsg").regime == SOCIAL
        assert dataset_spec("dimacs-c500-9").regime == DIMACS

    def test_bio_graphs_are_heavy_tailed(self):
        assert is_heavy_tailed(load("bio-SC-GT"))
        assert is_heavy_tailed(load("bio-CE-PG"))

    def test_interaction_graphs_are_dense(self):
        g = load("int-antCol3-d1")
        density = g.num_edges / (g.num_vertices * (g.num_vertices - 1) / 2)
        assert density > 0.5

    def test_dimacs_is_very_dense(self):
        g = load("dimacs-c500-9")
        density = g.num_edges / (g.num_vertices * (g.num_vertices - 1) / 2)
        assert density > 0.85

    def test_scientific_is_light_tailed(self):
        stats = degree_stats(load("sc-pwtk"))
        assert stats.max_degree_fraction < 0.05
