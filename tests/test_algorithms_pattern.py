"""Correctness tests for pattern-matching algorithms (tc, mc, kcc, ksc)
against networkx / brute-force references, across all execution modes.
"""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.bron_kerbosch import maximal_cliques
from repro.algorithms.clique_star import kclique_star
from repro.algorithms.kclique import four_clique_count, kclique_count
from repro.algorithms.triangles import clustering_coefficient, triangle_count
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    star_graph,
)

from conftest import to_networkx


def nx_kcliques(graph, k):
    nxg = to_networkx(graph)
    return sum(
        1
        for clique in nx.enumerate_all_cliques(nxg)
        if len(clique) == k
    )


class TestTriangleCounting:
    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_matches_networkx(self, mode):
        for seed in range(3):
            g = gnp_random_graph(40, 0.25, seed=seed)
            expected = sum(nx.triangles(to_networkx(g)).values()) // 3
            run = triangle_count(g, threads=4, mode=mode)
            assert run.output == expected

    def test_complete_graph(self):
        g = complete_graph(8)
        assert triangle_count(g, threads=2).output == 56

    def test_triangle_free(self):
        assert triangle_count(star_graph(20), threads=2).output == 0
        assert triangle_count(cycle_graph(10), threads=2).output == 0

    def test_clustering_coefficient(self):
        g = complete_graph(6)
        run = clustering_coefficient(g, threads=2)
        assert run.output == pytest.approx(1.0)

    def test_representation_invariance(self):
        """The t knob changes representations and cycles but never the
        functional result."""
        g = gnp_random_graph(50, 0.2, seed=5)
        counts = {
            triangle_count(g, threads=4, t=t).output for t in (0.0, 0.3, 1.0)
        }
        assert len(counts) == 1


class TestMaximalCliques:
    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_matches_networkx(self, mode):
        for seed in range(3):
            g = gnp_random_graph(35, 0.3, seed=seed)
            expected = sorted(
                tuple(sorted(c)) for c in nx.find_cliques(to_networkx(g))
            )
            run = maximal_cliques(g, threads=4, mode=mode)
            assert sorted(run.output) == expected

    def test_complete_graph_single_clique(self):
        run = maximal_cliques(complete_graph(7), threads=2)
        assert run.output == [tuple(range(7))]

    def test_empty_graph(self):
        run = maximal_cliques(CSRGraph.empty(4), threads=2)
        # Each isolated vertex is a maximal clique of size 1.
        assert sorted(run.output) == [(0,), (1,), (2,), (3,)]

    def test_cliques_are_maximal_and_cliques(self, random_graph):
        run = maximal_cliques(random_graph, threads=4)
        adjacency = [
            set(map(int, random_graph.neighbors(v)))
            for v in range(random_graph.num_vertices)
        ]
        for clique in run.output:
            for u, v in itertools.combinations(clique, 2):
                assert v in adjacency[u]
            # No vertex extends the clique.
            extensions = set.intersection(*(adjacency[u] for u in clique))
            assert not (extensions - set(clique))

    def test_cutoff_limits_patterns(self, dense_graph):
        run = maximal_cliques(dense_graph, threads=2, max_patterns=5)
        assert len(run.output) <= 5 + 1  # at most one task overshoot


class TestKClique:
    @pytest.mark.parametrize("k", [3, 4, 5])
    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_counts_match_networkx(self, k, mode):
        g = gnp_random_graph(30, 0.35, seed=7)
        expected = nx_kcliques(g, k)
        run = kclique_count(g, k, threads=4, mode=mode)
        assert run.output == expected

    def test_complete_graph_binomial(self):
        g = complete_graph(8)
        import math

        assert kclique_count(g, 4, threads=2).output == math.comb(8, 4)

    def test_collect_lists_cliques(self):
        g = complete_graph(5)
        run = kclique_count(g, 3, threads=1, collect=True)
        assert len(run.output) == 10
        for clique in run.output:
            assert len(set(clique)) == 3

    def test_k2_counts_edges(self, random_graph):
        run = kclique_count(random_graph, 2, threads=2)
        assert run.output == random_graph.num_edges

    def test_bad_k_rejected(self, random_graph):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            kclique_count(random_graph, 1)

    def test_four_clique_specialization_agrees(self):
        g = gnp_random_graph(30, 0.35, seed=9)
        general = kclique_count(g, 4, threads=2).output
        special = four_clique_count(g, threads=2).output
        assert general == special


class TestKCliqueStar:
    def test_star_extras_are_fully_connected(self):
        g = gnp_random_graph(25, 0.5, seed=3)
        run = kclique_star(g, 3, variant="from_k1", threads=2)
        adjacency = [
            set(map(int, g.neighbors(v))) for v in range(g.num_vertices)
        ]
        for clique, extras in run.output.items():
            for w in extras:
                assert all(w in adjacency[u] or w == u for u in clique)

    def test_variants_agree_on_support(self):
        g = gnp_random_graph(22, 0.5, seed=4)
        from_k1 = kclique_star(g, 3, variant="from_k1", threads=2).output
        intersect = dict(kclique_star(g, 3, variant="intersect", threads=2).output)
        # Every star found by the (k+1)-clique variant must appear in
        # the intersection variant's output with at least those extras.
        for clique, extras in from_k1.items():
            assert clique in intersect
            assert set(extras) <= set(intersect[clique])

    def test_complete_graph_stars(self):
        # In K5, every 3-clique extends by the 2 remaining vertices.
        run = kclique_star(complete_graph(5), 3, threads=1)
        assert len(run.output) == 10
        assert all(len(extras) == 2 for extras in run.output.values())

    def test_invalid_variant(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            kclique_star(complete_graph(4), 3, variant="bogus")
