"""Equivalence suite for batched and count-only set instructions.

The contract under test (ISSUE: batched set-instruction execution
engine + zero-materialization counting fast path):

* count-form ops return the same numbers as materializing ops for all
  representation pairs (sorted SA, unsorted SA, DB) without allocating
  a result set,
* batched execution is bit-identical to sequential execution in
  functional outputs, simulated cycles, SCU stats, SMB behaviour and
  traces — batching amortizes Python overhead, not modeled cost.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.clustering import jarvis_patrick
from repro.algorithms.kclique import four_clique_count_on, kclique_count_on
from repro.algorithms.link_prediction import link_prediction_effectiveness
from repro.algorithms.similarity import (
    COUNT_MEASURES,
    all_pairs_similarity_on,
    similarity_batch_on,
    similarity_on,
)
from repro.algorithms.common import make_context, oriented_setgraph
from repro.algorithms.triangles import triangle_count_oriented
from repro.graphs.generators import gnp_random_graph
from repro.runtime import batch as batchmod
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph
from repro.sets import kernels
from repro.sets.bitops import _popcount_unpackbits, popcount
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

UNIVERSE = 96

subsets = st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), max_size=40)


def sa(elements, *, shuffle_seed=None):
    s = SparseArray(np.asarray(sorted(elements), dtype=np.int64), UNIVERSE)
    if shuffle_seed is not None:
        s = s.shuffled(shuffle_seed)
    return s


def db(elements):
    return DenseBitvector.from_elements(np.asarray(sorted(elements)), UNIVERSE)


def variants(elements):
    """The three storage variants of one logical set."""
    return [sa(elements), sa(elements, shuffle_seed=3), db(elements)]


class TestCountKernels:
    """Count-form kernels agree with set semantics for every pair."""

    @given(subsets, subsets)
    @settings(max_examples=40, deadline=None)
    def test_intersect_cardinality_all_pairs(self, a, b):
        for va in variants(a):
            for vb in variants(b):
                assert kernels.intersect_cardinality(va, vb) == len(a & b)

    @given(subsets, subsets)
    @settings(max_examples=40, deadline=None)
    def test_union_cardinality_all_pairs(self, a, b):
        for va in variants(a):
            for vb in variants(b):
                assert kernels.union_cardinality(va, vb) == len(a | b)

    @given(subsets, subsets)
    @settings(max_examples=40, deadline=None)
    def test_difference_cardinality_all_pairs(self, a, b):
        for va in variants(a):
            for vb in variants(b):
                assert kernels.difference_cardinality(va, vb) == len(a - b)

    def test_counts_allocate_no_result_set(self, monkeypatch):
        """The §6.2.3 contract: no VertexSet is constructed by a
        count-form instruction, for any representation pair."""

        pairs = [
            (va, vb)
            for va in variants({1, 2, 3, 40})
            for vb in variants({2, 3, 70})
        ]

        def boom(*args, **kwargs):
            raise AssertionError("count op materialized a result set")

        monkeypatch.setattr(SparseArray, "__init__", boom)
        monkeypatch.setattr(DenseBitvector, "__init__", boom)
        for va, vb in pairs:
            assert kernels.intersect_cardinality(va, vb) == 2
            assert kernels.union_cardinality(va, vb) == 5
            assert kernels.difference_cardinality(va, vb) == 2

    def test_context_counts_allocate_no_result_set(self, monkeypatch):
        ctx = SisaContext(threads=2)
        ids = [
            ctx.create_set([1, 2, 3], universe=50),
            ctx.create_set([2, 3, 4], universe=50, dense=True),
            ctx.create_set([3, 4, 5], universe=50),
        ]

        def boom(*args, **kwargs):
            raise AssertionError("count op materialized a result set")

        monkeypatch.setattr(SparseArray, "__init__", boom)
        monkeypatch.setattr(DenseBitvector, "__init__", boom)
        assert ctx.intersect_count(ids[0], ids[1]) == 2
        assert ctx.union_count(ids[0], ids[2]) == 5
        assert ctx.difference_count(ids[1], ids[0]) == 1
        assert list(ctx.intersect_count_batch(ids[0], ids[1:])) == [2, 1]
        assert list(ctx.union_count_batch(ids[0], ids[1:])) == [4, 5]
        assert list(ctx.difference_count_batch(ids[0], ids[1:])) == [1, 2]

    def test_popcount_fallback_matches_numpy(self):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**63, size=37, dtype=np.uint64)
        assert np.array_equal(
            np.asarray(_popcount_unpackbits(words), dtype=np.int64),
            np.asarray(popcount(words), dtype=np.int64),
        )
        empty = np.zeros(0, dtype=np.uint64)
        assert _popcount_unpackbits(empty).size == 0

    @given(subsets, st.lists(subsets, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_flat_batch_counts(self, a, bs):
        """The one-pass flat kernels equal per-pair counts."""
        for va in (sa(a), db(a)):
            values = [v for b in bs for v in (sa(b), sa(b, shuffle_seed=7), db(b))]
            got = batchmod.intersect_counts(va, values)
            expected = [kernels.intersect_cardinality(va, v) for v in values]
            assert list(got) == expected


def _mixed_context(seed=0, threads=4, mode="sisa", trace=False):
    """A context with a spread of sorted-SA / unsorted-SA / DB sets."""
    rng = np.random.default_rng(seed)
    ctx = SisaContext(threads=threads, mode=mode, trace=trace)
    ids = []
    for i in range(36):
        k = int(rng.integers(0, 50))
        elems = rng.choice(150, size=k, replace=False)
        if i % 4 == 0:
            ids.append(ctx.create_set(elems, universe=150, dense=True))
        elif i % 4 == 1:
            ids.append(ctx.create_set(elems, universe=150, sorted_=False))
        else:
            ids.append(ctx.create_set(np.sort(elems), universe=150))
    return ctx, ids


class TestBatchSequentialEquivalence:
    """Batched execution == sequential execution, bit for bit."""

    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    @pytest.mark.parametrize(
        "batch_name,scalar_name",
        [
            ("intersect_count_batch", "intersect_count"),
            ("union_count_batch", "union_count"),
            ("difference_count_batch", "difference_count"),
        ],
    )
    def test_count_batch_matches_scalar(self, mode, batch_name, scalar_name):
        ctx_b, ids_b = _mixed_context(mode=mode, trace=True)
        ctx_s, ids_s = _mixed_context(mode=mode, trace=True)
        a_b, a_s = ids_b[5], ids_s[5]
        bs_b, bs_s = ids_b[1:], ids_s[1:]
        ctx_b.begin_task()
        got = getattr(ctx_b, batch_name)(a_b, bs_b)
        ctx_s.begin_task()
        scalar_op = getattr(ctx_s, scalar_name)
        expected = [scalar_op(a_s, b) for b in bs_s]
        assert list(got) == expected
        assert ctx_b.runtime_cycles == ctx_s.runtime_cycles
        assert ctx_b.scu.stats == ctx_s.scu.stats
        assert ctx_b.scu.smb.stats == ctx_s.scu.smb.stats
        assert ctx_b.trace.events == ctx_s.trace.events

    def test_intersect_batch_matches_scalar(self):
        ctx_b, ids_b = _mixed_context(seed=2, trace=True)
        ctx_s, ids_s = _mixed_context(seed=2, trace=True)
        a_b, a_s = ids_b[8], ids_s[8]
        ctx_b.begin_task()
        got_ids = ctx_b.intersect_batch(a_b, ids_b[:20])
        ctx_s.begin_task()
        exp_ids = [ctx_s.intersect(a_s, b) for b in ids_s[:20]]
        assert got_ids == exp_ids
        for g, e in zip(got_ids, exp_ids):
            assert np.array_equal(
                ctx_b.value(g).to_array(), ctx_s.value(e).to_array()
            )
            assert type(ctx_b.value(g)) is type(ctx_s.value(e))
        assert ctx_b.runtime_cycles == ctx_s.runtime_cycles
        assert ctx_b.scu.stats == ctx_s.scu.stats
        assert ctx_b.trace.events == ctx_s.trace.events

    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    @pytest.mark.parametrize(
        "batch_name,scalar_name",
        [("union_batch", "union"), ("difference_batch", "difference")],
    )
    def test_materializing_union_difference_batch_matches_scalar(
        self, mode, batch_name, scalar_name
    ):
        """The PR 5 satellite: materializing union/difference fan-outs,
        cycle-identical to the per-op stream for every representation
        pair (same dispatch path as intersect_batch)."""
        ctx_b, ids_b = _mixed_context(mode=mode, trace=True)
        ctx_s, ids_s = _mixed_context(mode=mode, trace=True)
        a_b, a_s = ids_b[8], ids_s[8]
        ctx_b.begin_task()
        got_ids = getattr(ctx_b, batch_name)(a_b, ids_b[:20])
        ctx_s.begin_task()
        scalar_op = getattr(ctx_s, scalar_name)
        exp_ids = [scalar_op(a_s, b) for b in ids_s[:20]]
        assert got_ids == exp_ids
        for g, e in zip(got_ids, exp_ids):
            assert np.array_equal(
                ctx_b.value(g).to_array(), ctx_s.value(e).to_array()
            )
            assert type(ctx_b.value(g)) is type(ctx_s.value(e))
        assert ctx_b.runtime_cycles == ctx_s.runtime_cycles
        assert ctx_b.scu.stats == ctx_s.scu.stats
        assert ctx_b.scu.smb.stats == ctx_s.scu.smb.stats
        assert ctx_b.trace.events == ctx_s.trace.events

    def test_empty_batch_charges_nothing(self):
        ctx, ids = _mixed_context()
        before = ctx.runtime_cycles
        instr = ctx.instruction_count
        assert ctx.intersect_count_batch(ids[0], []).size == 0
        assert ctx.intersect_batch(ids[0], []) == []
        assert ctx.union_batch(ids[0], []) == []
        assert ctx.difference_batch(ids[0], []) == []
        assert ctx.runtime_cycles == before
        assert ctx.instruction_count == instr


@pytest.fixture(scope="module")
def graph():
    return gnp_random_graph(60, 0.2, seed=9)


class TestAlgorithmEquivalence:
    """Rewired algorithms: batch=True == batch=False, cycles included."""

    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_triangles(self, graph, mode):
        runs = []
        for batch in (True, False):
            ctx = make_context(threads=8, mode=mode)
            __, sg = oriented_setgraph(graph, ctx)
            out = triangle_count_oriented(sg, ctx, batch=batch)
            runs.append((out, ctx.runtime_cycles, ctx.opcode_counts()))
        assert runs[0] == runs[1]

    def test_four_clique(self, graph):
        runs = []
        for batch in (True, False):
            ctx = make_context(threads=8)
            __, sg = oriented_setgraph(graph, ctx)
            out = four_clique_count_on(ctx, sg, batch=batch)
            runs.append((out, ctx.runtime_cycles, ctx.opcode_counts()))
        assert runs[0] == runs[1]

    def test_kclique_fast_path(self, graph):
        runs = []
        for batch in (True, False):
            ctx = make_context(threads=8)
            __, sg = oriented_setgraph(graph, ctx)
            out = kclique_count_on(ctx, sg, 4, batch=batch)
            runs.append((out, ctx.runtime_cycles, ctx.opcode_counts()))
        assert runs[0] == runs[1]

    def test_kclique_fast_path_matches_materializing_recursion(self, graph):
        """The counting fast path must not change the functional count
        relative to the full materializing recursion (forced via
        collect, which disables the fast path)."""
        ctx = make_context(threads=4)
        __, sg = oriented_setgraph(graph, ctx)
        fast = kclique_count_on(ctx, sg, 4)
        ctx2 = make_context(threads=4)
        __, sg2 = oriented_setgraph(graph, ctx2)
        listed = kclique_count_on(ctx2, sg2, 4, collect=True)
        assert fast == len(listed)

    @pytest.mark.parametrize("measure", COUNT_MEASURES)
    def test_similarity_batch_scores(self, graph, measure):
        ctx = make_context(threads=4)
        sg = SetGraph.from_graph(graph, ctx)
        vs = list(range(1, 20))
        got = similarity_batch_on(ctx, sg, 0, vs, measure=measure)
        expected = [
            similarity_on(ctx, sg, 0, v, measure=measure) for v in vs
        ]
        assert list(got) == expected

    def test_all_pairs_batch_scores(self, graph):
        pairs = np.asarray(
            [(u, v) for u in range(12) for v in range(u + 1, 14)]
        )
        ctx = make_context(threads=4)
        sg = SetGraph.from_graph(graph, ctx)
        got = all_pairs_similarity_on(ctx, sg, pairs, measure="jaccard")
        ctx2 = make_context(threads=4)
        sg2 = SetGraph.from_graph(graph, ctx2)
        expected = all_pairs_similarity_on(
            ctx2, sg2, pairs, measure="jaccard", batch=False
        )
        assert np.array_equal(got, expected)
        # The batched path hoists the shared |N(u)| fetch per frontier
        # (a deliberate modeled-cost win): it must never issue MORE
        # instructions than the per-pair stream.
        assert ctx.instruction_count < ctx2.instruction_count

    def test_jarvis_patrick_batch_functional(self, graph):
        batched = jarvis_patrick(graph, tau=1.5, threads=4)
        scalar = jarvis_patrick(graph, tau=1.5, threads=4, batch=False)
        assert batched.output == scalar.output

    def test_link_prediction_unchanged(self, graph):
        run = link_prediction_effectiveness(
            graph, removal_fraction=0.15, threads=4, seed=3
        )
        assert run.output.effectiveness >= 0
        assert run.output.predicted_edges > 0


class TestMetadataSlotReuse:
    def test_free_list_recycles_ids_and_records(self):
        ctx = SisaContext(threads=2)
        a = ctx.create_set([1, 2], universe=10)
        b = ctx.create_set([3], universe=10)
        meta_b = ctx.sm.meta(b)
        ctx.free(b)
        c = ctx.create_set([4, 5, 6], universe=10)
        assert c == b  # slot reused
        assert ctx.sm.meta(c) is meta_b  # record recycled in place
        assert ctx.sm.meta(c).cardinality == 3
        assert ctx.cardinality(a) == 2

    def test_freed_id_still_rejected_until_reuse(self):
        from repro.errors import SetError

        ctx = SisaContext(threads=2)
        sid = ctx.create_set([1], universe=10)
        ctx.free(sid)
        with pytest.raises(SetError):
            ctx.cardinality(sid)


class TestTraceOverhead:
    def test_disabled_trace_records_nothing(self):
        ctx, ids = _mixed_context(trace=False)
        ctx.intersect_count_batch(ids[0], ids[1:8])
        ctx.intersect(ids[0], ids[1])
        assert len(ctx.trace) == 0

    def test_enabled_trace_records_batch_ops(self):
        ctx, ids = _mixed_context(trace=True)
        before = len(ctx.trace)
        ctx.intersect_count_batch(ids[0], ids[1:8])
        assert len(ctx.trace) == before + 7
