"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    bipartite_core_graph,
    chung_lu_graph,
    complete_graph,
    cycle_graph,
    gnp_random_graph,
    kronecker_graph,
    near_complete_graph,
    path_graph,
    planted_clique_graph,
    power_law_weights,
    star_graph,
)


class TestGnp:
    def test_determinism(self):
        a = gnp_random_graph(50, 0.2, seed=4)
        b = gnp_random_graph(50, 0.2, seed=4)
        assert a == b

    def test_seed_changes_graph(self):
        a = gnp_random_graph(50, 0.2, seed=4)
        b = gnp_random_graph(50, 0.2, seed=5)
        assert a != b

    def test_p_zero(self):
        assert gnp_random_graph(20, 0.0, seed=0).num_edges == 0

    def test_p_one_is_complete(self):
        g = gnp_random_graph(10, 1.0, seed=0)
        assert g.num_edges == 45

    def test_bad_p_rejected(self):
        with pytest.raises(GraphError):
            gnp_random_graph(10, 1.5)

    def test_edge_count_near_expectation(self):
        g = gnp_random_graph(100, 0.3, seed=7)
        expected = 0.3 * 100 * 99 / 2
        assert abs(g.num_edges - expected) < 0.15 * expected


class TestChungLu:
    def test_reaches_target_edges(self):
        g = chung_lu_graph(300, 2000, seed=1)
        assert abs(g.num_edges - 2000) <= 200

    def test_heavy_tail_when_gamma_small(self):
        heavy = chung_lu_graph(400, 3000, gamma=1.9, seed=2)
        light = chung_lu_graph(400, 3000, gamma=3.5, seed=2)
        assert heavy.max_degree > light.max_degree

    def test_weights_monotone(self):
        w = power_law_weights(100, 2.2)
        assert np.all(np.diff(w) <= 0)

    def test_weights_capped(self):
        w = power_law_weights(1000, 1.9, max_weight_fraction=0.35)
        assert w.max() <= 0.35 * 1000

    def test_bad_gamma_rejected(self):
        with pytest.raises(GraphError):
            power_law_weights(10, 1.0)

    def test_empty_when_no_target(self):
        assert chung_lu_graph(10, 0, seed=0).num_edges == 0


class TestPlantedCliques:
    def test_contains_a_planted_clique(self):
        g = planted_clique_graph(200, 1500, num_cliques=4, clique_size=10, seed=3)
        # At least one vertex has degree >= clique_size - 1.
        assert g.max_degree >= 9

    def test_determinism(self):
        a = planted_clique_graph(100, 800, seed=5)
        b = planted_clique_graph(100, 800, seed=5)
        assert a == b


class TestOtherShapes:
    def test_bipartite_core(self):
        g = bipartite_core_graph(100, 600, core_fraction=0.2, seed=1)
        assert g.num_vertices == 100
        assert g.num_edges > 0

    def test_near_complete(self):
        g = near_complete_graph(30, missing_fraction=0.1, seed=0)
        density = g.num_edges / (30 * 29 / 2)
        assert density > 0.8

    def test_star(self):
        g = star_graph(10)
        assert g.num_edges == 9
        assert g.max_degree == 9

    def test_star_too_small(self):
        with pytest.raises(GraphError):
            star_graph(0)

    def test_complete(self):
        g = complete_graph(7)
        assert g.num_edges == 21

    def test_cycle(self):
        g = cycle_graph(8)
        assert g.num_edges == 8
        assert g.max_degree == 2

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(5)
        assert g.num_edges == 4


class TestKronecker:
    def test_vertex_count(self):
        g = kronecker_graph(8, 8, seed=1)
        assert g.num_vertices == 256

    def test_edge_count_bounded(self):
        g = kronecker_graph(8, 8, seed=1)
        assert 0 < g.num_edges <= 8 * 256

    def test_determinism(self):
        assert kronecker_graph(7, 4, seed=2) == kronecker_graph(7, 4, seed=2)

    def test_bad_scale(self):
        with pytest.raises(GraphError):
            kronecker_graph(0, 4)

    def test_skewed_degrees(self):
        g = kronecker_graph(10, 16, seed=3)
        degrees = g.degrees
        assert degrees.max() > 4 * max(1.0, float(np.median(degrees)))
