"""Streaming dynamic-graph subsystem: equivalence and protocol tests.

Contracts under test:

* any interleaving of insert/remove edge batches leaves a
  ``DynamicSetGraph`` bit-identical (elements, cardinalities,
  algorithm outputs) to a ``SetGraph`` rebuilt from the final edge
  list (hypothesis property),
* incremental triangle/clustering/link-prediction maintenance equals
  full recompute on every tested edge-stream workload,
* snapshots stay frozen at their capture epoch while the live graph
  mutates,
* representation re-decision converts neighborhoods crossing the
  density thresholds (and never on the ``cpu-set`` host baseline),
* stream generators are deterministic and conserve the edge set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.common import make_context, oriented_setgraph
from repro.algorithms.triangles import triangle_count_oriented
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import gnp_random_graph
from repro.graphs.streams import (
    EdgeBatch,
    canonical_edges,
    churn_stream,
    insert_only_stream,
    sliding_window_stream,
)
from repro.runtime.setgraph import SetGraph
from repro.sets.base import Representation
from repro.streaming import (
    DynamicSetGraph,
    IncrementalClusteringCoefficients,
    IncrementalLinkPrediction,
    IncrementalTriangleCount,
    StreamingEngine,
    clustering_coefficients_from_counts,
    local_triangle_counts,
    watchlist_scores,
)
from repro.streaming.incremental import degrees_of

N = 24

edge_strategy = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
)
batch_strategy = st.lists(
    st.tuples(st.booleans(), st.lists(edge_strategy, max_size=8)),
    min_size=1,
    max_size=6,
)


def _rebuilt(dyn, mode="sisa", t=0.4):
    """A SetGraph rebuilt from the dynamic graph's final edge list."""
    ctx = make_context(threads=4, mode=mode)
    graph = CSRGraph.from_edges(dyn.num_vertices, dyn.edge_array())
    return ctx, SetGraph.from_graph(graph, ctx, t=t)


class TestRebuildEquivalence:
    @given(script=batch_strategy)
    @settings(max_examples=40, deadline=None)
    def test_interleavings_match_rebuilt_setgraph(self, script):
        for mode in ("sisa", "cpu-set"):
            ctx = make_context(threads=4, mode=mode)
            dyn = DynamicSetGraph.from_graph(
                gnp_random_graph(N, 0.2, seed=3), ctx
            )
            for is_insert, edges in script:
                arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                if is_insert:
                    batch = EdgeBatch(
                        insertions=arr, deletions=np.empty((0, 2), np.int64)
                    )
                else:
                    batch = EdgeBatch(
                        insertions=np.empty((0, 2), np.int64), deletions=arr
                    )
                dyn.apply_batch(batch)
            ref_ctx, ref_sg = _rebuilt(dyn, mode=mode)
            # Bit-identical elements and counts, vertex by vertex.
            for v in range(dyn.num_vertices):
                live = ctx.value(dyn.neighborhood(v))
                ref = ref_ctx.value(ref_sg.neighborhood(v))
                assert np.array_equal(live.to_array(), ref.to_array())
                assert (
                    ctx.sm.meta(dyn.neighborhood(v)).cardinality
                    == ref_ctx.sm.meta(ref_sg.neighborhood(v)).cardinality
                )
            # Identical algorithm outputs on the evolved vs rebuilt view.
            assert np.array_equal(
                local_triangle_counts(dyn, ctx),
                local_triangle_counts(ref_sg, ref_ctx),
            )

    def test_oriented_algorithms_see_the_final_state(self):
        graph = gnp_random_graph(40, 0.15, seed=8)
        ctx = make_context(threads=4)
        dyn = DynamicSetGraph.from_graph(graph, ctx)
        rng = np.random.default_rng(2)
        edges = graph.edge_array()
        drop = edges[rng.choice(edges.shape[0], size=12, replace=False)]
        add = np.asarray([[0, 39], [1, 38], [2, 37], [5, 31]], dtype=np.int64)
        dyn.apply_batch(EdgeBatch(insertions=add, deletions=drop))

        final = CSRGraph.from_edges(dyn.num_vertices, dyn.edge_array())
        ref_ctx = make_context(threads=4)
        __, ref_sg = oriented_setgraph(final, ref_ctx)
        expected = triangle_count_oriented(ref_sg, ref_ctx)
        assert IncrementalTriangleCount(dyn).count == expected


class TestMaintainers:
    @pytest.mark.parametrize(
        "make_stream",
        [
            lambda g: insert_only_stream(g, batch_size=9, initial_fraction=0.6, seed=4),
            lambda g: sliding_window_stream(g, window=60, batch_size=7, seed=4),
            lambda g: churn_stream(g, churn=0.05, num_batches=6, seed=4),
        ],
        ids=["insert-only", "sliding-window", "churn"],
    )
    @pytest.mark.parametrize("measure", ["jaccard", "adamic_adar"])
    def test_incremental_equals_full_recompute(self, make_stream, measure):
        stream = make_stream(gnp_random_graph(50, 0.12, seed=6))
        ctx = make_context(threads=8)
        dyn = DynamicSetGraph.from_graph(stream.initial_graph(), ctx)
        pairs = np.asarray(
            [[u, v] for u in range(0, 18) for v in range(u + 1, 18)],
            dtype=np.int64,
        )
        tri = IncrementalTriangleCount(dyn)
        clus = IncrementalClusteringCoefficients(dyn)
        lp = IncrementalLinkPrediction(dyn, pairs, measure=measure)
        engine = StreamingEngine(dyn, [tri, clus, lp])
        for batch in stream.batches:
            engine.step(batch)
            ref_ctx, ref_sg = _rebuilt(dyn)
            counts = local_triangle_counts(ref_sg, ref_ctx)
            assert tri.count == int(counts.sum()) // 3
            assert np.array_equal(clus.counts, counts)
            assert clus.triangle_count == tri.count
            assert np.array_equal(
                clus.coefficients(dyn),
                clustering_coefficients_from_counts(counts, degrees_of(ref_sg)),
            )
            assert np.array_equal(
                lp.scores,
                watchlist_scores(ref_sg, ref_ctx, lp.pairs, measure=measure),
            )
        # Final edge set matches the stream's own bookkeeping.
        assert np.array_equal(dyn.edge_array(), stream.final_edges())

    def test_step_reports_effective_updates(self):
        ctx = make_context(threads=2)
        dyn = DynamicSetGraph.from_graph(
            CSRGraph.from_edges(6, [(0, 1), (1, 2)]), ctx
        )
        engine = StreamingEngine(dyn)
        result = engine.step(
            EdgeBatch(
                insertions=np.asarray([[0, 1], [2, 3], [3, 3], [3, 2]]),
                deletions=np.asarray([[1, 2], [4, 5]]),
            )
        )
        assert result.deleted.tolist() == [[1, 2]]
        assert result.inserted.tolist() == [[2, 3]]
        assert result.touched.tolist() == [1, 2, 3]
        assert result.epoch == 1


class TestSnapshots:
    def test_snapshot_is_frozen_and_consistent(self):
        ctx = make_context(threads=4)
        graph = gnp_random_graph(30, 0.2, seed=12)
        dyn = DynamicSetGraph.from_graph(graph, ctx)
        snap = dyn.snapshot()
        before = local_triangle_counts(snap, ctx).copy()
        live_edges_before = dyn.edge_array()

        rng = np.random.default_rng(0)
        edges = graph.edge_array()
        drop = edges[rng.choice(edges.shape[0], size=15, replace=False)]
        dyn.apply_batch(
            EdgeBatch(insertions=np.asarray([[0, 29]]), deletions=drop)
        )
        assert dyn.epoch == 1 and snap.epoch == 0
        # The live graph changed; the snapshot did not.
        assert not np.array_equal(dyn.edge_array(), live_edges_before)
        assert np.array_equal(snap.edge_array(), live_edges_before)
        assert np.array_equal(local_triangle_counts(snap, ctx), before)
        snap.release()
        snap.release()  # idempotent

    def test_snapshot_charges_metadata_only(self):
        ctx = make_context(threads=1)
        dyn = DynamicSetGraph.from_graph(gnp_random_graph(20, 0.3, seed=1), ctx)
        before = ctx.runtime_cycles
        dyn.snapshot()
        # One SM-entry write per set: far below one CREATE's data write.
        assert 0 < ctx.runtime_cycles - before <= ctx.hw.scu_dispatch_cycles * 20


class TestRepresentationRedecision:
    def test_sa_converts_to_db_when_dense(self):
        # Universe 64, W=32: the SA->DB threshold is degree >= 2.
        ctx = make_context(threads=1)
        dyn = DynamicSetGraph.from_graph(
            CSRGraph.from_edges(64, [(0, 1)]), ctx, t=0.0
        )
        assert (
            ctx.sm.meta(dyn.neighborhood(0)).representation
            is Representation.SPARSE_SORTED
        )
        dyn.apply_batch(
            EdgeBatch(
                insertions=np.asarray([[0, 2], [0, 3]]),
                deletions=np.empty((0, 2), np.int64),
            )
        )
        assert dyn.dense_mask[0]
        assert (
            ctx.sm.meta(dyn.neighborhood(0)).representation
            is Representation.DENSE
        )
        # Dropping far below the threshold converts back (hysteresis).
        dyn.apply_batch(
            EdgeBatch(
                insertions=np.empty((0, 2), np.int64),
                deletions=np.asarray([[0, 1], [0, 2], [0, 3]]),
            )
        )
        assert not dyn.dense_mask[0]
        assert (
            ctx.sm.meta(dyn.neighborhood(0)).representation
            is Representation.SPARSE_SORTED
        )

    def test_cpu_set_mode_never_converts(self):
        ctx = make_context(threads=1, mode="cpu-set")
        dyn = DynamicSetGraph.from_graph(
            CSRGraph.from_edges(64, [(0, 1)]), ctx
        )
        dyn.apply_batch(
            EdgeBatch(
                insertions=np.asarray([[0, i] for i in range(2, 20)]),
                deletions=np.empty((0, 2), np.int64),
            )
        )
        assert not dyn.dense_mask.any()
        assert (
            ctx.sm.meta(dyn.neighborhood(0)).representation
            is Representation.SPARSE_SORTED
        )


class TestStreams:
    def test_streams_are_deterministic(self):
        g = gnp_random_graph(40, 0.2, seed=5)
        a = churn_stream(g, churn=0.02, num_batches=4, seed=9)
        b = churn_stream(g, churn=0.02, num_batches=4, seed=9)
        for x, y in zip(a.batches, b.batches):
            assert np.array_equal(x.insertions, y.insertions)
            assert np.array_equal(x.deletions, y.deletions)

    def test_insert_only_reaches_full_graph(self):
        g = gnp_random_graph(30, 0.2, seed=7)
        stream = insert_only_stream(g, batch_size=10, initial_fraction=0.3, seed=2)
        assert np.array_equal(
            stream.final_edges(), CSRGraph.from_edges(30, g.edge_array()).edge_array()
        )

    def test_sliding_window_keeps_window_edges(self):
        g = gnp_random_graph(30, 0.3, seed=7)
        window = 40
        stream = sliding_window_stream(g, window=window, batch_size=12, seed=2)
        assert stream.final_edges().shape[0] == window

    def test_churn_preserves_edge_count(self):
        g = gnp_random_graph(40, 0.2, seed=5)
        stream = churn_stream(g, churn=0.03, num_batches=5, seed=1)
        assert stream.final_edges().shape[0] == g.num_edges

    def test_canonical_edges(self):
        out = canonical_edges(
            np.asarray([[3, 1], [1, 3], [2, 2], [0, 4]]), 5
        )
        assert out.tolist() == [[1, 3], [0, 4]]
