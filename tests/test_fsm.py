"""Tests for frequent subgraph mining."""

import pytest

from repro.algorithms.fsm import canonical_key, frequent_subgraphs
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import complete_graph, gnp_random_graph, path_graph


class TestCanonicalKey:
    def test_isomorphic_patterns_share_key(self):
        a = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        b = CSRGraph.from_edges(3, [(2, 1), (0, 1)])
        c = CSRGraph.from_edges(3, [(0, 2), (2, 1)])
        assert canonical_key(a) == canonical_key(b) == canonical_key(c)

    def test_distinct_patterns_differ(self):
        path = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        triangle = complete_graph(3)
        assert canonical_key(path) != canonical_key(triangle)

    def test_size_distinguishes(self):
        assert canonical_key(path_graph(3)) != canonical_key(path_graph(4))


class TestFsm:
    def test_dense_graph_has_frequent_triangle(self):
        g = gnp_random_graph(25, 0.5, seed=1)
        run = frequent_subgraphs(g, sigma=0.5, max_size=3, threads=2)
        result = run.output
        assert 2 in result.frequent  # the single edge is frequent
        assert 3 in result.frequent
        keys = {canonical_key(p) for p in result.frequent[3]}
        assert canonical_key(complete_graph(3)) in keys

    def test_sparse_graph_stops_early(self):
        g = path_graph(30)
        run = frequent_subgraphs(g, sigma=5.0, max_size=3, threads=1)
        # Threshold sigma*n = 150 embeddings; a 30-path has 58 edge
        # embeddings, so nothing is frequent.
        assert run.output.total_frequent == 0

    def test_supports_recorded(self):
        g = complete_graph(6)
        run = frequent_subgraphs(g, sigma=0.1, max_size=3, threads=1)
        edge_key = canonical_key(CSRGraph.from_edges(2, [(0, 1)]))
        assert run.output.supports[edge_key] > 0

    def test_invalid_sigma(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            frequent_subgraphs(complete_graph(4), sigma=0.0)

    def test_modes_agree(self):
        g = gnp_random_graph(16, 0.4, seed=3)
        a = frequent_subgraphs(g, sigma=0.3, max_size=3, threads=2, mode="sisa")
        b = frequent_subgraphs(g, sigma=0.3, max_size=3, threads=2, mode="cpu-set")
        assert set(a.output.supports) == set(b.output.supports)
        assert a.output.supports == b.output.supports
