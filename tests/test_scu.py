"""Unit tests for the SCU dispatch logic and performance models."""

import pytest

from repro.errors import IsaError
from repro.hw.config import HardwareConfig
from repro.isa.metadata import SetMetadataTable
from repro.isa.opcodes import Opcode, SetOp, opcode_uses_pum
from repro.isa.perfmodel import (
    choose_intersection_variant,
    predict_galloping,
    predict_streaming,
)
from repro.isa.scu import Scu
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

UNIVERSE = 4096


@pytest.fixture
def table():
    return SetMetadataTable()


def register_sa(table, size, *, sorted_=True):
    elements = list(range(size))
    value = SparseArray(elements, UNIVERSE, sorted_=None)
    if not sorted_:
        value = value.shuffled(seed=1)
    return table.register(value), table


def register_db(table, size):
    return table.register(DenseBitvector.from_elements(range(size), UNIVERSE))


class TestPerfModel:
    def test_streaming_model_formula(self):
        hw = HardwareConfig()
        cycles = predict_streaming(hw, 100, 200)
        expected = hw.dram_latency_cycles + (hw.word_bits / 8) * 200 / hw.stream_bytes_per_cycle
        assert cycles == pytest.approx(expected)

    def test_galloping_model_grows_with_small_side(self):
        hw = HardwareConfig()
        assert predict_galloping(hw, 10, 10_000) < predict_galloping(
            hw, 100, 10_000
        )

    def test_auto_picks_gallop_for_skew(self):
        hw = HardwareConfig()
        choice = choose_intersection_variant(hw, 4, 1_000_000)
        assert choice.variant == "galloping"

    def test_auto_picks_merge_for_balance(self):
        hw = HardwareConfig()
        choice = choose_intersection_variant(hw, 5000, 5000)
        assert choice.variant == "merge"

    def test_threshold_override(self):
        hw = HardwareConfig()
        # Ratio 10 with threshold 100: stay with merge.
        assert (
            choose_intersection_variant(hw, 10, 100, gallop_threshold=100).variant
            == "merge"
        )
        # Same sizes with threshold 5: gallop.
        assert (
            choose_intersection_variant(hw, 10, 100, gallop_threshold=5).variant
            == "galloping"
        )


class TestDispatch:
    def test_db_pair_goes_to_pum(self, table):
        scu = Scu(HardwareConfig())
        a = register_db(table, 50)
        b = register_db(table, 80)
        dispatch = scu.dispatch_binary(
            SetOp.INTERSECT, table.meta(a), table.meta(b)
        )
        assert dispatch.backend == "pum"
        assert dispatch.opcode == Opcode.INTERSECT_DB_DB
        assert opcode_uses_pum(dispatch.opcode)
        assert scu.stats.pum_ops == 1

    def test_mixed_pair_goes_to_pnm(self, table):
        scu = Scu(HardwareConfig())
        a, __ = register_sa(table, 50)
        b = register_db(table, 80)
        dispatch = scu.dispatch_binary(
            SetOp.INTERSECT, table.meta(a), table.meta(b)
        )
        assert dispatch.backend == "pnm"
        assert dispatch.opcode == Opcode.INTERSECT_SA_DB

    def test_sparse_pair_picks_variant(self, table):
        scu = Scu(HardwareConfig())
        a, __ = register_sa(table, 4)
        b, __ = register_sa(table, 4000)
        dispatch = scu.dispatch_binary(
            SetOp.INTERSECT, table.meta(a), table.meta(b)
        )
        assert dispatch.variant == "galloping"
        assert dispatch.opcode == Opcode.INTERSECT_SA_SA_GALLOP

    def test_unsorted_large_side_forces_merge(self, table):
        scu = Scu(HardwareConfig())
        a, __ = register_sa(table, 4)
        big = SparseArray(list(range(4000)), UNIVERSE).shuffled(seed=2)
        b = table.register(big)
        dispatch = scu.dispatch_binary(
            SetOp.INTERSECT, table.meta(a), table.meta(b)
        )
        assert dispatch.variant == "merge"

    def test_union_never_gallops(self, table):
        scu = Scu(HardwareConfig())
        a, __ = register_sa(table, 4)
        b, __ = register_sa(table, 4000)
        dispatch = scu.dispatch_binary(SetOp.UNION, table.meta(a), table.meta(b))
        assert dispatch.opcode == Opcode.UNION_SA_SA_MERGE

    def test_difference_db_pair_costs_two_insitu_ops(self, table):
        hw = HardwareConfig()
        scu = Scu(hw)
        a = register_db(table, 10)
        b = register_db(table, 10)
        inter = scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        diff = scu.dispatch_binary(SetOp.DIFFERENCE, table.meta(a), table.meta(b))
        assert diff.cost.latency_cycles > inter.cost.latency_cycles

    def test_host_fallback_routes_to_host(self, table):
        scu = Scu(HardwareConfig(), host_fallback=True)
        a = register_db(table, 10)
        b = register_db(table, 10)
        dispatch = scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        assert dispatch.backend == "host"
        assert scu.stats.host_ops == 1
        assert scu.stats.pum_ops == 0

    def test_invalid_op_rejected(self, table):
        scu = Scu(HardwareConfig())
        a = register_db(table, 10)
        b = register_db(table, 10)
        with pytest.raises(IsaError):
            scu.dispatch_binary(SetOp.MEMBER, table.meta(a), table.meta(b))

    def test_cardinality_is_metadata_only(self, table):
        scu = Scu(HardwareConfig())
        a = register_db(table, 10)
        dispatch = scu.dispatch_cardinality(table.meta(a))
        assert dispatch.backend == "scu"
        assert dispatch.cost.memory_bytes == 0

    def test_element_update_db_vs_sa(self, table):
        scu = Scu(HardwareConfig())
        a = register_db(table, 10)
        b, __ = register_sa(table, 1000)
        db_up = scu.dispatch_element_update(table.meta(a), insert=True)
        sa_up = scu.dispatch_element_update(table.meta(b), insert=True)
        assert db_up.opcode == Opcode.INSERT_DB
        assert sa_up.opcode == Opcode.INSERT_SA
        assert sa_up.cost.memory_bytes > db_up.cost.memory_bytes

    def test_smb_caching_reduces_cost(self, table):
        hw = HardwareConfig()
        scu = Scu(hw)
        a = register_db(table, 10)
        b = register_db(table, 10)
        first = scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        second = scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        assert second.cost.latency_cycles < first.cost.latency_cycles

    def test_smb_disabled_always_misses(self, table):
        scu = Scu(HardwareConfig(), smb_enabled=False)
        a = register_db(table, 10)
        b = register_db(table, 10)
        scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        assert scu.smb.stats.hits == 0

    def test_opcode_counters(self, table):
        scu = Scu(HardwareConfig())
        a = register_db(table, 10)
        b = register_db(table, 10)
        scu.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        scu.dispatch_cardinality(table.meta(a))
        assert scu.stats.instructions == 2
        assert scu.stats.by_opcode[Opcode.INTERSECT_DB_DB] == 1


class TestMetadataTable:
    def test_register_and_lookup(self, table):
        sid = table.register(SparseArray([1, 2], UNIVERSE))
        assert table.meta(sid).cardinality == 2
        assert sid in table

    def test_update_changes_representation(self, table):
        sid = table.register(SparseArray([1, 2], UNIVERSE))
        table.update(sid, DenseBitvector.from_elements([1, 2, 3], UNIVERSE))
        assert table.meta(sid).is_dense
        assert table.meta(sid).cardinality == 3

    def test_delete(self, table):
        sid = table.register(SparseArray([1], UNIVERSE))
        table.delete(sid)
        assert sid not in table
        from repro.errors import SetError

        with pytest.raises(SetError):
            table.meta(sid)

    def test_unique_ids(self, table):
        ids = {table.register(SparseArray([i], UNIVERSE)) for i in range(10)}
        assert len(ids) == 10
