"""Unit tests for the SisaContext runtime."""

import numpy as np
import pytest

from repro.errors import ConfigError, SetError
from repro.runtime.context import SisaContext


@pytest.fixture
def ctx():
    return SisaContext(threads=4, mode="sisa")


class TestLifecycle:
    def test_create_and_read(self, ctx):
        sid = ctx.create_set([3, 1, 2], universe=10)
        assert ctx.cardinality(sid) == 3
        assert list(ctx.elements(sid)) == [1, 2, 3]

    def test_create_dense(self, ctx):
        sid = ctx.create_set([1, 2], universe=10, dense=True)
        assert ctx.sm.meta(sid).is_dense

    def test_cpu_mode_honors_dense_auxiliaries(self):
        ctx = SisaContext(threads=2, mode="cpu-set")
        sid = ctx.create_set([1], universe=10, dense=True)
        assert ctx.sm.meta(sid).is_dense

    def test_free(self, ctx):
        sid = ctx.create_set([1], universe=10)
        ctx.free(sid)
        with pytest.raises(SetError):
            ctx.cardinality(sid)

    def test_clone_independent(self, ctx):
        sid = ctx.create_set([1, 2], universe=10, dense=True)
        copy = ctx.clone(sid)
        ctx.insert(copy, 5)
        assert ctx.cardinality(sid) == 2
        assert ctx.cardinality(copy) == 3

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            SisaContext(mode="gpu")


class TestOperations:
    def test_intersect(self, ctx):
        a = ctx.create_set([1, 2, 3], universe=10)
        b = ctx.create_set([2, 3, 4], universe=10)
        c = ctx.intersect(a, b)
        assert list(ctx.elements(c)) == [2, 3]

    def test_union(self, ctx):
        a = ctx.create_set([1], universe=10)
        b = ctx.create_set([2], universe=10)
        assert ctx.cardinality(ctx.union(a, b)) == 2

    def test_difference(self, ctx):
        a = ctx.create_set([1, 2, 3], universe=10)
        b = ctx.create_set([2], universe=10)
        assert list(ctx.elements(ctx.difference(a, b))) == [1, 3]

    def test_counts_match_materialized(self, ctx):
        a = ctx.create_set([1, 2, 3, 7], universe=10, dense=True)
        b = ctx.create_set([2, 3, 9], universe=10, dense=True)
        assert ctx.intersect_count(a, b) == 2
        assert ctx.union_count(a, b) == 5
        assert ctx.difference_count(a, b) == 2

    def test_in_place_variants(self, ctx):
        a = ctx.create_set([1, 2, 3], universe=10)
        b = ctx.create_set([2, 3], universe=10)
        ctx.intersect_into(a, b)
        assert list(ctx.elements(a)) == [2, 3]
        ctx.union_into(a, ctx.create_set([9], universe=10))
        assert 9 in list(ctx.elements(a))
        ctx.difference_into(a, b)
        assert list(ctx.elements(a)) == [9]

    def test_member(self, ctx):
        a = ctx.create_set([5], universe=10)
        assert ctx.member(a, 5)
        assert not ctx.member(a, 6)

    def test_insert_remove(self, ctx):
        a = ctx.create_set([], universe=10, dense=True)
        ctx.insert(a, 4)
        assert ctx.member(a, 4)
        ctx.remove(a, 4)
        assert not ctx.member(a, 4)

    def test_mixed_representation_ops(self, ctx):
        a = ctx.create_set([1, 2, 3], universe=10, dense=True)
        b = ctx.create_set([2, 3, 4], universe=10, dense=False)
        assert ctx.intersect_count(a, b) == 2


class TestTiming:
    def test_cycles_accumulate(self, ctx):
        a = ctx.create_set(range(100), universe=1000)
        b = ctx.create_set(range(50, 150), universe=1000)
        before = ctx.runtime_cycles
        ctx.intersect_count(a, b)
        assert ctx.runtime_cycles > before

    def test_instruction_counting(self, ctx):
        a = ctx.create_set([1], universe=10)
        b = ctx.create_set([2], universe=10)
        base = ctx.instruction_count
        ctx.intersect_count(a, b)
        ctx.cardinality(a)
        assert ctx.instruction_count == base + 2

    def test_deterministic(self):
        def run():
            ctx = SisaContext(threads=4, mode="sisa")
            a = ctx.create_set(range(50), universe=100, dense=True)
            b = ctx.create_set(range(25, 75), universe=100, dense=True)
            for __ in range(10):
                ctx.begin_task()
                ctx.intersect_count(a, b)
            return ctx.runtime_cycles

        assert run() == run()

    def test_more_threads_not_slower(self):
        def run(threads):
            ctx = SisaContext(threads=threads, mode="sisa")
            sets = [
                ctx.create_set(range(i, i + 60), universe=200) for i in range(40)
            ]
            for i in range(40):
                ctx.begin_task()
                ctx.intersect_count(sets[i], sets[(i + 1) % 40])
            return ctx.runtime_cycles

        assert run(8) <= run(1)

    def test_trace_records_events(self):
        ctx = SisaContext(threads=1, mode="sisa", trace=True)
        a = ctx.create_set([1, 2], universe=10)
        b = ctx.create_set([2, 3], universe=10)
        ctx.intersect_count(a, b)
        assert len(ctx.trace) == 1
        event = ctx.trace.events[0]
        assert event.size_a == 2
        assert event.size_b == 2
        assert event.output_size == 1

    def test_report_stall_fractions(self, ctx):
        ctx.begin_task()
        a = ctx.create_set(range(64), universe=256)
        b = ctx.create_set(range(32, 96), universe=256)
        ctx.intersect(a, b)
        report = ctx.report()
        assert len(report.stall_fractions) == 4
        assert all(0.0 <= f <= 1.0 for f in report.stall_fractions)
