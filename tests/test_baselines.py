"""Tests for the non-set baselines and the paradigm frameworks:
functional agreement with the set-centric implementations, plus the
expected timing relationships."""

import networkx as nx
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.bron_kerbosch import maximal_cliques
from repro.algorithms.clustering import jarvis_patrick
from repro.algorithms.kclique import four_clique_count, kclique_count
from repro.algorithms.subgraph_iso import star_pattern, subgraph_isomorphism
from repro.algorithms.triangles import triangle_count
from repro.baselines.frameworks import (
    peregrine_like_kclique,
    peregrine_like_maximal_cliques,
    rstream_like_kclique,
)
from repro.baselines.nonset import (
    bfs_nonset,
    four_clique_count_nonset,
    jarvis_patrick_nonset,
    kclique_count_nonset,
    kclique_star_nonset,
    maximal_cliques_nonset,
    subgraph_isomorphism_nonset,
    triangle_count_nonset,
)
from repro.algorithms.clique_star import kclique_star
from repro.graphs.generators import complete_graph, gnp_random_graph

from conftest import to_networkx


class TestFunctionalAgreement:
    def test_triangles(self, random_graph):
        assert (
            triangle_count_nonset(random_graph, threads=4).output
            == triangle_count(random_graph, threads=4).output
        )

    def test_maximal_cliques(self, random_graph):
        a = maximal_cliques_nonset(random_graph, threads=4).output
        b = maximal_cliques(random_graph, threads=4).output
        assert sorted(a) == sorted(b)

    @pytest.mark.parametrize("k", [3, 4])
    def test_kclique(self, random_graph, k):
        assert (
            kclique_count_nonset(random_graph, k, threads=4).output
            == kclique_count(random_graph, k, threads=4).output
        )

    def test_four_clique(self, dense_graph):
        assert (
            four_clique_count_nonset(dense_graph, threads=4).output
            == four_clique_count(dense_graph, threads=4).output
        )

    def test_kclique_star(self, dense_graph):
        a = kclique_star_nonset(dense_graph, 3, threads=2).output
        b = kclique_star(dense_graph, 3, variant="from_k1", threads=2).output
        assert a == b

    def test_subgraph_isomorphism(self):
        g = gnp_random_graph(20, 0.3, seed=6)
        pattern = star_pattern(2)
        assert (
            subgraph_isomorphism_nonset(g, pattern, threads=2).output
            == subgraph_isomorphism(g, pattern, threads=2).output
        )

    def test_clustering(self, random_graph):
        a = jarvis_patrick_nonset(random_graph, tau=2.0, threads=4).output
        b = jarvis_patrick(random_graph, tau=2.0, threads=4).output["edges"]
        assert a == b

    def test_bfs_depths(self, random_graph):
        nxg = to_networkx(random_graph)
        expected = nx.single_source_shortest_path_length(nxg, 0)
        parent = bfs_nonset(random_graph, 0, threads=4).output
        for v in range(random_graph.num_vertices):
            assert (parent[v] != -1) == (v in expected)


class TestFrameworks:
    def test_peregrine_kclique_counts(self, dense_graph):
        expected = kclique_count(dense_graph, 3, threads=2).output
        run = peregrine_like_kclique(dense_graph, 3, threads=2)
        assert run.output == expected

    def test_rstream_kclique_counts(self, dense_graph):
        expected = kclique_count(dense_graph, 4, threads=2).output
        run = rstream_like_kclique(dense_graph, 4, threads=2)
        assert run.output == expected

    def test_peregrine_maximal_cliques(self):
        g = gnp_random_graph(16, 0.4, seed=8)
        expected = sorted(maximal_cliques(g, threads=2).output)
        run = peregrine_like_maximal_cliques(g, threads=2)
        assert sorted(run.output) == expected

    def test_paradigms_much_slower_than_sisa(self, dense_graph):
        """The paper: 10-100x slower than SISA (and >100x for joins)."""
        sisa = kclique_count(dense_graph, 4, threads=8)
        peregrine = peregrine_like_kclique(dense_graph, 4, threads=8)
        rstream = rstream_like_kclique(dense_graph, 4, threads=8)
        assert peregrine.runtime_cycles > 5 * sisa.runtime_cycles
        assert rstream.runtime_cycles > 5 * sisa.runtime_cycles


class TestTimingShape:
    """The Fig. 6 ordering on a heavy-tailed graph at full parallelism."""

    @pytest.fixture(scope="class")
    def heavy(self):
        from repro.graphs.generators import planted_clique_graph

        return planted_clique_graph(
            400, 8000, num_cliques=6, clique_size=14, gamma=1.9, seed=10
        )

    def test_sisa_beats_cpu_set(self, heavy):
        sisa = kclique_count(heavy, 4, threads=32, max_patterns=20_000)
        cpu = kclique_count(
            heavy, 4, threads=32, mode="cpu-set", max_patterns=20_000
        )
        assert sisa.runtime_cycles < cpu.runtime_cycles

    def test_sisa_beats_nonset(self, heavy):
        sisa = kclique_count(heavy, 4, threads=32, max_patterns=20_000)
        nonset = kclique_count_nonset(heavy, 4, threads=32, max_patterns=20_000)
        assert sisa.runtime_cycles < nonset.runtime_cycles

    def test_clustering_nonset_beats_cpu_set(self, heavy):
        """The paper's nuance: for simple clustering the tuned non-set
        baseline outperforms the set-based variant, while SISA wins."""
        sisa = jarvis_patrick(heavy, tau=3.0, threads=32)
        cpu = jarvis_patrick(heavy, tau=3.0, threads=32, mode="cpu-set")
        nonset = jarvis_patrick_nonset(heavy, tau=3.0, threads=32)
        assert sisa.runtime_cycles < nonset.runtime_cycles < cpu.runtime_cycles
