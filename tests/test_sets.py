"""Unit tests for the SA and DB set representations."""

import numpy as np
import pytest

from repro.errors import SetError
from repro.sets.base import Representation
from repro.sets.convert import to_dense, to_sparse
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray


class TestSparseArray:
    def test_sorted_detection(self):
        s = SparseArray([1, 3, 5], universe=10)
        assert s.representation is Representation.SPARSE_SORTED
        assert s.is_sorted

    def test_unsorted_detection(self):
        s = SparseArray([5, 1, 3], universe=10)
        assert s.representation is Representation.SPARSE_UNSORTED
        assert list(s.to_array()) == [1, 3, 5]

    def test_cardinality(self):
        assert SparseArray([1, 2, 3], universe=5).cardinality == 3
        assert len(SparseArray.empty(5)) == 0

    def test_membership(self):
        s = SparseArray([2, 4, 6], universe=10)
        assert s.contains(4)
        assert not s.contains(5)
        assert 4 in s
        assert "x" not in s

    def test_membership_unsorted(self):
        s = SparseArray([6, 2, 4], universe=10)
        assert s.contains(4)
        assert not s.contains(3)

    def test_out_of_universe_rejected(self):
        with pytest.raises(SetError):
            SparseArray([10], universe=10)
        with pytest.raises(SetError):
            SparseArray([-1], universe=10)

    def test_duplicates_rejected(self):
        with pytest.raises(SetError):
            SparseArray([1, 1], universe=5)

    def test_storage_bits(self):
        assert SparseArray([1, 2, 3], universe=100).storage_bits == 96

    def test_with_element(self):
        s = SparseArray([1, 5], universe=10)
        s2 = s.with_element(3)
        assert list(s2.to_array()) == [1, 3, 5]
        assert list(s.to_array()) == [1, 5]  # original untouched

    def test_with_element_already_present(self):
        s = SparseArray([1], universe=10)
        assert s.with_element(1) is s

    def test_with_element_out_of_range(self):
        with pytest.raises(SetError):
            SparseArray([1], universe=10).with_element(10)

    def test_without_element(self):
        s = SparseArray([1, 3, 5], universe=10)
        assert list(s.without_element(3).to_array()) == [1, 5]

    def test_without_absent_element(self):
        s = SparseArray([1], universe=10)
        assert s.without_element(7) is s

    def test_full(self):
        assert SparseArray.full(5).cardinality == 5

    def test_shuffled_same_elements(self):
        s = SparseArray(list(range(20)), universe=30)
        sh = s.shuffled(seed=3)
        assert sh.to_python_set() == s.to_python_set()

    def test_iteration(self):
        assert list(SparseArray([3, 1], universe=5)) == [1, 3]


class TestDenseBitvector:
    def test_from_elements(self):
        d = DenseBitvector.from_elements([0, 63, 64, 100], universe=128)
        assert d.cardinality == 4
        assert d.contains(63)
        assert d.contains(64)
        assert not d.contains(65)

    def test_to_array_sorted(self):
        d = DenseBitvector.from_elements([100, 5, 64], universe=128)
        assert list(d.to_array()) == [5, 64, 100]

    def test_storage_is_universe_bits(self):
        assert DenseBitvector.empty(1000).storage_bits == 1000

    def test_out_of_universe_rejected(self):
        with pytest.raises(SetError):
            DenseBitvector.from_elements([128], universe=128)

    def test_empty_and_full(self):
        assert DenseBitvector.empty(70).cardinality == 0
        full = DenseBitvector.full(70)
        assert full.cardinality == 70
        assert full.contains(69)

    def test_full_masks_tail_bits(self):
        # Universe 70 needs two words; bits 70..127 must not count.
        full = DenseBitvector.full(70)
        assert int(np.bitwise_count(full.words).sum()) == 70

    def test_with_element(self):
        d = DenseBitvector.empty(100)
        d2 = d.with_element(42)
        assert d2.contains(42)
        assert not d.contains(42)
        assert d2.cardinality == 1

    def test_with_element_idempotent(self):
        d = DenseBitvector.from_elements([1], universe=10)
        assert d.with_element(1) is d

    def test_without_element(self):
        d = DenseBitvector.from_elements([1, 2], universe=10)
        d2 = d.without_element(1)
        assert not d2.contains(1)
        assert d2.cardinality == 1

    def test_without_absent(self):
        d = DenseBitvector.empty(10)
        assert d.without_element(3) is d

    def test_complement(self):
        d = DenseBitvector.from_elements([0, 1], universe=10)
        c = d.complement()
        assert c.cardinality == 8
        assert not c.contains(0)
        assert c.contains(9)

    def test_contains_out_of_range_is_false(self):
        assert not DenseBitvector.empty(10).contains(50)

    def test_wrong_word_count_rejected(self):
        with pytest.raises(SetError):
            DenseBitvector(np.zeros(1, dtype=np.uint64), universe=1000)


class TestConvert:
    def test_round_trip_sparse_dense(self):
        s = SparseArray([3, 7, 11], universe=64)
        d = to_dense(s)
        assert d.representation is Representation.DENSE
        back = to_sparse(d)
        assert back.to_python_set() == s.to_python_set()

    def test_identity_fast_paths(self):
        s = SparseArray([1], universe=8)
        d = DenseBitvector.empty(8)
        assert to_sparse(s) is s
        assert to_dense(d) is d
