"""Unit tests for graph labelings."""

import pytest

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.labels import Labeling


@pytest.fixture
def labeled(small_graph):
    return Labeling(
        small_graph,
        [0, 1, 0, 1, 2, 0],
        edge_labels={(0, 1): 5, (3, 4): 7},
    )


class TestLabeling:
    def test_vertex_labels(self, labeled):
        assert labeled.vertex_label(0) == 0
        assert labeled.vertex_label(4) == 2

    def test_edge_labels_symmetric(self, labeled):
        assert labeled.edge_label(0, 1) == 5
        assert labeled.edge_label(1, 0) == 5

    def test_edge_label_default(self, labeled):
        assert labeled.edge_label(0, 2) == 0
        assert labeled.edge_label(0, 2, default=-1) == -1

    def test_num_vertex_labels(self, labeled):
        assert labeled.num_vertex_labels == 3

    def test_wrong_length_rejected(self, small_graph):
        with pytest.raises(GraphError):
            Labeling(small_graph, [0, 1])

    def test_label_on_non_edge_rejected(self, small_graph):
        with pytest.raises(GraphError):
            Labeling(small_graph, [0] * 6, edge_labels={(0, 4): 1})

    def test_random_deterministic(self, small_graph):
        a = Labeling.random(small_graph, 3, seed=1)
        b = Labeling.random(small_graph, 3, seed=1)
        assert list(a.vertex_labels) == list(b.vertex_labels)

    def test_random_within_range(self, small_graph):
        lab = Labeling.random(small_graph, 3, seed=2)
        assert set(lab.vertex_labels) <= {0, 1, 2}
