"""Tests for the theoretical analysis (Table 6, Observations 7.1-7.3)
and the speedup summaries."""

import math

import pytest

from repro.analysis.summaries import summarize_speedups
from repro.analysis.theory import (
    bound_kclique_merge,
    bound_mc_degeneracy,
    bound_tc_gallop,
    bound_tc_merge,
    check_observation_71,
    check_observation_72,
    check_observation_73,
    graph_parameters,
    merge_work_measured,
)
from repro.graphs.generators import (
    chung_lu_graph,
    complete_graph,
    gnp_random_graph,
    star_graph,
)


class TestObservations:
    @pytest.mark.parametrize("seed", range(4))
    def test_observation_71(self, seed):
        g = gnp_random_graph(60, 0.2, seed=seed)
        lhs, rhs = check_observation_71(g)
        assert lhs <= rhs

    @pytest.mark.parametrize("seed", range(4))
    def test_observation_72(self, seed):
        g = chung_lu_graph(200, 1500, seed=seed)
        lhs, rhs = check_observation_72(g)
        assert lhs <= rhs

    @pytest.mark.parametrize("seed", range(4))
    def test_observation_73(self, seed):
        g = gnp_random_graph(60, 0.25, seed=seed)
        lhs, rhs = check_observation_73(g)
        assert lhs <= rhs

    def test_observations_on_star(self):
        g = star_graph(50)
        for check in (
            check_observation_71,
            check_observation_72,
            check_observation_73,
        ):
            lhs, rhs = check(g)
            assert lhs <= rhs


class TestBounds:
    def test_tc_merge_work_within_bound(self):
        """Measured merge work of oriented TC stays within O(m c)
        (constant factor 2 from counting both endpoint scans)."""
        for seed in range(3):
            g = gnp_random_graph(80, 0.2, seed=seed)
            measured = merge_work_measured(g)
            assert measured <= 2 * bound_tc_merge(graph_parameters(g)) + 1

    def test_gallop_bound_exceeds_merge_bound_on_dense(self):
        params = graph_parameters(complete_graph(30))
        assert bound_tc_gallop(params) >= bound_tc_merge(params)

    def test_kclique_bound_grows_with_k(self):
        params = graph_parameters(gnp_random_graph(50, 0.3, seed=1))
        assert bound_kclique_merge(params, 5) > bound_kclique_merge(params, 4)

    def test_kclique_bad_k(self):
        from repro.errors import ConfigError

        params = graph_parameters(complete_graph(5))
        with pytest.raises(ConfigError):
            bound_kclique_merge(params, 1)

    def test_mc_bound_exponential_in_degeneracy(self):
        sparse = graph_parameters(star_graph(100))
        dense = graph_parameters(complete_graph(20))
        assert bound_mc_degeneracy(dense) > bound_mc_degeneracy(sparse)

    def test_star_graph_parameters(self):
        params = graph_parameters(star_graph(100))
        assert params.max_degree == 99
        assert params.degeneracy == 1


class TestSummaries:
    def test_identical_runtimes_give_one(self):
        summary = summarize_speedups([1.0, 2.0], [1.0, 2.0])
        assert summary.speedup_of_avgs == pytest.approx(1.0)
        assert summary.avg_of_speedups == pytest.approx(1.0)

    def test_uniform_speedup(self):
        summary = summarize_speedups([10.0, 20.0], [5.0, 10.0])
        assert summary.speedup_of_avgs == pytest.approx(2.0)
        assert summary.avg_of_speedups == pytest.approx(2.0)

    def test_mixed_speedups_use_geometric_mean(self):
        summary = summarize_speedups([4.0, 1.0], [1.0, 1.0])
        assert summary.avg_of_speedups == pytest.approx(2.0)
        assert summary.speedup_of_avgs == pytest.approx(2.5)

    def test_paper_footnote_no_mean_inequality(self):
        """The paper notes the two summaries 'do not satisfy the
        inequality of means' — either may exceed the other."""
        one_way = summarize_speedups([4.0, 1.0], [1.0, 1.0])
        assert one_way.speedup_of_avgs > one_way.avg_of_speedups
        other_way = summarize_speedups([1.0, 4.0], [0.1, 4.0])
        assert other_way.speedup_of_avgs < other_way.avg_of_speedups

    def test_empty_lists(self):
        summary = summarize_speedups([], [])
        assert summary.speedup_of_avgs == 1.0

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            summarize_speedups([1.0], [])

    def test_zero_runtimes_skipped(self):
        summary = summarize_speedups([0.0, 10.0], [1.0, 5.0])
        assert summary.avg_of_speedups == pytest.approx(2.0)

    def test_str_format(self):
        text = str(summarize_speedups([2.0], [1.0]))
        assert "2.00x" in text
