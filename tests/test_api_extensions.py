"""Tests for the thin software layer (SisaSet / C API), the CISC
multi-set intersection extension, and the energy model."""

import pytest

from repro.errors import ConfigError
from repro.hw.energy import EnergyParameters, estimate_energy
from repro.isa.opcodes import Opcode
from repro.runtime.api import SisaSet, c_api
from repro.runtime.context import SisaContext

UNIVERSE = 200


@pytest.fixture
def ctx():
    return SisaContext(threads=2, mode="sisa", trace=True)


class TestSisaSet:
    def test_operators_match_python_sets(self, ctx):
        a = SisaSet.create(ctx, [1, 2, 3, 4], universe=UNIVERSE)
        b = SisaSet.create(ctx, [3, 4, 5], universe=UNIVERSE)
        assert set(a & b) == {3, 4}
        assert set(a | b) == {1, 2, 3, 4, 5}
        assert set(a - b) == {1, 2}

    def test_count_methods(self, ctx):
        a = SisaSet.create(ctx, [1, 2, 3], universe=UNIVERSE, dense=True)
        b = SisaSet.create(ctx, [2, 3, 9], universe=UNIVERSE, dense=True)
        assert a.intersect_count(b) == 2
        assert a.union_count(b) == 4
        assert a.difference_count(b) == 1

    def test_in_place_operators(self, ctx):
        a = SisaSet.create(ctx, [1, 2, 3], universe=UNIVERSE)
        b = SisaSet.create(ctx, [2, 3], universe=UNIVERSE)
        a &= b
        assert set(a) == {2, 3}
        a |= SisaSet.create(ctx, [7], universe=UNIVERSE)
        assert 7 in a
        a -= b
        assert set(a) == {7}

    def test_membership_len_iter(self, ctx):
        a = SisaSet.create(ctx, [5, 1], universe=UNIVERSE)
        assert 5 in a
        assert 6 not in a
        assert "x" not in a
        assert len(a) == 2
        assert list(a) == [1, 5]

    def test_insert_remove(self, ctx):
        a = SisaSet.create(ctx, [], universe=UNIVERSE, dense=True)
        a.insert(9)
        assert 9 in a
        a.remove(9)
        assert 9 not in a

    def test_clone_and_free(self, ctx):
        a = SisaSet.create(ctx, [1], universe=UNIVERSE)
        b = a.clone()
        b.insert(2)
        assert len(a) == 1
        assert len(b) == 2
        a.free()
        from repro.errors import SetError

        with pytest.raises(SetError):
            len(a)

    def test_repr(self, ctx):
        a = SisaSet.create(ctx, [1], universe=UNIVERSE)
        assert "SisaSet" in repr(a)

    def test_operations_charge_cycles(self, ctx):
        a = SisaSet.create(ctx, range(50), universe=UNIVERSE)
        b = SisaSet.create(ctx, range(25, 75), universe=UNIVERSE)
        before = ctx.runtime_cycles
        __ = a & b
        assert ctx.runtime_cycles > before


class TestCApi:
    def test_c_style_workflow(self, ctx):
        api = c_api(ctx, UNIVERSE)
        a = api.create([1, 2, 3])
        b = api.create([2, 3, 4])
        inter = api.intersect(a, b)
        assert api.cardinality(inter) == 2
        assert api.intersect_count(a, b) == 2
        assert api.is_member(a, 1)
        api.insert(a, 9, 10)
        assert api.cardinality(a) == 5
        api.remove(a, 9, 10)
        assert api.cardinality(a) == 3
        c = api.clone(a)
        api.delete(a)
        assert api.cardinality(c) == 3
        u = api.union(b, c)
        assert api.cardinality(u) == 4


class TestIntersectMany:
    def test_matches_pairwise_fold(self, ctx):
        ids = [
            ctx.create_set(range(start, start + 60), universe=UNIVERSE)
            for start in (0, 20, 40)
        ]
        many = ctx.intersect_many(*ids)
        expected = set(range(40, 60))
        assert set(int(v) for v in ctx.elements(many)) == expected

    def test_traces_cisc_opcode(self, ctx):
        ids = [
            ctx.create_set(range(i, i + 10), universe=UNIVERSE) for i in (0, 5)
        ]
        ctx.intersect_many(*ids)
        assert any(
            e.opcode == Opcode.INTERSECT_MANY for e in ctx.trace.events
        )

    def test_cheaper_than_binary_chain(self):
        def run(cisc: bool) -> float:
            ctx = SisaContext(threads=1, mode="sisa")
            ids = [
                ctx.create_set(range(i, i + 120), universe=400, dense=False)
                for i in (0, 30, 60, 90)
            ]
            before = ctx.runtime_cycles
            if cisc:
                ctx.intersect_many(*ids)
            else:
                acc = ctx.intersect(ids[0], ids[1])
                for other in ids[2:]:
                    nxt = ctx.intersect(acc, other)
                    ctx.free(acc)
                    acc = nxt
            return ctx.runtime_cycles - before

        assert run(cisc=True) < run(cisc=False)

    def test_needs_two_sets(self, ctx):
        a = ctx.create_set([1], universe=UNIVERSE)
        with pytest.raises(ConfigError):
            ctx.intersect_many(a)

    def test_mixed_representations(self, ctx):
        a = ctx.create_set(range(0, 100), universe=UNIVERSE, dense=True)
        b = ctx.create_set(range(50, 150), universe=UNIVERSE, dense=False)
        c = ctx.create_set(range(75, 125), universe=UNIVERSE, dense=True)
        many = ctx.intersect_many(a, b, c)
        assert set(int(v) for v in ctx.elements(many)) == set(range(75, 100))


class TestEnergy:
    def _workload(self, mode: str) -> SisaContext:
        ctx = SisaContext(threads=4, mode=mode)
        ids = [
            ctx.create_set(range(i, i + 80), universe=400, dense=(i % 40 == 0))
            for i in range(0, 200, 20)
        ]
        for i in range(len(ids)):
            ctx.begin_task()
            ctx.intersect_count(ids[i], ids[(i + 1) % len(ids)])
        return ctx

    def test_components_nonnegative(self):
        report = estimate_energy(self._workload("sisa"))
        assert report.data_movement_nj >= 0
        assert report.compute_nj >= 0
        assert report.insitu_nj >= 0
        assert report.total_nj > 0

    def test_sisa_more_efficient_than_host(self):
        """The paper's energy argument: PIM avoids off-chip movement."""
        sisa = estimate_energy(self._workload("sisa"))
        host = estimate_energy(self._workload("cpu-set"))
        assert sisa.total_nj < host.total_nj

    def test_parameters_scale_linearly(self):
        ctx = self._workload("sisa")
        base = estimate_energy(ctx)
        doubled = estimate_energy(
            ctx, EnergyParameters(nearmem_pj_per_byte=8.0)
        )
        assert doubled.data_movement_nj == pytest.approx(
            2 * base.data_movement_nj
        )
