"""Tests for the benchmark harness."""

import pytest

from repro.bench.harness import ResultTable, run_three_variants


class TestResultTable:
    def test_add_and_lookup(self):
        table = ResultTable("t")
        table.add("tc", "g1", "sisa", 2e6)
        table.add("tc", "g1", "non-set", 4e6)
        assert table.runtimes("tc", "sisa") == [2.0]
        assert table.problems() == ["tc"]
        assert table.variants() == ["sisa", "non-set"]
        assert table.graphs_for("tc") == ["g1"]

    def test_summary_speedups(self):
        table = ResultTable("t")
        for graph, nonset, sisa in [("g1", 8e6, 2e6), ("g2", 4e6, 2e6)]:
            table.add("tc", graph, "non-set", nonset)
            table.add("tc", graph, "sisa", sisa)
        summary = table.summary("tc", "non-set", "sisa")
        assert summary.speedup_of_avgs == pytest.approx(3.0)
        assert summary.avg_of_speedups == pytest.approx(2.0 * 2**0.5)

    def test_print_does_not_crash(self, capsys):
        table = ResultTable("demo")
        table.add("tc", "g1", "sisa", 1e6)
        table.add("tc", "g1", "non-set", 3e6)
        table.print_all()
        out = capsys.readouterr().out
        assert "demo" in out
        assert "g1" in out
        assert "sisa over non-set" in out


class TestRunThreeVariants:
    def test_records_all_variants(self):
        table = ResultTable("t")
        run_three_variants(
            "p",
            "g",
            table,
            nonset=lambda: (42, 3e6),
            set_based=lambda: (42, 2e6),
            sisa=lambda: (42, 1e6),
        )
        assert len(table.cells) == 3
        assert table.runtimes("p", "sisa") == [1.0]

    def test_output_mismatch_raises(self):
        table = ResultTable("t")
        with pytest.raises(AssertionError):
            run_three_variants(
                "p",
                "g",
                table,
                nonset=lambda: (1, 3e6),
                set_based=lambda: (2, 2e6),
                sisa=lambda: (1, 1e6),
            )

    def test_mismatch_allowed_when_unchecked(self):
        table = ResultTable("t")
        run_three_variants(
            "p",
            "g",
            table,
            nonset=None,
            set_based=lambda: (2, 2e6),
            sisa=lambda: (1, 1e6),
            check_outputs=False,
        )
        assert len(table.cells) == 2
