"""Tests for the sharded parallel execution subsystem: universe
partitioning, shared-memory staging, deterministic merges, lane-gate
admission, the ownership fences on host-owned serving structures, the
``parallel-unsafe-access`` lint rule, and the headline property — that
``pool.run(parallel=True)`` on real worker processes is bit-identical
(outputs, per-tenant ledgers, modeled cycles) to strict sequential
execution at every lane width, with worker crashes surfacing as
structured ``FailedResult``\\ s rather than hangs."""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static import certify_schedule, lint_source
from repro.analysis.static.lint import DEFAULT_RULES
from repro.analysis.static.smoke import (
    SOAK_WORKLOADS,
    compile_batch,
    full_grid,
    make_session,
)
from repro.errors import ConfigError, SisaError
from repro.parallel import ownership
from repro.parallel.executor import LaneGate
from repro.parallel.merge import merge_partials
from repro.parallel.shards import ShardPlan, partition_universe
from repro.serving import RetryPolicy
from repro.session import FailedResult, SessionPool
from repro.session.cache import ResultCache, fingerprint

N = 60
LANE_WIDTHS = (1, 2, 4)


# ---------------------------------------------------------------------------
# Partitioning and merges (pure host-side units)
# ---------------------------------------------------------------------------


class TestPartitioning:
    def test_hash_policy_is_modular(self):
        degrees = np.arange(17)
        shard_of = partition_universe(degrees, 4, policy="hash")
        assert np.array_equal(shard_of, np.arange(17) % 4)

    def test_degree_policy_balances_degree_mass(self):
        rng = np.random.default_rng(7)
        degrees = rng.integers(0, 50, size=200)
        shard_of = partition_universe(degrees, 4, policy="degree")
        loads = [
            int((degrees + 1)[shard_of == k].sum()) for k in range(4)
        ]
        # LPT keeps the spread within the largest single item.
        assert max(loads) - min(loads) <= int(degrees.max()) + 1

    def test_partition_covers_universe_exactly(self):
        degrees = np.ones(33, dtype=np.int64)
        for policy in ("hash", "degree"):
            shard_of = partition_universe(degrees, 5, policy=policy)
            assert shard_of.shape == (33,)
            assert shard_of.min() >= 0 and shard_of.max() < 5

    def test_single_shard_is_trivial(self):
        shard_of = partition_universe(np.arange(9), 1)
        assert not shard_of.any()

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            partition_universe(np.arange(4), 0)
        with pytest.raises(ConfigError):
            partition_universe(np.arange(4), 2, policy="roulette")

    def test_plan_vertex_counts(self):
        plan = ShardPlan.build(np.ones(10), 3, policy="hash")
        assert sum(plan.vertex_counts) == 10
        assert len(plan.vertex_counts) == 3


class TestMerge:
    def test_merge_is_exact_integer_sum(self):
        rng = np.random.default_rng(11)
        arena = rng.integers(0, 1000, size=(4, 32)).astype(np.int64)
        merged = merge_partials(arena, 4, 20)
        assert np.array_equal(merged, arena[:, :20].sum(axis=0))

    def test_merge_single_shard_copies(self):
        arena = np.arange(12, dtype=np.int64).reshape(1, 12)
        merged = merge_partials(arena, 1, 5)
        merged[0] = -1  # must not alias the arena
        assert arena[0, 0] == 0


# ---------------------------------------------------------------------------
# Lane-gate admission
# ---------------------------------------------------------------------------


class TestLaneGate:
    def _schedule(self):
        session = make_session(n=N)
        plans = compile_batch(session, full_grid(N))
        return certify_schedule(plans, lanes=2)

    def test_admission_before_ancestors_raises(self):
        schedule = self._schedule()
        lane_of, __ = schedule.assign(2)
        gate = LaneGate(schedule, lane_of)
        blocked = next(
            node for node in schedule.order if schedule.preds[node]
        )
        with pytest.raises(SisaError) as err:
            gate.admit(blocked)
        assert err.value.details["node"] == blocked
        assert err.value.details["incomplete_preds"]

    def test_certified_order_admits_cleanly(self):
        schedule = self._schedule()
        lane_of, __ = schedule.assign(2)
        gate = LaneGate(schedule, lane_of)
        for node in schedule.order:
            assert gate.admit(node) == lane_of[node]
            gate.complete(node)
        assert sum(gate.lane_occupancy) == len(schedule.order)


# ---------------------------------------------------------------------------
# Ownership fences
# ---------------------------------------------------------------------------


class TestOwnershipFences:
    def test_host_process_passes_fence(self):
        assert not ownership.in_worker()
        ownership.assert_host_owned("result-cache", op="get")  # no-op

    def test_cache_access_raises_inside_worker(self):
        ownership.mark_worker(2)
        try:
            cache = ResultCache()
            with pytest.raises(SisaError) as err:
                cache.get(("w", ("none",), (0, 0)))
            assert err.value.details["structure"] == "result-cache"
            assert err.value.details["shard"] == 2
            with pytest.raises(SisaError):
                cache.put(("w", ("none",), (0, 0)), np.arange(3))
        finally:
            ownership._WORKER_SHARD = None
        assert not ownership.in_worker()

    def test_orientation_hooks_raise_inside_worker(self):
        session = make_session(n=N)
        session.attach_stream()
        maintainer = session.maintain_orientation()
        ownership.mark_worker(0)
        try:
            with pytest.raises(SisaError) as err:
                maintainer.mark_desynced()
            assert err.value.details["structure"] == (
                "orientation-maintainer"
            )
        finally:
            ownership._WORKER_SHARD = None


# ---------------------------------------------------------------------------
# parallel-unsafe-access lint rule
# ---------------------------------------------------------------------------

_WORKER_PATH = "src/repro/parallel/workers.py"


class TestParallelUnsafeAccessRule:
    def test_rule_is_stock(self):
        assert "parallel-unsafe-access" in DEFAULT_RULES

    def test_host_only_import_flagged_in_worker_module(self):
        src = "from repro.session.pool import SessionPool\n"
        found = lint_source(
            src, _WORKER_PATH, rules=["parallel-unsafe-access"]
        )
        assert [v.rule for v in found] == ["parallel-unsafe-access"]
        assert "repro.session.pool" in found[0].message

    def test_plain_import_flagged(self):
        src = "import repro.serving\n"
        found = lint_source(
            src, _WORKER_PATH, rules=["parallel-unsafe-access"]
        )
        assert len(found) == 1

    def test_host_side_modules_exempt(self):
        src = "from repro.session.plan import PlanExecutor\n"
        found = lint_source(
            src,
            "src/repro/parallel/executor.py",
            rules=["parallel-unsafe-access"],
        )
        assert found == []

    def test_safe_imports_pass(self):
        src = "import numpy as np\nfrom repro.errors import SisaError\n"
        found = lint_source(
            src, _WORKER_PATH, rules=["parallel-unsafe-access"]
        )
        assert found == []

    def test_pragma_suppresses(self):
        src = (
            "import repro.streaming"
            "  # repolint: disable=parallel-unsafe-access\n"
        )
        found = lint_source(
            src, _WORKER_PATH, rules=["parallel-unsafe-access"]
        )
        assert found == []


# ---------------------------------------------------------------------------
# Pool integration: parallel=True on real worker processes
# ---------------------------------------------------------------------------


#: One shared smoke graph: resubmitting to the same pool key requires
#: the identical graph object.
_SOAK_GRAPH = make_session(n=N).graph


def _submit_soak(pool, tenants=2):
    graph = _SOAK_GRAPH
    for tenant in range(tenants):
        for name, params in SOAK_WORKLOADS:
            pool.submit(
                "g", name, tenant=f"tenant-{tenant}", graph=graph, **params
            )
    return tenants * len(SOAK_WORKLOADS)


@pytest.fixture(scope="module")
def sequential_baseline():
    """Strict-sequential oracle per lane width: output fingerprints
    (eager single-session runs), plus the scheduled-but-serial pool's
    modeled cycles and tenant ledgers."""
    session = make_session(n=N)
    outputs = {
        name: fingerprint(session.run(name, **dict(params)).output)
        for name, params in SOAK_WORKLOADS
    }
    per_lane = {}
    for lanes in LANE_WIDTHS:
        pool = SessionPool(threads=8)
        _submit_soak(pool)
        results = pool.run(lanes=lanes)
        per_lane[lanes] = {
            "cycles": [r.report.runtime_cycles for r in results],
            "tenants": pool.tenant_cycles,
        }
    return {"outputs": outputs, "per_lane": per_lane}


class TestPoolParallel:
    @settings(max_examples=6, deadline=None)
    @given(lanes=st.sampled_from(LANE_WIDTHS))
    def test_parallel_bit_identical_to_sequential(
        self, sequential_baseline, lanes
    ):
        pool = SessionPool(threads=8)
        pool.parallel_offload_threshold = 0  # force every burst offload
        count = _submit_soak(pool)
        try:
            results = pool.run(lanes=lanes, parallel=True)
            assert len(results) == count
            baseline = sequential_baseline["per_lane"][lanes]
            for i, result in enumerate(results):
                assert result.ok and result.scheduled and result.parallel
                assert (
                    fingerprint(result.output)
                    == sequential_baseline["outputs"][result.workload]
                ), result.workload
                assert (
                    result.report.runtime_cycles == baseline["cycles"][i]
                )
            assert pool.tenant_cycles == baseline["tenants"]

            report = pool.last_parallel["g"]
            model = pool.last_schedules["g"].what_if(lanes)
            assert report.lanes == lanes and report.shards == lanes
            assert report.offloaded_units > 0
            assert report.inline_units == 0
            assert (
                report.parallel_cycles
                == model.makespan + model.merge_cycles
            )
            assert report.cross_edges == model.cross_edges
        finally:
            pool.close()

    def test_parallel_health_fields(self):
        pool = SessionPool(threads=8)
        pool.parallel_offload_threshold = 0
        _submit_soak(pool)
        try:
            pool.run(lanes=2, parallel=True)
            snapshot = pool.health()
            assert sum(snapshot.shard_vertices) == N
            assert (
                0.0
                < snapshot.lane_mean_occupancy
                <= snapshot.lane_max_occupancy
                <= 1.0
            )
            assert snapshot.worker_crashes == 0
            payload = snapshot.as_dict()
            assert payload["shard_vertices"] == list(
                snapshot.shard_vertices
            )
            assert "lane_max_occupancy" in payload
        finally:
            pool.close()

    def test_inline_fallback_above_threshold_still_identical(
        self, sequential_baseline
    ):
        # Default threshold: the smoke graph's tiny sets never offload,
        # so everything computes inline — same outputs, same cycles.
        pool = SessionPool(threads=8)
        _submit_soak(pool)
        try:
            results = pool.run(lanes=2, parallel=True)
            baseline = sequential_baseline["per_lane"][2]
            for i, result in enumerate(results):
                assert result.ok and result.parallel
                assert (
                    result.report.runtime_cycles == baseline["cycles"][i]
                )
            report = pool.last_parallel["g"]
            assert report.offloaded_units == 0
            assert report.inline_units > 0
        finally:
            pool.close()

    def test_worker_crash_yields_failed_results_not_a_hang(self):
        pool = SessionPool(threads=8)
        pool.parallel_offload_threshold = 0
        _submit_soak(pool)
        try:
            results = pool.run(lanes=2, parallel=True)
            assert all(r.ok for r in results)

            # Kill shard 0's worker, then serve another batch: every
            # plan of the batch degrades to a structured FailedResult
            # well inside the reply deadline.  (Cached results would
            # never reach the dead worker, so drop them first.)
            pool._runtimes["g"].kill_worker(0)
            pool.session("g").invalidate_results()
            count = _submit_soak(pool)
            started = time.monotonic()
            results = pool.run(lanes=2, parallel=True)
            assert time.monotonic() - started < 30.0
            assert len(results) == count
            for result in results:
                assert isinstance(result, FailedResult)
                assert result.reason == "worker-crash"
                assert result.details["shard"] == 0
            snapshot = pool.health()
            assert snapshot.worker_crashes == count
            assert snapshot.degraded

            # The crashed runtime was dropped: the next parallel run
            # respawns workers and serves cleanly again.
            pool.session("g").invalidate_results()
            _submit_soak(pool)
            results = pool.run(lanes=2, parallel=True)
            assert all(r.ok and r.parallel for r in results)
        finally:
            pool.close()

    def test_injected_worker_exit_is_structured(self):
        pool = SessionPool(threads=8)
        pool.parallel_offload_threshold = 0
        _submit_soak(pool)
        try:
            pool.run(lanes=2, parallel=True)
            pool._runtimes["g"].crash_worker(1, code=7)
            pool.session("g").invalidate_results()
            _submit_soak(pool)
            results = pool.run(lanes=2, parallel=True)
            assert results and all(
                isinstance(r, FailedResult)
                and r.reason == "worker-crash"
                for r in results
            )
        finally:
            pool.close()

    def test_parallel_rejects_hardened_mode(self):
        pool = SessionPool(threads=8, retry=RetryPolicy())
        _submit_soak(pool)
        with pytest.raises(ConfigError):
            pool.run(parallel=True)
