"""Session-centric workload API: SisaSession + workload registry.

Contracts under test:

* ``ExecutionConfig`` is frozen and validates every knob,
* the registry dispatches by name and rejects unknown workloads,
* a *cold* session (and therefore every deprecated one-shot shim,
  which is implemented on top of one) issues an instruction stream
  identical to the legacy per-call path — same outputs, same simulated
  cycles, same per-opcode instruction counts,
* a *warm* session returns outputs identical to a fresh per-call run
  while performing zero set re-registrations for count-only workloads
  (hypothesis property),
* engine epoch marks give exact per-run accounting on a shared
  context,
* ``attach_stream`` binds a DynamicSetGraph to the session: snapshot
  analytics route through ``session.run(..., view=...)`` and static
  re-runs re-orient at the new epoch,
* the CApi/SisaSet satellite extensions (batched variadic
  insert/remove, ``intersect_count_batch``, ``intersect_many``,
  context-manager lifetime) behave and cost as specified.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bfs import bfs_on
from repro.algorithms.bron_kerbosch import maximal_cliques_on
from repro.algorithms.clustering import clusters_from_edges, jarvis_patrick_on
from repro.algorithms.common import make_context, oriented_setgraph
from repro.algorithms.kclique import four_clique_count_on, kclique_count_on
from repro.algorithms.similarity import similarity_on
from repro.algorithms.subgraph_iso import star_pattern, subgraph_isomorphism_on
from repro.algorithms.triangles import triangle_count_oriented
from repro.errors import ConfigError, SisaError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import chung_lu_graph, gnp_random_graph
from repro.graphs.streams import EdgeBatch, canonical_edges
from repro.runtime.api import SisaSet, c_api
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph
from repro.session import (
    ExecutionConfig,
    RunResult,
    SisaSession,
    available_workloads,
    get_workload,
    run_workload,
    workload,
)
from repro.streaming.incremental import local_triangle_counts


def _graph():
    return gnp_random_graph(60, 0.12, seed=3)


# ---------------------------------------------------------------------------
# ExecutionConfig
# ---------------------------------------------------------------------------


class TestExecutionConfig:
    def test_defaults_echo_legacy_signature(self):
        config = ExecutionConfig()
        assert config.threads == 32
        assert config.mode == "sisa"
        assert config.t == 0.4
        assert config.budget == 0.1
        assert config.policy == "fraction"
        assert config.batch is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threads": 0},
            {"mode": "gpu"},
            {"t": 1.5},
            {"t": -0.1},
            {"budget": -1.0},
            {"policy": "all-dense"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ExecutionConfig(**kwargs)

    def test_frozen(self):
        config = ExecutionConfig()
        with pytest.raises(Exception):
            config.threads = 8

    def test_replace_revalidates(self):
        config = ExecutionConfig().replace(threads=4, mode="cpu-set")
        assert (config.threads, config.mode) == (4, "cpu-set")
        with pytest.raises(ConfigError):
            config.replace(mode="nope")

    def test_session_keyword_overrides(self):
        session = SisaSession(_graph(), threads=4, mode="cpu-set")
        assert session.config.threads == 4
        assert session.ctx.mode == "cpu-set"
        merged = SisaSession(_graph(), ExecutionConfig(t=0.8), threads=2)
        assert (merged.config.t, merged.config.threads) == (0.8, 2)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_available_workloads(self):
        names = available_workloads()
        for expected in (
            "triangles",
            "kclique",
            "four_clique",
            "kclique_star",
            "maximal_cliques",
            "jarvis_patrick",
            "similarity",
            "similarity_pairs",
            "link_prediction",
            "bfs",
            "approx_degeneracy",
            "subgraph_iso",
            "fsm",
            "clustering_coefficient",
            "local_clustering",
        ):
            assert expected in names
            assert names[expected]  # every workload has a description

    def test_unknown_workload_lists_alternatives(self):
        with pytest.raises(ConfigError, match="triangles"):
            SisaSession(_graph()).run("triangle")

    def test_duplicate_registration_rejected(self):
        get_workload("triangles")  # ensure defaults are registered
        with pytest.raises(SisaError, match="replace=True"):

            @workload("triangles")
            def _clash(session):  # pragma: no cover
                return None

    def test_duplicate_registration_with_replace(self):
        from repro.session.registry import _REGISTRY

        @workload("_test_replaceable")
        def original(session):
            return "original"

        try:
            with pytest.raises(SisaError):

                @workload("_test_replaceable")
                def clash(session):  # pragma: no cover
                    return "clash"

            @workload("_test_replaceable", replace=True)
            def replacement(session):
                return "replacement"

            assert _REGISTRY["_test_replaceable"].fn is replacement
        finally:
            del _REGISTRY["_test_replaceable"]

    def test_spec_metadata(self):
        spec = get_workload("triangles")
        assert spec.requires == "oriented"
        assert spec.view_capable
        star = get_workload("kclique_star")
        assert star.requires_for({"variant": "intersect"}) == "both"
        assert star.requires_for({}) == "oriented"

    def test_whitespace_docstring_registration(self):
        @workload("_test_blank_doc")
        def blank(session):
            "\n    "
            return None

        try:
            assert available_workloads()["_test_blank_doc"] == ""
        finally:
            from repro.session.registry import _REGISTRY

            del _REGISTRY["_test_blank_doc"]


# ---------------------------------------------------------------------------
# Cold-session / shim identity with the legacy per-call path
# ---------------------------------------------------------------------------


def _legacy_oriented(graph, *, threads=32, mode="sisa"):
    ctx = make_context(threads=threads, mode=mode)
    __, sg = oriented_setgraph(graph, ctx)
    return ctx, sg


def _legacy_undirected(graph, *, threads=32, mode="sisa"):
    ctx = make_context(threads=threads, mode=mode)
    sg = SetGraph.from_graph(graph, ctx, t=0.4, budget=0.1)
    return ctx, sg


def _legacy_runs():
    """(name, legacy runner, session runner) triples reconstructing the
    pre-session per-call pipelines."""

    def legacy_triangles(graph):
        ctx, sg = _legacy_oriented(graph)
        return triangle_count_oriented(sg, ctx, batch=True), ctx

    def legacy_kclique(graph):
        ctx, sg = _legacy_oriented(graph)
        return kclique_count_on(ctx, sg, 4), ctx

    def legacy_four_clique(graph):
        ctx, sg = _legacy_oriented(graph)
        return four_clique_count_on(ctx, sg), ctx

    def legacy_mc(graph):
        ctx, sg = _legacy_undirected(graph)
        return maximal_cliques_on(graph, ctx, sg, max_patterns=200), ctx

    def legacy_jp(graph):
        ctx, sg = _legacy_undirected(graph)
        kept = jarvis_patrick_on(graph, ctx, sg, tau=0.2, measure="jaccard")
        return {"edges": kept, "clusters": clusters_from_edges(graph.num_vertices, kept)}, ctx

    def legacy_bfs(graph):
        ctx, sg = _legacy_undirected(graph)
        return bfs_on(graph, ctx, sg, 0, direction="auto"), ctx

    def legacy_similarity(graph):
        ctx, sg = _legacy_undirected(graph)
        return similarity_on(ctx, sg, 1, 2, measure="adamic_adar"), ctx

    def legacy_si(graph):
        ctx, sg = _legacy_undirected(graph)
        return subgraph_isomorphism_on(
            graph, ctx, sg, star_pattern(3), max_matches=300
        ), ctx

    return [
        ("triangles", legacy_triangles, lambda s: s.run("triangles")),
        ("kclique", legacy_kclique, lambda s: s.run("kclique", k=4)),
        ("four_clique", legacy_four_clique, lambda s: s.run("four_clique")),
        (
            "maximal_cliques",
            legacy_mc,
            lambda s: s.run("maximal_cliques", max_patterns=200),
        ),
        (
            "jarvis_patrick",
            legacy_jp,
            lambda s: s.run("jarvis_patrick", tau=0.2, measure="jaccard"),
        ),
        ("bfs", legacy_bfs, lambda s: s.run("bfs", root=0)),
        (
            "similarity",
            legacy_similarity,
            lambda s: s.run("similarity", u=1, v=2, measure="adamic_adar"),
        ),
        (
            "subgraph_iso",
            legacy_si,
            lambda s: s.run("subgraph_iso", pattern=star_pattern(3), max_matches=300),
        ),
    ]


class TestColdSessionIdentity:
    @pytest.mark.parametrize(
        "name,legacy,run", _legacy_runs(), ids=lambda x: x if isinstance(x, str) else ""
    )
    def test_outputs_cycles_and_stats_match_legacy(self, name, legacy, run):
        graph = _graph()
        expected_output, legacy_ctx = legacy(graph)

        session = SisaSession(graph, ExecutionConfig(threads=32))
        result = run(session)

        assert repr(result.output) == repr(expected_output)
        assert result.runtime_cycles == legacy_ctx.runtime_cycles
        assert result.instructions == legacy_ctx.instruction_count
        assert result.opcode_counts() == legacy_ctx.opcode_counts()
        # The cold session's lifetime report equals the per-run report.
        assert session.ctx.report().runtime_cycles == result.runtime_cycles
        assert not result.warm

    @pytest.mark.parametrize("mode", ["sisa", "cpu-set"])
    def test_shims_equal_cold_session(self, mode):
        """The deprecated one-shot entry points are cycle-identical to a
        cold session run (they are implemented on top of one)."""
        graph = _graph()
        from repro.algorithms import kclique_count

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = kclique_count(graph, 4, threads=16, mode=mode)
        result = SisaSession(
            graph, ExecutionConfig(threads=16, mode=mode)
        ).run("kclique", k=4)
        assert shim.output == result.output
        assert shim.runtime_cycles == result.runtime_cycles
        assert shim.context.instruction_count == result.instructions

    def test_shims_warn_deprecation(self):
        from repro.algorithms import triangle_count
        from repro.algorithms.common import reset_one_shot_warnings

        reset_one_shot_warnings()
        with pytest.warns(DeprecationWarning, match="SisaSession") as records:
            triangle_count(_graph(), threads=4)
        # The notice points at this test (the shim's caller), not at
        # the shim module.
        assert any(r.filename == __file__ for r in records)

    def test_shim_warning_deduplicated_per_entry_point(self):
        from repro.algorithms import triangle_count
        from repro.algorithms.common import reset_one_shot_warnings

        reset_one_shot_warnings()
        graph = _graph()
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")
            triangle_count(graph, threads=4)
            triangle_count(graph, threads=4)  # same entry point: silent
        assert (
            sum(issubclass(r.category, DeprecationWarning) for r in records)
            == 1
        )

    def test_run_workload_convenience(self):
        result = run_workload(_graph(), "triangles", config=ExecutionConfig(threads=8))
        assert isinstance(result, RunResult)
        assert result.config.threads == 8


# ---------------------------------------------------------------------------
# Warm-session reuse
# ---------------------------------------------------------------------------


class TestWarmReuse:
    @given(
        n=st.integers(min_value=8, max_value=48),
        p=st.floats(min_value=0.05, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_warm_run_matches_fresh_run(self, n, p, seed):
        """Property: a warm run (cached orientation + sets) returns
        outputs identical to a fresh per-call run, and the first run's
        cycles match the legacy path exactly."""
        graph = gnp_random_graph(n, p, seed=seed)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        cold = session.run("triangles")
        warm = session.run("triangles")

        # Legacy reconstruction of the per-call path.
        ctx = make_context(threads=8)
        __, sg = oriented_setgraph(graph, ctx)
        legacy_count = triangle_count_oriented(sg, ctx, batch=True)

        assert cold.output == legacy_count
        assert cold.runtime_cycles == ctx.runtime_cycles
        assert warm.output == legacy_count
        assert warm.warm and not cold.warm
        assert warm.registrations == 0

    def test_warm_reuse_across_workloads(self):
        graph = _graph()
        session = SisaSession(graph, ExecutionConfig(threads=8))
        tri = session.run("triangles")  # builds the orientation
        kcc = session.run("kclique", k=4)  # reuses it
        assert kcc.warm
        fresh = SisaSession(graph, ExecutionConfig(threads=8)).run("kclique", k=4)
        assert kcc.output == fresh.output

        mc = session.run("maximal_cliques", max_patterns=100)  # undirected build
        assert not mc.warm
        mc_warm = session.run("maximal_cliques", max_patterns=100)
        assert mc_warm.warm
        assert mc_warm.output == mc.output
        assert tri.output == session.run("triangles").output

    def test_per_run_instruction_accounting_is_exact(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        runs = [
            session.run("triangles"),
            session.run("kclique", k=3),
            session.run("bfs", root=0),
        ]
        assert sum(r.instructions for r in runs) == session.ctx.instruction_count
        total = {}
        for r in runs:
            for opcode, count in r.opcode_counts().items():
                total[opcode] = total.get(opcode, 0) + count
        assert total == session.ctx.opcode_counts()
        assert session.run_count == 3

    def test_params_and_config_echo(self):
        session = SisaSession(_graph(), ExecutionConfig(threads=8))
        result = session.run("kclique", k=3, max_patterns=10)
        assert result.config is session.config
        assert result.params == {"k": 3, "max_patterns": 10}
        assert result.workload == "kclique"

    def test_callable_runs_against_undirected_setgraph(self):
        graph = _graph()
        session = SisaSession(graph, ExecutionConfig(threads=8))

        def degree_sum(g, ctx, sg):
            return sum(ctx.cardinality(sg.neighborhood(v)) for v in range(g.num_vertices))

        result = session.run(degree_sum)
        assert result.output == int(graph.degrees.sum())
        assert result.workload == "degree_sum"

    def test_registered_workloads_reject_positional_args(self):
        with pytest.raises(ConfigError):
            SisaSession(_graph()).run("kclique", 4)


# ---------------------------------------------------------------------------
# Streaming integration
# ---------------------------------------------------------------------------


def _batch_of(edges):
    return EdgeBatch(
        insertions=np.asarray(edges, dtype=np.int64),
        deletions=np.empty((0, 2), dtype=np.int64),
    )


class TestSessionStreaming:
    def test_attach_stream_shares_sets(self):
        graph = chung_lu_graph(80, 300, gamma=2.2, seed=5)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        assert dyn.set_ids is session.setgraph.set_ids
        with pytest.raises(ConfigError):
            session.attach_stream()
        assert session.stream is dyn

    def test_snapshot_runs_through_session(self):
        graph = chung_lu_graph(80, 300, gamma=2.2, seed=5)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        before = session.run("triangles").output

        snap = session.snapshot()
        new_edges = canonical_edges(
            np.asarray([[0, 9], [1, 17], [2, 33], [4, 55]], dtype=np.int64),
            graph.num_vertices,
        )
        dyn.apply_batch(_batch_of(new_edges))

        frozen = session.run("triangles", view=snap)
        assert frozen.output == before
        live = session.run("triangles", view=dyn)
        ref = int(local_triangle_counts(dyn, session.ctx).sum()) // 3
        assert live.output == ref
        snap.release()

    def test_static_rerun_reorients_at_new_epoch(self):
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        session.run("triangles")

        new_edges = canonical_edges(
            np.asarray([[0, 5], [1, 11], [3, 29]], dtype=np.int64),
            graph.num_vertices,
        )
        dyn.apply_batch(_batch_of(new_edges))

        evolved = session.run("triangles")
        assert not evolved.warm  # re-orientation at the new epoch
        rebuilt = CSRGraph.from_edges(graph.num_vertices, dyn.edge_array())
        fresh = SisaSession(rebuilt, ExecutionConfig(threads=8)).run("triangles")
        assert evolved.output == fresh.output
        # current_graph reflects the evolved state and is cached per epoch.
        assert session.current_graph.num_edges == rebuilt.num_edges
        assert session.current_graph is session.current_graph

    def test_epoch_rebuild_invalidates_stale_smb_entries(self):
        """Releasing a stale orientation must invalidate its SMB
        entries: the rebuilt orientation recycles the freed set IDs, so
        a stale entry would turn each recycled set's first metadata
        fetch into a false hit.  The post-epoch run must therefore see
        exactly the SMB hits (and instruction stream) a brand-new
        session over the evolved graph sees."""
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        session.run("triangles")
        new_edges = canonical_edges(
            np.asarray([[0, 5], [1, 11], [3, 29]], dtype=np.int64),
            graph.num_vertices,
        )
        dyn.apply_batch(_batch_of(new_edges))
        hits_before = session.ctx.scu.smb.stats.hits
        evolved = session.run("triangles")
        evolved_hits = session.ctx.scu.smb.stats.hits - hits_before
        # None of the released orientation's IDs may linger in the SMB
        # (they were recycled for the new orientation's sets).
        rebuilt = CSRGraph.from_edges(graph.num_vertices, dyn.edge_array())
        fresh_session = SisaSession(rebuilt, ExecutionConfig(threads=8))
        fresh = fresh_session.run("triangles")
        fresh_hits = fresh_session.ctx.scu.smb.stats.hits
        assert evolved.output == fresh.output
        assert evolved_hits == fresh_hits
        assert evolved.stats.instructions == fresh.stats.instructions
        assert evolved.opcode_counts() == fresh.opcode_counts()

    def test_midbatch_mutations_invalidate_static_caches(self):
        """Raw apply_insertions (no finish_batch) must still invalidate
        the CSR/orientation caches — static runs never mix a stale
        orientation with the live mutated sets."""
        graph = chung_lu_graph(60, 240, gamma=2.2, seed=7)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        dyn = session.attach_stream()
        session.run("triangles")
        new_edges = canonical_edges(
            np.asarray([[0, 5], [1, 11], [3, 29]], dtype=np.int64),
            graph.num_vertices,
        )
        dyn.apply_insertions(new_edges)  # mid-batch: epoch not advanced
        midbatch = session.run("triangles")
        rebuilt = CSRGraph.from_edges(graph.num_vertices, dyn.edge_array())
        fresh = SisaSession(rebuilt, ExecutionConfig(threads=8)).run("triangles")
        assert midbatch.output == fresh.output
        assert session.current_graph.num_edges == rebuilt.num_edges

    def test_link_prediction_runs_leave_no_sets_behind(self):
        graph = chung_lu_graph(80, 320, gamma=2.2, seed=5)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        first = session.run("link_prediction", seed=3)
        size_after_first = len(session.ctx.sm)
        for __ in range(3):
            repeat = session.run("link_prediction", seed=3)
            assert repeat.output == first.output
        assert len(session.ctx.sm) == size_after_first

    def test_kclique_star_intersect_variant_warm_flag(self):
        graph = _graph()
        session = SisaSession(graph, ExecutionConfig(threads=8))
        session.run("triangles")  # warms the orientation only
        run = session.run("kclique_star", k=3, variant="intersect")
        assert not run.warm  # it also had to build the undirected sets
        again = session.run("kclique_star", k=3, variant="intersect")
        # Warm now: both cached structures existed (transient clique /
        # intersection sets are still registered and freed per run).
        assert again.warm
        assert again.output == run.output
        assert session.run("kclique_star", k=3).warm  # from_k1: oriented only

    def test_view_run_rejected_for_non_view_workload(self):
        graph = chung_lu_graph(40, 120, gamma=2.2, seed=3)
        session = SisaSession(graph, ExecutionConfig(threads=8))
        session.attach_stream()
        snap = session.snapshot()
        with pytest.raises(ConfigError):
            session.run("kclique", k=3, view=snap)
        snap.release()


# ---------------------------------------------------------------------------
# Satellite: CApi batched variadic insert/remove
# ---------------------------------------------------------------------------


class TestCApiBatchedUpdates:
    def test_variadic_insert_remove_cycle_identical_to_scalar(self):
        batched_ctx = SisaContext(threads=4)
        scalar_ctx = SisaContext(threads=4)
        api = c_api(batched_ctx, 200)
        a = api.create(range(0, 50, 2))
        b = scalar_ctx.create_set(range(0, 50, 2), universe=200)

        vertices = (1, 3, 4, 99, 2, 1)  # duplicates + already-present
        api.insert(a, *vertices)
        for v in vertices:
            scalar_ctx.insert(b, v)
        removed = (99, 0, 7, 7)
        api.remove(a, *removed)
        for v in removed:
            scalar_ctx.remove(b, v)

        assert batched_ctx.runtime_cycles == scalar_ctx.runtime_cycles
        assert batched_ctx.instruction_count == scalar_ctx.instruction_count
        assert batched_ctx.opcode_counts() == scalar_ctx.opcode_counts()
        np.testing.assert_array_equal(
            batched_ctx.value(a).to_array(), scalar_ctx.value(b).to_array()
        )

    def test_single_vertex_stays_scalar(self):
        ctx = SisaContext(threads=1)
        api = c_api(ctx, 50)
        a = api.create([1, 2])
        api.insert(a, 3)
        api.remove(a, 1)
        api.insert(a)  # no-op
        assert sorted(ctx.value(a).to_array().tolist()) == [2, 3]


# ---------------------------------------------------------------------------
# Satellite: SisaSet batched parity + scoped lifetime
# ---------------------------------------------------------------------------


class TestSisaSetParity:
    def test_intersect_count_batch_matches_scalar(self):
        ctx = SisaContext(threads=2)
        a = SisaSet.create(ctx, range(0, 40, 2), universe=100)
        frontier = [
            SisaSet.create(ctx, range(0, 40, k), universe=100) for k in (3, 4, 5)
        ]
        counts = a.intersect_count_batch(frontier)
        expected = [a.intersect_count(o) for o in frontier]
        assert counts.tolist() == expected

    def test_intersect_batch_wraps_results(self):
        ctx = SisaContext(threads=2)
        a = SisaSet.create(ctx, [1, 2, 3, 4], universe=50)
        b = SisaSet.create(ctx, [2, 4, 6], universe=50)
        (result,) = a.intersect_batch([b])
        assert isinstance(result, SisaSet)
        assert sorted(result) == [2, 4]

    def test_intersect_many(self):
        ctx = SisaContext(threads=2)
        a = SisaSet.create(ctx, [1, 2, 3, 4, 5], universe=50)
        b = SisaSet.create(ctx, [2, 3, 4], universe=50)
        c = SisaSet.create(ctx, [3, 4, 9], universe=50)
        assert sorted(a.intersect_many(b, c)) == [3, 4]

    def test_context_manager_frees_set_id(self):
        ctx = SisaContext(threads=1)
        a = SisaSet.create(ctx, [1, 2, 3], universe=20)
        b = SisaSet.create(ctx, [2, 3, 4], universe=20)
        with a & b as shared:
            shared_id = shared.set_id
            assert shared_id in ctx.sm
        assert shared_id not in ctx.sm

    def test_context_manager_frees_on_exception(self):
        ctx = SisaContext(threads=1)
        a = SisaSet.create(ctx, [1], universe=20)
        with pytest.raises(RuntimeError):
            with a.clone() as temp:
                temp_id = temp.set_id
                raise RuntimeError("boom")
        assert temp_id not in ctx.sm
