"""Unit + property tests for set-operation kernels.

The property tests assert that every kernel variant agrees with Python
set semantics regardless of representation and sortedness — the core
functional-correctness invariant of the whole ISA.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SetError
from repro.sets import kernels
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

UNIVERSE = 96

subsets = st.sets(st.integers(min_value=0, max_value=UNIVERSE - 1), max_size=40)


def sa(elements, *, shuffle_seed=None):
    arr = np.asarray(sorted(elements), dtype=np.int64)
    s = SparseArray(arr, UNIVERSE)
    if shuffle_seed is not None:
        s = s.shuffled(shuffle_seed)
    return s


def db(elements):
    return DenseBitvector.from_elements(np.asarray(sorted(elements)), UNIVERSE)


class TestIntersectVariants:
    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_merge_matches_python(self, a, b):
        result = kernels.intersect_merge(sa(a), sa(b))
        assert result.to_python_set() == a & b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_gallop_matches_python(self, a, b):
        result = kernels.intersect_gallop(sa(a), sa(b))
        assert result.to_python_set() == a & b

    @given(subsets, subsets, st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_gallop_unsorted_small_side(self, a, b, seed):
        result = kernels.intersect_gallop(sa(a, shuffle_seed=seed), sa(b))
        assert result.to_python_set() == a & b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_sa_db_matches_python(self, a, b):
        result = kernels.intersect_sa_db(sa(a), db(b))
        assert result.to_python_set() == a & b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_db_db_matches_python(self, a, b):
        result = kernels.intersect_db_db(db(a), db(b))
        assert result.to_python_set() == a & b

    def test_universe_mismatch_rejected(self):
        with pytest.raises(SetError):
            kernels.intersect_merge(
                SparseArray([1], universe=5), SparseArray([1], universe=6)
            )


class TestUnionVariants:
    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_merge_matches_python(self, a, b):
        assert kernels.union_merge(sa(a), sa(b)).to_python_set() == a | b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_sa_db_matches_python(self, a, b):
        assert kernels.union_sa_db(sa(a), db(b)).to_python_set() == a | b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_db_db_matches_python(self, a, b):
        assert kernels.union_db_db(db(a), db(b)).to_python_set() == a | b


class TestDifferenceVariants:
    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_merge_matches_python(self, a, b):
        assert kernels.difference_merge(sa(a), sa(b)).to_python_set() == a - b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_gallop_matches_python(self, a, b):
        assert kernels.difference_gallop(sa(a), sa(b)).to_python_set() == a - b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_sa_db_matches_python(self, a, b):
        assert kernels.difference_sa_db(sa(a), db(b)).to_python_set() == a - b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_db_sa_matches_python(self, a, b):
        assert kernels.difference_db_sa(db(a), sa(b)).to_python_set() == a - b

    @given(subsets, subsets)
    @settings(max_examples=60, deadline=None)
    def test_db_db_matches_python(self, a, b):
        assert kernels.difference_db_db(db(a), db(b)).to_python_set() == a - b


class TestGenericDispatch:
    @given(subsets, subsets, st.booleans(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_intersect_any_representation(self, a, b, dense_a, dense_b):
        va = db(a) if dense_a else sa(a)
        vb = db(b) if dense_b else sa(b)
        assert kernels.intersect(va, vb).to_python_set() == a & b

    @given(subsets, subsets, st.booleans(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_union_any_representation(self, a, b, dense_a, dense_b):
        va = db(a) if dense_a else sa(a)
        vb = db(b) if dense_b else sa(b)
        assert kernels.union(va, vb).to_python_set() == a | b

    @given(subsets, subsets, st.booleans(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_difference_any_representation(self, a, b, dense_a, dense_b):
        va = db(a) if dense_a else sa(a)
        vb = db(b) if dense_b else sa(b)
        assert kernels.difference(va, vb).to_python_set() == a - b

    @given(subsets, subsets, st.booleans(), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_counts_match_materialized(self, a, b, dense_a, dense_b):
        va = db(a) if dense_a else sa(a)
        vb = db(b) if dense_b else sa(b)
        assert kernels.intersect_cardinality(va, vb) == len(a & b)
        assert kernels.union_cardinality(va, vb) == len(a | b)
        assert kernels.difference_cardinality(va, vb) == len(a - b)


class TestAlgebraicLaws:
    @given(subsets, subsets)
    @settings(max_examples=40, deadline=None)
    def test_de_morgan_difference(self, a, b):
        """A \\ B == A ∩ B' — the identity SISA-PUM exploits (§8.1)."""
        left = kernels.difference_db_db(db(a), db(b)).to_python_set()
        right = kernels.intersect_db_db(db(a), db(b).complement()).to_python_set()
        assert left == right

    @given(subsets, subsets)
    @settings(max_examples=40, deadline=None)
    def test_inclusion_exclusion(self, a, b):
        assert kernels.union_cardinality(sa(a), sa(b)) == len(a) + len(b) - len(
            a & b
        )
