"""Unit tests for edge-list I/O."""

import io

import pytest

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.io import read_edge_list, write_edge_list


class TestRead:
    def test_round_trip(self, small_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(small_graph, path)
        back = read_edge_list(path, num_vertices=small_graph.num_vertices)
        assert back == small_graph

    def test_round_trip_via_stringio(self, small_graph):
        buf = io.StringIO()
        write_edge_list(small_graph, buf)
        buf.seek(0)
        back = read_edge_list(buf, num_vertices=small_graph.num_vertices)
        assert back == small_graph

    def test_comments_skipped(self):
        buf = io.StringIO("% comment\n# another\n0 1\n1 2\n")
        g = read_edge_list(buf)
        assert g.num_edges == 2

    def test_weight_column_ignored(self):
        buf = io.StringIO("0 1 0.5\n1 2 0.7\n")
        g = read_edge_list(buf)
        assert g.num_edges == 2

    def test_infers_vertex_count(self):
        buf = io.StringIO("0 7\n")
        g = read_edge_list(buf)
        assert g.num_vertices == 8

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("0\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("a b\n"))

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("-1 2\n"))

    def test_empty_file(self):
        g = read_edge_list(io.StringIO(""))
        assert g.num_vertices == 0
