"""Correctness tests for learning-flavored algorithms: similarity,
clustering, link prediction, degeneracy, BFS."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.bfs import bfs
from repro.algorithms.clustering import clusters_from_edges, jarvis_patrick
from repro.algorithms.common import make_context
from repro.algorithms.degeneracy import approx_degeneracy, kcore_from_eta
from repro.algorithms.link_prediction import (
    candidate_pairs,
    edge_ids,
    link_prediction_effectiveness,
)
from repro.algorithms.similarity import similarity_on, vertex_similarity
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import complete_graph, gnp_random_graph, path_graph
from repro.graphs.orientation import degeneracy_order
from repro.runtime.setgraph import SetGraph

from conftest import to_networkx


class TestSimilarity:
    @pytest.fixture
    def setup(self, random_graph):
        ctx = make_context(threads=1, mode="sisa")
        sg = SetGraph.from_graph(random_graph, ctx)
        return random_graph, ctx, sg

    def test_jaccard_matches_networkx(self, setup):
        g, ctx, sg = setup
        nxg = to_networkx(g)
        for u, v in [(0, 1), (3, 7), (10, 20)]:
            ((__, __, expected),) = nx.jaccard_coefficient(nxg, [(u, v)])
            assert similarity_on(ctx, sg, u, v, measure="jaccard") == pytest.approx(
                expected
            )

    def test_adamic_adar_matches_networkx(self, setup):
        g, ctx, sg = setup
        nxg = to_networkx(g)
        for u, v in [(0, 1), (5, 9)]:
            ((__, __, expected),) = nx.adamic_adar_index(nxg, [(u, v)])
            assert similarity_on(
                ctx, sg, u, v, measure="adamic_adar"
            ) == pytest.approx(expected)

    def test_resource_allocation_matches_networkx(self, setup):
        g, ctx, sg = setup
        nxg = to_networkx(g)
        ((__, __, expected),) = nx.resource_allocation_index(nxg, [(2, 4)])
        assert similarity_on(
            ctx, sg, 2, 4, measure="resource_allocation"
        ) == pytest.approx(expected)

    def test_preferential_attachment(self, setup):
        g, ctx, sg = setup
        expected = g.degree(1) * g.degree(2)
        assert similarity_on(
            ctx, sg, 1, 2, measure="preferential_attachment"
        ) == expected

    def test_common_and_total_neighbors(self, setup):
        g, ctx, sg = setup
        nu = set(map(int, g.neighbors(3)))
        nv = set(map(int, g.neighbors(8)))
        assert similarity_on(ctx, sg, 3, 8, measure="common_neighbors") == len(
            nu & nv
        )
        assert similarity_on(ctx, sg, 3, 8, measure="total_neighbors") == len(
            nu | nv
        )

    def test_overlap(self, setup):
        g, ctx, sg = setup
        nu = set(map(int, g.neighbors(3)))
        nv = set(map(int, g.neighbors(8)))
        expected = len(nu & nv) / min(len(nu), len(nv))
        assert similarity_on(ctx, sg, 3, 8, measure="overlap") == pytest.approx(
            expected
        )

    def test_unknown_measure_rejected(self, setup):
        g, ctx, sg = setup
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            similarity_on(ctx, sg, 0, 1, measure="cosine-ish")

    def test_end_to_end_wrapper(self, random_graph):
        run = vertex_similarity(random_graph, 0, 1, measure="jaccard")
        assert 0.0 <= run.output <= 1.0


class TestClustering:
    def test_kept_edges_satisfy_threshold(self, random_graph):
        run = jarvis_patrick(random_graph, tau=2.0, threads=4)
        adjacency = [
            set(map(int, random_graph.neighbors(v)))
            for v in range(random_graph.num_vertices)
        ]
        kept = set(run.output["edges"])
        for u, v in random_graph.edge_array():
            common = len(adjacency[int(u)] & adjacency[int(v)])
            assert ((int(u), int(v)) in kept) == (common > 2.0)

    def test_modes_agree(self, random_graph):
        a = jarvis_patrick(random_graph, tau=1.0, threads=4, mode="sisa")
        b = jarvis_patrick(random_graph, tau=1.0, threads=4, mode="cpu-set")
        assert a.output["edges"] == b.output["edges"]

    def test_complete_graph_single_cluster(self):
        run = jarvis_patrick(complete_graph(8), tau=1.0, threads=2)
        assert len(run.output["clusters"]) == 1
        assert run.output["clusters"][0] == set(range(8))

    def test_union_find_components(self):
        clusters = clusters_from_edges(6, [(0, 1), (1, 2), (4, 5)])
        assert {frozenset(c) for c in clusters} == {
            frozenset({0, 1, 2}),
            frozenset({4, 5}),
        }


class TestLinkPrediction:
    def test_edge_ids_canonical(self):
        edges = np.array([[3, 1], [1, 3], [0, 2]])
        ids = edge_ids(edges, 10)
        assert ids[0] == ids[1] == 13
        assert ids[2] == 2

    def test_candidates_are_two_hop_nonedges(self, random_graph):
        pairs = candidate_pairs(random_graph, limit=200)
        for u, v in pairs:
            assert not random_graph.has_edge(int(u), int(v))
            nu = set(map(int, random_graph.neighbors(int(u))))
            nv = set(map(int, random_graph.neighbors(int(v))))
            assert nu & nv

    def test_effectiveness_bounded(self):
        g = gnp_random_graph(60, 0.2, seed=2)
        run = link_prediction_effectiveness(
            g, removal_fraction=0.15, threads=4, seed=3
        )
        result = run.output
        assert 0 <= result.effectiveness <= result.predicted_edges
        assert 0.0 <= result.precision <= 1.0

    def test_prediction_beats_random_on_clustered_graph(self):
        # On a graph of dense blocks, Jaccard prediction must recover
        # some removed intra-block edges.
        blocks = []
        for b in range(5):
            base = b * 12
            blocks += [
                (base + i, base + j) for i in range(12) for j in range(i + 1, 12)
            ]
        g = CSRGraph.from_edges(60, blocks)
        run = link_prediction_effectiveness(
            g, removal_fraction=0.1, threads=4, seed=5
        )
        assert run.output.effectiveness > 0

    def test_invalid_fraction(self, random_graph):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            link_prediction_effectiveness(random_graph, removal_fraction=1.5)


class TestApproxDegeneracy:
    def test_eta_assigns_all(self, random_graph):
        run = approx_degeneracy(random_graph, threads=4)
        assert np.all(run.output >= 0)

    def test_eta_rounds_logarithmic(self, random_graph):
        run = approx_degeneracy(random_graph, threads=4)
        rounds = int(run.output.max()) + 1
        assert rounds <= 4 * int(math.log2(random_graph.num_vertices)) + 4

    def test_matches_pure_graph_version(self, random_graph):
        from repro.graphs.orientation import approx_degeneracy_order

        run = approx_degeneracy(random_graph, threads=1, eps=0.5)
        pure = approx_degeneracy_order(random_graph, eps=0.5)
        # Same round structure: vertices stripped together share a round.
        eta = run.output
        rank_round = {int(v): int(eta[v]) for v in range(random_graph.num_vertices)}
        # The pure version's order groups by round; verify monotonicity.
        seen_rounds = [rank_round[int(v)] for v in pure.order]
        assert seen_rounds == sorted(seen_rounds)

    def test_kcore_from_eta(self):
        g = complete_graph(6)
        eta = approx_degeneracy(g, threads=1).output
        core = kcore_from_eta(g, eta, 5)
        assert len(core) == 6
        assert len(kcore_from_eta(g, eta, 6)) == 0


class TestBfs:
    @pytest.mark.parametrize("direction", ["top-down", "bottom-up", "auto"])
    def test_parents_form_bfs_tree(self, random_graph, direction):
        run = bfs(random_graph, 0, direction=direction, threads=4)
        parent = run.output
        nxg = to_networkx(random_graph)
        expected_depth = nx.single_source_shortest_path_length(nxg, 0)
        # Depth via parent pointers must equal BFS depth.
        def depth(v):
            d = 0
            while parent[v] != v:
                v = parent[v]
                d += 1
                assert d <= random_graph.num_vertices
            return d

        for v in range(random_graph.num_vertices):
            if v in expected_depth:
                assert parent[v] != -1
                assert depth(v) == expected_depth[v]
            else:
                assert parent[v] == -1

    def test_path_graph_parents(self):
        run = bfs(path_graph(5), 0, threads=1)
        assert list(run.output) == [0, 0, 1, 2, 3]

    def test_invalid_root(self, random_graph):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            bfs(random_graph, -1)

    def test_invalid_direction(self, random_graph):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            bfs(random_graph, 0, direction="sideways")
