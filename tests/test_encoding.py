"""Unit + property tests for the RISC-V instruction encoding (Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IsaError
from repro.isa.encoding import decode, encode
from repro.isa.opcodes import CUSTOM_OPCODE, MAX_FUNCT7, Opcode


class TestEncode:
    def test_opcode_field_is_custom(self):
        word = encode(0x4, rd=1, rs1=2, rs2=3)
        assert word & 0x7F == CUSTOM_OPCODE

    def test_known_layout(self):
        word = encode(0x1, rd=5, rs1=10, rs2=20, xd=True, xs1=True, xs2=False)
        assert (word >> 25) & 0x7F == 0x1
        assert (word >> 20) & 0x1F == 20
        assert (word >> 15) & 0x1F == 10
        assert (word >> 14) & 1 == 1
        assert (word >> 13) & 1 == 1
        assert (word >> 12) & 1 == 0
        assert (word >> 7) & 0x1F == 5

    def test_funct7_out_of_range(self):
        with pytest.raises(IsaError):
            encode(MAX_FUNCT7 + 1)

    def test_register_out_of_range(self):
        with pytest.raises(IsaError):
            encode(0, rd=32)
        with pytest.raises(IsaError):
            encode(0, rs1=-1)

    def test_fits_in_32_bits(self):
        word = encode(MAX_FUNCT7, rd=31, rs1=31, rs2=31)
        assert 0 <= word < (1 << 32)


class TestDecode:
    def test_rejects_non_sisa_opcode(self):
        with pytest.raises(IsaError):
            decode(0x33)  # a standard RISC-V OP instruction

    def test_rejects_oversized_word(self):
        with pytest.raises(IsaError):
            decode(1 << 32)

    @given(
        st.integers(0, MAX_FUNCT7),
        st.integers(0, 31),
        st.integers(0, 31),
        st.integers(0, 31),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, funct7, rd, rs1, rs2, xd, xs1, xs2):
        word = encode(funct7, rd=rd, rs1=rs1, rs2=rs2, xd=xd, xs1=xs1, xs2=xs2)
        fields = decode(word)
        assert fields.funct7 == funct7
        assert fields.rd == rd
        assert fields.rs1 == rs1
        assert fields.rs2 == rs2
        assert fields.xd == xd
        assert fields.xs1 == xs1
        assert fields.xs2 == xs2
        assert fields.opcode == CUSTOM_OPCODE


class TestOpcodeSpace:
    def test_table5_opcodes(self):
        """Table 5 of the paper fixes opcodes 0x0-0x6."""
        assert Opcode.INTERSECT_SA_SA_MERGE == 0x0
        assert Opcode.INTERSECT_SA_SA_GALLOP == 0x1
        assert Opcode.INTERSECT_SA_SA_AUTO == 0x2
        assert Opcode.INTERSECT_SA_DB == 0x3
        assert Opcode.INTERSECT_DB_DB == 0x4
        assert Opcode.INSERT_DB == 0x5
        assert Opcode.REMOVE_DB == 0x6

    def test_under_twenty_core_instructions(self):
        """The paper: 'The number of SISA instructions is less than 20'
        for the core set, within the 128-slot funct7 space."""
        assert len(Opcode) <= 32
        assert max(Opcode) <= MAX_FUNCT7

    def test_all_opcodes_encodable(self):
        for opcode in Opcode:
            fields = decode(encode(int(opcode), rd=1, rs1=2, rs2=3))
            assert fields.funct7 == int(opcode)
