"""Tests for the schedule certifier and the happens-before race
detector: DAG lowering, lane assignment, the what-if speedup model,
bit-identical scheduled execution (including the hypothesis property
that *every* admissible topological order matches sequential outputs),
the pool's ``lanes``/``racecheck`` path, rogue-write detection, and
the two shared-state lint rules that ride along."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static import (
    DEFAULT_RULES,
    AccessLog,
    CertifiedSchedule,
    certify_schedule,
    find_races,
    lint_source,
    raise_on_races,
    replay_certified,
)
from repro.analysis.static.smoke import (
    SOAK_WORKLOADS,
    compile_batch,
    full_grid,
    make_session,
    racecheck_smoke,
    schedule_smoke,
    soak_batch,
)
from repro.errors import ConfigError, HazardError, RaceError, SisaError
from repro.graphs.streams import EdgeBatch, canonical_edges
from repro.serving import RetryPolicy
from repro.session import PlanExecutor, SessionPool
from repro.session.cache import fingerprint

N = 60


def _grid_plans(session=None, n=N):
    session = session or make_session(n=n)
    return session, compile_batch(session, full_grid(n))


def _reference_outputs(n=N):
    """Sequential per-workload outputs of the soak mix on a fresh
    session — the bit-identity oracle for every scheduled replay."""
    session = make_session(n=n)
    return {
        name: fingerprint(session.run(name, **dict(params)).output)
        for name, params in SOAK_WORKLOADS
    }


@pytest.fixture(scope="module")
def soak_reference():
    return _reference_outputs()


# ---------------------------------------------------------------------------
# Certification: DAG lowering and lane assignment
# ---------------------------------------------------------------------------


class TestCertifySchedule:
    def test_grid_certifies(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=4)
        assert isinstance(schedule, CertifiedSchedule)
        assert len(schedule.nodes) == sum(len(p.stages) for p in plans)
        assert len(schedule.edges) > 0
        assert not schedule.measured

    def test_order_is_a_topological_permutation(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=4)
        assert sorted(schedule.order) == list(range(len(schedule.nodes)))
        assert schedule.is_topological(schedule.order)

    def test_lane_assignment_covers_all_nodes(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=4)
        assert set(schedule.lane_of) == set(range(len(schedule.nodes)))
        assert all(0 <= lane < 4 for lane in schedule.lane_of.values())

    def test_program_order_is_happens_before(self):
        session = make_session(n=N)
        plans = [session.compile("clustering_coefficient")]
        schedule = certify_schedule(plans, lanes=2)
        for later in range(1, len(schedule.nodes)):
            assert schedule.happens_before(0, later)
            assert not schedule.happens_before(later, 0)

    def test_independent_plans_are_unordered(self):
        session = make_session(n=N)
        plans = [
            session.compile("triangles"),
            session.compile("bfs", root=0),
        ]
        schedule = certify_schedule(plans, lanes=2)
        tri_last = len(plans[0].stages) - 1
        bfs_first = len(plans[0].stages)
        # bfs reads no structure triangles writes after the struct
        # build, so the tails of the two plans commute.
        tri_done = schedule.happens_before(tri_last, bfs_first)
        bfs_done = schedule.happens_before(bfs_first, tri_last)
        assert not (tri_done and bfs_done)

    def test_matches_detects_foreign_batch(self):
        session, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=2)
        assert schedule.matches(plans)
        other = [session.compile("triangles")]
        assert not schedule.matches(other)

    def test_lanes_must_be_positive(self):
        _, plans = _grid_plans()
        with pytest.raises(ConfigError):
            certify_schedule(plans, lanes=0)

    def test_multi_session_batch_rejected(self):
        s1, p1 = _grid_plans()
        s2 = make_session(n=N)
        plans = [s1.compile("triangles"), s2.compile("triangles")]
        with pytest.raises(ConfigError):
            certify_schedule(plans)

    def test_uncertified_batch_rejected(self):
        session = make_session(n=N)
        dyn = session.attach_stream()
        plan = session.compile("triangles")
        edges = canonical_edges(
            np.asarray([[0, 5], [1, 11]], dtype=np.int64),
            session.graph.num_vertices,
        )
        dyn.apply_batch(
            EdgeBatch(
                insertions=edges,
                deletions=np.empty((0, 2), dtype=np.int64),
            )
        )  # the stream advanced past the plan's pinned version
        with pytest.raises(HazardError) as err:
            certify_schedule([plan])
        assert "uncertified" in str(err.value)

    def test_explicit_non_topological_order_rejected(self):
        session = make_session(n=N)
        plans = [session.compile("clustering_coefficient")]
        schedule = certify_schedule(plans, lanes=2)
        backwards = tuple(reversed(schedule.order))
        with pytest.raises(SisaError):
            schedule.with_order(backwards)

    def test_random_topological_orders_are_seeded(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=4)
        a = schedule.random_topological_order(7)
        b = schedule.random_topological_order(7)
        c = schedule.random_topological_order(8)
        assert a == b
        assert schedule.is_topological(a)
        assert schedule.is_topological(c)


class TestWhatIfModel:
    def test_single_lane_has_no_parallelism(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=1)
        model = schedule.what_if()
        assert model.cross_edges == 0
        assert model.merge_cycles == 0.0
        assert model.parallel_cycles == pytest.approx(
            model.sequential_cycles
        )
        assert model.speedup == pytest.approx(1.0)

    def test_makespan_bounded_by_sequential(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=4)
        for lanes in (1, 2, 4, 8):
            model = schedule.what_if(lanes)
            assert model.makespan <= model.sequential_cycles + 1e-9
            assert model.lanes == lanes
            assert len(model.lane_busy) == lanes

    def test_measured_model_after_replay(self, soak_reference):
        session = make_session(n=N)
        plans = soak_batch(session, tenants=4)
        schedule = certify_schedule(plans, lanes=4)
        _results, races, _log = replay_certified(
            session, plans, schedule, lanes=4
        )
        assert races == []
        assert schedule.measured
        model = schedule.what_if()
        assert model.measured
        assert model.parallel_cycles <= model.sequential_cycles
        assert model.speedup > 1.0

    def test_as_dict_roundtrips_to_json(self):
        _, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=2)
        payload = json.dumps(schedule.as_dict())
        data = json.loads(payload)
        assert data["lanes"] == 2
        assert len(data["nodes"]) == len(schedule.nodes)
        assert len(data["edges"]) == len(schedule.edges)


# ---------------------------------------------------------------------------
# Scheduled execution: bit-identity with sequential outputs
# ---------------------------------------------------------------------------


class TestScheduledExecution:
    def test_grid_replay_matches_sequential(self):
        session, plans = _grid_plans()
        results, races, _log = replay_certified(session, plans, lanes=4)
        assert races == []
        ref_session, _ = _grid_plans(make_session(n=N))
        for (name, params), result in zip(full_grid(N), results):
            assert result.ok and result.scheduled and not result.fused
            ref = ref_session.run(name, **dict(params))
            assert fingerprint(result.output) == fingerprint(ref.output)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_every_topological_order_is_bit_identical(
        self, soak_reference, seed
    ):
        session = make_session(n=N)
        plans = soak_batch(session, tenants=2)
        results, races, _log = replay_certified(
            session, plans, lanes=4, seed=seed
        )
        assert races == []
        for plan, result in zip(plans, results):
            assert (
                fingerprint(result.output) == soak_reference[plan.name]
            ), f"{plan.name} diverged under seed {seed}"

    def test_schedule_for_wrong_batch_rejected(self):
        session, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=2)
        other = [session.compile("triangles")]
        with pytest.raises(ConfigError):
            PlanExecutor(session, schedule=schedule).execute(other)

    def test_access_log_requires_schedule(self):
        session = make_session(n=N)
        with pytest.raises(ConfigError):
            PlanExecutor(session, access_log=AccessLog())


# ---------------------------------------------------------------------------
# Pool integration: run(lanes=..., racecheck=...)
# ---------------------------------------------------------------------------


def _submit_soak(pool, tenants=8):
    graph = make_session(n=N).graph
    for tenant in range(tenants):
        for name, params in SOAK_WORKLOADS:
            pool.submit(
                "g", name, tenant=f"tenant-{tenant}", graph=graph, **params
            )
    return tenants * len(SOAK_WORKLOADS)


class TestPoolScheduled:
    def test_racecheck_run_is_race_free_and_bit_identical(
        self, soak_reference
    ):
        pool = SessionPool(threads=8)
        count = _submit_soak(pool)
        results = pool.run(lanes=4, racecheck=True)
        assert len(results) == count
        for result in results:
            assert result.ok and result.scheduled
            assert (
                fingerprint(result.output)
                == soak_reference[result.workload]
            )
        schedule = pool.last_schedules["g"]
        assert schedule.measured
        assert schedule.what_if().speedup >= 1.5

    def test_lanes_without_racecheck_also_schedules(self, soak_reference):
        pool = SessionPool(threads=8)
        count = _submit_soak(pool, tenants=2)
        results = pool.run(lanes=2)
        assert len(results) == count
        assert all(r.ok and r.scheduled for r in results)
        for result in results:
            assert (
                fingerprint(result.output)
                == soak_reference[result.workload]
            )

    def test_scheduled_run_matches_default_pool_run(self):
        scheduled = SessionPool(threads=8)
        default = SessionPool(threads=8)
        _submit_soak(scheduled, tenants=2)
        _submit_soak(default, tenants=2)
        a = scheduled.run(lanes=4, racecheck=True)
        b = default.run()
        assert [
            fingerprint(r.output) for r in a
        ] == [fingerprint(r.output) for r in b]

    def test_hardened_pool_rejects_scheduling(self):
        pool = SessionPool(threads=8, retry=RetryPolicy(max_retries=2))
        with pytest.raises(ConfigError):
            pool.run(lanes=4)


# ---------------------------------------------------------------------------
# Race detection: rogue undeclared writes are caught
# ---------------------------------------------------------------------------


def _arm_rogue_cache_write(plans):
    """Wrap the first call-kind stage of the *last* plan so executing
    it invalidates the shared result cache — a write the stage never
    declared, unordered against every independent plan's cache reads."""
    for plan in reversed(plans):
        for stage in plan.stages:
            if stage.kind == "call" and stage.run is not None:
                orig = stage.run

                def rogue(session, state, _orig=orig):
                    out = _orig(session, state)
                    session._results.invalidate()  # undeclared shared write
                    return out

                stage.run = rogue
                return plan
    raise AssertionError("no call stage to arm")  # pragma: no cover


class TestRaceDetector:
    def test_injected_undeclared_write_is_caught(self):
        session, plans = _grid_plans()
        rogue_plan = _arm_rogue_cache_write(plans)
        _results, races, _log = replay_certified(session, plans, lanes=4)
        assert races, "rogue cache invalidation went undetected"
        race = races[0]
        assert race.structure == "result-cache"
        assert "write" in (race.a.op, race.b.op)
        assert rogue_plan.name in (race.a.stage or "") or any(
            rogue_plan.name in (r.a.stage or "") + (r.b.stage or "")
            for r in races
        )

    def test_raise_on_races_wraps_in_race_error(self):
        session, plans = _grid_plans()
        _arm_rogue_cache_write(plans)
        _results, races, _log = replay_certified(session, plans, lanes=4)
        with pytest.raises(RaceError) as err:
            raise_on_races(races, context="test replay")
        assert err.value.details["races"]
        assert "test replay" in str(err.value)

    def test_rogue_orientation_desync_is_caught(self):
        session = make_session(n=N)
        session.attach_stream()
        session.maintain_orientation()
        # Two independent oriented readers: their declared orientation
        # accesses are unordered, so a rogue desync inside one races
        # with the other's read.
        plans = [
            session.compile("triangles"),
            session.compile("kclique", k=3),
        ]
        armed = False
        for stage in plans[0].stages:
            if stage.kind == "call" and stage.run is not None:
                orig = stage.run

                def rogue(sess, state, _orig=orig):
                    out = _orig(sess, state)
                    sess.orientation_maintainer.mark_desynced()
                    return out

                stage.run = rogue
                armed = True
                break
        assert armed, "no call stage to arm"
        _results, races, _log = replay_certified(session, plans, lanes=2)
        assert any(race.structure == "orientation" for race in races)

    def test_clean_replay_reports_no_races(self):
        session, plans = _grid_plans()
        schedule = certify_schedule(plans, lanes=4)
        _results, races, log = replay_certified(
            session, plans, schedule, lanes=4
        )
        assert races == []
        assert len(log.accesses) > 0
        assert find_races(schedule, log) == []

    def test_smoke_helpers_are_race_free(self):
        for label, schedule, races in racecheck_smoke(n=N, lanes=4):
            assert races == [], label
            assert schedule.measured, label
        labels = [label for label, _ in schedule_smoke(n=N, lanes=4)]
        assert labels == ["full-grid", "robustness-soak"]


# ---------------------------------------------------------------------------
# Lint rules: shared-structure and session-state mutation
# ---------------------------------------------------------------------------


ROGUE_SNIPPET = """\
class Meddler:
    def poke(self, session, cache, pool):
        cache._entries.clear()
        cache._entries["k"] = 1
        session._results = None
        session._orientation_maintainer = None
        pool._tenant_cycles["t"] = 1.0
        pool._tenant_runs.update({"t": 2})
        scu = session.ctx.scu
        scu._decision_memo.pop(("k",), None)
"""


class TestSharedStateLintRules:
    def test_rules_registered_by_default(self):
        assert "shared-structure-write" in DEFAULT_RULES
        assert "session-state-mutation" in DEFAULT_RULES

    def test_rogue_mutations_flagged(self):
        violations = lint_source(ROGUE_SNIPPET, path="rogue.py")
        rules = {v.rule for v in violations}
        assert "shared-structure-write" in rules
        assert "session-state-mutation" in rules
        flagged = {
            v.line for v in violations if v.rule == "shared-structure-write"
        }
        assert flagged == {3, 4, 10}

    def test_owner_modules_exempt(self):
        owner = "class C:\n    def f(self):\n        self._entries.clear()\n"
        assert (
            lint_source(owner, path="src/repro/session/cache.py") == []
        )
        assert (
            lint_source(owner, path="src/repro/hw/cache.py") == []
        )
        foreign = lint_source(owner, path="src/repro/session/plan.py")
        assert [v.rule for v in foreign] == ["shared-structure-write"]

    def test_ledger_mutation_allowed_in_racecheck_module(self):
        shim = "class S:\n    def f(self, pool):\n        pool._tenant_runs['t'] = 1\n"
        assert (
            lint_source(
                shim, path="src/repro/analysis/static/racecheck.py"
            )
            == []
        )
        assert lint_source(shim, path="src/repro/session/session.py")

    def test_pragma_disables_rule(self):
        line = (
            "class C:\n    def f(self, cache):\n"
            "        cache._entries.clear()  "
            "# repolint: disable=shared-structure-write\n"
        )
        assert lint_source(line, path="elsewhere.py") == []


# ---------------------------------------------------------------------------
# CLI: --schedule / --racecheck / --json
# ---------------------------------------------------------------------------


class TestCli:
    def test_schedule_mode(self, capsys):
        from repro.analysis.static.__main__ import main

        assert main(["--schedule", "--lanes", "2"]) == 0
        out = capsys.readouterr().out
        assert "schedule[full-grid]" in out
        assert "schedule[robustness-soak]" in out

    def test_racecheck_json_report(self, tmp_path, capsys):
        from repro.analysis.static.__main__ import main

        path = tmp_path / "report.json"
        assert main(["--racecheck", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["status"] == 0
        soak = data["racecheck"]["robustness-soak"]
        assert soak["races"] == []
        assert soak["model"]["measured"] is True
        assert soak["model"]["speedup"] >= 1.5

    def test_default_json_covers_lint_and_verify(self, tmp_path):
        from repro.analysis.static.__main__ import main

        path = tmp_path / "default.json"
        assert main(["--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["lint"]["count"] == 0
        assert all(
            section["certified"] for section in data["verify"].values()
        )
