"""Unit tests for the hardware timing models."""

import pytest

from repro.errors import ConfigError
from repro.hw.cache import LruCache
from repro.hw.config import CpuConfig, HardwareConfig, commodity_cpu_config
from repro.hw.cost import Cost, ZERO_COST
from repro.hw.cpu import CpuBackend
from repro.hw.engine import ExecutionEngine
from repro.hw.pnm import PnmBackend
from repro.hw.pum import PumBackend


class TestConfig:
    def test_unit_conversions(self):
        hw = HardwareConfig(clock_ghz=2.0, dram_latency_ns=50.0)
        assert hw.dram_latency_cycles == 100.0
        assert hw.ns_to_cycles(10) == 20.0

    def test_pipelining_reduces_latency(self):
        hw = HardwareConfig(pipeline_depth=4.0)
        assert hw.effective_op_latency_cycles == hw.dram_latency_cycles / 4

    def test_stream_bottleneck_is_min(self):
        hw = HardwareConfig(
            vault_bandwidth_gbs=16.0, interconnect_bandwidth_gbs=8.0
        )
        assert hw.stream_bytes_per_cycle == hw.interconnect_bytes_per_cycle

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigError):
            HardwareConfig(clock_ghz=0)
        with pytest.raises(ConfigError):
            HardwareConfig(num_vaults=0)
        with pytest.raises(ConfigError):
            CpuConfig(max_threads=0)

    def test_cpu_bandwidth_contention(self):
        cpu = commodity_cpu_config()
        at_1 = cpu.effective_bandwidth_bytes_per_cycle(1)
        at_8 = cpu.effective_bandwidth_bytes_per_cycle(8)
        at_32 = cpu.effective_bandwidth_bytes_per_cycle(32)
        assert at_1 == at_8  # scales linearly up to the knee
        assert at_32 == pytest.approx(at_8 / 4)  # flat beyond it

    def test_default_cpu_is_pim_matched(self):
        cpu = CpuConfig()
        assert cpu.effective_bandwidth_bytes_per_cycle(
            32
        ) == cpu.effective_bandwidth_bytes_per_cycle(1)


class TestCost:
    def test_addition(self):
        total = Cost(1, 2, 3) + Cost(4, 5, 6)
        assert total == Cost(5, 7, 9)

    def test_scaling(self):
        assert Cost(1, 2, 3).scaled(2) == Cost(2, 4, 6)

    def test_cycles_with_bandwidth(self):
        assert Cost(10, 80, 5).cycles(8.0) == 10 + 5 + 10

    def test_zero(self):
        assert ZERO_COST.cycles(1.0) == 0.0


class TestPum:
    def test_cost_independent_of_cardinality(self):
        """The defining PUM property: only the universe size matters."""
        pum = PumBackend(HardwareConfig())
        assert pum.intersect(10_000) == pum.intersect(10_000)

    def test_cost_scales_with_universe(self):
        hw = HardwareConfig()
        pum = PumBackend(hw)
        small = pum.intersect(hw.row_size_bits)
        large = pum.intersect(hw.row_size_bits * hw.parallel_rows * 8)
        assert large.latency_cycles > small.latency_cycles

    def test_difference_needs_two_ops(self):
        pum = PumBackend(HardwareConfig())
        assert (
            pum.difference(1_000_000).latency_cycles
            > pum.intersect(1_000_000).latency_cycles
        )

    def test_bit_write_is_single_access(self):
        hw = HardwareConfig()
        pum = PumBackend(hw)
        assert pum.bit_write().latency_cycles == hw.effective_op_latency_cycles


class TestPnm:
    def test_streaming_monotone_in_size(self):
        pnm = PnmBackend(HardwareConfig())
        small = pnm.streaming(10, 10)
        large = pnm.streaming(1000, 1000)
        assert large.compute_cycles > small.compute_cycles
        assert large.memory_bytes > small.memory_bytes

    def test_galloping_beats_streaming_for_skewed_sizes(self):
        hw = HardwareConfig()
        pnm = PnmBackend(hw)
        bw = hw.vault_bytes_per_cycle
        stream = pnm.streaming(5, 100_000).cycles(bw)
        gallop = pnm.galloping(5, 100_000).cycles(bw)
        assert gallop < stream

    def test_streaming_beats_galloping_for_similar_sizes(self):
        hw = HardwareConfig()
        pnm = PnmBackend(hw)
        bw = hw.vault_bytes_per_cycle
        stream = pnm.streaming(5000, 5000).cycles(bw)
        gallop = pnm.galloping(5000, 5000).cycles(bw)
        assert stream < gallop

    def test_empty_set_galloping(self):
        pnm = PnmBackend(HardwareConfig())
        assert pnm.galloping(0, 100).compute_cycles == 0

    def test_membership_costs_ordered(self):
        pnm = PnmBackend(HardwareConfig())
        dense = pnm.membership_dense().cycles(8)
        sorted_ = pnm.membership_sorted(1000).cycles(8)
        unsorted = pnm.membership_unsorted(1000).cycles(8)
        assert dense < sorted_ < unsorted


class TestCpuBackend:
    def test_probe_scales_with_degree(self):
        cpu = CpuBackend(CpuConfig())
        assert (
            cpu.edge_probe(1000).compute_cycles > cpu.edge_probe(4).compute_cycles
        )

    def test_merge_has_memory_traffic(self):
        cpu = CpuBackend(CpuConfig())
        cost = cpu.merge(100, 100, output_size=50)
        assert cost.memory_bytes == 4 * 250

    def test_bitwise_passes(self):
        cpu = CpuBackend(CpuConfig())
        with_out = cpu.bitwise(6400, output=True)
        without = cpu.bitwise(6400, output=False)
        assert with_out.memory_bytes > without.memory_bytes


class TestEngine:
    def test_greedy_balancing(self):
        engine = ExecutionEngine(2, bytes_per_cycle=8.0)
        for cycles in (100, 100, 100, 100):
            engine.begin_task()
            engine.charge(Cost(compute_cycles=cycles))
        report = engine.report()
        assert report.lane_times == [200.0, 200.0]
        assert report.runtime_cycles == 200.0

    def test_imbalanced_tasks(self):
        engine = ExecutionEngine(2, bytes_per_cycle=8.0)
        engine.begin_task()
        engine.charge(Cost(compute_cycles=1000))
        for __ in range(4):
            engine.begin_task()
            engine.charge(Cost(compute_cycles=10))
        report = engine.report()
        assert report.runtime_cycles == 1000.0
        assert max(report.stall_fractions) > 0.9  # the idle lane stalls

    def test_memory_time_accounted(self):
        engine = ExecutionEngine(1, bytes_per_cycle=2.0)
        engine.begin_task()
        engine.charge(Cost(compute_cycles=10, memory_bytes=20))
        assert engine.runtime_cycles == 20.0

    def test_sequential_overhead(self):
        engine = ExecutionEngine(4, bytes_per_cycle=8.0)
        engine.charge_sequential(Cost(compute_cycles=50))
        assert engine.runtime_cycles == 50.0

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            ExecutionEngine(0, 1.0)
        with pytest.raises(ConfigError):
            ExecutionEngine(1, 0.0)


class TestLruCache:
    def test_hit_after_insert(self):
        cache = LruCache(2)
        assert not cache.access(1)
        assert cache.access(1)

    def test_eviction_order(self):
        cache = LruCache(2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # 1 is now most recent
        cache.access(3)  # evicts 2
        assert cache.access(1)
        assert not cache.access(2)

    def test_zero_capacity_always_misses(self):
        cache = LruCache(0)
        assert not cache.access(1)
        assert not cache.access(1)
        assert cache.stats.hit_rate == 0.0

    def test_invalidate(self):
        cache = LruCache(4)
        cache.access(1)
        cache.invalidate(1)
        assert not cache.access(1)

    def test_stats(self):
        cache = LruCache(4)
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
