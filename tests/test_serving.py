"""Serving-hardening tests: validation rule engine, admission control,
fault isolation + drift retry, graceful degradation, and the
fault-equivalence property (a faulted multi-tenant batch returns
results bit-identical to a fault-free run)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    AdmissionError,
    ConfigError,
    InjectedFault,
    SisaError,
    ValidationError,
)
from repro.graphs.generators import gnp_random_graph
from repro.serving import (
    AdmissionController,
    FaultInjector,
    RetryPolicy,
    RuleSet,
    TenantQuota,
    available_rules,
    default_rules,
    rule,
    validate_config_overrides,
)
from repro.session import (
    ExecutionConfig,
    FailedResult,
    SessionPool,
    SisaSession,
)


def _graph(n=24, p=0.25, seed=7):
    return gnp_random_graph(n, p, seed=seed)


# ---------------------------------------------------------------------------
# Validation rule engine
# ---------------------------------------------------------------------------


class TestValidationEngine:
    def test_builtin_rules_registered(self):
        names = set(available_rules())
        assert {
            "params-accepted",
            "params-required",
            "param-domains",
            "vertices-in-range",
        } <= names
        assert "config-overrides" in available_rules("config")

    def test_default_rules_compose_per_workload(self):
        rs = default_rules("triangles")
        assert "params-accepted" in set(rs)
        assert len(rs) >= 3

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown validation rule"):
            RuleSet(["params-accepted", "no-such-rule"])

    def test_duplicate_registration_guard(self):
        @rule("serving-test-rule", workloads=("triangles",), replace=True)
        def _never_fires(ctx):
            return None

        with pytest.raises(SisaError, match="already registered"):

            @rule("serving-test-rule", workloads=("triangles",))
            def _shadow(ctx):
                return None

    def test_custom_workload_rule_enforced_at_the_door(self):
        @rule("kclique-forbid-unbatched", workloads=("kclique",), replace=True)
        def _forbid(ctx):
            if ctx.params.get("batch") is False:
                return "kclique must run batched on this deployment"
            return None

        session = SisaSession(_graph(), threads=2)
        with pytest.raises(ValidationError, match="batched"):
            session.compile("kclique", k=3, batch=False)
        # Other workloads are untouched by the scoped rule.
        session.compile(
            "similarity_pairs",
            pairs=np.array([[0, 1]], dtype=np.int64),
            batch=False,
        )

    def test_unknown_parameter_structured_details(self):
        session = SisaSession(_graph(), threads=2)
        with pytest.raises(ValidationError) as exc:
            session.compile("triangles", bogus=1)
        err = exc.value
        assert isinstance(err, ConfigError)  # old fronts still catch it
        assert err.details["workload"] == "triangles"
        rules_hit = [v["rule"] for v in err.details["violations"]]
        assert "params-accepted" in rules_hit

    def test_missing_required_parameter(self):
        session = SisaSession(_graph(), threads=2)
        with pytest.raises(ValidationError, match="k"):
            session.compile("kclique")

    def test_domain_rules(self):
        session = SisaSession(_graph(), threads=2)
        with pytest.raises(ValidationError, match="integer >= 1"):
            session.compile("kclique", k=0)
        with pytest.raises(ValidationError, match="removal_fraction"):
            session.compile("link_prediction", removal_fraction=1.5, seed=0)
        with pytest.raises(ValidationError, match="measure"):
            session.compile("similarity", u=0, v=1, measure="nope")

    def test_vertex_range_rule(self):
        session = SisaSession(_graph(n=10), threads=2)
        with pytest.raises(ValidationError, match="root"):
            session.compile("bfs", root=99)
        with pytest.raises(ValidationError, match="pairs"):
            session.compile(
                "similarity_pairs", pairs=np.array([[0, 99]], dtype=np.int64)
            )

    def test_pairs_shape_rule(self):
        session = SisaSession(_graph(), threads=2)
        with pytest.raises(ValidationError, match="shape"):
            session.compile(
                "similarity_pairs", pairs=np.array([0, 1], dtype=np.int64)
            )

    def test_view_runs_validate_through_same_door(self):
        session = SisaSession(_graph(), threads=2)
        session.attach_stream()
        snap = session.snapshot()
        with pytest.raises(ValidationError, match="bogus"):
            session.run("triangles", view=snap, bogus=1)

    def test_config_override_rule(self):
        with pytest.raises(ConfigError) as exc:
            validate_config_overrides({"threadz": 4})
        assert "threadz" in exc.value.details["unknown_keys"]

    def test_session_init_rejects_unknown_override_key(self):
        with pytest.raises(ConfigError) as exc:
            SisaSession(_graph(), threadz=4)
        assert "threadz" in exc.value.details["unknown_keys"]

    def test_pool_init_rejects_unknown_override_key(self):
        with pytest.raises(ConfigError) as exc:
            SessionPool(threadz=4)
        assert "threadz" in exc.value.details["unknown_keys"]
        with pytest.raises(ConfigError, match="ExecutionConfig"):
            SessionPool(config={"threads": 4})


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_quota_validation(self):
        with pytest.raises(ConfigError):
            TenantQuota(cycle_budget=0)
        with pytest.raises(ConfigError):
            TenantQuota(max_queue_depth=0)
        with pytest.raises(ConfigError):
            TenantQuota(max_deferred=-1)

    def test_decisions_are_deterministic(self):
        def trace():
            ac = AdmissionController(
                {"t": TenantQuota(cycle_budget=10.0, max_queue_depth=1)}
            )
            return [
                ac.decide("t", queued=0, deferred=0, spent=0.0).action,
                ac.decide("t", queued=1, deferred=0, spent=0.0).action,
                ac.decide("t", queued=1, deferred=8, spent=0.0).action,
                ac.decide("t", queued=0, deferred=0, spent=10.0).action,
            ]

        assert trace() == trace() == ["admit", "defer", "reject", "reject"]

    def test_budget_reject_raises_structured_error(self):
        pool = SessionPool(
            quotas={"t0": TenantQuota(cycle_budget=1.0)}, threads=2
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        pool.run()
        assert pool.tenant_cycles["t0"] > 1.0  # budget now exhausted
        with pytest.raises(AdmissionError) as exc:
            pool.submit("g", "triangles", tenant="t0")
        assert exc.value.details["reason"] == "budget-exhausted"
        assert exc.value.details["tenant"] == "t0"
        # Other tenants are unaffected.
        pool.submit("g", "triangles", tenant="t1")

    def test_defer_then_promote_in_order(self):
        pool = SessionPool(
            quotas={"t0": TenantQuota(max_queue_depth=1)}, threads=2
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        pool.submit("g", "local_clustering", tenant="t0")
        pool.submit("g", "kclique", k=3, tenant="t0")
        assert (pool.pending, pool.deferred) == (1, 2)
        first = pool.run()
        assert len(first) == 1 and first[0].workload == "triangles"
        # Queue drained: exactly one deferred plan promotes per run.
        second = pool.run()
        assert len(second) == 1 and second[0].workload == "local_clustering"
        third = pool.run()
        assert len(third) == 1 and third[0].workload == "kclique"
        assert pool.deferred == 0

    def test_deferral_window_overflow_rejects(self):
        pool = SessionPool(
            quotas={"t0": TenantQuota(max_queue_depth=1, max_deferred=1)},
            threads=2,
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        pool.submit("g", "local_clustering", tenant="t0")  # deferred
        with pytest.raises(AdmissionError) as exc:
            pool.submit("g", "kclique", k=3, tenant="t0")
        assert exc.value.details["reason"] == "queue-full"

    def test_default_quota_applies_to_unnamed_tenants(self):
        pool = SessionPool(
            default_quota=TenantQuota(max_queue_depth=1), threads=2
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="anyone")
        pool.submit("g", "local_clustering", tenant="anyone")
        assert pool.deferred == 1

    def test_controller_and_quotas_are_exclusive(self):
        with pytest.raises(ConfigError, match="not both"):
            SessionPool(
                admission=AdmissionController(),
                quotas={"t": TenantQuota()},
            )


# ---------------------------------------------------------------------------
# Fault isolation, retry, degradation
# ---------------------------------------------------------------------------


class _StageFault:
    """Minimal injector stub: fail named workloads' first N attempts."""

    def __init__(self, workload, times=1, exc=InjectedFault):
        self.workload = workload
        self.remaining = times
        self.exc = exc

    def before_batch(self, session, plans):
        pass

    def before_plan(self, session, plan):
        pass

    def on_stage(self, plan, stage):
        if plan.name == self.workload and self.remaining > 0:
            self.remaining -= 1
            raise self.exc(f"injected failure in {plan.name}")

    injected = {}


class TestFaultIsolation:
    def test_run_many_isolate_returns_failed_slot(self):
        session = SisaSession(_graph(), threads=2)
        results = session.run_many(
            ["triangles", "local_clustering"],
            isolate=True,
            fault_injector=_StageFault("local_clustering", times=99),
        )
        assert results[0].ok and results[0].workload == "triangles"
        assert isinstance(results[1], FailedResult)
        assert results[1].reason == "fault"
        # The session still serves follow-up work.
        assert session.run("triangles").ok

    def test_hardened_pool_retries_to_success(self):
        pool = SessionPool(
            retry=RetryPolicy(max_retries=2),
            fault_injector=_StageFault("triangles", times=1),
            threads=2,
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        (result,) = pool.run()
        assert result.ok
        baseline = SisaSession(_graph(), threads=2).run("triangles")
        assert result.output == baseline.output
        health = pool.health()
        assert health.retries == 1 and health.failed == 0
        assert health.degraded and not health.healthy

    def test_exhausted_retries_yield_failed_result_not_exception(self):
        pool = SessionPool(
            retry=RetryPolicy(max_retries=1),
            fault_injector=_StageFault("triangles", times=99),
            threads=2,
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        pool.submit("g", "local_clustering", tenant="t1")
        results = pool.run()
        assert isinstance(results[0], FailedResult)
        assert results[0].reason == "fault"
        assert results[0].attempts == 2
        # The batchmate completed untouched.
        assert results[1].ok
        assert pool.health().failed == 1

    def test_retry_cycles_charged_to_owning_tenant(self):
        class _FailAfterWork(_StageFault):
            # Fail at the finalize stage, after the burst stage has
            # dispatched real (charged) instructions — so the failed
            # attempt's modeled cycles are visibly nonzero.
            def on_stage(self, plan, stage):
                if plan.name != self.workload or self.remaining <= 0:
                    return
                if not stage.startswith("finalize"):
                    return
                self.remaining -= 1
                raise self.exc("late-stage failure")

        pool = SessionPool(
            retry=RetryPolicy(max_retries=2),
            fault_injector=_FailAfterWork("clustering_coefficient", times=1),
            threads=2,
        )
        pool.submit(
            "g", "clustering_coefficient", graph=_graph(), tenant="t0"
        )
        pool.submit("g", "local_clustering", tenant="t1")
        results = pool.run()
        assert all(r.ok for r in results)
        assert pool.tenant_retry_cycles["t0"] > 0.0
        assert pool.tenant_retry_cycles.get("t1", 0.0) == 0.0
        assert pool.health().wasted_cycles == pool.tenant_retry_cycles["t0"]

    def test_drift_recompile_and_retry(self):
        pool = SessionPool(retry=RetryPolicy(), threads=2)
        session = pool.session("g", _graph())
        session.attach_stream()
        pool.submit("g", "triangles", tenant="t0")
        FaultInjector(seed=5).inject_drift(session)
        assert pool._pending[0][2].stale
        (result,) = pool.run()
        assert result.ok
        baseline = SisaSession(_graph(), threads=2).run("triangles")
        assert result.output == baseline.output
        assert pool.health().drift_recompiles == 1

    def test_drift_without_recompile_policy_fails_structured(self):
        pool = SessionPool(
            retry=RetryPolicy(recompile_on_drift=False), threads=2
        )
        session = pool.session("g", _graph())
        session.attach_stream()
        pool.submit("g", "triangles", tenant="t0")
        FaultInjector(seed=5).inject_drift(session)
        (result,) = pool.run()
        assert isinstance(result, FailedResult)
        assert result.reason == "drift"
        assert result.details["pinned_version"] != result.details["stream_version"]

    def test_strict_pool_unchanged_by_default(self):
        pool = SessionPool(threads=2)
        session = pool.session("g", _graph())
        session.attach_stream()
        pool.submit("g", "triangles", tenant="t0")
        FaultInjector(seed=5).inject_drift(session)
        with pytest.raises(SisaError, match="recompile"):
            pool.run()
        assert pool.pending == 1  # nothing dequeued

    def test_budget_gate_stops_queued_plans_before_they_start(self):
        pool = SessionPool(
            quotas={"t0": TenantQuota(cycle_budget=1.0)},
            retry=RetryPolicy(),
            threads=2,
        )
        # Two plans queued while the budget is still clean; the first
        # consumes it, so the second must never start.
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        pool.submit("g", "local_clustering", tenant="t0")
        results = pool.run()
        assert results[0].ok
        assert isinstance(results[1], FailedResult)
        assert results[1].reason == "budget-exhausted"
        assert results[1].attempts == 0
        # Overshoot is bounded by the single plan that crossed the line.
        assert pool.tenant_runs["t0"] == 1


class TestDegradation:
    def test_cache_corruption_detected_and_recomputed(self):
        session = SisaSession(_graph(), threads=2)
        first = session.run("triangles")
        session._results.corrupt_one()
        again = session.run("triangles")
        assert session.cache_stats.corruptions == 1
        assert not again.cached  # recomputed, not served poisoned
        assert again.output == first.output

    def test_cache_eviction_degrades_to_recompute(self):
        session = SisaSession(_graph(), threads=2)
        first = session.run("triangles")
        assert session._results.evict_one()
        again = session.run("triangles")
        assert not again.cached
        assert again.output == first.output

    def test_orientation_desync_degrades_to_charged_resync(self):
        session = SisaSession(_graph(), threads=2)
        session.attach_stream()
        maintainer = session.maintain_orientation()
        before = session.run("triangles")
        maintainer.mark_desynced()
        session.invalidate_results()
        after = session.run("triangles")
        assert maintainer.stats.resyncs == 1
        assert after.output == before.output

    def test_health_snapshot_tenant_view(self):
        pool = SessionPool(
            quotas={"t0": TenantQuota(cycle_budget=1e12)},
            retry=RetryPolicy(),
            threads=2,
        )
        pool.submit("g", "triangles", graph=_graph(), tenant="t0")
        pool.run()
        health = pool.health()
        t0 = health.tenant("t0")
        assert t0.cycles > 0 and t0.cycle_budget == 1e12
        assert not t0.budget_exhausted
        assert t0.remaining_budget < 1e12
        with pytest.raises(KeyError):
            health.tenant("nobody")
        assert health.as_dict()["healthy"] == health.healthy

    def test_seeded_injector_schedule_is_reproducible(self):
        def injected_counts():
            inj = FaultInjector(
                seed=11, drift_rate=0.5, cache_rate=0.5, kernel_rate=0.3
            )
            pool = SessionPool(
                retry=RetryPolicy(max_retries=3),
                fault_injector=inj,
                threads=2,
            )
            session = pool.session("g", _graph())
            session.attach_stream()
            for w in ("triangles", "local_clustering", "triangles"):
                pool.submit("g", w, tenant="t0")
            pool.run()
            return dict(inj.injected)

        assert injected_counts() == injected_counts()


# ---------------------------------------------------------------------------
# Fault-equivalence property (the acceptance criterion)
# ---------------------------------------------------------------------------

_WORKLOAD_CHOICES = (
    ("triangles", {}),
    ("local_clustering", {}),
    ("kclique", {"k": 3}),
    ("bfs", {"root": 0}),
    ("clustering_coefficient", {}),
)


def _run_to_completion(pool, limit=50):
    results = []
    for _ in range(limit):
        results.extend(pool.run())
        if pool.pending == 0 and pool.deferred == 0:
            return results
    raise AssertionError("pool failed to drain")


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    picks=st.lists(st.integers(0, len(_WORKLOAD_CHOICES) - 1), min_size=2, max_size=6),
    drift_rate=st.floats(0.0, 1.0),
    cache_rate=st.floats(0.0, 1.0),
    kernel_rate=st.floats(0.0, 0.8),
)
def test_faulted_batch_bit_identical_to_fault_free(
    seed, picks, drift_rate, cache_rate, kernel_rate
):
    """A mixed multi-tenant batch under injected drift/cache/kernel
    faults (with retries bounded above the per-kind fault cap, so every
    plan can complete) returns outputs bit-identical to a fault-free
    run — no unhandled exceptions, queue limits respected."""
    graph = gnp_random_graph(16, 0.3, seed=3)
    quotas = {
        "alice": TenantQuota(max_queue_depth=4, max_deferred=16),
        "bob": TenantQuota(max_queue_depth=4, max_deferred=16),
    }
    # Worst case for one plan: 2 kernel faults plus 2 before-plan drift
    # injections (each staling the running attempt) = 4 burned attempts,
    # so 4 retries guarantee a clean 5th attempt once every fault kind
    # has hit its cap.
    retry = RetryPolicy(max_retries=4)

    def build(injector):
        pool = SessionPool(
            quotas=dict(quotas), retry=retry, fault_injector=injector, threads=2
        )
        session = pool.session("g", graph)
        session.attach_stream()
        for i, pick in enumerate(picks):
            name, params = _WORKLOAD_CHOICES[pick]
            pool.submit(
                "g", name, tenant=("alice", "bob")[i % 2], **params
            )
        return pool

    # Per-kind cap of 2 keeps total attempt-burning faults (kernel +
    # drift) below the retry allowance of any single plan.
    injector = FaultInjector(
        seed=seed,
        drift_rate=drift_rate,
        cache_rate=cache_rate,
        kernel_rate=kernel_rate,
        max_per_kind=2,
    )
    baseline = _run_to_completion(build(None))
    faulted = _run_to_completion(build(injector))

    assert len(baseline) == len(faulted) == len(picks)
    for clean, noisy in zip(baseline, faulted):
        assert clean.ok and noisy.ok
        assert clean.workload == noisy.workload
        assert repr(clean.output) == repr(noisy.output)
