"""Unit & property tests for degeneracy orderings and k-cores."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    complete_graph,
    gnp_random_graph,
    star_graph,
)
from repro.graphs.orientation import (
    approx_degeneracy_order,
    core_decomposition,
    degeneracy_order,
    k_core,
)

from conftest import to_networkx


class TestExactDegeneracy:
    def test_star_has_degeneracy_one(self):
        assert degeneracy_order(star_graph(20)).degeneracy == 1

    def test_complete_graph(self):
        assert degeneracy_order(complete_graph(8)).degeneracy == 7

    def test_empty_graph(self):
        result = degeneracy_order(CSRGraph.empty(4))
        assert result.degeneracy == 0
        assert sorted(result.order) == [0, 1, 2, 3]

    def test_zero_vertices(self):
        result = degeneracy_order(CSRGraph.empty(0))
        assert result.order.size == 0

    def test_matches_networkx(self):
        for seed in range(5):
            g = gnp_random_graph(40, 0.2, seed=seed)
            expected = max(nx.core_number(to_networkx(g)).values(), default=0)
            assert degeneracy_order(g).degeneracy == expected

    def test_order_is_permutation(self, random_graph):
        result = degeneracy_order(random_graph)
        assert sorted(result.order) == list(range(random_graph.num_vertices))

    def test_rank_inverts_order(self, random_graph):
        result = degeneracy_order(random_graph)
        assert np.array_equal(result.order[result.rank], np.arange(random_graph.num_vertices))

    def test_every_vertex_has_few_later_neighbors(self, random_graph):
        """The defining property: each vertex has <= c neighbors later
        in the order."""
        result = degeneracy_order(random_graph)
        for v in range(random_graph.num_vertices):
            later = np.count_nonzero(
                result.rank[random_graph.neighbors(v)] > result.rank[v]
            )
            assert later <= result.degeneracy


class TestApproxDegeneracy:
    def test_within_approximation_ratio(self):
        for seed in range(4):
            g = gnp_random_graph(50, 0.2, seed=seed)
            exact = degeneracy_order(g).degeneracy
            approx = approx_degeneracy_order(g, eps=0.5).degeneracy
            # The induced out-degree is at most (2 + eps) * c.
            assert approx <= (2 + 0.5) * max(exact, 1) + 1

    def test_order_is_permutation(self, random_graph):
        result = approx_degeneracy_order(random_graph)
        assert sorted(result.order) == list(range(random_graph.num_vertices))

    def test_bad_eps_rejected(self, random_graph):
        with pytest.raises(GraphError):
            approx_degeneracy_order(random_graph, eps=0.0)

    def test_empty(self):
        result = approx_degeneracy_order(CSRGraph.empty(0))
        assert result.order.size == 0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_star_always_low(self, seed):
        g = star_graph(15)
        approx = approx_degeneracy_order(g, eps=0.5).degeneracy
        assert approx <= 3  # (2 + eps) * 1 rounded


class TestCores:
    def test_core_numbers_match_networkx(self):
        for seed in range(4):
            g = gnp_random_graph(40, 0.25, seed=seed)
            expected = nx.core_number(to_networkx(g))
            core = core_decomposition(g)
            assert {v: int(core[v]) for v in range(40)} == expected

    def test_k_core_vertices(self):
        g = gnp_random_graph(40, 0.3, seed=9)
        expected = set(nx.k_core(to_networkx(g), 5).nodes())
        assert set(int(v) for v in k_core(g, 5)) == expected

    def test_k_core_of_complete_graph(self):
        g = complete_graph(6)
        assert len(k_core(g, 5)) == 6
        assert len(k_core(g, 6)) == 0
