"""Figure 8: large graphs — kcc-4/5 and ksc-4/5 relative runtimes on
the (scaled-down) large-graph suite at 8 threads.

Paper: benefits are similar to small graphs, except sc-pwtk and
soc-orkut where SISA and the non-SISA set baseline are comparable
because those networks lack large cliques and dense clusters.
"""

import pytest

from repro.algorithms.clique_star import kclique_star
from repro.algorithms.kclique import kclique_count
from repro.baselines.nonset import kclique_count_nonset, kclique_star_nonset
from repro.bench.harness import ResultTable
from repro.datasets import load

from common import emit

GRAPHS = [
    "bio-humanGene",
    "bio-mouseGene",
    "int-dating",
    "edit-enwiktionary",
    "sc-pwtk",
    "soc-orkut",
]
THREADS = 8
CUTOFF = 20_000


def _fill_table() -> ResultTable:
    table = ResultTable("Fig. 8 large graphs")
    for name in GRAPHS:
        graph = load(name)
        for k in (4, 5):
            nonset = kclique_count_nonset(
                graph, k, threads=THREADS, max_patterns=CUTOFF
            )
            set_based = kclique_count(
                graph, k, threads=THREADS, mode="cpu-set", max_patterns=CUTOFF
            )
            sisa = kclique_count(graph, k, threads=THREADS, max_patterns=CUTOFF)
            assert nonset.output == set_based.output == sisa.output
            table.add(f"kcc-{k}", name, "non-set", nonset.runtime_cycles)
            table.add(f"kcc-{k}", name, "set-based", set_based.runtime_cycles)
            table.add(f"kcc-{k}", name, "sisa", sisa.runtime_cycles)
        for k in (4,):
            nonset = kclique_star_nonset(
                graph, k, threads=THREADS, max_patterns=5000
            )
            set_based = kclique_star(
                graph, k, threads=THREADS, mode="cpu-set", max_patterns=5000
            )
            sisa = kclique_star(graph, k, threads=THREADS, max_patterns=5000)
            table.add(f"ksc-{k}", name, "non-set", nonset.runtime_cycles)
            table.add(f"ksc-{k}", name, "set-based", set_based.runtime_cycles)
            table.add(f"ksc-{k}", name, "sisa", sisa.runtime_cycles)
    return table


def _render(table: ResultTable):
    table.print_all()
    print(
        "\nNote: large graphs are scaled-down stand-ins; scale factors "
        "are recorded in repro/datasets/registry.py."
    )


def test_fig8_large_graphs(benchmark):
    table = _fill_table()
    emit("fig8_large", lambda: _render(table))
    for problem in table.problems():
        # SISA stays ahead of non-set on average.
        summary = table.summary(problem, "non-set", "sisa")
        assert summary.speedup_of_avgs > 1.0
    # The paper's caveat: on the cluster-free graphs, SISA and the
    # set baseline are comparable (within ~2x rather than ~10x).
    kcc4 = {
        cell.graph: cell.runtime_mcycles
        for cell in table.cells
        if cell.problem == "kcc-4" and cell.variant == "sisa"
    }
    setb = {
        cell.graph: cell.runtime_mcycles
        for cell in table.cells
        if cell.problem == "kcc-4" and cell.variant == "set-based"
    }
    for light in ("sc-pwtk",):
        assert setb[light] / kcc4[light] < 3.0
    graph = load("sc-pwtk")
    benchmark(
        lambda: kclique_count(graph, 4, threads=8, max_patterns=2000).output
    )
