"""Table 5 microbenchmark: per-instruction dispatch behaviour.

Exercises every instruction family once per representation pair and
reports the SCU's decisions and per-variant model costs — the dispatch
side of Table 5 (which variant runs where, at what predicted cost).
"""

import pytest

from repro.hw.config import HardwareConfig
from repro.isa.metadata import SetMetadataTable
from repro.isa.opcodes import Opcode, SetOp
from repro.isa.scu import Scu
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

from common import emit

UNIVERSE = 100_000


def _build_cases():
    hw = HardwareConfig()
    scu = Scu(hw)
    table = SetMetadataTable()
    small = table.register(SparseArray(range(8), UNIVERSE))
    large = table.register(SparseArray(range(0, 80_000, 2), UNIVERSE))
    dense_a = table.register(DenseBitvector.from_elements(range(50_000), UNIVERSE))
    dense_b = table.register(
        DenseBitvector.from_elements(range(25_000, 75_000), UNIVERSE)
    )
    cases = [
        ("SA∩SA similar", SetOp.INTERSECT, small, small),
        ("SA∩SA skewed", SetOp.INTERSECT, small, large),
        ("SA∩DB", SetOp.INTERSECT, small, dense_a),
        ("DB∩DB", SetOp.INTERSECT, dense_a, dense_b),
        ("SA∪SA", SetOp.UNION, small, large),
        ("DB∪DB", SetOp.UNION, dense_a, dense_b),
        ("SA\\SA skewed", SetOp.DIFFERENCE, small, large),
        ("DB\\DB", SetOp.DIFFERENCE, dense_a, dense_b),
    ]
    rows = []
    bw = hw.vault_bytes_per_cycle
    for label, op, a, b in cases:
        dispatch = scu.dispatch_binary(op, table.meta(a), table.meta(b))
        rows.append(
            (
                label,
                f"0x{int(dispatch.opcode):02x}",
                dispatch.backend,
                dispatch.variant,
                dispatch.cost.cycles(bw),
            )
        )
    return rows, scu


def _render(rows, scu):
    print("== Table 5: SCU dispatch per instruction family ==")
    print(f"{'case':<16}{'opcode':>8}{'backend':>9}{'variant':>11}{'cycles':>10}")
    for label, opcode, backend, variant, cycles in rows:
        print(f"{label:<16}{opcode:>8}{backend:>9}{variant:>11}{cycles:>10.0f}")
    print(
        f"\ninstructions={scu.stats.instructions} "
        f"pum={scu.stats.pum_ops} pnm={scu.stats.pnm_ops} "
        f"merge={scu.stats.merge_picks} gallop={scu.stats.gallop_picks}"
    )


def test_instruction_dispatch(benchmark):
    rows, scu = _build_cases()
    emit("instruction_dispatch", lambda: _render(rows, scu))
    by_label = {row[0]: row for row in rows}
    assert by_label["SA∩SA skewed"][3] == "galloping"
    assert by_label["SA∩SA similar"][3] == "merge"
    assert by_label["DB∩DB"][2] == "pum"
    assert by_label["SA∩DB"][2] == "pnm"
    # The PUM DB∩DB dispatch must be cheaper than streaming 100k-bit
    # operands through a near-memory core.
    assert by_label["DB∩DB"][4] < by_label["SA∩SA similar"][4] * 40

    def dispatch_loop():
        hw = HardwareConfig()
        scu2 = Scu(hw)
        table = SetMetadataTable()
        a = table.register(SparseArray(range(64), UNIVERSE))
        b = table.register(SparseArray(range(32, 96), UNIVERSE))
        for __ in range(100):
            scu2.dispatch_binary(SetOp.INTERSECT, table.meta(a), table.meta(b))
        return scu2.stats.instructions

    benchmark(dispatch_loop)
