"""Maintained orientation vs per-epoch re-peel: modeled-cycle win.

Streams a churn workload (1% of edges replaced per batch) over an RMAT
graph while keeping a degeneracy-style orientation valid two ways:

* **maintained** — :class:`IncrementalOrientation` orients each new
  edge by the current rank (one element update per arc) and repairs
  only on drift past ``(2 + eps) * c``;
* **re-peel** — the same maintainer class in its reference policy
  (``repeel_every_batch=True``): after every batch the exact
  degeneracy order is re-peeled and every ``N+`` set rebuilt (one
  DELETE + one CREATE per set, plus the host-side bucket-peel work).

Both sides pay the identical undirected-update stream; a third,
maintainer-free context measures that shared cost per batch and it is
subtracted from both sides, so the compared cycles are purely
orientation upkeep.  After every epoch the
oriented triangle count is computed on both sides (outside the
measured region) and asserted identical — any acyclic orientation
counts each triangle exactly once, so maintained and re-peeled
orientations must agree bit-for-bit.  The maintained side must perform
**zero** full re-peels (churn this small never drifts past the bound),
and the modeled-cycle ratio must meet the acceptance floor (>= 3x at
1% churn).  Both sides are simulated cycles — deterministic, no
wall-clock noise.

Env knobs: ``BENCH_ORIENT_SCALE`` (RMAT scale, default 10),
``BENCH_ORIENT_EF`` (edge factor, default 8), ``BENCH_ORIENT_BATCHES``
(default 6), ``BENCH_ORIENT_CHURN`` (default 0.01),
``BENCH_ORIENT_MIN_SPEEDUP`` (default 3.0).
"""

import os

from repro.algorithms.common import make_context
from repro.algorithms.triangles import triangle_count_oriented
from repro.graphs.digraph import orient_by_order
from repro.graphs.orientation import degeneracy_order
from repro.graphs.streams import rmat_churn_stream
from repro.runtime.setgraph import SetGraph
from repro.streaming import (
    DynamicSetGraph,
    IncrementalOrientation,
    StreamingEngine,
)

from common import emit, emit_json

SCALE = int(os.environ.get("BENCH_ORIENT_SCALE", "10"))
EDGE_FACTOR = int(os.environ.get("BENCH_ORIENT_EF", "8"))
BATCHES = int(os.environ.get("BENCH_ORIENT_BATCHES", "6"))
CHURN = float(os.environ.get("BENCH_ORIENT_CHURN", "0.01"))
MIN_SPEEDUP = float(os.environ.get("BENCH_ORIENT_MIN_SPEEDUP", "3.0"))


def _work(ctx) -> float:
    """Total modeled work (sum of lane times): the fair, placement-
    independent metric for comparing maintenance strategies."""
    return float(sum(ctx.engine.report().lane_times))


def _bootstrap(graph, *, repeel_every_batch: bool):
    """One side of the comparison: dynamic graph + seeded maintainer.

    The seed orientation is graph loading (uncharged), exactly as in a
    session's first oriented run.
    """
    ctx = make_context()
    dyn = DynamicSetGraph.from_graph(graph, ctx)
    seed = degeneracy_order(graph)
    oriented = SetGraph.from_digraph(orient_by_order(graph, seed.order), ctx)
    maintainer = IncrementalOrientation(
        dyn, oriented, seed, repeel_every_batch=repeel_every_batch
    )
    return ctx, dyn, StreamingEngine(dyn, [maintainer]), maintainer


def _run():
    stream = rmat_churn_stream(
        SCALE, EDGE_FACTOR, churn=CHURN, num_batches=BATCHES, seed=3
    )
    graph = stream.initial_graph()

    inc_ctx, inc_dyn, inc_engine, inc = _bootstrap(
        graph, repeel_every_batch=False
    )
    ref_ctx, ref_dyn, ref_engine, ref = _bootstrap(
        graph, repeel_every_batch=True
    )
    # Maintainer-free reference: the undirected-update stream both
    # sides pay identically, subtracted so the comparison is pure
    # orientation upkeep.
    base_ctx = make_context()
    base_engine = StreamingEngine(DynamicSetGraph.from_graph(graph, base_ctx))

    rows = []
    inc_total = ref_total = 0.0
    for batch in stream.batches:
        before = _work(base_ctx)
        base_engine.step(batch)
        shared_cycles = _work(base_ctx) - before

        before = _work(inc_ctx)
        inc_engine.step(batch)
        inc_cycles = _work(inc_ctx) - before - shared_cycles

        before = _work(ref_ctx)
        ref_engine.step(batch)
        ref_cycles = _work(ref_ctx) - before - shared_cycles

        # Functional equivalence, outside the measured region: any
        # acyclic orientation yields the same triangle count.
        inc_count = triangle_count_oriented(inc.oriented, inc_ctx)
        ref_count = triangle_count_oriented(ref.oriented, ref_ctx)
        assert inc_count == ref_count
        inc.assert_consistent()

        inc_total += inc_cycles
        ref_total += ref_cycles
        rows.append(
            (inc_dyn.epoch, batch.size, inc_count, inc_cycles, ref_cycles)
        )

    # At 1% churn the maintained bound never drifts: zero re-peels.
    assert inc.stats.full_repeels == 0
    assert ref.stats.full_repeels == sum(1 for r in rows if r[1])
    return stream, rows, inc, inc_total, ref_total


def _render(stream, rows, inc, inc_total, ref_total):
    graph = stream.initial_graph()
    n, m = graph.num_vertices, graph.num_edges
    print("== Orientation maintenance: incremental vs per-epoch re-peel ==")
    print(
        f"RMAT scale={SCALE} edge_factor={EDGE_FACTOR} (n={n}, m={m}), "
        f"churn={CHURN:.1%}/batch, drift bound (2+eps)*c with eps="
        f"{inc.eps} (c={inc.base_degeneracy}, bound={inc.bound})"
    )
    print(
        f"{'epoch':>6}{'updates':>9}{'triangles':>11}"
        f"{'maint Mcyc':>12}{'repeel Mcyc':>13}{'win':>8}"
    )
    for epoch, size, count, inc_c, ref_c in rows:
        print(
            f"{epoch:>6}{size:>9}{count:>11}"
            f"{inc_c / 1e6:>12.3f}{ref_c / 1e6:>13.2f}{ref_c / inc_c:>7.1f}x"
        )
    print(
        f"\nmaintained-orientation stats: {inc.stats}"
        f"\ntotal modeled-cycle win at {CHURN:.1%} churn: "
        f"{ref_total / inc_total:.1f}x (floor {MIN_SPEEDUP:.1f}x)"
    )


def test_orientation_maintenance_speedup(benchmark):
    stream, rows, inc, inc_total, ref_total = _run()
    emit(
        "orientation_maintenance",
        lambda: _render(stream, rows, inc, inc_total, ref_total),
    )
    emit_json(
        "orientation_maintenance",
        {
            "speedup": ref_total / inc_total,
            "maintained_mcycles": inc_total / 1e6,
            "repeel_mcycles": ref_total / 1e6,
            "epochs": len(rows),
        },
        floors={"min_speedup": MIN_SPEEDUP},
    )
    # Floor on the modeled-cycle win (deterministic; per-epoch outputs
    # and zero-re-peel already asserted inside _run).
    assert ref_total / inc_total >= MIN_SPEEDUP

    def one_maintained_batch():
        graph = stream.initial_graph()
        __, __, engine, __ = _bootstrap(graph, repeel_every_batch=False)
        engine.step(stream.batches[0])

    benchmark(one_maintained_batch)


if __name__ == "__main__":
    stream, rows, inc, inc_total, ref_total = _run()
    _render(stream, rows, inc, inc_total, ref_total)
