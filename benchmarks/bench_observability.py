"""Observability overhead smoke: zero modeled cost, bounded wall cost.

Runs the full robustness soak schedule (``bench_robustness``) twice —
observability off and on — and asserts the layer's core contract:

* **modeled-cycle overhead is exactly 0** — the instrumented soak's
  per-tenant ledgers, retry ledgers and every result's
  ``runtime_cycles`` are bit-identical to the uninstrumented run, and
  every output ``repr``-identical.  Instrumentation is
  observation-only by construction; this asserts it stays that way.
* **wall-clock overhead <= BENCH_OBS_MAX_WALL** (default 15%) — the
  price of feeding counters and spans from the hot paths.
* **the ledger mirror is exact** — ``pool.metrics()``'s per-tenant
  cycle counters equal ``pool.tenant_cycles`` with ``==``, not
  approximately (the hub replays the same float additions in the same
  order).
* **span trees are deep enough to be useful** — the Chrome-trace JSON
  export of the soak round-trips through ``json.loads`` with >= 5
  nesting levels (run → session → plan → stage → kernel).

Env knobs: the ``BENCH_ROBUST_*`` family (graph/schedule shape,
inherited from bench_robustness) plus ``BENCH_OBS_MAX_WALL`` and
``BENCH_OBS_REPEATS`` (default 3; wall overhead uses best-of-N).
"""

import gc
import json
import os
import time

from repro.observability import write_chrome_trace

import bench_robustness as soak
from common import RESULTS_DIR, emit, emit_json

MAX_WALL_OVERHEAD = float(os.environ.get("BENCH_OBS_MAX_WALL", "0.15"))
REPEATS = int(os.environ.get("BENCH_OBS_REPEATS", "3"))


def _timed_soak(graph, observability):
    best = float("inf")
    pool = results = None
    for __ in range(REPEATS):
        gc.collect()
        start = time.perf_counter()
        pool, results, __unused = soak._soak(
            graph, faulted=True, observability=observability
        )
        best = min(best, time.perf_counter() - start)
    return pool, results, best


def _measure(graph):
    base_pool, base_runs, base_wall = _timed_soak(graph, observability=False)
    obs_pool, obs_runs, obs_wall = _timed_soak(graph, observability=True)

    # Modeled cost and outputs: bit-identical with observability on.
    assert len(obs_runs) == len(base_runs)
    for base, inst in zip(base_runs, obs_runs):
        assert inst.ok == base.ok
        if inst.ok:
            assert inst.report.runtime_cycles == base.report.runtime_cycles
            assert repr(inst.output) == repr(base.output)
    assert obs_pool.tenant_cycles == base_pool.tenant_cycles
    assert obs_pool.tenant_retry_cycles == base_pool.tenant_retry_cycles

    # The metrics mirror of the ledger is *exact*, per tenant.
    reg = obs_pool.obs.registry
    for tenant, cycles in obs_pool.tenant_cycles.items():
        assert reg.counter_value("tenant_work_cycles_total", (tenant,)) == cycles
    for tenant, cycles in obs_pool.tenant_retry_cycles.items():
        assert (
            reg.counter_value("tenant_retry_cycles_total", (tenant,)) == cycles
        )

    # Span trees: Chrome-trace JSON round-trips with >= 5 levels.
    trace_path = RESULTS_DIR / "BENCH_observability_trace.json"
    write_chrome_trace(obs_pool.obs.spans, trace_path)
    trace = json.loads(trace_path.read_text())
    depth = 1 + max(e["args"]["depth"] for e in trace["traceEvents"])
    assert depth >= 5, depth

    wall_overhead = obs_wall / base_wall - 1.0
    return obs_pool, base_wall, obs_wall, wall_overhead, depth, len(
        trace["traceEvents"]
    )


def _render(graph, pool, base_wall, obs_wall, overhead, depth, events):
    snap = pool.metrics()
    print("== Observability: zero modeled overhead, bounded wall cost ==")
    print(
        f"gnp n={graph.num_vertices} m={graph.edge_array().shape[0]} "
        f"tenants={soak.TENANTS} epochs={soak.EPOCHS} seed={soak.SEED}"
    )
    print(
        f"soak wall: off={base_wall * 1e3:.0f} ms on={obs_wall * 1e3:.0f} ms "
        f"overhead={overhead:.1%} (ceiling {MAX_WALL_OVERHEAD:.0%})"
    )
    print(
        "modeled cycles, outputs, tenant ledgers: asserted bit-identical "
        "observability on vs off"
    )
    print(
        "per-tenant cycle counters asserted == pool.tenant_cycles exactly"
    )
    print(
        f"spans: {snap['spans']['recorded']} recorded "
        f"(max depth {snap['spans']['max_depth']}), chrome trace "
        f"{events} events / {depth} levels"
    )
    families = snap["metrics"]
    series = sum(len(f["series"]) for f in families.values())
    print(f"metric families: {len(families)} ({series} labeled series)")
    print(
        "set-size histograms (Fig. 9b per tenant): "
        + " ".join(
            f"{t}={h['total']}" for t, h in sorted(snap["set_sizes"].items())
        )
    )


def test_observability_overhead(benchmark):
    graph = soak.gnp_random_graph(soak.N, soak.P, seed=soak.SEED)
    pool, base_wall, obs_wall, overhead, depth, events = _measure(graph)
    emit(
        "observability",
        lambda: _render(
            graph, pool, base_wall, obs_wall, overhead, depth, events
        ),
    )
    emit_json(
        "observability",
        {
            "wall_off_ms": base_wall * 1e3,
            "wall_on_ms": obs_wall * 1e3,
            "wall_overhead": overhead,
            "modeled_cycle_overhead": 0.0,  # asserted bit-identical
            "span_depth": depth,
            "trace_events": events,
        },
        floors={"max_wall_overhead": MAX_WALL_OVERHEAD},
    )
    assert overhead <= MAX_WALL_OVERHEAD

    benchmark(
        lambda: soak._soak(graph, faulted=True, observability=True)
    )


if __name__ == "__main__":
    graph = soak.gnp_random_graph(soak.N, soak.P, seed=soak.SEED)
    _render(graph, *_measure(graph))
