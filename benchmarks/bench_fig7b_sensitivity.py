"""Figure 7b: sensitivity of runtime to the DB fraction t and to the
galloping threshold.

Paper: bio-mouseGene at T=32; both extremes (pure SISA-PNM at t=0 and
pure SISA-PUM at t=1) are slowest; the galloping threshold shifts the
curve but not the pattern.

Deviation note (recorded in EXPERIMENTS.md): the paper runs kcc-4
here, but our k-clique recursion intersects against sparse candidate
intermediates, so the DB fraction barely moves its runtime.  Triangle
counting intersects the stored neighborhoods pairwise — the code path
whose PNM/PUM trade-off Fig. 7b studies — so it is the sweep workload.
"""

import pytest

from repro.algorithms.triangles import triangle_count
from repro.datasets import load

from common import emit

T_VALUES = [0.0, 0.1, 0.25, 0.4, 0.6, 0.8, 1.0]
GALLOP_THRESHOLDS = [5.0, 100.0, 10_000.0]

def _sweep():
    graph = load("bio-mouseGene")
    rows = {}
    for threshold in GALLOP_THRESHOLDS:
        series = []
        for t in T_VALUES:
            run = triangle_count(
                graph,
                threads=32,
                t=t,
                budget=2.0,  # ample budget so t fully controls the mix
                gallop_threshold=threshold,
            )
            series.append((t, run.runtime_cycles / 1e6, run.output))
        rows[threshold] = series
    return rows


def _render(rows):
    print("== Fig. 7b: % neighborhoods as DBs (t) vs runtime, tc ==")
    print("graph: bio-mouseGene stand-in, T=32")
    for threshold, series in rows.items():
        print(f"\ngalloping threshold = {threshold:g}")
        print(f"{'t':>6}{'Mcycles':>12}")
        for t, mcycles, __ in series:
            print(f"{t:>6.2f}{mcycles:>12.3f}")
        best_t = min(series, key=lambda row: row[1])[0]
        print(f"  best t = {best_t:.2f}")


def test_fig7b_sensitivity(benchmark):
    rows = _sweep()
    emit("fig7b_sensitivity", lambda: _render(rows))
    for threshold, series in rows.items():
        runtimes = {t: mcycles for t, mcycles, __ in series}
        outputs = {out for __, __, out in series}
        assert len(outputs) == 1  # t never changes the functional result
        best = min(runtimes.values())
        # The paper's U-shape: an intermediate t beats both extremes.
        assert best < runtimes[0.0]
        assert best <= runtimes[1.0]
    graph = load("bio-mouseGene")
    benchmark(lambda: triangle_count(graph, threads=32, t=0.4).output)
