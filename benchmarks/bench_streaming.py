"""Incremental maintenance vs full recompute: modeled-cycle win.

Streams a churn workload (1% of edges replaced per batch) over an RMAT
graph and maintains three analytics two ways:

* **incremental** — the ``repro.streaming`` maintainers update the
  statistics from each effective edge batch, touching only affected
  vertices (all set work cycle-accounted through SISA instructions);
* **full recompute** — after every batch, a fresh context recomputes
  per-vertex triangle counts (which also yield the global count and the
  local clustering coefficients) and re-scores the link-prediction
  watchlist from scratch, the way a static pipeline would.

Outputs are asserted identical batch by batch; the modeled-cycle ratio
must meet the acceptance floor (>= 5x at 1% churn).  Both sides are
simulated cycles, so the floor is deterministic — no wall-clock noise.

Env knobs: ``BENCH_STREAM_SCALE`` (RMAT scale, default 10),
``BENCH_STREAM_EF`` (edge factor, default 8), ``BENCH_STREAM_BATCHES``
(default 8), ``BENCH_STREAM_CHURN`` (default 0.01),
``BENCH_STREAM_MIN_SPEEDUP`` (default 5.0).
"""

import os

import numpy as np

from repro.algorithms.common import make_context
from repro.graphs.csr import CSRGraph
from repro.graphs.streams import rmat_churn_stream
from repro.runtime.setgraph import SetGraph
from repro.streaming import (
    DynamicSetGraph,
    IncrementalClusteringCoefficients,
    IncrementalLinkPrediction,
    IncrementalTriangleCount,
    StreamingEngine,
    clustering_coefficients_from_counts,
    local_triangle_counts,
    watchlist_scores,
)
from repro.streaming.incremental import degrees_of

from common import emit, emit_json

SCALE = int(os.environ.get("BENCH_STREAM_SCALE", "10"))
EDGE_FACTOR = int(os.environ.get("BENCH_STREAM_EF", "8"))
BATCHES = int(os.environ.get("BENCH_STREAM_BATCHES", "8"))
CHURN = float(os.environ.get("BENCH_STREAM_CHURN", "0.01"))
MIN_SPEEDUP = float(os.environ.get("BENCH_STREAM_MIN_SPEEDUP", "5.0"))
MEASURE = "jaccard"
WATCHLIST = 512


def _watchlist(graph: CSRGraph, size: int, seed: int = 13) -> np.ndarray:
    """A fixed random candidate-pair watchlist (non-edges not needed:
    scores are maintained for whatever pairs the application watches)."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    pairs = set()
    while len(pairs) < size:
        u = int(rng.integers(0, n - 1))
        v = int(rng.integers(u + 1, n))
        pairs.add((u, v))
    return np.asarray(sorted(pairs), dtype=np.int64)


def _work(ctx) -> float:
    """Total modeled work: the sum of all lane times.  (The region
    runtime is the max lane; for comparing maintenance strategies the
    aggregate cycles spent are the fair, placement-independent metric —
    a tiny incremental batch would otherwise vanish inside the slack of
    the longest lane.)"""
    return float(sum(ctx.engine.report().lane_times))


def _full_recompute(edges: np.ndarray, n: int, pairs: np.ndarray):
    """One static-pipeline pass: rebuild the SetGraph view and recompute
    everything (graph loading is uncharged, as everywhere else)."""
    ctx = make_context()
    sg = SetGraph.from_graph(CSRGraph.from_edges(n, edges), ctx)
    counts = local_triangle_counts(sg, ctx)
    coeffs = clustering_coefficients_from_counts(counts, degrees_of(sg))
    scores = watchlist_scores(sg, ctx, pairs, measure=MEASURE)
    return _work(ctx), int(counts.sum()) // 3, counts, coeffs, scores


def _run():
    stream = rmat_churn_stream(
        SCALE, EDGE_FACTOR, churn=CHURN, num_batches=BATCHES, seed=3
    )
    graph = stream.initial_graph()
    pairs = _watchlist(graph, WATCHLIST)

    ctx = make_context()
    dyn = DynamicSetGraph.from_graph(graph, ctx)
    bootstrap_start = _work(ctx)
    tri = IncrementalTriangleCount(dyn)
    clus = IncrementalClusteringCoefficients(dyn)
    lp = IncrementalLinkPrediction(dyn, pairs, measure=MEASURE)
    bootstrap = _work(ctx) - bootstrap_start
    engine = StreamingEngine(dyn, [tri, clus, lp])

    rows = []
    inc_total = full_total = 0.0
    for batch in stream.batches:
        before = _work(ctx)
        engine.step(batch)
        inc_cycles = _work(ctx) - before
        full_cycles, ref_count, ref_counts, ref_coeffs, ref_scores = (
            _full_recompute(dyn.edge_array(), dyn.num_vertices, lp.pairs)
        )
        assert tri.count == ref_count
        assert np.array_equal(clus.counts, ref_counts)
        assert np.array_equal(clus.coefficients(dyn), ref_coeffs)
        assert np.array_equal(lp.scores, ref_scores)
        inc_total += inc_cycles
        full_total += full_cycles
        rows.append((dyn.epoch, batch.size, tri.count, inc_cycles, full_cycles))
    return stream, pairs, bootstrap, rows, inc_total, full_total


def _render(stream, pairs, bootstrap, rows, inc_total, full_total):
    graph = stream.initial_graph()
    n, m = graph.num_vertices, graph.num_edges
    print("== Streaming: incremental maintenance vs full recompute ==")
    print(
        f"RMAT scale={SCALE} edge_factor={EDGE_FACTOR} (n={n}, m={m}), "
        f"churn={CHURN:.1%}/batch, watchlist={len(pairs)} pairs, "
        f"measure={MEASURE}"
    )
    print(f"maintainer bootstrap: {bootstrap / 1e6:.2f} Mcycles (once)")
    print(
        f"{'epoch':>6}{'updates':>9}{'triangles':>11}"
        f"{'incr Mcyc':>11}{'full Mcyc':>11}{'win':>8}"
    )
    for epoch, size, count, inc, full in rows:
        print(
            f"{epoch:>6}{size:>9}{count:>11}"
            f"{inc / 1e6:>11.3f}{full / 1e6:>11.2f}{full / inc:>7.1f}x"
        )
    print(
        f"\ntotal modeled-cycle win at {CHURN:.1%} churn: "
        f"{full_total / inc_total:.1f}x (floor {MIN_SPEEDUP:.1f}x)"
    )


def test_streaming_incremental_speedup(benchmark):
    stream, pairs, bootstrap, rows, inc_total, full_total = _run()
    emit(
        "streaming",
        lambda: _render(stream, pairs, bootstrap, rows, inc_total, full_total),
    )
    emit_json(
        "streaming",
        {
            "speedup": full_total / inc_total,
            "incremental_mcycles": inc_total / 1e6,
            "full_recompute_mcycles": full_total / 1e6,
            "bootstrap_mcycles": bootstrap / 1e6,
            "epochs": len(rows),
        },
        floors={"min_speedup": MIN_SPEEDUP},
    )
    # Floor on the modeled-cycle win (deterministic; outputs already
    # asserted identical inside _run).
    assert full_total / inc_total >= MIN_SPEEDUP

    def one_incremental_batch():
        ctx = make_context()
        dyn = DynamicSetGraph.from_graph(stream.initial_graph(), ctx)
        engine = StreamingEngine(dyn, [IncrementalTriangleCount(dyn, count=0)])
        engine.step(stream.batches[0])

    benchmark(one_incremental_batch)


if __name__ == "__main__":
    stream, pairs, bootstrap, rows, inc_total, full_total = _run()
    _render(stream, pairs, bootstrap, rows, inc_total, full_total)
