"""Batched vs. scalar instruction execution: wall-clock speedup.

Measures the host-side (Python) execution speed of the batched
set-instruction engine on a triangle-count + 4-clique micro-benchmark
over an RMAT (Kronecker) graph, against two baselines:

* ``legacy``  — a faithful reconstruction of the seed repo's per-op
  pipeline: materializing count kernels (``np.intersect1d``
  concatenates and re-sorts; no count-only form for non-DB pairs),
  per-op un-memoized dispatch and unconditional trace-event
  construction.  This is the pre-PR scalar path the ISSUE's >= 3x
  acceptance criterion refers to.
* ``scalar``  — this repo's current per-op path (count-only kernels,
  memoized dispatch): the sequential equivalent of the batched engine.

Simulated cycles are asserted identical between batched and scalar
runs — batching amortizes interpreter overhead, never modeled cost.

Env knobs: ``BENCH_BATCH_SCALE`` (RMAT scale, default 11) and
``BENCH_BATCH_EF`` (edge factor, default 8).
"""

import gc
import os
import time

import numpy as np

from repro.algorithms.common import make_context, oriented_setgraph
from repro.algorithms.kclique import four_clique_count_on
from repro.algorithms.triangles import triangle_count_oriented
from repro.graphs.generators import kronecker_graph
from repro.hw.cost import Cost
from repro.isa.opcodes import Opcode, SetOp
from repro.isa.scu import Dispatch
from repro.runtime.trace import TraceEvent
from repro.sets.bitops import popcount
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

from common import emit, emit_json

SCALE = int(os.environ.get("BENCH_BATCH_SCALE", "11"))
EDGE_FACTOR = int(os.environ.get("BENCH_BATCH_EF", "8"))
REPEATS = int(os.environ.get("BENCH_BATCH_REPEATS", "3"))
# The acceptance floor (>= 3x vs the pre-PR scalar path).  CI smokes
# may pass a lower floor via env to tolerate shared-runner noise while
# still catching real regressions.
MIN_SPEEDUP = float(os.environ.get("BENCH_BATCH_MIN_SPEEDUP", "3.0"))


# ---------------------------------------------------------------------------
# Legacy reference: the seed repo's per-op execution pipeline
# ---------------------------------------------------------------------------

def _legacy_dispatch(scu, op, ma, mb, *, output_size=0, count_only=False):
    """Pre-PR ``Scu.dispatch_binary``: per-op metadata Cost objects and
    a fresh variant decision every time (no memo)."""
    base = scu._metadata_cost(ma.set_id, mb.set_id)
    if scu.host_fallback:
        base += Cost(latency_cycles=scu.cpu.config.set_op_latency_cycles)
    if ma.is_dense and mb.is_dense:
        d = scu._dispatch_dense_pair(op, ma, count_only=count_only)
    elif ma.is_dense or mb.is_dense:
        d = scu._dispatch_mixed(op, ma, mb, output_size=output_size)
    else:
        d = scu._dispatch_sparse_pair(op, ma, mb, output_size=output_size)
    scu.stats.record(d.opcode)
    return Dispatch(d.opcode, d.backend, d.variant, base + d.cost)


def _legacy_materialize_intersection(va, vb):
    """Pre-PR functional kernels: every count materializes its result."""
    n = va.universe
    if isinstance(va, DenseBitvector) and isinstance(vb, DenseBitvector):
        return DenseBitvector(va.words & vb.words, n)
    if isinstance(va, DenseBitvector):
        va, vb = vb, va
    if isinstance(vb, DenseBitvector):
        arr = va.elements
        if arr.size == 0:
            return SparseArray.empty(n)
        words = vb.words
        bits = (words[arr // 64] >> (arr % 64).astype(np.uint64)) & np.uint64(1)
        return SparseArray.from_sorted(np.sort(arr[bits.astype(bool)]), n)
    result = np.intersect1d(va.to_array(), vb.to_array(), assume_unique=True)
    return SparseArray.from_sorted(result.astype(np.int64), n)


def _legacy_binary(ctx, op, a, b, *, count_only):
    """Pre-PR ``SisaContext._binary``: materialize, dispatch, build a
    trace event unconditionally."""
    va, vb = ctx.sm.value(a), ctx.sm.value(b)
    if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
        result = _legacy_materialize_intersection(va, vb)
    else:  # pragma: no cover - only intersections are benchmarked
        raise NotImplementedError
    output_size = 0 if count_only else result.cardinality
    dispatch = _legacy_dispatch(
        ctx.scu, op, ctx.sm.meta(a), ctx.sm.meta(b),
        output_size=output_size, count_only=count_only,
    )
    ctx.engine.charge(dispatch.cost)
    ctx.trace.record(
        TraceEvent(
            opcode=dispatch.opcode,
            lane=ctx._current_lane,
            size_a=va.cardinality,
            size_b=vb.cardinality,
            output_size=result.cardinality,
            backend=dispatch.backend,
            variant=dispatch.variant,
        )
    )
    return result


def _legacy_intersect_count(ctx, a, b):
    return _legacy_binary(ctx, SetOp.INTERSECT_COUNT, a, b, count_only=True).cardinality


def _legacy_intersect(ctx, a, b):
    return ctx.sm.register(
        _legacy_binary(ctx, SetOp.INTERSECT, a, b, count_only=False)
    )


def _legacy_elements(ctx, set_id):
    """Pre-PR iterator: the scan cost object is rebuilt per call."""
    value = ctx.sm.value(set_id)
    if ctx.mode == "cpu-set":
        cost = ctx.scu.cpu.neighborhood_scan(value.cardinality)
    else:
        cost = ctx.scu.pnm.scan(value.cardinality)
    ctx.engine.charge(cost)
    return value.to_array()


def _legacy_free(ctx, set_id):
    """Pre-PR delete: metadata Cost objects per call."""
    cost = ctx.scu._metadata_cost(set_id)
    ctx.scu.smb.invalidate(set_id)
    ctx.scu.stats.record(Opcode.DELETE)
    ctx.engine.charge(cost)
    ctx.sm.delete(set_id)


def legacy_triangle_count(sg, ctx):
    total = 0
    for u in range(sg.num_vertices):
        ctx.begin_task()
        out_u = sg.neighborhood(u)
        for v in _legacy_elements(ctx, out_u):
            total += _legacy_intersect_count(ctx, out_u, sg.neighborhood(int(v)))
    return total


def legacy_four_clique_count(ctx, sg):
    count = 0
    for v1 in range(sg.num_vertices):
        ctx.begin_task()
        out_v1 = sg.neighborhood(v1)
        for v2 in _legacy_elements(ctx, out_v1):
            s1 = _legacy_intersect(ctx, out_v1, sg.neighborhood(int(v2)))
            for v3 in _legacy_elements(ctx, s1):
                count += _legacy_intersect_count(ctx, s1, sg.neighborhood(int(v3)))
            _legacy_free(ctx, s1)
    return count


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------

def _time_region(graph, fn):
    best = float("inf")
    output = cycles = None
    for __ in range(REPEATS):
        ctx = make_context()
        __unused, sg = oriented_setgraph(graph, ctx)
        gc.collect()
        start = time.perf_counter()
        output = fn(ctx, sg)
        best = min(best, time.perf_counter() - start)
        cycles = ctx.runtime_cycles
    return best, output, cycles


def _run(graph):
    cases = {
        "triangles": {
            "batched": lambda c, s: triangle_count_oriented(s, c),
            "scalar": lambda c, s: triangle_count_oriented(s, c, batch=False),
            "legacy": lambda c, s: legacy_triangle_count(s, c),
        },
        "4-clique": {
            "batched": lambda c, s: four_clique_count_on(c, s),
            "scalar": lambda c, s: four_clique_count_on(c, s, batch=False),
            "legacy": lambda c, s: legacy_four_clique_count(c, s),
        },
    }
    rows = {}
    for name, impls in cases.items():
        timings = {}
        outputs = {}
        cycles = {}
        for impl, fn in impls.items():
            timings[impl], outputs[impl], cycles[impl] = _time_region(graph, fn)
        assert outputs["batched"] == outputs["scalar"] == outputs["legacy"]
        # Batching amortizes Python overhead, not modeled cost.
        assert cycles["batched"] == cycles["scalar"]
        rows[name] = timings
    return rows


def _render(graph, rows):
    n, m = graph.num_vertices, graph.edge_array().shape[0]
    print("== Batched set-instruction engine: wall-clock speedup ==")
    print(f"RMAT scale={SCALE} edge_factor={EDGE_FACTOR} (n={n}, m={m})")
    print(
        f"{'kernel':<12}{'legacy ms':>11}{'scalar ms':>11}{'batched ms':>12}"
        f"{'vs legacy':>11}{'vs scalar':>11}"
    )
    total_legacy = total_batched = 0.0
    for name, t in rows.items():
        total_legacy += t["legacy"]
        total_batched += t["batched"]
        print(
            f"{name:<12}{t['legacy'] * 1e3:>11.1f}{t['scalar'] * 1e3:>11.1f}"
            f"{t['batched'] * 1e3:>12.1f}"
            f"{t['legacy'] / t['batched']:>10.2f}x"
            f"{t['scalar'] / t['batched']:>10.2f}x"
        )
    print(
        f"\ncombined speedup vs pre-PR scalar path: "
        f"{total_legacy / total_batched:.2f}x (floor {MIN_SPEEDUP:.1f}x)"
    )


def test_batch_dispatch_speedup(benchmark):
    graph = kronecker_graph(SCALE, EDGE_FACTOR, seed=3)
    rows = _run(graph)
    emit("batch_dispatch", lambda: _render(graph, rows))
    total_legacy = sum(t["legacy"] for t in rows.values())
    total_batched = sum(t["batched"] for t in rows.values())
    emit_json(
        "batch_dispatch",
        {
            "speedup_vs_legacy": total_legacy / total_batched,
            "kernels": {
                name: {k: v * 1e3 for k, v in t.items()}
                for name, t in rows.items()
            },
        },
        floors={"min_speedup": MIN_SPEEDUP},
    )
    assert total_legacy / total_batched >= MIN_SPEEDUP

    def batched_triangle_region():
        ctx = make_context()
        __, sg = oriented_setgraph(graph, ctx)
        return triangle_count_oriented(sg, ctx)

    benchmark(batched_triangle_region)


if __name__ == "__main__":
    graph = kronecker_graph(SCALE, EDGE_FACTOR, seed=3)
    rows = _run(graph)
    _render(graph, rows)
