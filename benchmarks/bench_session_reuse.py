"""Warm-session reuse: wall-clock win of the session API.

The production pattern the session API targets is heavy repeated
traffic over the same graph: a link-prediction service scoring a
candidate watchlist again and again, interleaved with periodic
triangle-count refreshes.  Before the session API every query paid the
whole setup — context construction, neighborhood-set registration,
degeneracy orientation — on each call.

This benchmark compares, per workload:

* ``cold``  — a fresh one-shot session per call (exactly what the
  deprecated ``*_count(graph, ...)`` shims do), timed on its *second*
  call so interpreter warm-up is out of the picture;
* ``warm``  — the second run on a shared :class:`SisaSession`.

Acceptance floor (enforced here and in CI): the warm second run of the
watchlist-scoring workload is >= 2x faster than the cold one-shot call
— and performs **zero** set re-registrations (asserted via the SM
registration counter carried on :class:`RunResult`).  Outputs and
first-run simulated cycles are asserted identical between the two
paths.

Env knobs: ``BENCH_SESSION_N`` / ``BENCH_SESSION_M`` (graph shape,
default 40000 / 120000), ``BENCH_SESSION_PAIRS`` (watchlist size,
default 500), ``BENCH_SESSION_MIN_SPEEDUP`` (floor, default 2.0).
"""

import gc
import os
import time

import numpy as np

from repro.graphs.generators import chung_lu_graph
from repro.session import ExecutionConfig, SisaSession

from common import emit, emit_json

N = int(os.environ.get("BENCH_SESSION_N", "40000"))
M = int(os.environ.get("BENCH_SESSION_M", "120000"))
PAIRS = int(os.environ.get("BENCH_SESSION_PAIRS", "500"))
REPEATS = int(os.environ.get("BENCH_SESSION_REPEATS", "3"))
MIN_SPEEDUP = float(os.environ.get("BENCH_SESSION_MIN_SPEEDUP", "2.0"))


def _watchlist(n: int, count: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    pairs = rng.integers(0, n, size=(int(count * 1.2), 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]][:count]
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


def _workloads(graph):
    pairs = _watchlist(graph.num_vertices, PAIRS)
    return {
        "watchlist-jaccard": lambda s: s.run(
            "similarity_pairs", pairs=pairs, measure="jaccard"
        ),
        "triangles": lambda s: s.run("triangles"),
    }


def _measure(graph):
    # The result cache would answer the warm repeat in O(1) and this
    # benchmark would measure the cache, not structure reuse — disable
    # it so the warm run exercises the cached sets + orientation
    # (the cache has its own floor-free regression tests).
    config = ExecutionConfig(threads=32, result_cache=False)
    rows = {}
    for name, run in _workloads(graph).items():
        cold_best = warm_best = float("inf")
        cold_last = warm_first = warm_second = None
        for __ in range(REPEATS):
            # Two cold one-shot calls; time the second (steady state).
            run(SisaSession(graph, config))
            gc.collect()
            start = time.perf_counter()
            cold_last = run(SisaSession(graph, config))
            cold_best = min(cold_best, time.perf_counter() - start)
            # One shared session; time its second (warm) run.
            session = SisaSession(graph, config)
            warm_first = run(session)
            gc.collect()
            start = time.perf_counter()
            warm_second = run(session)
            warm_best = min(warm_best, time.perf_counter() - start)
        assert cold_last is not None and warm_first is not None
        assert warm_second is not None
        # Functional outputs are identical on cold and warm paths.
        assert np.array_equal(
            np.asarray(cold_last.output), np.asarray(warm_second.output)
        ), name
        # A cold session's first run is cycle-identical to the one-shot
        # path; the warm run re-registers nothing.
        assert cold_last.runtime_cycles == warm_first.runtime_cycles, name
        assert warm_second.registrations == 0, name
        assert warm_second.warm and not warm_first.warm
        rows[name] = {
            "cold": cold_best,
            "warm": warm_best,
            "speedup": cold_best / warm_best,
        }
    return rows


def _render(graph, rows):
    print("== Session reuse: warm second run vs cold one-shot call ==")
    print(
        f"chung-lu n={graph.num_vertices} m={graph.edge_array().shape[0]}"
        f" watchlist={PAIRS} pairs, threads=32"
    )
    print(f"{'workload':<20}{'cold ms':>10}{'warm ms':>10}{'speedup':>10}")
    for name, row in rows.items():
        print(
            f"{name:<20}{row['cold'] * 1e3:>10.1f}{row['warm'] * 1e3:>10.1f}"
            f"{row['speedup']:>9.1f}x"
        )
    print(
        f"\nwarm-session floor (watchlist workload): {MIN_SPEEDUP:.1f}x; "
        "warm runs perform zero set re-registrations"
    )


def test_session_reuse_speedup(benchmark):
    graph = chung_lu_graph(N, M, gamma=2.4, seed=13)
    rows = _measure(graph)
    emit("session_reuse", lambda: _render(graph, rows))
    emit_json(
        "session_reuse",
        {
            name: {
                "cold_ms": row["cold"] * 1e3,
                "warm_ms": row["warm"] * 1e3,
                "speedup": row["speedup"],
            }
            for name, row in rows.items()
        },
        floors={"min_watchlist_speedup": MIN_SPEEDUP},
    )
    assert rows["watchlist-jaccard"]["speedup"] >= MIN_SPEEDUP
    # Triangle counting re-runs also benefit, if more modestly (the
    # per-vertex counting itself dominates); guard against regression
    # to "no reuse at all".
    assert rows["triangles"]["speedup"] >= 1.0

    session = SisaSession(graph, ExecutionConfig(threads=32))
    pairs = _watchlist(graph.num_vertices, PAIRS)
    session.run("similarity_pairs", pairs=pairs, measure="jaccard")
    benchmark(
        lambda: session.run("similarity_pairs", pairs=pairs, measure="jaccard")
    )


if __name__ == "__main__":
    graph = chung_lu_graph(N, M, gamma=2.4, seed=13)
    _render(graph, _measure(graph))
