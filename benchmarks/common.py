"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
evaluation (the mapping is in DESIGN.md's per-experiment index).  The
simulated results are printed and also written to
``benchmarks/results/<name>.txt`` so they survive pytest's output
capture.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout
from pathlib import Path

from repro.session import ExecutionConfig, SisaSession

RESULTS_DIR = Path(__file__).parent / "results"

#: Bench names that wrote a real ``BENCH_<name>.json`` record this
#: process — :func:`emit` backfills a stub for any bench that never
#: calls :func:`emit_json`, so the CI dashboard's "every bench leaves a
#: JSON record" invariant holds regardless of which helper a bench
#: uses (and in either call order within one process).
_JSON_EMITTED: set[str] = set()


def session_cell(
    graph,
    workload: str,
    *,
    digest=None,
    threads: int = 32,
    mode: str = "sisa",
    config: ExecutionConfig | None = None,
    **params,
):
    """One benchmark cell through the session API.

    Builds a cold :class:`SisaSession` (so the measured cycles match
    the historical one-shot numbers bit-for-bit), runs the named
    workload, and returns the ``(output_digest, runtime_cycles)`` pair
    the harness's ``run_three_variants`` callables produce.
    """
    if config is None:
        config = ExecutionConfig(threads=threads, mode=mode)
    run = SisaSession(graph, config).run(workload, **params)
    output = run.output if digest is None else digest(run.output)
    return output, run.runtime_cycles


def emit(name: str, render) -> str:
    """Run ``render()`` capturing stdout; save and return the text."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        render()
    text = buffer.getvalue()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    if name not in _JSON_EMITTED:
        # Stub record so BENCH_<name>.json always exists; overwritten
        # with the real metrics if the bench later calls emit_json.
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(
            json.dumps({"bench": name, "metrics": {}}, indent=2) + "\n"
        )
    print(text)
    return text


def emit_json(name: str, metrics: dict, *, floors: dict | None = None) -> Path:
    """Write one machine-readable benchmark record next to the text
    render: ``benchmarks/results/BENCH_<name>.json``.

    ``metrics`` holds the headline numbers a CI dashboard trends (keep
    values JSON-native: numbers, strings, shallow containers);
    ``floors`` echoes whatever acceptance thresholds the bench asserted
    against, so a regression report can show how close each run came.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {"bench": name, "metrics": metrics}
    if floors:
        record["floors"] = floors
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, default=str) + "\n")
    _JSON_EMITTED.add(name)
    return path


# The Fig. 6 small-graph panel, trimmed to one representative per
# dataset family to keep pure-Python simulation times practical.
FIG6_GRAPHS = [
    "int-antCol5-d1",
    "bio-SC-GT",
    "bio-HS-LC",
    "bn-flyMedulla",
    "econ-beacxc",
    "soc-fbMsg",
]

# Pattern cutoffs, following the paper's long-simulation methodology
# (Section 9.1: "we usually also pre-specify a number of graph
# patterns to be found").
CUTOFFS = {
    "kcc": 20_000,
    "ksc": 5_000,
    "mc": 1_000,
    "si": 1_000,
}
