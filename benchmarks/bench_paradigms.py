"""Section 9.2, "Comparison to Other Paradigms": SISA vs. the
neighborhood-expansion (Peregrine/GRAMER) and relational-join
(RStream/TrieJax) paradigms.

Paper: SISA is 10-100x faster than Peregrine (and >1000x for mc, which
Peregrine cannot express natively) and >100x faster than RStream.
"""

import pytest

from repro.algorithms.bron_kerbosch import maximal_cliques
from repro.algorithms.kclique import kclique_count
from repro.baselines.frameworks import (
    peregrine_like_kclique,
    peregrine_like_maximal_cliques,
    rstream_like_kclique,
)
from repro.datasets import load

from common import emit

GRAPHS = ["int-HosWardProx", "bn-flyMedulla", "soc-fbMsg"]


def _collect():
    rows = []
    for name in GRAPHS:
        graph = load(name)
        sisa_kcc = kclique_count(graph, 4, threads=32, max_patterns=10_000)
        peregrine = peregrine_like_kclique(
            graph, 4, threads=32, max_patterns=10_000
        )
        rstream = rstream_like_kclique(graph, 4, threads=32)
        sisa_mc = maximal_cliques(graph, threads=32, max_patterns=300)
        peregrine_mc = peregrine_like_maximal_cliques(
            graph, threads=32, max_patterns=300, max_size=6
        )
        rows.append(
            {
                "graph": name,
                "kcc_sisa": sisa_kcc.runtime_cycles / 1e6,
                "kcc_peregrine": peregrine.runtime_cycles / 1e6,
                "kcc_rstream": rstream.runtime_cycles / 1e6,
                "mc_sisa": sisa_mc.runtime_cycles / 1e6,
                "mc_peregrine": peregrine_mc.runtime_cycles / 1e6,
            }
        )
    return rows


def _render(rows):
    print("== Paradigm comparison (runtimes, Mcycles) ==")
    print(
        f"{'graph':<18}{'kcc4 sisa':>11}{'peregrine':>11}{'rstream':>11}"
        f"{'mc sisa':>11}{'mc pereg.':>11}"
    )
    for row in rows:
        print(
            f"{row['graph']:<18}{row['kcc_sisa']:>11.3f}"
            f"{row['kcc_peregrine']:>11.1f}{row['kcc_rstream']:>11.1f}"
            f"{row['mc_sisa']:>11.3f}{row['mc_peregrine']:>11.1f}"
        )
        print(
            f"  speedups: vs peregrine {row['kcc_peregrine'] / row['kcc_sisa']:.0f}x "
            f"(kcc), {row['mc_peregrine'] / row['mc_sisa']:.0f}x (mc); "
            f"vs rstream {row['kcc_rstream'] / row['kcc_sisa']:.0f}x"
        )


def test_paradigm_comparison(benchmark):
    rows = _collect()
    emit("paradigms", lambda: _render(rows))
    for row in rows:
        assert row["kcc_peregrine"] / row["kcc_sisa"] > 10
        assert row["kcc_rstream"] / row["kcc_sisa"] > 10
        # mc through size-iteration is the paradigm's worst case.
        assert row["mc_peregrine"] / row["mc_sisa"] > 50
    graph = load(GRAPHS[0])
    benchmark(
        lambda: rstream_like_kclique(graph, 4, threads=32).output
    )
