"""Section 9.2, "SCU cache" and "SCU cache: shared vs private".

Paper: disabling the SCU metadata cache costs ~1.5x at T=1 and a few
percent at T=32 (more threads -> lower hit ratio); a shared cache adds
a small (<1%) slowdown from its longer access latency.
"""

import pytest

from repro.algorithms.kclique import kclique_count
from repro.datasets import load
from repro.hw.config import HardwareConfig

from common import emit

GRAPH = "intD-antCol4"
CUTOFF = 20_000


def _sweep():
    graph = load(GRAPH)
    rows = []
    for threads in (1, 32):
        with_cache = kclique_count(
            graph, 4, threads=threads, max_patterns=CUTOFF
        )
        without = kclique_count(
            graph, 4, threads=threads, smb_enabled=False, max_patterns=CUTOFF
        )
        hit_rate = with_cache.context.scu.smb.stats.hit_rate
        rows.append(
            (
                threads,
                with_cache.runtime_cycles / 1e6,
                without.runtime_cycles / 1e6,
                without.runtime_cycles / with_cache.runtime_cycles,
                hit_rate,
            )
        )
    # Shared cache: model as a single SMB with higher hit rate but a
    # 2-cycle higher hit latency (the paper's small slowdown).
    shared_hw = HardwareConfig(sm_hit_cycles=4.0, smb_entries=4096)
    shared = kclique_count(
        graph, 4, threads=32, hw=shared_hw, max_patterns=CUTOFF
    )
    return rows, shared.runtime_cycles / 1e6


def _render(rows, shared_mcycles):
    print("== SCU metadata cache sensitivity (kcc-4) ==")
    print(
        f"{'T':>4}{'with SMB':>11}{'no SMB':>11}{'slowdown':>10}{'hit rate':>10}"
    )
    for threads, with_cache, without, slowdown, hits in rows:
        print(
            f"{threads:>4}{with_cache:>11.3f}{without:>11.3f}"
            f"{slowdown:>10.2f}x{hits:>9.0%}"
        )
    t32 = rows[-1][1]
    print(
        f"\nshared SCU cache at T=32: {shared_mcycles:.3f} Mcycles "
        f"({shared_mcycles / t32 - 1:+.1%} vs private)"
    )


def test_scu_cache(benchmark):
    rows, shared = _sweep()
    emit("scu_cache", lambda: _render(rows, shared))
    t1 = rows[0]
    t32 = rows[1]
    assert t1[3] > 1.0  # no-SMB hurts at T=1
    assert t1[4] > 0.5  # decent hit rate single-threaded
    # The paper: the relative penalty shrinks (or at least does not
    # grow) with more threads.
    assert t32[3] <= t1[3] + 0.2
    # Shared cache within a few percent of private.
    assert abs(shared / t32[1] - 1.0) < 0.1
    graph = load(GRAPH)
    benchmark(
        lambda: kclique_count(graph, 4, threads=1, max_patterns=2000).output
    )
