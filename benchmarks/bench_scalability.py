"""Section 9.2, "Scalability": strong and weak scaling on Kronecker
graphs.

Paper: SISA maintains its speedups, but they become less distinctive
when T is small (fewer threads exert less pressure on the memory
subsystem).
"""

import pytest

from repro.algorithms.kclique import kclique_count
from repro.baselines.nonset import kclique_count_nonset
from repro.graphs.generators import kronecker_graph
from repro.hw.config import commodity_cpu_config

from common import emit

THREADS = [1, 4, 16, 32]
CUTOFF = 20_000


def _strong_scaling():
    graph = kronecker_graph(10, 16, seed=3)
    rows = []
    for threads in THREADS:
        sisa = kclique_count(graph, 4, threads=threads, max_patterns=CUTOFF)
        nonset = kclique_count_nonset(
            graph,
            4,
            threads=threads,
            cpu=commodity_cpu_config(),
            max_patterns=CUTOFF,
        )
        rows.append(
            (
                threads,
                sisa.runtime_cycles / 1e6,
                nonset.runtime_cycles / 1e6,
                nonset.runtime_cycles / sisa.runtime_cycles,
            )
        )
    return rows


def _weak_scaling():
    rows = []
    for threads, scale in [(4, 9), (8, 10), (16, 11), (32, 12)]:
        graph = kronecker_graph(scale, 12, seed=5)
        sisa = kclique_count(graph, 4, threads=threads, max_patterns=CUTOFF)
        nonset = kclique_count_nonset(
            graph,
            4,
            threads=threads,
            cpu=commodity_cpu_config(),
            max_patterns=CUTOFF,
        )
        rows.append(
            (
                threads,
                graph.num_vertices,
                sisa.runtime_cycles / 1e6,
                nonset.runtime_cycles / sisa.runtime_cycles,
            )
        )
    return rows


def _render(strong, weak):
    print("== Scalability on Kronecker graphs (kcc-4) ==")
    print("\nStrong scaling (scale-10 graph, 16 edges/vertex):")
    print(f"{'T':>4}{'sisa Mcyc':>12}{'nonset Mcyc':>13}{'speedup':>9}")
    for threads, sisa, nonset, speedup in strong:
        print(f"{threads:>4}{sisa:>12.3f}{nonset:>13.3f}{speedup:>9.2f}x")
    print("\nWeak scaling (graph grows with T):")
    print(f"{'T':>4}{'n':>8}{'sisa Mcyc':>12}{'speedup':>9}")
    for threads, n, sisa, speedup in weak:
        print(f"{threads:>4}{n:>8}{sisa:>12.3f}{speedup:>9.2f}x")


def test_scalability(benchmark):
    strong = _strong_scaling()
    weak = _weak_scaling()
    emit("scalability", lambda: _render(strong, weak))
    # SISA keeps winning at every thread count...
    for __, __, __, speedup in strong:
        assert speedup > 1.0
    # ...and the advantage grows with thread pressure (paper: gains are
    # "less distinctive when T is small").
    assert strong[-1][3] > strong[0][3]
    graph = kronecker_graph(9, 8, seed=1)
    benchmark(
        lambda: kclique_count(graph, 4, threads=32, max_patterns=2000).output
    )
