"""Figure 1: Bron-Kerbosch on a commodity CPU — runtimes flatten and
stalled-cycle fractions rise as threads increase.

Paper: "When we increase the number of parallel threads, runtime
decrease flattens out and stalled CPU cycle count increases."
"""

import pytest

from repro.baselines.nonset import maximal_cliques_nonset
from repro.datasets import load
from repro.hw.config import commodity_cpu_config

from common import emit

GRAPHS = ["int-antCol5-d1", "int-antCol6-d2", "soc-fbMsg", "bn-flyMedulla"]
THREADS = [1, 2, 4, 8, 16, 32]


def _sweep():
    cpu = commodity_cpu_config()
    rows = {}
    for name in GRAPHS:
        graph = load(name)
        series = []
        for threads in THREADS:
            run = maximal_cliques_nonset(
                graph, threads=threads, cpu=cpu, max_patterns_per_root=4
            )
            series.append(
                (threads, run.runtime_cycles / 1e6, run.report.avg_stall_fraction)
            )
        rows[name] = series
    return rows


def _render(rows):
    print("== Fig. 1: BK on a commodity CPU (runtime & stall fraction) ==")
    print(f"{'graph':<18}{'T':>4}{'Mcycles':>12}{'stall':>8}")
    for name, series in rows.items():
        for threads, mcycles, stall in series:
            print(f"{name:<18}{threads:>4}{mcycles:>12.3f}{stall:>8.2f}")
        t1 = series[0][1]
        t32 = series[-1][1]
        print(
            f"  {name}: 1->32 thread speedup {t1 / t32:.1f}x "
            f"(flattens below the ideal 32x); stall "
            f"{series[0][2]:.2f} -> {series[-1][2]:.2f}"
        )


def test_fig1_motivation(benchmark):
    rows = _sweep()
    emit("fig1_motivation", lambda: _render(rows))
    # Assert the paper's two qualitative observations.
    for name, series in rows.items():
        runtimes = [mcycles for __, mcycles, __ in series]
        stalls = [stall for __, __, stall in series]
        assert runtimes[-1] <= runtimes[0]  # threads help...
        assert runtimes[0] / runtimes[-1] < 24  # ...but far below ideal 32x
        # The tail of the curve flattens: 16 -> 32 threads gains < 2x.
        assert runtimes[-2] / runtimes[-1] < 2.0
        assert stalls[-1] >= stalls[0]  # stalls rise
    graph = load(GRAPHS[0])
    cpu = commodity_cpu_config()
    benchmark(
        lambda: maximal_cliques_nonset(
            graph, threads=32, cpu=cpu, max_patterns_per_root=1
        )
    )
