"""Cross-plan fusion: modeled-cycle win of batched plan execution.

The serving pattern the plan/execute split targets is a *mixed
workload batch* hitting one graph at once — a triangle-count refresh,
the clustering coefficient derived from it, and a link-prediction
watchlist re-score.  Executed as sequential ``session.run`` calls,
each query runs in isolation: the clustering query re-counts every
triangle the refresh just counted, and every count burst pays its own
SCU dispatch and probe-metadata fetch.

``session.run_many([...], fuse=True)`` executes the same batch as
compiled :class:`WorkloadPlan`\\ s: identical sub-requests (the
triangle count inside ``clustering_coefficient``) dedup through the
result cache before any instruction issues, and the remaining
count-form frontier bursts from different plans fuse into shared macro
dispatches — the macro decode and the probe metadata fetch are paid
once per fused group instead of once per op.

Acceptance floor (enforced here and in CI): the fused batch completes
in <= 1/1.5 of the modeled cycles of the sequential warm loop, while a
fusion-*disabled* ``run_many`` of the same batch is asserted
bit-identical to the sequential stream (outputs, per-plan cycles,
dispatch stats).  Modeled cycles are deterministic, so CI asserts the
full floor.

Env knobs: ``BENCH_PLAN_N`` / ``BENCH_PLAN_M`` (graph shape, default
4000 / 16000), ``BENCH_PLAN_PAIRS`` (watchlist size, default 400),
``BENCH_PLAN_MIN_SPEEDUP`` (floor, default 1.5).
"""

import os

import numpy as np

from repro.graphs.generators import chung_lu_graph
from repro.session import ExecutionConfig, SisaSession

from common import emit, emit_json

N = int(os.environ.get("BENCH_PLAN_N", "4000"))
M = int(os.environ.get("BENCH_PLAN_M", "16000"))
PAIRS = int(os.environ.get("BENCH_PLAN_PAIRS", "400"))
MIN_SPEEDUP = float(os.environ.get("BENCH_PLAN_MIN_SPEEDUP", "1.5"))
THREADS = 32


def _watchlist(n: int, count: int) -> np.ndarray:
    rng = np.random.default_rng(11)
    pairs = rng.integers(0, n, size=(int(count * 1.2), 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]][:count]
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def _batch(pairs):
    return [
        ("triangles", {}),
        ("clustering_coefficient", {}),
        ("similarity_pairs", {"pairs": pairs, "measure": "jaccard"}),
    ]


def _warm_session(graph):
    """A session with both cached structures built, so the measured
    region compares steady-state serving, not setup.  The result cache
    is disabled: the sequential baseline must re-execute its queries,
    not answer them in O(1) (the cache has its own benchmarks)."""
    session = SisaSession(
        graph, ExecutionConfig(threads=THREADS, result_cache=False)
    )
    session.run("triangles")  # builds the orientation
    session.run("local_clustering")  # builds the undirected sets
    return session


def _measure(graph):
    pairs = _watchlist(graph.num_vertices, PAIRS)
    batch = _batch(pairs)

    # Sequential warm loop: each query runs in isolation.
    seq_session = _warm_session(graph)
    seq_runs = [seq_session.run(name, **params) for name, params in batch]
    seq_cycles = [r.runtime_cycles for r in seq_runs]

    # Fusion-disabled plan execution: asserted bit-identical.
    plain_session = _warm_session(graph)
    plain_runs = plain_session.run_many(batch, fuse=False)
    for seq, plain in zip(seq_runs, plain_runs):
        assert repr(plain.output) == repr(seq.output)
        assert plain.runtime_cycles == seq.runtime_cycles
        assert plain.stats == seq.stats
        assert plain.opcode_counts() == seq.opcode_counts()

    # Fused plan execution of the same batch, statically certified
    # hazard-free first (verify=True): the verifier is pure host-side
    # analysis, so outputs and modeled cycles are unchanged by it.
    fused_session = _warm_session(graph)
    mark = fused_session.ctx.mark()
    fused_runs = fused_session.run_many(batch, fuse=True, verify=True)
    fused_cycles = fused_session.ctx.report_since(mark).runtime_cycles
    for seq, fused in zip(seq_runs, fused_runs):
        assert np.array_equal(
            np.asarray(fused.output), np.asarray(seq.output)
        ), fused.workload

    rows = []
    for seq, fused in zip(seq_runs, fused_runs):
        rows.append(
            {
                "workload": seq.workload,
                "seq_mcycles": seq.runtime_cycles / 1e6,
                "fused_mcycles": fused.runtime_cycles / 1e6,
                "seq_instr": seq.instructions,
                "fused_instr": fused.instructions,
            }
        )
    total_seq = float(sum(seq_cycles))
    macros = fused_session.ctx.scu.stats.fused_macros
    return rows, total_seq, float(fused_cycles), macros


def _render(graph, rows, total_seq, fused_cycles, macros):
    print("== Plan fusion: mixed workload batch vs sequential warm runs ==")
    print(
        f"chung-lu n={graph.num_vertices} m={graph.edge_array().shape[0]} "
        f"watchlist={PAIRS} pairs, threads={THREADS}"
    )
    print(
        f"{'workload':<24}{'seq Mcyc':>10}{'fused Mcyc':>12}"
        f"{'seq instr':>11}{'fused instr':>12}"
    )
    for row in rows:
        print(
            f"{row['workload']:<24}{row['seq_mcycles']:>10.3f}"
            f"{row['fused_mcycles']:>12.3f}{row['seq_instr']:>11}"
            f"{row['fused_instr']:>12}"
        )
    speedup = total_seq / fused_cycles
    print(
        f"\nsequential batch: {total_seq / 1e6:.3f} Mcycles; "
        f"fused batch: {fused_cycles / 1e6:.3f} Mcycles "
        f"({macros} fused macros)"
    )
    print(
        f"fused speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x); "
        "fusion-disabled execution asserted bit-identical to the "
        "sequential stream"
    )


def test_plan_fusion_speedup(benchmark):
    graph = chung_lu_graph(N, M, gamma=2.4, seed=17)
    rows, total_seq, fused_cycles, macros = _measure(graph)
    emit(
        "plan_fusion",
        lambda: _render(graph, rows, total_seq, fused_cycles, macros),
    )
    emit_json(
        "plan_fusion",
        {
            "speedup": total_seq / fused_cycles,
            "sequential_mcycles": total_seq / 1e6,
            "fused_mcycles": fused_cycles / 1e6,
            "fused_macros": macros,
        },
        floors={"min_speedup": MIN_SPEEDUP},
    )
    assert total_seq / fused_cycles >= MIN_SPEEDUP

    session = _warm_session(graph)
    pairs = _watchlist(graph.num_vertices, PAIRS)
    benchmark(lambda: session.run_many(_batch(pairs), fuse=True))


if __name__ == "__main__":
    graph = chung_lu_graph(N, M, gamma=2.4, seed=17)
    _render(graph, *_measure(graph))
