"""Energy ablation (extension): first-order energy of SISA vs. the host
set-based baseline.

The paper motivates in-situ PIM partly by energy efficiency (Section 1,
Section 8.1); this bench quantifies the model's data-movement savings
for a representative mining workload.
"""

import pytest

from repro.algorithms.triangles import triangle_count
from repro.datasets import load
from repro.hw.energy import estimate_energy

from common import emit

GRAPHS = ["bio-SC-GT", "bn-flyMedulla", "econ-beacxc"]


def _collect():
    rows = []
    for name in GRAPHS:
        graph = load(name)
        sisa = triangle_count(graph, threads=32)
        host = triangle_count(graph, threads=32, mode="cpu-set")
        assert sisa.output == host.output
        e_sisa = estimate_energy(sisa.context)
        e_host = estimate_energy(host.context)
        rows.append((name, e_sisa, e_host))
    return rows


def _render(rows):
    print("== Energy ablation: tc, SISA vs host set-based (nJ) ==")
    print(
        f"{'graph':<16}{'sisa move':>11}{'sisa total':>12}"
        f"{'host move':>11}{'host total':>12}{'ratio':>8}"
    )
    for name, e_sisa, e_host in rows:
        print(
            f"{name:<16}{e_sisa.data_movement_nj:>11.0f}"
            f"{e_sisa.total_nj:>12.0f}{e_host.data_movement_nj:>11.0f}"
            f"{e_host.total_nj:>12.0f}"
            f"{e_host.total_nj / e_sisa.total_nj:>8.2f}x"
        )


def test_energy_ablation(benchmark):
    rows = _collect()
    emit("energy", lambda: _render(rows))
    for name, e_sisa, e_host in rows:
        assert e_sisa.total_nj < e_host.total_nj
    graph = load(GRAPHS[0])
    benchmark(lambda: estimate_energy(triangle_count(graph, threads=32).context).total_nj)
