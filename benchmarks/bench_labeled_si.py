"""Section 9.2, "Labels": labeled subgraph isomorphism.

Paper: "Most often, labeled graphs are faster to process.  Despite
more memory accesses, the labels form additional constraints, which
eliminates some recursive calls earlier."  Each vertex receives one of
3 random labels.
"""

import pytest

from repro.algorithms.subgraph_iso import star_pattern, subgraph_isomorphism
from repro.graphs.generators import chung_lu_graph
from repro.graphs.labels import Labeling

from common import emit

NUM_LABELS = 3


def _collect():
    rows = []
    # Light-tailed targets keep the *full* (uncut) star enumeration
    # tractable in pure Python; the labeled-vs-unlabeled effect does
    # not depend on the tail.
    for name, graph in (
        ("chung-lu-300", chung_lu_graph(300, 1200, gamma=3.0, seed=21)),
        ("chung-lu-400", chung_lu_graph(400, 1500, gamma=3.2, seed=22)),
    ):
        pattern = star_pattern(3)
        unlabeled = subgraph_isomorphism(graph, pattern, threads=32)
        labeled = subgraph_isomorphism(
            graph,
            pattern,
            threads=32,
            target_labels=Labeling.random(graph, NUM_LABELS, seed=1),
            pattern_labels=Labeling(pattern, [0, 1, 2, 0]),
        )
        rows.append(
            (
                name,
                unlabeled.output,
                unlabeled.runtime_cycles / 1e6,
                labeled.output,
                labeled.runtime_cycles / 1e6,
            )
        )
    return rows


def _render(rows):
    print("== Labeled subgraph isomorphism (si-3s, 3 random labels) ==")
    print(
        f"{'graph':<16}{'matches':>10}{'Mcyc':>10}"
        f"{'matches-L':>11}{'Mcyc-L':>10}{'speedup':>9}"
    )
    for name, matches, mcycles, matches_l, mcycles_l in rows:
        print(
            f"{name:<16}{matches:>10}{mcycles:>10.3f}"
            f"{matches_l:>11}{mcycles_l:>10.3f}{mcycles / mcycles_l:>9.2f}x"
        )


def test_labeled_si(benchmark):
    rows = _collect()
    emit("labeled_si", lambda: _render(rows))
    for name, matches, mcycles, matches_l, mcycles_l in rows:
        assert matches_l < matches  # labels constrain the matches
        assert mcycles_l < mcycles  # and prune the search
    graph = chung_lu_graph(300, 1200, gamma=3.0, seed=23)
    pattern = star_pattern(3)
    benchmark(
        lambda: subgraph_isomorphism(
            graph, pattern, threads=32, max_matches=2000
        ).output
    )
