"""Figure 7a: degree-distribution analysis of the large graphs.

Paper: graphs used in graph mining (genome graphs) have very heavy
tails — the human gene graph's max degree reaches ~50% of n — while
graphs used also outside mining (soc-orkut, sc-pwtk) have much lighter
tails (~1% and <0.1% of n).
"""

import pytest

from repro.datasets import load
from repro.graphs.properties import degree_histogram, degree_stats

from common import emit

GRAPHS = ["bio-humanGene", "bio-mouseGene", "soc-orkut", "sc-pwtk"]


def _collect():
    rows = {}
    for name in GRAPHS:
        graph = load(name)
        rows[name] = (degree_stats(graph), degree_histogram(graph))
    return rows


def _render(rows):
    print("== Fig. 7a: degree distribution analysis ==")
    for name, (stats, (bins, counts)) in rows.items():
        print(
            f"\n{name}: n={stats.num_vertices} m={stats.num_edges} "
            f"max deg={stats.max_degree} "
            f"({100 * stats.max_degree_fraction:.1f}% of n) "
            f"gini={stats.gini:.2f}"
        )
        for edge, count in zip(bins, counts):
            if count:
                bar = "#" * max(1, min(60, int(count).bit_length() * 4))
                print(f"  deg>={int(edge):>6}: {int(count):>7} {bar}")


def test_fig7a_degree_analysis(benchmark):
    rows = _collect()
    emit("fig7a_degrees", lambda: _render(rows))
    stats = {name: rows[name][0] for name in rows}
    # The paper's annotated orderings.
    assert stats["bio-humanGene"].max_degree_fraction > 0.15
    assert stats["bio-mouseGene"].max_degree_fraction > 0.10
    assert stats["soc-orkut"].max_degree_fraction < 0.10
    assert stats["sc-pwtk"].max_degree_fraction < 0.01
    benchmark(lambda: degree_stats(load("bio-humanGene")))
