"""Schedule certifier what-if: modeled lane-speedup curve of the
robustness-soak batch under a certified parallel schedule.

Shard-parallel execution does not exist in the engine yet — this bench
is the *proof it is worth building*.  The schedule certifier lowers
the certified 8-tenant soak batch (8 tenants x 5 workloads = 40 plans)
into its dependency DAG, a race-detector replay executes the batch in
the certified order (measuring each node's attributed engine cycles
and proving the interleaving free of happens-before races), and the
what-if model then re-times the same DAG at 1/2/4/8 lanes: each lane
runs its assigned nodes back to back, every cross-lane dependency edge
charges a host merge, and the batch finishes at the slowest lane.

Acceptance floors (enforced here and in CI): the replay reports zero
races and every output is bit-identical to a fresh sequential session;
the modeled parallel cycles never exceed the sequential sum at any
lane width; and the lanes=4 speedup clears 1.5x (the whole-plan dedup
chain across tenants bounds the critical path, so wider batches
parallelize across tenants' distinct workloads).  Modeled cycles are
deterministic, so CI asserts the full floors.

Env knobs: ``BENCH_WHATIF_N`` (smoke graph vertices, default 60),
``BENCH_WHATIF_TENANTS`` (default 8), ``BENCH_WHATIF_MIN_SPEEDUP``
(lanes=4 floor, default 1.5).
"""

import os

from repro.analysis.static.racecheck import replay_certified
from repro.analysis.static.schedule import certify_schedule
from repro.analysis.static.smoke import (
    SOAK_WORKLOADS,
    make_session,
    soak_batch,
)
from repro.session.cache import fingerprint

from common import emit, emit_json

N = int(os.environ.get("BENCH_WHATIF_N", "60"))
TENANTS = int(os.environ.get("BENCH_WHATIF_TENANTS", "8"))
MIN_SPEEDUP = float(os.environ.get("BENCH_WHATIF_MIN_SPEEDUP", "1.5"))
LANE_WIDTHS = (1, 2, 4, 8)


def _measure():
    # Certify + replay the soak batch: measures per-node costs and
    # proves the certified interleaving race-free.
    session = make_session(n=N)
    plans = soak_batch(session, tenants=TENANTS)
    schedule = certify_schedule(plans, lanes=4)
    results, races, _log = replay_certified(session, plans, schedule, lanes=4)
    assert races == [], [race.summary() for race in races]
    assert schedule.measured

    # Bit-identity oracle: the same workloads on a fresh session, run
    # sequentially through the eager path.
    ref_session = make_session(n=N)
    reference = {
        name: fingerprint(ref_session.run(name, **dict(params)).output)
        for name, params in SOAK_WORKLOADS
    }
    for plan, result in zip(plans, results):
        assert result.ok and result.scheduled, plan.name
        assert fingerprint(result.output) == reference[plan.name], plan.name

    curve = {lanes: schedule.what_if(lanes) for lanes in LANE_WIDTHS}
    for model in curve.values():
        assert model.measured
        assert model.parallel_cycles <= model.sequential_cycles + 1e-9
    return schedule, curve


def _render(schedule, curve):
    print("== Schedule what-if: modeled lane speedup of the soak batch ==")
    print(
        f"robustness soak: {TENANTS} tenants x {len(SOAK_WORKLOADS)} "
        f"workloads = {len(schedule.nodes)} DAG nodes, "
        f"{len(schedule.edges)} dependency edges "
        f"(G(n={N}) smoke graph; replay race-free, outputs bit-identical "
        "to sequential)"
    )
    print(
        f"{'lanes':>6}{'parallel Mcyc':>15}{'sequential Mcyc':>17}"
        f"{'merge Mcyc':>12}{'x-edges':>9}{'speedup':>9}"
    )
    for lanes, model in sorted(curve.items()):
        print(
            f"{lanes:>6}{model.parallel_cycles / 1e6:>15.4f}"
            f"{model.sequential_cycles / 1e6:>17.4f}"
            f"{model.merge_cycles / 1e6:>12.4f}"
            f"{model.cross_edges:>9}{model.speedup:>9.3f}"
        )
    print(
        f"\nlanes=4 modeled speedup: {curve[4].speedup:.3f}x "
        f"(floor {MIN_SPEEDUP:.1f}x); parallel cycles <= sequential at "
        "every lane width"
    )


def test_schedule_whatif_speedup(benchmark):
    schedule, curve = _measure()
    emit("schedule_whatif", lambda: _render(schedule, curve))
    emit_json(
        "schedule_whatif",
        {
            "nodes": len(schedule.nodes),
            "edges": len(schedule.edges),
            "tenants": TENANTS,
            "lanes_4_speedup": curve[4].speedup,
            "curve": {
                str(lanes): model.as_dict()
                for lanes, model in sorted(curve.items())
            },
        },
        floors={"min_speedup_lanes4": MIN_SPEEDUP},
    )
    assert curve[4].speedup >= MIN_SPEEDUP

    # The hot loop a scheduler admission gate would pay per batch:
    # certification alone (pure host-side static analysis).
    session = make_session(n=N)
    plans = soak_batch(session, tenants=TENANTS)
    benchmark(lambda: certify_schedule(plans, lanes=4))


if __name__ == "__main__":
    _render(*_measure())
