"""Figure 9: load-balance analysis.

* 9a — per-thread stall fractions for kcc-4/5 across the three
  variants: SISA's stall times are low because the SCU's adaptive
  variant selection and PUM's size-independent DB ops absorb the
  imbalance of skewed set sizes.
* 9b — histograms of processed-set sizes for full vs. partial
  (cut-off) executions: the cutoff does not artificially remove the
  large sets that cause imbalance.
"""

import numpy as np
import pytest

from repro.algorithms.kclique import kclique_count
from repro.baselines.nonset import kclique_count_nonset
from repro.datasets import load

from common import emit

GRAPH = "int-antCol3-d1"
# Load-balance statistics need full (uncut) parallel executions, so the
# stall table runs on a light-tailed graph whose complete kcc search is
# tractable; the trace histograms use the ant-colony graph as in the
# paper.
STALL_GRAPH = "soc-fbMsg"
THREADS = 8


def _idle_fractions(report):
    """Per-lane idle share of the region: the load-imbalance component
    of stalled time (time a thread waits at the barrier because other
    lanes got heavier tasks)."""
    runtime = report.runtime_cycles
    if runtime <= 0:
        return [0.0] * report.threads
    return [max(0.0, 1.0 - busy / runtime) for busy in report.lane_times]


def _stall_table():
    graph = load(STALL_GRAPH)
    rows = {}
    for k in (4, 5):
        cells = {}
        nonset = kclique_count_nonset(graph, k, threads=THREADS)
        cells["non-set"] = _idle_fractions(nonset.report)
        for mode in ("cpu-set", "sisa"):
            run = kclique_count(graph, k, threads=THREADS, mode=mode)
            key = "set-based" if mode == "cpu-set" else "sisa"
            cells[key] = _idle_fractions(run.report)
        rows[f"kcc-{k}"] = cells
    return rows


def _set_size_histograms():
    graph = load(GRAPH)
    bins = np.array([0, 10, 20, 30, 40, 50, 60, 70, 80, 100, 150, 1000])
    full = kclique_count(graph, 4, threads=6, trace=True)
    partial = kclique_count(graph, 4, threads=6, trace=True, max_patterns=50_000)
    return bins, full, partial


def _render(stalls, bins, full, partial):
    print("== Fig. 9a: per-thread idle (imbalance) fractions (kcc, 8 threads) ==")
    for problem, cells in stalls.items():
        print(f"\n{problem}:")
        for variant, fractions in cells.items():
            mean = sum(fractions) / len(fractions)
            line = " ".join(f"{f:.2f}" for f in fractions)
            print(f"  {variant:<10} avg={mean:.2f}  [{line}]")

    print("\n== Fig. 9b: set-size histograms, full vs partial (kcc-4) ==")
    print(f"{'bin':>8}{'full':>10}{'partial':>10}")
    full_hist = full.context.trace.histogram(bins)
    partial_hist = partial.context.trace.histogram(bins)
    for i in range(len(bins) - 1):
        print(f"{int(bins[i]):>8}{int(full_hist[i]):>10}{int(partial_hist[i]):>10}")
    per_lane = []
    for lane in range(6):
        sizes = partial.context.trace.set_sizes(lane=lane)
        if sizes.size:
            per_lane.append((lane, int(sizes.max())))
    print("\nper-thread max processed set size (partial run):")
    for lane, largest in per_lane:
        print(f"  thread {lane}: {largest}")


def test_fig9_load_balance(benchmark):
    stalls = _stall_table()
    bins, full, partial = _set_size_histograms()
    emit("fig9_load_balance", lambda: _render(stalls, bins, full, partial))
    for problem, cells in stalls.items():
        sisa_avg = sum(cells["sisa"]) / len(cells["sisa"])
        nonset_avg = sum(cells["non-set"]) / len(cells["non-set"])
        # SISA's load imbalance stays at or below the non-set baseline's
        # (adaptive variant selection + size-independent PUM ops absorb
        # skewed set sizes).
        assert sisa_avg <= nonset_avg + 0.05, problem
    # Fig. 9b's claim: partial executions still encounter the large
    # sets that drive load imbalance (not the very largest, but well
    # into the heavy half of the distribution).
    full_sizes = full.context.trace.set_sizes()
    partial_sizes = partial.context.trace.set_sizes()
    assert partial_sizes.max() >= 0.5 * full_sizes.max()
    graph = load(GRAPH)
    benchmark(
        lambda: kclique_count(graph, 4, threads=8, max_patterns=2000).output
    )
