"""Table 6: theoretical work bounds vs. measured set-operation work.

Checks Observations 7.1-7.3 on every small dataset and verifies the
measured merge work of degeneracy-oriented triangle counting stays
inside the O(m c) envelope, with galloping's extra log factor showing
up where predicted.
"""

import pytest

from repro.analysis.theory import (
    bound_kclique_merge,
    bound_tc_gallop,
    bound_tc_merge,
    check_observation_71,
    check_observation_72,
    check_observation_73,
    graph_parameters,
    merge_work_measured,
)
from repro.datasets import dataset_names, load

from common import emit

GRAPHS = [name for name in dataset_names(large=False)][:10]


def _collect():
    rows = []
    for name in GRAPHS:
        graph = load(name)
        params = graph_parameters(graph)
        measured = merge_work_measured(graph)
        rows.append(
            {
                "graph": name,
                "n": params.n,
                "m": params.m,
                "c": params.degeneracy,
                "d": params.max_degree,
                "measured_merge_work": measured,
                "bound_tc_merge": bound_tc_merge(params),
                "bound_tc_gallop": bound_tc_gallop(params),
                "bound_kcc4_merge": bound_kclique_merge(params, 4),
                "obs71": check_observation_71(graph),
                "obs72": check_observation_72(graph),
                "obs73": check_observation_73(graph),
            }
        )
    return rows


def _render(rows):
    print("== Table 6: measured work vs analytic bounds ==")
    header = (
        f"{'graph':<18}{'n':>7}{'m':>9}{'c':>5}{'d':>6}"
        f"{'measured':>12}{'O(mc)':>12}{'O(mc log c)':>14}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['graph']:<18}{row['n']:>7}{row['m']:>9}{row['c']:>5}"
            f"{row['d']:>6}{row['measured_merge_work']:>12.0f}"
            f"{row['bound_tc_merge']:>12.0f}{row['bound_tc_gallop']:>14.0f}"
        )
    print("\nObservations 7.1-7.3 (lhs <= rhs) hold on every graph.")


def test_table6_bounds(benchmark):
    rows = _collect()
    emit("table6_complexity", lambda: _render(rows))
    for row in rows:
        # Measured oriented merge work within a small constant of O(mc).
        assert row["measured_merge_work"] <= 2 * row["bound_tc_merge"] + 1
        # Galloping bound dominates merging's by the log factor.
        assert row["bound_tc_gallop"] >= row["bound_tc_merge"]
        for obs in ("obs71", "obs72", "obs73"):
            lhs, rhs = row[obs]
            assert lhs <= rhs, (row["graph"], obs)
    graph = load(GRAPHS[0])
    benchmark(lambda: merge_work_measured(graph))
