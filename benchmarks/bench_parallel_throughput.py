"""Parallel serving throughput: the certified soak batch on real
shard worker processes, bit-identical to sequential serving.

``bench_schedule_whatif`` proved the *modeled* lane speedup of the
certified 8-tenant soak batch; this bench runs the same batch through
the real thing — ``pool.run(lanes=4, parallel=True)`` fans count-form
burst units out to spawned worker processes over shared-memory shards
and merges the partial counts deterministically on the host.

Acceptance (the deterministic floors are asserted unconditionally):

* every output, every per-tenant cycle ledger and every modeled
  runtime-cycle figure is bit-identical to the sequential scheduled
  run of the same batch;
* the reconciled parallel report equals the certifier's prediction
  exactly — ``parallel_cycles == what_if(lanes).makespan +
  merge_cycles`` (32 host cycles per cross-lane dependency edge);
* wall-clock speedup of lanes=4 over lanes=1 (same offload machinery,
  one shard) clears ``BENCH_PAR_MIN_WALL_SPEEDUP`` (default 1.3x) —
  enforced only when the machine has >= 4 CPU cores, reported and
  skipped gracefully otherwise (a 1-core box cannot demonstrate wall
  parallelism, only correctness).

Env knobs: ``BENCH_PAR_N`` (graph vertices, default 60),
``BENCH_PAR_P`` (edge probability, default 0.12),
``BENCH_PAR_TENANTS`` (default 8), ``BENCH_PAR_LANES`` (default 4),
``BENCH_PAR_MIN_WALL_SPEEDUP`` (default 1.3).
"""

import os
import time

from repro.analysis.static.smoke import SOAK_WORKLOADS
from repro.graphs.generators import gnp_random_graph
from repro.session import SessionPool
from repro.session.cache import fingerprint

from common import emit, emit_json

N = int(os.environ.get("BENCH_PAR_N", "60"))
P = float(os.environ.get("BENCH_PAR_P", "0.12"))
TENANTS = int(os.environ.get("BENCH_PAR_TENANTS", "8"))
LANES = int(os.environ.get("BENCH_PAR_LANES", "4"))
MIN_WALL_SPEEDUP = float(
    os.environ.get("BENCH_PAR_MIN_WALL_SPEEDUP", "1.3")
)
ENOUGH_CORES = (os.cpu_count() or 1) >= 4


def _submit(pool: SessionPool, graph) -> int:
    count = 0
    for t in range(TENANTS):
        for name, params in SOAK_WORKLOADS:
            pool.submit(
                "bench", name, tenant=f"tenant-{t}", graph=graph, **params
            )
            count += 1
    return count


def _parallel_run(graph, lanes: int):
    """One fresh pool serving the full soak batch with ``parallel=True``
    at the given lane width; returns (pool, results, wall_seconds)."""
    pool = SessionPool(threads=8)
    pool.parallel_offload_threshold = 0  # every count burst offloads
    _submit(pool, graph)
    t0 = time.perf_counter()
    results = pool.run(lanes=lanes, parallel=True)
    wall = time.perf_counter() - t0
    return pool, results, wall


def _measure():
    graph = gnp_random_graph(N, P, seed=3)

    # Sequential oracle: the same batch through the scheduled path
    # without workers — identical certification, identical ledgers.
    pool_seq = SessionPool(threads=8)
    plans = _submit(pool_seq, graph)
    t0 = time.perf_counter()
    seq = pool_seq.run(lanes=LANES)
    wall_seq = time.perf_counter() - t0

    pool_one, _one, wall_one = _parallel_run(graph, 1)
    pool_par, par, wall_par = _parallel_run(graph, LANES)

    # Bit-identity: outputs, modeled cycles and tenant ledgers.
    assert len(par) == plans
    for a, b in zip(seq, par):
        assert a.ok and b.ok, (a, b)
        assert b.parallel and b.scheduled
        assert fingerprint(a.output) == fingerprint(b.output), a.workload
        assert a.report.runtime_cycles == b.report.runtime_cycles
    assert pool_seq.tenant_cycles == pool_par.tenant_cycles

    # Exact reconciliation against the certifier's prediction.
    report = pool_par.last_parallel["bench"]
    model = pool_par.last_schedules["bench"].what_if(LANES)
    assert report.parallel_cycles == model.makespan + model.merge_cycles
    assert report.merge_cycles == model.merge_cycles
    assert report.offloaded_units > 0 and report.inline_units == 0

    pool_one.close()
    pool_par.close()
    walls = {"sequential": wall_seq, "lanes_1": wall_one, f"lanes_{LANES}": wall_par}
    speedup = wall_one / wall_par if wall_par > 0 else float("inf")
    return report, model, walls, speedup


def _render(report, model, walls, speedup):
    print("== Parallel serving throughput: soak batch on shard workers ==")
    print(
        f"robustness soak: {TENANTS} tenants x {len(SOAK_WORKLOADS)} "
        f"workloads on G(n={N}, p={P}), lanes={LANES}, "
        f"shards={report.shards} ({report.policy} partition)"
    )
    print(
        f"offloaded units: {report.offloaded_units} "
        f"(inline {report.inline_units}); shard vertices "
        f"{list(report.shard_vertices)}"
    )
    print(
        f"modeled: parallel {report.parallel_cycles / 1e6:.4f} Mcyc = "
        f"makespan {model.makespan / 1e6:.4f} + merge "
        f"{model.merge_cycles / 1e6:.4f} ({report.cross_edges} cross-lane "
        f"edges); modeled speedup {report.speedup:.3f}x"
    )
    print(
        f"lane occupancy: max {report.lane_max_occupancy:.3f} "
        f"mean {report.lane_mean_occupancy:.3f}"
    )
    for label, wall in walls.items():
        print(f"wall {label:>12}: {wall:8.3f} s")
    floor = (
        f"floor {MIN_WALL_SPEEDUP:.1f}x"
        if ENOUGH_CORES
        else f"floor skipped: {os.cpu_count()} core(s) < 4"
    )
    print(f"wall speedup lanes={LANES} over lanes=1: {speedup:.3f}x ({floor})")
    print("\noutputs, ledgers and modeled cycles bit-identical to sequential")


def test_parallel_throughput(benchmark):
    report, model, walls, speedup = _measure()
    emit("parallel_throughput", lambda: _render(report, model, walls, speedup))
    emit_json(
        "parallel_throughput",
        {
            "tenants": TENANTS,
            "lanes": LANES,
            "shards": report.shards,
            "offloaded_units": report.offloaded_units,
            "parallel_cycles": report.parallel_cycles,
            "merge_cycles": report.merge_cycles,
            "cross_edges": report.cross_edges,
            "modeled_speedup": report.speedup,
            "lane_max_occupancy": report.lane_max_occupancy,
            "lane_mean_occupancy": report.lane_mean_occupancy,
            "wall_seconds": walls,
            "wall_speedup": speedup,
            "cores": os.cpu_count(),
            "wall_floor_enforced": ENOUGH_CORES,
        },
        floors={"min_wall_speedup": MIN_WALL_SPEEDUP},
    )
    if ENOUGH_CORES:
        assert speedup >= MIN_WALL_SPEEDUP, (speedup, MIN_WALL_SPEEDUP)

    # The per-unit synchronization overhead every offloaded burst pays:
    # one broadcast/collect round trip across all live shard workers.
    pool = SessionPool(threads=8)
    pool.parallel_offload_threshold = 0
    _submit(pool, gnp_random_graph(N, P, seed=3))
    pool.run(lanes=LANES, parallel=True)
    runtime = pool._runtimes["bench"]  # bench-only peek at the live pool runtime
    benchmark(runtime.ping)
    pool.close()


if __name__ == "__main__":
    _render(*_measure())
