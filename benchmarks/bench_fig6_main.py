"""Figure 6: the main result — non-set vs. set-based vs. SISA runtimes
across graph mining problems and datasets, with the paper's
speedup-summary lines.

Problems: clustering (cl-jac / cl-ovr / cl-tot), k-clique (kcc-4/5),
k-clique-star (ksc-4), maximal cliques (mc), triangles (tc), subgraph
isomorphism (si-3s, plus the labeled variant in bench_labeled_si).

The set-based and SISA variants run through the session API
(`benchmarks.common.session_cell`): one cold `SisaSession` per cell,
which issues exactly the instruction stream the historical one-shot
entry points issued.
"""

import pytest

from repro.algorithms.subgraph_iso import star_pattern
from repro.baselines.nonset import (
    jarvis_patrick_nonset,
    kclique_count_nonset,
    kclique_star_nonset,
    maximal_cliques_nonset,
    subgraph_isomorphism_nonset,
    triangle_count_nonset,
)
from repro.bench.harness import ResultTable, run_three_variants
from repro.datasets import load
from repro.session import ExecutionConfig, SisaSession

from common import CUTOFFS, FIG6_GRAPHS, emit, session_cell

THREADS = 32


def _digest_cliques(cliques):
    return (len(cliques), tuple(sorted(cliques)[:5]))


def _fill_table() -> ResultTable:
    table = ResultTable("Fig. 6 main result")
    for name in FIG6_GRAPHS:
        graph = load(name)

        run_three_variants(
            "tc", name, table,
            nonset=lambda: _pair(triangle_count_nonset(graph, threads=THREADS)),
            set_based=lambda: session_cell(
                graph, "triangles", threads=THREADS, mode="cpu-set"
            ),
            sisa=lambda: session_cell(graph, "triangles", threads=THREADS),
        )

        for k in (4, 5):
            cutoff = CUTOFFS["kcc"]
            run_three_variants(
                f"kcc-{k}", name, table,
                nonset=lambda: _pair(
                    kclique_count_nonset(
                        graph, k, threads=THREADS, max_patterns=cutoff
                    )
                ),
                set_based=lambda: session_cell(
                    graph, "kclique", threads=THREADS, mode="cpu-set",
                    k=k, max_patterns=cutoff,
                ),
                sisa=lambda: session_cell(
                    graph, "kclique", threads=THREADS, k=k, max_patterns=cutoff
                ),
            )

        cutoff = CUTOFFS["ksc"]
        run_three_variants(
            "ksc-4", name, table,
            nonset=lambda: _pair(
                kclique_star_nonset(graph, 4, threads=THREADS, max_patterns=cutoff),
                digest=len,
            ),
            set_based=lambda: session_cell(
                graph, "kclique_star", threads=THREADS, mode="cpu-set",
                k=4, max_patterns=cutoff, digest=len,
            ),
            sisa=lambda: session_cell(
                graph, "kclique_star", threads=THREADS,
                k=4, max_patterns=cutoff, digest=len,
            ),
        )

        cutoff = CUTOFFS["mc"]
        run_three_variants(
            "mc", name, table,
            nonset=lambda: _pair(
                maximal_cliques_nonset(
                    graph, threads=THREADS, max_patterns=cutoff
                ),
                digest=_digest_cliques,
            ),
            set_based=lambda: session_cell(
                graph, "maximal_cliques", threads=THREADS, mode="cpu-set",
                max_patterns=cutoff, digest=_digest_cliques,
            ),
            sisa=lambda: session_cell(
                graph, "maximal_cliques", threads=THREADS,
                max_patterns=cutoff, digest=_digest_cliques,
            ),
        )

        for measure, label in (
            ("jaccard", "cl-jac"),
            ("overlap", "cl-ovr"),
            ("total_neighbors", "cl-tot"),
        ):
            tau = {"jaccard": 0.2, "overlap": 0.4, "total_neighbors": 40.0}[measure]
            run_three_variants(
                label, name, table,
                nonset=lambda: _pair(
                    jarvis_patrick_nonset(
                        graph, tau=tau, measure=measure, threads=THREADS
                    )
                ),
                set_based=lambda: session_cell(
                    graph, "jarvis_patrick", threads=THREADS, mode="cpu-set",
                    tau=tau, measure=measure,
                    digest=lambda out: tuple(out["edges"][:20]),
                ),
                sisa=lambda: session_cell(
                    graph, "jarvis_patrick", threads=THREADS,
                    tau=tau, measure=measure,
                    digest=lambda out: tuple(out["edges"][:20]),
                ),
                check_outputs=False,  # digests differ in type across variants
            )

        pattern = star_pattern(3)
        cutoff = CUTOFFS["si"]
        run_three_variants(
            "si-3s", name, table,
            nonset=lambda: _pair(
                subgraph_isomorphism_nonset(
                    graph, pattern, threads=THREADS, max_matches=cutoff
                )
            ),
            set_based=lambda: session_cell(
                graph, "subgraph_iso", threads=THREADS, mode="cpu-set",
                pattern=pattern, max_matches=cutoff,
            ),
            sisa=lambda: session_cell(
                graph, "subgraph_iso", threads=THREADS,
                pattern=pattern, max_matches=cutoff,
            ),
        )
    return table


def _pair(run, digest=None):
    output = run.output
    if digest is not None:
        output = digest(output)
    return output, run.report.runtime_cycles if hasattr(run, "report") else run.runtime_cycles


def test_fig6_main(benchmark):
    table = _fill_table()
    emit("fig6_main", table.print_all)
    # The headline shape: SISA is the fastest variant on average for
    # every pattern-matching problem.
    for problem in table.problems():
        sisa = table.runtimes(problem, "sisa")
        nonset = table.runtimes(problem, "non-set")
        summary = table.summary(problem, "non-set", "sisa")
        assert sum(sisa) < sum(nonset), problem
        assert summary.speedup_of_avgs > 1.0, problem
    graph = load("int-antCol5-d1")
    session = SisaSession(graph, ExecutionConfig(threads=32))
    benchmark(
        lambda: session.run("kclique", k=4, max_patterns=2000).output
    )
