"""Fault-injection soak: hardened serving under a seeded fault schedule.

Eight tenants share one pooled session and submit mixed workload
batches for several epochs while a seeded
:class:`~repro.serving.faults.FaultInjector` drives every degradation
path the hardened :class:`~repro.session.pool.SessionPool` owns:
stream drift (plans recompiled and retried), result-cache eviction and
corruption (detected by the cache fingerprint, degraded to recompute),
orientation desync (charged ``resync()``), and kernel-stage faults
(isolated, charged to the tenant's retry ledger, retried up to the
policy bound).

Each epoch gets a fresh injector (seed derived from the soak seed) with
a per-kind cap of 2.  Worst case for one plan is 2 kernel faults plus 2
drift injections = 4 burned attempts, so ``RetryPolicy(max_retries=4)``
guarantees a clean 5th attempt — steady-state completion is 100% *by
construction*, and the soak asserts it.

Acceptance floors (enforced here and in CI; modeled cycles are
deterministic, so CI asserts the full floors):

* completion rate >= ``BENCH_ROBUST_MIN_COMPLETION`` (default 1.0 —
  every submitted plan eventually yields a ``RunResult``);
* retry-cycle overhead (cycles burned by failed attempts, summed over
  every tenant's retry ledger) <= ``BENCH_ROBUST_MAX_OVERHEAD``
  (default 10%) of the useful cycles charged to the tenant ledgers;
* every faulted output bit-identical (``repr`` equality) to the same
  schedule run on a fault-free hardened pool.

Env knobs: ``BENCH_ROBUST_N`` / ``BENCH_ROBUST_P`` (graph shape,
default 150 / 0.06), ``BENCH_ROBUST_TENANTS`` (default 8),
``BENCH_ROBUST_EPOCHS`` (default 6), ``BENCH_ROBUST_SEED`` (default 7).
"""

import os

import numpy as np

from repro.graphs.generators import gnp_random_graph
from repro.serving import FaultInjector, RetryPolicy, TenantQuota
from repro.session import ExecutionConfig, SessionPool

from common import emit, emit_json

N = int(os.environ.get("BENCH_ROBUST_N", "150"))
P = float(os.environ.get("BENCH_ROBUST_P", "0.06"))
TENANTS = int(os.environ.get("BENCH_ROBUST_TENANTS", "8"))
EPOCHS = int(os.environ.get("BENCH_ROBUST_EPOCHS", "6"))
SEED = int(os.environ.get("BENCH_ROBUST_SEED", "7"))
MIN_COMPLETION = float(os.environ.get("BENCH_ROBUST_MIN_COMPLETION", "1.0"))
MAX_OVERHEAD = float(os.environ.get("BENCH_ROBUST_MAX_OVERHEAD", "0.10"))
THREADS = 32

# Per-epoch injector: per-kind cap of 2 keeps total attempt-burning
# faults (kernel + drift) below the retry allowance of any single plan.
FAULT_RATES = dict(
    drift_rate=0.08, cache_rate=0.35, kernel_rate=0.2, orientation_rate=0.15
)
MAX_PER_KIND = 2
RETRY = RetryPolicy(max_retries=4)

WORKLOADS = [
    ("triangles", {}),
    ("clustering_coefficient", {}),
    ("local_clustering", {}),
    ("kclique", {"k": 3}),
    ("bfs", {"root": 0}),
]


def _schedule(rng):
    """One epoch's submissions: each tenant draws three workloads from
    the mix (seeded, so the whole soak replays from BENCH_ROBUST_SEED)."""
    subs = []
    for t in range(TENANTS):
        picks = rng.integers(0, len(WORKLOADS), size=3)
        for pick in picks:
            name, params = WORKLOADS[int(pick)]
            subs.append((f"tenant-{t}", name, params))
    return subs


def _pool(graph, injector, observability=False):
    pool = SessionPool(
        ExecutionConfig(threads=THREADS),
        max_sessions=2,
        default_quota=TenantQuota(max_queue_depth=8, max_deferred=32),
        retry=RETRY,
        fault_injector=injector,
        observability=observability,
    )
    # Arm every degradation path: drift needs a stream to advance, the
    # orientation desync needs a maintainer to mark out of sync.
    session = pool.session("soak", graph)
    session.attach_stream()
    session.maintain_orientation()
    return pool


def _drain(pool):
    """run() until the pending and deferred queues are empty."""
    results = []
    for _ in range(64):
        if not (pool.pending or pool.deferred):
            return results
        results.extend(pool.run())
    raise AssertionError("soak failed to drain the pool")


def _soak(graph, faulted: bool, observability=False):
    """Run the full soak schedule; returns (pool, results, injected)."""
    rng = np.random.default_rng(SEED)
    pool = _pool(graph, None, observability=observability)
    injected = {}
    results = []
    for epoch in range(EPOCHS):
        if faulted:
            pool.fault_injector = FaultInjector(
                SEED + 1000 * epoch, max_per_kind=MAX_PER_KIND, **FAULT_RATES
            )
        for tenant, name, params in _schedule(rng):
            pool.submit("soak", name, tenant=tenant, **params)
        results.extend(_drain(pool))
        if faulted:
            for kind, count in pool.fault_injector.injected.items():
                injected[kind] = injected.get(kind, 0) + count
    return pool, results, injected


def _measure(graph):
    clean_pool, clean_runs, _ = _soak(graph, faulted=False)
    pool, runs, injected = _soak(graph, faulted=True)

    assert len(runs) == len(clean_runs)
    completed = sum(1 for r in runs if r.ok)
    completion = completed / len(runs)
    for clean, noisy in zip(clean_runs, runs):
        if noisy.ok:
            assert noisy.workload == clean.workload
            assert repr(noisy.output) == repr(clean.output), noisy.workload

    useful = sum(pool.tenant_cycles.values())
    retry = sum(pool.tenant_retry_cycles.values())
    overhead = retry / useful
    return pool, injected, completion, useful, retry, overhead


def _render(graph, pool, injected, completion, useful, retry, overhead):
    health = pool.health()
    print("== Robustness soak: seeded faults vs a fault-free schedule ==")
    print(
        f"gnp n={graph.num_vertices} m={graph.edge_array().shape[0]} "
        f"tenants={TENANTS} epochs={EPOCHS} seed={SEED} threads={THREADS}"
    )
    print(
        "injected faults: "
        + " ".join(f"{k}={v}" for k, v in sorted(injected.items()))
    )
    print(
        f"degradations: retries={health.retries} "
        f"drift_recompiles={health.drift_recompiles} "
        f"cache_corruptions={health.cache_corruptions} "
        f"cache_evictions={health.cache_evictions} "
        f"orientation_resyncs={health.orientation_resyncs}"
    )
    print(f"\n{'tenant':<12}{'useful Mcyc':>13}{'retry Mcyc':>12}{'runs':>6}")
    for tenant in health.tenants:
        print(
            f"{tenant.tenant:<12}{tenant.cycles / 1e6:>13.3f}"
            f"{tenant.retry_cycles / 1e6:>12.3f}"
            f"{pool.tenant_runs.get(tenant.tenant, 0):>6}"
        )
    print(
        f"\ncompletion rate: {completion:.3f} "
        f"(floor {MIN_COMPLETION:.2f}); retry overhead: "
        f"{retry / 1e6:.3f} / {useful / 1e6:.3f} Mcycles = "
        f"{overhead:.1%} (ceiling {MAX_OVERHEAD:.0%})"
    )
    print(
        "every completed output asserted bit-identical to the "
        "fault-free run of the same schedule"
    )


def test_robustness_soak(benchmark):
    graph = gnp_random_graph(N, P, seed=SEED)
    pool, injected, completion, useful, retry, overhead = _measure(graph)
    emit(
        "robustness",
        lambda: _render(
            graph, pool, injected, completion, useful, retry, overhead
        ),
    )
    emit_json(
        "robustness",
        {
            "completion_rate": completion,
            "useful_mcycles": useful / 1e6,
            "retry_mcycles": retry / 1e6,
            "retry_overhead": overhead,
            "injected_faults": injected,
        },
        floors={
            "min_completion": MIN_COMPLETION,
            "max_overhead": MAX_OVERHEAD,
        },
    )
    assert completion >= MIN_COMPLETION
    assert overhead <= MAX_OVERHEAD

    benchmark(lambda: _soak(graph, faulted=True))


if __name__ == "__main__":
    graph = gnp_random_graph(N, P, seed=SEED)
    _render(graph, *_measure(graph))
