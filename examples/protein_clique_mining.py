"""Domain example: mining dense protein-complex candidates.

The paper motivates maximal clique listing with bioinformatics
("analyzing protein structures"): dense subgraphs of a protein-protein
interaction network are complex candidates.  This example

1. builds a heavy-tailed interaction network with planted complexes,
2. finds the k-core to focus on the dense region,
3. lists maximal cliques inside the core with Bron-Kerbosch,
4. ranks complexes by size and internal Jaccard cohesion — scored on
   the *same warm session*, so the neighborhood sets built for the
   clique mining are reused instead of rebuilt,
5. reports how the SISA machine executed the workload.

Run:  python examples/protein_clique_mining.py
"""

import numpy as np

from repro.graphs.generators import planted_clique_graph
from repro.graphs.orientation import k_core
from repro.session import ExecutionConfig, SisaSession


def main() -> None:
    # A synthetic interactome: 900 proteins, ~9000 interactions, six
    # planted complexes of 14 proteins each.
    network = planted_clique_graph(
        900, 9_000, num_cliques=6, clique_size=14, gamma=2.0, seed=42
    )
    print(f"interaction network: {network}")

    # Focus on the dense region: the 8-core.
    core_vertices = k_core(network, 8)
    core = network.subgraph(core_vertices)
    print(f"8-core: {core.num_vertices} proteins, {core.num_edges} interactions")

    # One session serves both the mining and the scoring passes.
    session = SisaSession(core, ExecutionConfig(threads=32))

    # Mine maximal cliques in the core.
    run = session.run("maximal_cliques", max_patterns=5_000)
    complexes = [c for c in run.output if len(c) >= 6]
    complexes.sort(key=len, reverse=True)
    print(
        f"\ncomplex candidates (maximal cliques >= 6 proteins): "
        f"{len(complexes)}"
    )
    print(f"simulated mining time: {run.runtime_mcycles:.3f} Mcycles")

    # Score the top candidates by average pairwise neighborhood
    # Jaccard similarity (cohesion of the complex's context).  The warm
    # session reuses the cached neighborhood sets for the scoring runs.
    print("\ntop candidates (size, cohesion):")
    for clique in complexes[:5]:
        members = list(clique)
        pairs = np.asarray(
            [
                (members[i], members[j])
                for i in range(len(members))
                for j in range(i + 1, len(members))
            ],
            dtype=np.int64,
        )
        scores = session.run(
            "similarity_pairs", pairs=pairs, measure="jaccard"
        )
        cohesion = float(scores.output.mean())
        print(f"  size {len(clique):>2}  cohesion {cohesion:.3f}  {clique[:8]}...")

    stats = run.stats
    print(
        f"\nSISA execution (mining run): {stats.instructions} set instructions "
        f"({stats.pum_ops} in-situ, {stats.pnm_ops} near-memory; "
        f"merge/gallop picks {stats.merge_picks}/{stats.gallop_picks})"
    )


if __name__ == "__main__":
    main()
