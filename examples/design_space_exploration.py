"""Domain example: architectural design-space exploration.

SISA is a hardware/software co-design; this example uses the library
the way an architect would — sweeping hardware parameters to see how
design choices move end-to-end performance:

* the DB bias t (what fraction of neighborhoods become bitvectors),
* the in-situ operation latency l_I (how good the PUM substrate is),
* the number of rows processed in parallel q,
* thread (vault) count.

Each design point is one `SisaSession` (`ExecutionConfig` is the single
home of every knob); the workload runs by name through the session.

Workload: 4-clique counting on a heavy-tailed genome-like graph.

Run:  python examples/design_space_exploration.py
"""

from repro.datasets import load
from repro.hw.config import HardwareConfig
from repro.session import ExecutionConfig, SisaSession

CUTOFF = 20_000


def sweep_db_bias(graph) -> None:
    print("\n-- sweep: DB bias t (budget unconstrained) --")
    for t in (0.0, 0.2, 0.4, 0.8, 1.0):
        session = SisaSession(
            graph, ExecutionConfig(threads=32, t=t, budget=2.0)
        )
        run = session.run("kclique", k=4, max_patterns=CUTOFF)
        dense = run.stats.pum_ops
        print(
            f"  t={t:.1f}: {run.runtime_mcycles:8.3f} Mcycles "
            f"({dense} in-situ ops)"
        )


def sweep_insitu_latency(graph) -> None:
    # Triangle counting intersects neighborhoods directly, so with a
    # high DB bias many DB∩DB pairs land on the PUM substrate — the
    # workload where l_I matters.
    print("\n-- sweep: in-situ op latency l_I (PUM quality), tc workload --")
    for l_i in (25.0, 50.0, 100.0, 200.0):
        config = ExecutionConfig(
            threads=32,
            t=0.8,
            budget=2.0,
            hw=HardwareConfig(insitu_op_latency_ns=l_i),
        )
        run = SisaSession(graph, config).run("triangles")
        print(f"  l_I={l_i:5.0f} ns: {run.runtime_mcycles:8.3f} Mcycles")


def sweep_row_parallelism() -> None:
    # q only matters once a bitvector spans more rows than one step can
    # process: exercise raw DB∩DB instructions on a 4M-vertex universe.
    from repro.runtime.context import SisaContext

    print("\n-- sweep: subarray-parallel rows q (4M-bit DB∩DB microbench) --")
    universe = 4_000_000
    members = range(0, universe, 17)
    for q in (1, 4, 16, 64):
        hw = HardwareConfig(parallel_rows=q)
        ctx = SisaContext(threads=1, hw=hw)
        a = ctx.create_set(members, universe=universe, dense=True)
        b = ctx.create_set(range(0, universe, 13), universe=universe, dense=True)
        before = ctx.runtime_cycles
        for __ in range(8):
            ctx.intersect_count(a, b)
        cycles = ctx.runtime_cycles - before
        print(f"  q={q:3d}: {cycles / 8:10.0f} cycles per DB∩DB count")


def sweep_threads(graph) -> None:
    print("\n-- sweep: active vaults (threads) --")
    base = None
    for threads in (1, 4, 16, 32, 64):
        session = SisaSession(graph, ExecutionConfig(threads=threads))
        run = session.run("kclique", k=4, max_patterns=CUTOFF)
        base = base or run.runtime_cycles
        print(
            f"  T={threads:3d}: {run.runtime_mcycles:8.3f} Mcycles "
            f"(speedup {base / run.runtime_cycles:5.2f}x)"
        )


def main() -> None:
    graph = load("bio-mouseGene")
    print(f"workload: kcc-4 on {graph} (cutoff {CUTOFF} cliques)")
    sweep_db_bias(graph)
    sweep_insitu_latency(graph)
    sweep_row_parallelism()
    sweep_threads(graph)
    print(
        "\nTakeaways (mirroring the paper): an intermediate t wins; "
        "better PUM substrates help heavy-tailed inputs; bandwidth "
        "proportionality keeps thread scaling near-linear."
    )


if __name__ == "__main__":
    main()
