"""Quickstart: streaming analytics on an evolving social network.

A social graph receives a continuous stream of edge updates (new
friendships, dropped contacts).  The session API binds the stream to
the same persistent machine that serves the static workloads:
`session.attach_stream()` yields a `DynamicSetGraph` sharing the
session's neighborhood sets, incremental maintainers touch only the
affected vertices, and snapshot analytics route through the uniform
`session.run(..., view=snapshot)` path.

The example also re-runs a *static* workload after the stream has
advanced: the session notices the epoch change and re-orients the
evolved graph automatically.

Run:  python examples/streaming_social_updates.py
"""

import numpy as np

from repro.graphs.generators import chung_lu_graph
from repro.graphs.streams import sliding_window_stream
from repro.session import ExecutionConfig, SisaSession
from repro.streaming import (
    IncrementalClusteringCoefficients,
    IncrementalLinkPrediction,
    IncrementalTriangleCount,
    StreamingEngine,
)


def main() -> None:
    # A heavy-tailed social graph; only the most recent 80% of
    # interactions stay live (sliding window).
    graph = chung_lu_graph(600, 3000, gamma=2.3, seed=9)
    stream = sliding_window_stream(
        graph, window=int(0.8 * graph.num_edges), batch_size=60, seed=9
    )
    print(f"social graph: {graph}, {len(stream.batches)} update batches")

    session = SisaSession(stream.initial_graph(), ExecutionConfig(threads=32))
    dyn = session.attach_stream()

    # Friend recommendations: watch the highest-degree user pairs.
    hubs = np.argsort(-np.asarray([dyn.degree(v) for v in range(dyn.num_vertices)]))[:29]
    watchlist = np.asarray(
        [[int(u), int(v)] for i, u in enumerate(hubs) for v in hubs[i + 1 :]],
        dtype=np.int64,
    )

    tri = IncrementalTriangleCount(dyn)
    clus = IncrementalClusteringCoefficients(dyn)
    lp = IncrementalLinkPrediction(dyn, watchlist, measure="adamic_adar")
    engine = StreamingEngine(dyn, [tri, clus, lp])
    print(f"initial: {tri.count} triangles, {dyn.edge_count} live edges\n")

    ctx = session.ctx
    snapshot = None
    print(f"{'epoch':>6}{'+edges':>8}{'-edges':>8}{'triangles':>11}{'conv':>6}{'Mcycles':>9}")
    for i, batch in enumerate(stream.batches):
        result = engine.step(batch)
        print(
            f"{result.epoch:>6}{len(result.inserted):>8}{len(result.deleted):>8}"
            f"{tri.count:>11}{result.conversions:>6}{ctx.runtime_cycles / 1e6:>9.2f}"
        )
        if i == len(stream.batches) // 2 and snapshot is None:
            snapshot = session.snapshot()  # consistent mid-stream view

    coeffs = clus.coefficients(dyn)
    print(f"\nfinal state: {dyn.edge_count} live edges, {tri.count} triangles")
    print(f"mean local clustering coefficient: {coeffs.mean():.4f}")
    top = lp.top_pairs(5)
    print("top friend recommendations (adamic-adar):")
    for u, v in top:
        print(f"  {u:>4} -- {v:<4}")

    # The snapshot still reflects its capture epoch, even though the
    # live graph has moved on — snapshot analytics run through the same
    # session.run path as everything else.
    if snapshot is not None:
        frozen = session.run("triangles", view=snapshot)
        print(
            f"\nsnapshot@epoch {snapshot.epoch}: {frozen.output} triangles "
            f"(live graph is at epoch {dyn.epoch} with {tri.count})"
        )
        snapshot.release()

    # A static re-run after the stream advanced: the session re-orients
    # the evolved graph (new epoch) and reports only this run's cost.
    final = session.run("triangles")
    print(
        f"\nstatic re-run on evolved graph: {final.output} triangles "
        f"({final.runtime_mcycles:.2f} Mcycles, warm={final.warm})"
    )

    print(f"\ntotal simulated cost: {ctx.runtime_cycles / 1e6:.2f} Mcycles")


if __name__ == "__main__":
    main()
