"""Quickstart: streaming analytics on an evolving social network.

A social graph receives a continuous stream of edge updates (new
friendships, dropped contacts).  Instead of recomputing analytics from
scratch after every batch, the streaming subsystem applies the updates
as batched element-update instruction bursts and lets incremental
maintainers touch only the affected vertices:

* global triangle count (community density),
* local clustering coefficients (per-user cohesion),
* link-prediction scores for a friend-recommendation watchlist.

The example also takes an epoch snapshot mid-stream: snapshots are
copy-on-write views, so analytics can run against a consistent epoch
while updates keep streaming.

Run:  python examples/streaming_social_updates.py
"""

import numpy as np

from repro.algorithms.common import make_context
from repro.graphs.generators import chung_lu_graph
from repro.graphs.streams import sliding_window_stream
from repro.streaming import (
    DynamicSetGraph,
    IncrementalClusteringCoefficients,
    IncrementalLinkPrediction,
    IncrementalTriangleCount,
    StreamingEngine,
    local_triangle_counts,
)


def main() -> None:
    # A heavy-tailed social graph; only the most recent 80% of
    # interactions stay live (sliding window).
    graph = chung_lu_graph(600, 3000, gamma=2.3, seed=9)
    stream = sliding_window_stream(
        graph, window=int(0.8 * graph.num_edges), batch_size=60, seed=9
    )
    print(f"social graph: {graph}, {len(stream.batches)} update batches")

    ctx = make_context(threads=32)
    dyn = DynamicSetGraph.from_graph(stream.initial_graph(), ctx)

    # Friend recommendations: watch the 400 highest-degree user pairs.
    hubs = np.argsort(-np.asarray([dyn.degree(v) for v in range(dyn.num_vertices)]))[:29]
    watchlist = np.asarray(
        [[int(u), int(v)] for i, u in enumerate(hubs) for v in hubs[i + 1 :]],
        dtype=np.int64,
    )

    tri = IncrementalTriangleCount(dyn)
    clus = IncrementalClusteringCoefficients(dyn)
    lp = IncrementalLinkPrediction(dyn, watchlist, measure="adamic_adar")
    engine = StreamingEngine(dyn, [tri, clus, lp])
    print(f"initial: {tri.count} triangles, {dyn.edge_count} live edges\n")

    snapshot = None
    print(f"{'epoch':>6}{'+edges':>8}{'-edges':>8}{'triangles':>11}{'conv':>6}{'Mcycles':>9}")
    for i, batch in enumerate(stream.batches):
        result = engine.step(batch)
        print(
            f"{result.epoch:>6}{len(result.inserted):>8}{len(result.deleted):>8}"
            f"{tri.count:>11}{result.conversions:>6}{ctx.runtime_cycles / 1e6:>9.2f}"
        )
        if i == len(stream.batches) // 2 and snapshot is None:
            snapshot = dyn.snapshot()  # consistent mid-stream view

    coeffs = clus.coefficients(dyn)
    print(f"\nfinal state: {dyn.edge_count} live edges, {tri.count} triangles")
    print(f"mean local clustering coefficient: {coeffs.mean():.4f}")
    top = lp.top_pairs(5)
    print("top friend recommendations (adamic-adar):")
    for u, v in top:
        print(f"  {u:>4} -- {v:<4}")

    # The snapshot still reflects its capture epoch, even though the
    # live graph has moved on.
    if snapshot is not None:
        frozen = int(local_triangle_counts(snapshot, ctx).sum()) // 3
        print(
            f"\nsnapshot@epoch {snapshot.epoch}: {frozen} triangles "
            f"(live graph is at epoch {dyn.epoch} with {tri.count})"
        )
        snapshot.release()

    print(f"\ntotal simulated cost: {ctx.runtime_cycles / 1e6:.2f} Mcycles")


if __name__ == "__main__":
    main()
