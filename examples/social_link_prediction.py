"""Domain example: link prediction on a social network.

The paper's graph-learning track (Section 5.2): score non-adjacent
vertex pairs with neighborhood similarity measures, predict the
top-scoring pairs, and test prediction accuracy with the set-centric
Algorithm 10 (eff = |E_predict ∩ E_rndm|).

This example compares four similarity measures on the same sparsified
social network and reports each measure's precision and simulated cost.

Run:  python examples/social_link_prediction.py
"""

from repro.algorithms import link_prediction_effectiveness
from repro.datasets import load

MEASURES = ["jaccard", "overlap", "common_neighbors", "adamic_adar"]


def main() -> None:
    graph = load("soc-fbMsg")
    print(f"social network: {graph}")
    print(
        "\nprotocol: remove 10% of edges at random, score 2-hop candidate"
        "\npairs on the sparsified graph, predict the top pairs, and check"
        "\nhow many removed edges were recovered (Algorithm 10).\n"
    )
    print(f"{'measure':<20}{'recovered':>10}{'removed':>9}{'precision':>11}{'Mcycles':>10}")
    for measure in MEASURES:
        run = link_prediction_effectiveness(
            graph,
            removal_fraction=0.10,
            measure=measure,
            threads=32,
            seed=17,
        )
        result = run.output
        print(
            f"{measure:<20}{result.effectiveness:>10}"
            f"{result.removed_edges:>9}{result.precision:>11.3f}"
            f"{run.runtime_mcycles:>10.3f}"
        )
    print(
        "\nAll four measures run on the same SISA kernels "
        "(|A ∩ B| / |A ∪ B| count instructions); only the host-side "
        "arithmetic differs."
    )


if __name__ == "__main__":
    main()
