"""Domain example: link prediction on a social network.

The paper's graph-learning track (Section 5.2): score non-adjacent
vertex pairs with neighborhood similarity measures, predict the
top-scoring pairs, and test prediction accuracy with the set-centric
Algorithm 10 (eff = |E_predict ∩ E_rndm|).

This example holds one `SisaSession` over the social network and runs
the `link_prediction` workload once per similarity measure; the session
reports each run's own simulated cost via its engine epoch marks.

Run:  python examples/social_link_prediction.py
"""

from repro.datasets import load
from repro.session import ExecutionConfig, SisaSession

MEASURES = ["jaccard", "overlap", "common_neighbors", "adamic_adar"]


def main() -> None:
    graph = load("soc-fbMsg")
    print(f"social network: {graph}")
    print(
        "\nprotocol: remove 10% of edges at random, score 2-hop candidate"
        "\npairs on the sparsified graph, predict the top pairs, and check"
        "\nhow many removed edges were recovered (Algorithm 10).\n"
    )
    session = SisaSession(graph, ExecutionConfig(threads=32))
    print(f"{'measure':<20}{'recovered':>10}{'removed':>9}{'precision':>11}{'Mcycles':>10}")
    for measure in MEASURES:
        run = session.run(
            "link_prediction",
            removal_fraction=0.10,
            measure=measure,
            seed=17,
        )
        result = run.output
        print(
            f"{measure:<20}{result.effectiveness:>10}"
            f"{result.removed_edges:>9}{result.precision:>11.3f}"
            f"{run.runtime_mcycles:>10.3f}"
        )
    print(
        "\nAll four measures run on the same SISA kernels "
        "(|A ∩ B| / |A ∪ B| count instructions); only the host-side "
        "arithmetic differs."
    )


if __name__ == "__main__":
    main()
