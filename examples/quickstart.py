"""Quickstart: count triangles and list maximal cliques with SISA.

Walks through the library's core loop, session-style:

1. load (or build) a graph,
2. open a `SisaSession` (one simulated SISA machine + cached sets),
3. run set-centric workloads by name (`session.run("triangles")`),
4. re-run on the warm session — setup (neighborhood sets, degeneracy
   orientation) is cached, and each run still reports its own cost,
5. read back both the functional results and the simulated timings.

Run:  python examples/quickstart.py
"""

from repro.datasets import load
from repro.session import ExecutionConfig, SisaSession, available_workloads


def main() -> None:
    # A synthetic stand-in for the paper's bio-SC-GT dataset
    # (gene functional associations, heavy-tailed degrees).
    graph = load("bio-SC-GT")
    print(f"graph: {graph}")
    print(f"workloads: {', '.join(available_workloads())}")

    # --- One session, many runs --------------------------------------
    session = SisaSession(graph, ExecutionConfig(threads=32))

    # Triangle counting (paper Algorithm 1).
    cold = session.run("triangles")
    print(f"\ntriangles: {cold.output}")
    print(f"simulated runtime: {cold.runtime_mcycles:.3f} Mcycles on 32 threads")

    # Re-run on the warm session: the degeneracy orientation and all
    # neighborhood sets are reused (zero set registrations), and the
    # engine epoch marks still report this run's own cycles.
    warm = session.run("triangles")
    print(
        f"warm re-run: {warm.output} triangles, "
        f"{warm.runtime_mcycles:.3f} Mcycles, "
        f"{warm.registrations} sets re-registered (warm={warm.warm})"
    )

    # Peek at the instruction mix the SCU dispatched for the cold run.
    print("instruction mix:")
    for opcode, count in sorted(
        cold.opcode_counts().items(), key=lambda kv: -kv[1]
    )[:5]:
        print(f"  {opcode.name:<28} x{count}")
    stats = cold.stats
    print(f"PUM ops: {stats.pum_ops}, PNM ops: {stats.pnm_ops}")

    # --- Compare against the host baseline ---------------------------
    host = SisaSession(graph, ExecutionConfig(threads=32, mode="cpu-set"))
    set_based = host.run("triangles")
    print(
        f"\nset-based on the host CPU: {set_based.runtime_mcycles:.3f} Mcycles "
        f"-> SISA speedup {set_based.runtime_cycles / cold.runtime_cycles:.2f}x"
    )

    # --- Maximal cliques (paper Algorithm 2, Bron-Kerbosch) ----------
    # Same session: the undirected SetGraph is built once and cached.
    mc = session.run("maximal_cliques", max_patterns=2000)
    largest = max(mc.output, key=len)
    print(
        f"\nmaximal cliques found (cutoff 2000): {len(mc.output)}; "
        f"largest has {len(largest)} vertices"
    )
    print(f"simulated runtime: {mc.runtime_mcycles:.3f} Mcycles")


if __name__ == "__main__":
    main()
