"""Quickstart: count triangles and list maximal cliques with SISA.

Walks through the library's core loop:

1. load (or build) a graph,
2. create a simulated SISA machine (`SisaContext`),
3. materialize neighborhoods as SISA sets (`SetGraph`, DB/SA mix),
4. run a set-centric algorithm,
5. read back both the functional result and the simulated timing.

Run:  python examples/quickstart.py
"""

from repro.algorithms import maximal_cliques, triangle_count
from repro.datasets import load
from repro.isa.opcodes import Opcode


def main() -> None:
    # A synthetic stand-in for the paper's bio-SC-GT dataset
    # (gene functional associations, heavy-tailed degrees).
    graph = load("bio-SC-GT")
    print(f"graph: {graph}")

    # --- Triangle counting (paper Algorithm 1) -----------------------
    run = triangle_count(graph, threads=32)
    print(f"\ntriangles: {run.output}")
    print(f"simulated runtime: {run.runtime_mcycles:.3f} Mcycles on 32 threads")

    # Peek at the instruction mix the SCU dispatched.
    counts = run.context.opcode_counts()
    print("instruction mix:")
    for opcode, count in sorted(counts.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {opcode.name:<28} x{count}")
    stats = run.context.scu.stats
    print(f"PUM ops: {stats.pum_ops}, PNM ops: {stats.pnm_ops}")

    # --- Compare against the host baselines ---------------------------
    set_based = triangle_count(graph, threads=32, mode="cpu-set")
    print(
        f"\nset-based on the host CPU: {set_based.runtime_mcycles:.3f} Mcycles "
        f"-> SISA speedup {set_based.runtime_cycles / run.runtime_cycles:.2f}x"
    )

    # --- Maximal cliques (paper Algorithm 2, Bron-Kerbosch) ----------
    mc = maximal_cliques(graph, threads=32, max_patterns=2000)
    largest = max(mc.output, key=len)
    print(
        f"\nmaximal cliques found (cutoff 2000): {len(mc.output)}; "
        f"largest has {len(largest)} vertices"
    )
    print(f"simulated runtime: {mc.runtime_mcycles:.3f} Mcycles")


if __name__ == "__main__":
    main()
