"""Exception types for the repro package.

Every error can carry a machine-readable ``details`` dict alongside its
message.  The serving front end relies on this: a rejected request gets
one structured error naming exactly which rule failed and on what
value, instead of a free-text message a caller would have to parse.
Errors raised deep inside the simulator simply leave ``details`` empty.
"""

from __future__ import annotations

from typing import Any, Mapping


class ReproError(Exception):
    """Base class for all errors raised by this package.

    ``details`` is an optional machine-readable payload (plain dict of
    JSON-ish values); it defaults to empty so existing single-argument
    raises are unaffected.
    """

    def __init__(self, *args: Any, details: Mapping[str, Any] | None = None):
        super().__init__(*args)
        self.details: dict[str, Any] = dict(details) if details else {}


class GraphError(ReproError):
    """Malformed graph input or an operation unsupported by a graph."""


class SetError(ReproError):
    """Invalid set representation, universe mismatch, or unknown set id."""


class IsaError(ReproError):
    """Invalid SISA instruction, operand, or encoding."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset specification."""


class ConfigError(ReproError):
    """Invalid hardware or runtime configuration."""


class SisaError(ReproError):
    """Invalid use of the runtime API at execution time (e.g. reading a
    released snapshot whose set IDs may already be recycled)."""


class ValidationError(ConfigError):
    """A request rejected by the serving validation rule engine.

    Subclasses :class:`ConfigError` so every existing ``except
    ConfigError`` front still catches door-rejected requests; the
    ``details`` dict carries the structured payload — the workload, the
    failing rule names and per-violation context — for callers that
    want machine-readable rejections.
    """


class AdmissionError(ReproError):
    """A request refused by per-tenant admission control (queue depth
    or cycle budget); ``details`` names the tenant, the limit and the
    observed value."""


class HazardError(SisaError):
    """A plan batch rejected by the static plan verifier
    (:func:`repro.analysis.static.analyze_batch`): executing it fused
    could produce a data hazard (RAW/WAR between macro constituents,
    dedup-key divergence, or inconsistent stream-version pins).
    ``details`` carries the full structured
    :class:`~repro.analysis.static.verifier.AnalysisReport`."""


class RaceError(SisaError):
    """A happens-before violation found by the dynamic race detector
    (:mod:`repro.analysis.static.racecheck`): two accesses to one
    shared structure — result cache, SCU decision memo, orientation
    maintainer, tenant ledger — from schedule nodes the dependency DAG
    leaves unordered, at least one a non-idempotent write.  ``details``
    carries the structured race list (token, accessors, stages, lanes
    and vector clocks), the same shape the static verifier gives
    hazards."""


class InjectedFault(SisaError):
    """A fault deliberately raised by the serving
    :class:`~repro.serving.faults.FaultInjector` (soak/chaos testing).
    Handled by the pool's retry/isolation machinery like any other
    execution-time fault."""


class WorkerCrashError(SisaError):
    """A shard worker process died or misbehaved mid-batch
    (:mod:`repro.parallel.workers`): broken pipe, unexpected exit, or a
    structured error reply.  The pool converts it into a
    ``FailedResult(reason="worker-crash")`` for the affected session's
    unfinished plans instead of hanging on the dead pipe; ``details``
    names the shard, the exit code and the failing request."""
