"""Exception types for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """Malformed graph input or an operation unsupported by a graph."""


class SetError(ReproError):
    """Invalid set representation, universe mismatch, or unknown set id."""


class IsaError(ReproError):
    """Invalid SISA instruction, operand, or encoding."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset specification."""


class ConfigError(ReproError):
    """Invalid hardware or runtime configuration."""


class SisaError(ReproError):
    """Invalid use of the runtime API at execution time (e.g. reading a
    released snapshot whose set IDs may already be recycled)."""
