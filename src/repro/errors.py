"""Exception types for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """Malformed graph input or an operation unsupported by a graph."""


class SetError(ReproError):
    """Invalid set representation, universe mismatch, or unknown set id."""


class IsaError(ReproError):
    """Invalid SISA instruction, operand, or encoding."""


class DatasetError(ReproError):
    """Unknown dataset name or invalid dataset specification."""


class ConfigError(ReproError):
    """Invalid hardware or runtime configuration."""
