"""The parallel executor: a certified schedule on real worker shards.

:class:`ParallelExecutor` subclasses the scheduled
:class:`~repro.session.plan.PlanExecutor` replay and overrides exactly
three seams:

* :meth:`_before_node` — the :class:`LaneGate` admits a node only when
  every ``happens_before`` ancestor completed, presenting the lane
  ticket the certifier's deterministic list scheduler assigned;
* :meth:`_counts` — count-form burst units fan out to the
  :class:`~repro.parallel.workers.ShardRuntime` (per-shard partial
  counts, merged in fixed shard order) and feed the merged array back
  into the runtime's dispatch seam, which still performs the identical
  SCU dispatch, engine charge and tracing — so modeled cycles, ledgers
  and outputs are bit-identical to the sequential replay;
* :meth:`_after_node` — the gate marks the node complete and the
  :class:`~repro.parallel.merge.MergeLedger` charges the modeled host
  merges owed by the node's cross-lane in-edges.

After the batch, :meth:`execute` reconciles measured per-node costs
against :meth:`CertifiedSchedule.what_if` (exact equality, or
:class:`~repro.errors.SisaError`) and publishes the
:class:`~repro.parallel.merge.ParallelReport` plus per-shard spans and
lane-utilization gauges to the observability hub.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, SisaError
from repro.parallel.merge import MergeLedger, ParallelReport, reconcile
from repro.session.plan import BurstUnit, PlanExecutor


class LaneGate:
    """Admission control over one schedule's dependency DAG.

    Carries the certification-time lane assignment as the admission
    ticket: a node may start only when every DAG predecessor has
    completed (checked against a completion bitmask — the certifier's
    own ``happens_before`` representation), and its ticket names the
    lane whose logical context executes it.  Violations are certifier
    bugs, not user errors, and raise structured
    :class:`~repro.errors.SisaError`.
    """

    def __init__(self, schedule, lane_of: dict[int, int]):
        self.schedule = schedule
        self.lane_of = dict(lane_of)
        self._done_mask = 0
        self.admitted: list[int] = []
        # Per-lane admitted-node counts (the occupancy gauge source).
        self.lane_occupancy: list[int] = [0] * (
            max(self.lane_of.values(), default=-1) + 1
        )

    def admit(self, node_id: int) -> int:
        """Admit ``node_id``; returns its lane ticket."""
        node_id = int(node_id)
        missing = [
            p
            for p in self.schedule.preds[node_id]
            if not (self._done_mask >> p) & 1
        ]
        if missing:
            raise SisaError(
                f"schedule node {node_id} admitted before its "
                "happens-before ancestors completed",
                details={"node": node_id, "incomplete_preds": missing},
            )
        lane = self.lane_of[node_id]
        self.admitted.append(node_id)
        self.lane_occupancy[lane] += 1
        return lane

    def complete(self, node_id: int) -> None:
        self._done_mask |= 1 << int(node_id)

    def is_complete(self, node_id: int) -> bool:
        return bool((self._done_mask >> int(node_id)) & 1)


class ParallelExecutor(PlanExecutor):
    """Scheduled replay whose count bursts execute on shard workers.

    Construction mirrors the scheduled :class:`PlanExecutor` (the pool
    passes ``schedule=`` and optionally ``access_log=``) plus the
    shard ``runtime`` and the lane width.  The host thread still drives
    every node in the certified topological order — lane parallelism is
    priced by the model, shard parallelism is physical — which keeps
    SCU state, set-ID allocation and the SMB trajectory identical to
    the sequential reference while the actual set scans fan out across
    worker processes.
    """

    def __init__(self, session, *, runtime, lanes: int | None = None, **kwargs):
        super().__init__(session, **kwargs)
        if self.schedule is None:
            raise ConfigError(
                "ParallelExecutor requires a certified schedule"
            )
        if runtime is None:
            raise ConfigError(
                "ParallelExecutor requires a ShardRuntime"
            )
        self.runtime = runtime
        self.lanes = int(lanes) if lanes is not None else self.schedule.lanes
        if self.lanes < 1:
            raise ConfigError("lanes must be positive")
        # Admission assignment: the list scheduler's placement under
        # whatever costs are recorded *now* (certification costs on a
        # fresh schedule).  Reconcile re-derives it under measured
        # costs; both run through the same public seam.
        lane_of, __ = self.schedule.assign(self.lanes)
        self.gate = LaneGate(self.schedule, lane_of)
        self.ledger = MergeLedger.from_schedule(self.schedule, lane_of)
        self._offloaded_before = runtime.offloaded_units
        self._inline_before = runtime.inline_units
        self.report: ParallelReport | None = None

    # -- the three seams -----------------------------------------------

    def _before_node(self, node_id: int) -> None:
        self.gate.admit(node_id)

    def _after_node(self, node_id: int, cycles: float) -> None:
        self.gate.complete(node_id)
        self.ledger.charge(node_id)

    def _counts(self, unit: BurstUnit) -> np.ndarray:
        inter = self.runtime.partial_counts(
            self.session, unit.a, unit.bs
        )
        method = getattr(self.session.ctx, f"{unit.kind}_count_batch")
        if inter is None:
            return method(unit.a, unit.bs)
        return method(unit.a, unit.bs, inter=inter)

    # -- entry point ---------------------------------------------------

    def execute(self, plans):
        results = super().execute(plans)
        self.report = reconcile(
            self.schedule,
            self.lanes,
            self.ledger,
            shards=self.runtime.shards,
            policy=self.runtime.plan.policy,
            shard_vertices=self.runtime.plan.vertex_counts,
            offloaded_units=self.runtime.offloaded_units
            - self._offloaded_before,
            inline_units=self.runtime.inline_units - self._inline_before,
        )
        for result in results:
            result.parallel = True
        obs = getattr(self.session, "obs", None)
        if obs is not None:
            obs.parallel_run(self.report)
        return results
