"""The shard worker pool: spawn-safe process fan-out over shared memory.

Each worker process owns exactly one shard of the vertex universe and
serves *per-shard partial intersection counts*: for a burst ``A op
B_1..B_k`` it computes ``|A ∩ B_i ∩ S_shard|`` for every operand and
posts the row into the shared result arena.  Because the shards
partition the universe, the host's fixed-order merge of the rows is the
exact integer ``|A ∩ B_i|`` the sequential kernel computes — union and
difference counts derive from it by the same identities the batch
runtime uses, so outputs are bit-identical by construction.

Spawn-safety: workers are started from the ``spawn`` context with a
module-level target (no pickled closures, no inherited host state) and
attach every input zero-copy through the
:class:`~repro.parallel.shards.SharedArray` specs in their bootstrap
message.  This module is deliberately import-light — numpy, the
stdlib, :mod:`repro.errors` and the sibling shard/ownership modules —
so a worker never imports the host-side session, serving or analysis
stacks (the ``parallel-unsafe-access`` repolint rule enforces this
statically).

Protocol (host → worker over a duplex pipe):

* ``("load", spec)`` — attach a source CSR (undirected neighborhoods,
  oriented ``N+`` sets) and build the private shard-filtered slice;
* ``("countv", seq, a_spec, source, vertices)`` — homogeneous fast
  path: every ``B_i`` is ``source``'s set of ``vertices[i]``;
* ``("count", seq, a_spec, b_specs)`` — mixed operands;
* ``("ping", seq)`` — liveness probe;
* ``("exit", code)`` — hard-exit (crash injection for tests);
* ``("stop",)`` — orderly shutdown.

Operand specs: ``("v", source, vertex)`` reads the shared CSR,
``("s", offset, length)`` reads the shared scratch staging buffer.
Every reply is ``("ok", seq)`` / ``("err", seq, message)``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import weakref
from typing import Any

import numpy as np

from repro.errors import ConfigError, WorkerCrashError
from repro.parallel import ownership
from repro.parallel.shards import (
    ShardPlan,
    ShardStore,
    SharedArray,
    setgraph_csr,
)

#: Below this many scanned elements (|A| + Σ|B_i|) a burst computes
#: inline on the host: the pipe round trip would cost more wall time
#: than the count itself.  The decision is a pure function of uncharged
#: set metadata, so it is deterministic — and either path produces the
#: identical count array, so it cannot affect outputs or modeled
#: cycles.
DEFAULT_OFFLOAD_THRESHOLD = 4096

#: Seconds a worker reply may take before the host declares the worker
#: hung (structured WorkerCrashError instead of an indefinite wait).
DEFAULT_REPLY_TIMEOUT = 60.0

_POLL_INTERVAL = 0.02


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _ShardWorker:
    """Per-process worker state: attached segments and filtered CSRs."""

    def __init__(self, shard: int, base: dict[str, Any]):
        self.shard = shard
        self.n = int(base["n"])
        self._shard_of = SharedArray.attach(base["shard_of"])
        self._arena = SharedArray.attach(base["arena"])
        self._scratch = SharedArray.attach(base["scratch"])
        # source -> (offsets, values, filtered_offsets, filtered_values,
        #            offsets_seg, values_seg)
        self._sources: dict[str, tuple] = {}
        self._lut = np.zeros(self.n, dtype=bool)

    def load(self, spec: dict[str, Any]) -> None:
        """Attach one source CSR and build the shard-filtered slice.

        The full CSR stays a zero-copy shared mapping (used to resolve
        probe sets ``A`` in full); the filtered slice — only the
        elements this shard owns — is private, and is what splits the
        frontier scan evenly across workers.
        """
        name = spec["source"]
        stale = self._sources.pop(name, None)
        if stale is not None:
            stale[4].close()
            stale[5].close()
        off_seg = SharedArray.attach(spec["offsets"])
        val_seg = SharedArray.attach(spec["values"])
        offsets = off_seg.array
        values = val_seg.array
        keep = self._shard_of.array[values] == self.shard
        fvalues = values[keep]
        cum = np.zeros(values.size + 1, dtype=np.int64)
        np.cumsum(keep, dtype=np.int64, out=cum[1:])
        foffsets = cum[offsets]
        self._sources[name] = (
            offsets, values, foffsets, fvalues, off_seg, val_seg
        )

    # -- operand resolution --------------------------------------------

    def _probe_elements(self, spec) -> np.ndarray:
        """The *full* element array of a probe-set spec (set ``A``)."""
        tag = spec[0]
        if tag == "v":
            offsets, values = self._sources[spec[1]][:2]
            v = spec[2]
            return values[offsets[v]:offsets[v + 1]]
        if tag == "s":
            off, length = spec[1], spec[2]
            return self._scratch.array[off:off + length]
        raise WorkerCrashError(
            f"unknown operand spec tag {tag!r}",
            details={"shard": self.shard, "spec": list(spec[:1])},
        )

    def _shard_count(self, lut: np.ndarray, spec) -> int:
        """``|A ∩ B ∩ S_shard|`` for one mixed-path operand."""
        tag = spec[0]
        if tag == "v":
            __, __, fo, fv = self._sources[spec[1]][:4]
            v = spec[2]
            return int(np.count_nonzero(lut[fv[fo[v]:fo[v + 1]]]))
        elements = self._probe_elements(spec)
        mine = self._shard_of.array[elements] == self.shard
        return int(np.count_nonzero(lut[elements] & mine))

    # -- counting ------------------------------------------------------

    def count_vertices(
        self, a_spec, source: str, vertices: np.ndarray
    ) -> None:
        """Homogeneous burst: counts against ``source``'s sets of
        ``vertices``, vectorized over the shard-filtered CSR."""
        __, __, fo, fv = self._sources[source][:4]
        a_els = self._probe_elements(a_spec)
        lut = self._lut
        lut[a_els] = True
        starts = fo[vertices]
        lens = fo[vertices + 1] - starts
        total = int(lens.sum())
        out_off = np.zeros(vertices.size + 1, dtype=np.int64)
        np.cumsum(lens, out=out_off[1:])
        if total:
            # Standard CSR multi-row gather: flat[i] enumerates every
            # filtered element of every requested row, in row order.
            idx = (
                np.arange(total, dtype=np.int64)
                - np.repeat(out_off[:-1], lens)
                + np.repeat(starts, lens)
            )
            hits = np.zeros(total + 1, dtype=np.int64)
            np.cumsum(lut[fv[idx]], dtype=np.int64, out=hits[1:])
            counts = hits[out_off[1:]] - hits[out_off[:-1]]
        else:
            counts = np.zeros(vertices.size, dtype=np.int64)
        self._arena.array[self.shard, :vertices.size] = counts
        lut[a_els] = False

    def count_mixed(self, a_spec, b_specs: list) -> None:
        a_els = self._probe_elements(a_spec)
        lut = self._lut
        lut[a_els] = True
        row = self._arena.array[self.shard]
        for i, spec in enumerate(b_specs):
            row[i] = self._shard_count(lut, spec)
        lut[a_els] = False


def _worker_main(shard: int, conn, base: dict[str, Any]) -> None:
    """Entry point of one shard worker process (module-level: the spawn
    context pickles only its qualified name, never a closure)."""
    ownership.mark_worker(shard)
    worker = _ShardWorker(shard, base)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # host side went away: nothing left to serve
        kind = message[0]
        if kind == "stop":
            conn.send(("bye", shard))
            return
        if kind == "exit":
            # Crash injection: a hard exit, no goodbye — the host must
            # surface this as a structured WorkerCrashError, not hang.
            os._exit(int(message[1]))
        seq = message[1] if len(message) > 1 else None
        try:
            if kind == "load":
                worker.load(message[1])
                conn.send(("ok", ("load", message[1]["source"])))
            elif kind == "countv":
                worker.count_vertices(message[2], message[3], message[4])
                conn.send(("ok", seq))
            elif kind == "count":
                worker.count_mixed(message[2], message[3])
                conn.send(("ok", seq))
            elif kind == "ping":
                conn.send(("ok", seq))
            else:
                conn.send(("err", seq, f"unknown message kind {kind!r}"))
        except Exception as exc:  # repolint: disable=overbroad-except -- a worker must report failures as structured replies, never die silently
            conn.send(("err", seq, f"{type(exc).__name__}: {exc}"))


# ---------------------------------------------------------------------------
# Host side
# ---------------------------------------------------------------------------


def _teardown(procs, conns, store) -> None:
    """GC-safe teardown (module-level so the finalizer holds no
    reference back to the runtime)."""
    for conn in conns:
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        proc.join(timeout=max(0.0, deadline - time.monotonic()))
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
    for conn in conns:
        conn.close()
    store.close()


class ShardRuntime:
    """Host-side owner of one session's shard workers.

    Spawns one worker per shard over the session's vertex universe,
    lazily pushes source CSRs on first use (push-on-first-use keeps
    set-ID allocation order — and therefore SMB trajectories and
    modeled cycles — bit-identical to the sequential reference: the
    runtime never *builds* a session structure, it only mirrors ones
    the plans' own prep stages already built), and answers
    :meth:`partial_counts` by fanning a burst out to every worker and
    merging the arena rows in fixed shard order.

    A runtime is reusable across batches and epochs (the ~1s spawn cost
    amortizes); :class:`~repro.session.pool.SessionPool` caches one per
    session.
    """

    def __init__(
        self,
        session,
        shards: int,
        *,
        policy: str = "degree",
        offload_threshold: int = DEFAULT_OFFLOAD_THRESHOLD,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
    ):
        if shards < 1:
            raise ConfigError("shards must be positive")
        graph = session.graph
        n = graph.num_vertices
        self.session = session
        self.plan = ShardPlan.build(graph.degrees, shards, policy=policy)
        self.offload_threshold = int(offload_threshold)
        self.reply_timeout = float(reply_timeout)
        self.store = ShardStore(
            self.plan,
            arena_width=max(n, 1024),
            scratch_elements=max(4 * n, 0),
        )
        self.offloaded_units = 0
        self.inline_units = 0
        self._seq = 0
        self._cursor = 0
        self._set_map: dict[int, tuple[str, int]] = {}
        self._source_graphs: dict[str, Any] = {}
        self._source_vers: dict[str, tuple] = {}
        ctx = mp.get_context("spawn")
        self._procs = []
        self._conns = []
        base = self.store.base_spec()
        for k in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(k, child_conn, base),
                name=f"repro-shard-{k}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._finalizer = weakref.finalize(
            self, _teardown, self._procs, self._conns, self.store
        )
        self.closed = False

    @property
    def shards(self) -> int:
        return self.plan.shards

    # -- source staging ------------------------------------------------

    def _push(self, name: str, graph_obj, offsets, values, version) -> None:
        spec, stale = self.store.push_source(name, offsets, values)
        self._broadcast(("load", spec))
        for k in range(self.shards):
            self._expect_ok(k, ("load", name))
        if stale is not None:
            stale[0].destroy()
            stale[1].destroy()
        self._source_graphs[name] = graph_obj
        self._source_vers[name] = version
        self._set_map = {
            sid: (src, v)
            for src, sg in self._source_graphs.items()
            for v, sid in enumerate(sg.set_ids)
        }

    def _refresh(self, session) -> None:
        """Mirror any session structure that exists *now* but is not
        yet (or no longer) staged.  Pure observation: this never
        triggers a session-side build."""
        version = session._version
        sg = session._setgraph
        if sg is not None:
            ver = (id(sg), version)
            if self._source_vers.get("graph") != ver:
                offsets, values = setgraph_csr(session.ctx, sg.set_ids)
                self._push("graph", sg, offsets, values, ver)
        maintainer = session._orientation_maintainer
        osg = None
        over: tuple | None = None
        if maintainer is not None:
            if session._orientation_is_current():
                osg = maintainer.oriented
                over = (id(osg), version, maintainer.revision)
        elif (
            session._oriented is not None
            and session._oriented_version == version
        ):
            osg = session._oriented
            over = (id(osg), version)
        if osg is not None and self._source_vers.get("oriented") != over:
            offsets, values = setgraph_csr(session.ctx, osg.set_ids)
            self._push("oriented", osg, offsets, values, over)

    # -- the burst service ---------------------------------------------

    def partial_counts(self, session, a: int, bs) -> np.ndarray | None:
        """Merged ``|A ∩ B_i|`` computed shard-parallel, or ``None``
        when the burst should run inline (too small to amortize the
        round trip, or not representable in the staged arenas).  When
        an array is returned it is element-for-element identical to
        :func:`repro.runtime.batch.intersect_counts`."""
        n_b = len(bs)
        if (
            self.closed
            or n_b == 0
            or n_b > self.store.arena_width
            or session.graph.num_vertices != self.plan.shard_of.size
        ):
            self.inline_units += 1
            return None
        sm = session.ctx.sm
        payload = sm.meta(a).cardinality + sum(
            sm.meta(b).cardinality for b in bs
        )
        if payload < self.offload_threshold:
            self.inline_units += 1
            return None
        self._refresh(session)
        self._cursor = 0
        a_spec = self._operand_spec(a, sm)
        if a_spec is None:
            self.inline_units += 1
            return None
        b_entries = [self._set_map.get(int(b)) for b in bs]
        sources = {ent[0] for ent in b_entries if ent is not None}
        self._seq += 1
        seq = self._seq
        if None not in b_entries and len(sources) == 1:
            vertices = np.fromiter(
                (ent[1] for ent in b_entries), np.int64, n_b
            )
            message = ("countv", seq, a_spec, next(iter(sources)), vertices)
        else:
            b_specs = []
            for b, ent in zip(bs, b_entries):
                spec = (
                    ("v", ent[0], ent[1])
                    if ent is not None
                    else self._operand_spec(int(b), sm)
                )
                if spec is None:
                    self.inline_units += 1
                    return None
                b_specs.append(spec)
            message = ("count", seq, a_spec, b_specs)
        self._broadcast(message)
        for k in range(self.shards):
            self._expect_ok(k, seq)
        self.offloaded_units += 1
        return self._merge_arena(n_b)

    def _merge_arena(self, n_b: int) -> np.ndarray:
        from repro.parallel.merge import merge_partials

        return merge_partials(self.store.arena.array, self.shards, n_b)

    def _operand_spec(self, sid: int, sm):
        ent = self._set_map.get(sid)
        if ent is not None:
            return ("v", ent[0], ent[1])
        value = sm.value(sid)
        # Mirror batch.intersect_counts operand semantics exactly:
        # sparse arrays are counted over their raw element array.
        elements = getattr(value, "elements", None)
        arr = np.asarray(
            elements if elements is not None else value.to_array(),
            dtype=np.int64,
        )
        end = self._cursor + arr.size
        if end > self.store.scratch_capacity:
            return None
        self.store.scratch.array[self._cursor:end] = arr
        spec = ("s", self._cursor, int(arr.size))
        self._cursor = end
        return spec

    # -- transport -----------------------------------------------------

    def _crash(self, shard: int, why: str, **extra) -> WorkerCrashError:
        proc = self._procs[shard]
        return WorkerCrashError(
            f"shard worker {shard} {why}",
            details={
                "shard": shard,
                "alive": proc.is_alive(),
                "exitcode": proc.exitcode,
                **extra,
            },
        )

    def _broadcast(self, message) -> None:
        for k, conn in enumerate(self._conns):
            try:
                conn.send(message)
            except (BrokenPipeError, OSError) as exc:
                raise self._crash(k, "pipe closed on send") from exc

    def _expect_ok(self, shard: int, seq) -> None:
        reply = self._recv(shard)
        if reply[0] == "err":
            raise self._crash(
                shard, f"reported an error: {reply[2]}", seq=reply[1]
            )
        if reply[0] != "ok" or reply[1] != seq:
            raise self._crash(
                shard, f"sent an out-of-protocol reply {reply[0]!r}"
            )

    def _recv(self, shard: int):
        conn = self._conns[shard]
        proc = self._procs[shard]
        deadline = time.monotonic() + self.reply_timeout
        while True:
            try:
                if conn.poll(_POLL_INTERVAL):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise self._crash(shard, "died mid-reply") from exc
            if not proc.is_alive():
                # One final drain: the worker may have replied and then
                # exited before we polled.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError) as exc:
                    raise self._crash(shard, "died mid-reply") from exc
                raise self._crash(shard, "exited without replying")
            if time.monotonic() > deadline:
                raise self._crash(
                    shard, f"hung past {self.reply_timeout:.0f}s"
                )

    # -- lifecycle -----------------------------------------------------

    def ping(self) -> None:
        """Round-trip every worker (spawn barrier / liveness check)."""
        self._seq += 1
        self._broadcast(("ping", self._seq))
        for k in range(self.shards):
            self._expect_ok(k, self._seq)

    def kill_worker(self, shard: int) -> None:
        """Hard-kill one worker (crash-injection test helper)."""
        self._procs[shard].kill()
        self._procs[shard].join(timeout=5.0)

    def crash_worker(self, shard: int, code: int = 3) -> None:
        """Ask one worker to hard-exit from the inside (crash-injection
        test helper exercising the in-protocol path)."""
        self._conns[shard].send(("exit", code))
        self._procs[shard].join(timeout=5.0)

    def close(self) -> None:
        """Orderly shutdown: stop workers, release shared segments."""
        if self.closed:
            return
        self.closed = True
        self._finalizer.detach()
        _teardown(self._procs, self._conns, self.store)
