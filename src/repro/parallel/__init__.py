"""Sharded parallel execution of certified schedules on real processes.

The schedule certifier (:mod:`repro.analysis.static.schedule`) proves
*which* orders are legal and models their parallel cycles; this package
executes a :class:`~repro.analysis.static.schedule.CertifiedSchedule`
on actual OS processes:

* :mod:`repro.parallel.shards` — partition the vertex universe
  (hash or degree-balanced) and stage per-source CSR slices in
  ``multiprocessing.shared_memory`` so worker attach is zero-copy;
* :mod:`repro.parallel.workers` — a spawn-safe process fan-out pool;
  each worker owns one shard and serves per-shard partial
  intersection counts into a shared result arena;
* :mod:`repro.parallel.merge` — host-side deterministic merges (fixed
  shard-order integer reduction, bit-identical to sequential) plus the
  merge ledger and the model reconciliation against
  :meth:`CertifiedSchedule.what_if`;
* :mod:`repro.parallel.executor` — the :class:`ParallelExecutor`
  behind ``pool.run(lanes=N, parallel=True)``;
* :mod:`repro.parallel.ownership` — the host/worker ownership fence.

This ``__init__`` stays import-light (lazy attribute resolution) so the
spawned workers — which import :mod:`repro.parallel.workers` — never
pay for the host-side session/analysis stack.
"""

from __future__ import annotations

from typing import Any

_LAZY = {
    "ParallelExecutor": "repro.parallel.executor",
    "LaneGate": "repro.parallel.executor",
    "ParallelReport": "repro.parallel.merge",
    "MergeLedger": "repro.parallel.merge",
    "merge_partials": "repro.parallel.merge",
    "reconcile": "repro.parallel.merge",
    "ShardPlan": "repro.parallel.shards",
    "partition_universe": "repro.parallel.shards",
    "ShardRuntime": "repro.parallel.workers",
    "assert_host_owned": "repro.parallel.ownership",
    "in_worker": "repro.parallel.ownership",
    "current_shard": "repro.parallel.ownership",
    "mark_worker": "repro.parallel.ownership",
}

__all__ = sorted(_LAZY)


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return __all__
