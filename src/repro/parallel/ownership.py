"""Host/worker ownership fences for the sharded parallel subsystem.

A shard worker process is a pure-functional intersection-count service:
it owns exactly its shard slice of the vertex universe and must never
touch the host's serving structures (the session result cache, the
orientation maintainer's rank/out-degree state, tenant ledgers).  The
sequential code base enforced that only by convention — a silent
exclusive-session assumption.  This module makes the boundary explicit:

* :func:`mark_worker` brands a freshly spawned process with its shard
  index (called once, first thing, in the worker main);
* :func:`assert_host_owned` is called by the guarded structures
  themselves (``ResultCache``, ``IncrementalOrientation``) on every
  mutation/consult path and raises a structured
  :class:`~repro.errors.SisaError` from inside a worker;
* the ``parallel-unsafe-access`` repolint rule enforces the same
  boundary statically over the worker modules.

On the host every check is a single ``is None`` comparison, so the
fence costs nothing on the sequential paths.
"""

from __future__ import annotations

from repro.errors import SisaError

#: Shard index of the current process; ``None`` on the host.  Set once
#: per worker process by :func:`mark_worker` (spawn gives every worker a
#: fresh interpreter, so there is nothing to reset).
_WORKER_SHARD: int | None = None


def mark_worker(shard: int) -> None:
    """Brand this process as the worker owning ``shard``."""
    global _WORKER_SHARD
    _WORKER_SHARD = int(shard)


def in_worker() -> bool:
    """True inside a shard worker process."""
    return _WORKER_SHARD is not None


def current_shard() -> int | None:
    """The owned shard index, or ``None`` on the host."""
    return _WORKER_SHARD


def assert_host_owned(structure: str, *, op: str = "") -> None:
    """Fence guarding a host-owned serving structure.

    No-op on the host; inside a worker it raises a structured error
    naming the structure, the operation and the offending shard — the
    bug it catches (worker code reaching into host serving state) would
    otherwise corrupt silently, because shared-memory attach makes the
    reach *look* local.
    """
    if _WORKER_SHARD is None:
        return
    raise SisaError(
        f"shard worker {_WORKER_SHARD} touched host-owned structure "
        f"{structure!r}" + (f" during {op!r}" if op else ""),
        details={
            "structure": structure,
            "op": op,
            "shard": _WORKER_SHARD,
        },
    )
