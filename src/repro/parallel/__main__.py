"""CLI front end: ``python -m repro.parallel``.

``--soak`` serves the 40-plan robustness-soak batch (8 tenants x the
five soak workloads) through ``pool.run(parallel=True)`` — certified
schedules on real shard worker processes with shared-memory merges —
and verifies the run bit-identical to a sequential scheduled run of
the same batch: every output fingerprint, every per-plan modeled cycle
figure and every per-tenant ledger must match exactly, and the
reconciled report must equal ``schedule.what_if(lanes).makespan``
plus the modeled host merge charges.  ``--racecheck`` additionally
arms the happens-before race detector over the parallel replay.

This is the CI ``parallel`` job's entry point; exit status is non-zero
on any divergence, race, or worker crash.
"""

from __future__ import annotations

import argparse
from typing import Any


def _run_soak(
    *,
    n: int,
    tenants: int,
    lanes: int,
    racecheck: bool,
    offload_threshold: int,
) -> int:
    from repro.analysis.static.smoke import SOAK_WORKLOADS, make_session
    from repro.session import SessionPool
    from repro.session.cache import fingerprint

    graph = make_session(n=n).graph

    def submit(pool: SessionPool) -> int:
        count = 0
        for t in range(tenants):
            for name, params in SOAK_WORKLOADS:
                pool.submit(
                    "soak",
                    name,
                    tenant=f"tenant-{t}",
                    graph=graph,
                    **params,
                )
                count += 1
        return count

    pool_seq = SessionPool(threads=8)
    count = submit(pool_seq)
    sequential = pool_seq.run(lanes=lanes)

    pool_par = SessionPool(threads=8)
    pool_par.parallel_offload_threshold = offload_threshold
    submit(pool_par)
    parallel = pool_par.run(
        lanes=lanes, parallel=True, racecheck=racecheck
    )

    failures: list[str] = []
    crashed = sum(1 for r in parallel if not r.ok)
    if crashed:
        failures.append(f"{crashed} plan(s) failed under parallel=True")
    for a, b in zip(sequential, parallel):
        if not (a.ok and b.ok):
            continue
        if fingerprint(a.output) != fingerprint(b.output):
            failures.append(f"output diverged: {a.workload}")
        if a.report.runtime_cycles != b.report.runtime_cycles:
            failures.append(f"modeled cycles diverged: {a.workload}")
    if pool_seq.tenant_cycles != pool_par.tenant_cycles:
        failures.append("per-tenant ledgers diverged")

    report = pool_par.last_parallel.get("soak")
    if report is None:
        failures.append("no parallel report published")
    else:
        model = pool_par.last_schedules["soak"].what_if(lanes)
        if report.parallel_cycles != model.makespan + model.merge_cycles:
            failures.append(
                "reconciled cycles != what_if makespan + merge charges"
            )
        print(
            f"soak[parallel]: {count} plans, {tenants} tenants, "
            f"lanes={lanes}, shards={report.shards} "
            f"({report.policy} partition, vertices "
            f"{list(report.shard_vertices)})"
        )
        print(
            f"  offloaded {report.offloaded_units} unit(s), inline "
            f"{report.inline_units}; modeled speedup "
            f"{report.speedup:.3f}x, merge {report.merge_cycles:.0f} "
            f"cyc over {report.cross_edges} cross-lane edge(s)"
        )
        print(
            f"  lane occupancy max {report.lane_max_occupancy:.3f} / "
            f"mean {report.lane_mean_occupancy:.3f}"
            + ("; racecheck: zero races" if racecheck else "")
        )
    pool_par.close()
    if failures:
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print(
        f"  outputs, ledgers and modeled cycles bit-identical to the "
        f"sequential scheduled run of all {count} plans"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel",
        description="Sharded parallel serving checks: the robustness "
        "soak on real worker processes, verified bit-identical to "
        "sequential execution.",
    )
    parser.add_argument(
        "--soak",
        action="store_true",
        help="serve the robustness-soak batch with parallel=True and "
        "verify bit-identity against the sequential scheduled run",
    )
    parser.add_argument(
        "--racecheck",
        action="store_true",
        help="arm the happens-before race detector over the parallel "
        "replay",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=4,
        metavar="N",
        help="lane width / shard count (default 4)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=8,
        metavar="N",
        help="soak tenants (default 8: the 40-plan batch)",
    )
    parser.add_argument(
        "--graph-size",
        type=int,
        default=60,
        metavar="N",
        help="vertex count for the smoke graph (default 60)",
    )
    parser.add_argument(
        "--offload-threshold",
        type=int,
        default=0,
        metavar="CYCLES",
        help="operand-cardinality threshold above which a count burst "
        "offloads to the workers (default 0: offload everything)",
    )
    args = parser.parse_args(argv)
    if not args.soak:
        parser.print_help()
        return 0
    kwargs: dict[str, Any] = {
        "n": args.graph_size,
        "tenants": args.tenants,
        "lanes": args.lanes,
        "racecheck": args.racecheck,
        "offload_threshold": args.offload_threshold,
    }
    return _run_soak(**kwargs)


if __name__ == "__main__":
    raise SystemExit(main())
