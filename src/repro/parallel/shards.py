"""Vertex-universe sharding and the shared-memory staging layer.

The paper's multi-lane model charges per-lane costs via
``engine.on_lane``; shards are the software analogue — a partition of
the vertex universe such that ``|A ∩ B| = Σ_k |A ∩ B ∩ S_k|`` exactly
(the shards partition the universe, and intersection distributes over
the partition), so per-shard partial counts merge back into the precise
integer the sequential kernel computes.

Everything a worker reads is staged once in
``multiprocessing.shared_memory`` numpy arrays (the staged per-source
registry idiom: each source — the undirected neighborhoods, the
oriented ``N+`` sets — is an independently buildable, re-pushable CSR
slice), so worker attach is zero-copy: all processes map the same
physical pages.  Workers additionally build a *private* shard-filtered
CSR on load, which splits frontier scans ``O(Σ|B_i|)`` evenly across
shards instead of duplicating them.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.errors import ConfigError

PARTITION_POLICIES = ("degree", "hash")

#: Shared scratch staging area (int64 elements) for explicit operand
#: sets that are not graph-mapped; sized generously relative to the
#: universe and grown never — a unit that does not fit simply computes
#: inline on the host.
MIN_SCRATCH_ELEMENTS = 65_536


def partition_universe(
    degrees: np.ndarray, shards: int, *, policy: str = "degree"
) -> np.ndarray:
    """Assign every vertex to a shard; returns ``shard_of`` (int32).

    ``policy="hash"`` is the stateless ``v % shards`` split;
    ``policy="degree"`` greedily places vertices in decreasing-degree
    order onto the currently lightest shard (by degree mass, ties to
    the lowest shard) — the classic LPT balance heuristic, deterministic
    for a fixed degree array.
    """
    if shards < 1:
        raise ConfigError("shards must be positive")
    if policy not in PARTITION_POLICIES:
        raise ConfigError(
            f"partition policy must be one of {PARTITION_POLICIES}, "
            f"got {policy!r}"
        )
    degrees = np.asarray(degrees, dtype=np.int64)
    n = degrees.size
    shard_of = np.zeros(n, dtype=np.int32)
    if shards == 1 or n == 0:
        return shard_of
    if policy == "hash":
        shard_of[:] = np.arange(n, dtype=np.int64) % shards
        return shard_of
    order = np.argsort(-degrees, kind="stable")
    loads = [0] * shards
    for v in order:
        k = min(range(shards), key=lambda i: (loads[i], i))
        shard_of[v] = k
        loads[k] += int(degrees[v]) + 1  # +1 keeps zero-degree tails even
    return shard_of


@dataclass(frozen=True)
class ShardPlan:
    """One partition of the vertex universe."""

    shards: int
    policy: str
    shard_of: np.ndarray

    @property
    def vertex_counts(self) -> tuple[int, ...]:
        """Per-shard vertex counts (the health/balance metric)."""
        return tuple(
            int(c)
            for c in np.bincount(self.shard_of, minlength=self.shards)
        )

    @classmethod
    def build(
        cls, degrees: np.ndarray, shards: int, *, policy: str = "degree"
    ) -> "ShardPlan":
        return cls(
            shards=int(shards),
            policy=policy,
            shard_of=partition_universe(degrees, shards, policy=policy),
        )


class SharedArray:
    """One numpy array backed by a named shared-memory segment.

    The creating (host) side owns the segment and unlinks it on
    :meth:`destroy`; workers attach by spec and only ever close their
    local mapping.  A ``weakref.finalize`` guard unlinks host segments
    even when a runtime is dropped without ``close()``.
    """

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray, *, owner: bool):
        self.shm = shm
        self.array = array
        self.owner = owner
        if owner:
            self._finalizer = weakref.finalize(self, _cleanup_segment, shm)
        else:
            self._finalizer = weakref.finalize(self, _close_segment, shm)

    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True, size=max(int(array.nbytes), 1)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        return cls(shm, view, owner=True)

    @classmethod
    def zeros(cls, shape, dtype) -> "SharedArray":
        return cls.create(np.zeros(shape, dtype=dtype))

    def spec(self) -> dict[str, Any]:
        """Picklable attach descriptor (name + shape + dtype)."""
        return {
            "name": self.shm.name,
            "shape": tuple(int(s) for s in self.array.shape),
            "dtype": str(self.array.dtype),
        }

    @classmethod
    def attach(cls, spec: dict[str, Any]) -> "SharedArray":
        """Worker-side zero-copy attach.

        Python 3.11's ``SharedMemory`` has no ``track`` parameter:
        every attach registers the segment with the resource tracker —
        which spawned workers *share* with the host, so tracking (or
        unregistering) from a worker would corrupt the host's
        registration and unlink live segments.  Until ``track=False``
        exists, registration is suppressed for the duration of the
        attach (worker bootstrap is single-threaded, so the swap cannot
        race).
        """
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=spec["name"])
        finally:
            resource_tracker.register = original
        array = np.ndarray(
            spec["shape"], dtype=np.dtype(spec["dtype"]), buffer=shm.buf
        )
        return cls(shm, array, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (workers; host keeps segment)."""
        self._finalizer.detach()
        _close_segment(self.shm)

    def destroy(self) -> None:
        """Host-side teardown: close the mapping and unlink the
        segment."""
        self._finalizer.detach()
        _cleanup_segment(self.shm)


def _close_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass


def _cleanup_segment(shm: shared_memory.SharedMemory) -> None:
    _close_segment(shm)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def setgraph_csr(ctx, set_ids: list[int]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten one SetGraph's per-vertex sets into (offsets, values).

    Reads raw set values through the uncharged model-internal accessor
    — staging is graph loading, outside the measured region — so
    building the shard store never perturbs modeled cycles.
    """
    offsets = np.zeros(len(set_ids) + 1, dtype=np.int64)
    chunks: list[np.ndarray] = []
    for i, sid in enumerate(set_ids):
        arr = np.asarray(ctx.value(sid).to_array(), dtype=np.int64)
        offsets[i + 1] = offsets[i] + arr.size
        chunks.append(arr)
    values = (
        np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
    )
    return offsets, values


class ShardStore:
    """Host-side owner of every shared segment of one runtime.

    Segments: the partition map, the per-shard result arena, the
    explicit-operand scratch buffer, and one (offsets, values) CSR pair
    per pushed source.  Pushing a source again (stream epoch advanced,
    orientation rebuilt) replaces the pair; the old segments are
    destroyed only after the caller confirmed every worker reloaded.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        arena_width: int,
        scratch_elements: int,
    ):
        self.plan = plan
        self.shard_of = SharedArray.create(plan.shard_of)
        self.arena = SharedArray.zeros(
            (plan.shards, int(arena_width)), np.int64
        )
        self.scratch = SharedArray.zeros(
            max(int(scratch_elements), MIN_SCRATCH_ELEMENTS), np.int64
        )
        self.sources: dict[str, tuple[SharedArray, SharedArray]] = {}

    @property
    def arena_width(self) -> int:
        return int(self.arena.array.shape[1])

    @property
    def scratch_capacity(self) -> int:
        return int(self.scratch.array.size)

    def base_spec(self) -> dict[str, Any]:
        """The picklable worker bootstrap descriptor."""
        return {
            "n": int(self.plan.shard_of.size),
            "shards": self.plan.shards,
            "shard_of": self.shard_of.spec(),
            "arena": self.arena.spec(),
            "scratch": self.scratch.spec(),
        }

    def push_source(
        self, name: str, offsets: np.ndarray, values: np.ndarray
    ) -> tuple[dict[str, Any], tuple[SharedArray, SharedArray] | None]:
        """Stage one source CSR; returns its attach spec and the
        *previous* segment pair (for the caller to destroy after every
        worker acknowledged the reload)."""
        stale = self.sources.get(name)
        pair = (SharedArray.create(offsets), SharedArray.create(values))
        self.sources[name] = pair
        spec = {
            "source": name,
            "offsets": pair[0].spec(),
            "values": pair[1].spec(),
        }
        return spec, stale

    def close(self) -> None:
        self.shard_of.destroy()
        self.arena.destroy()
        self.scratch.destroy()
        for pair in self.sources.values():
            pair[0].destroy()
            pair[1].destroy()
        self.sources.clear()
