"""Deterministic host-side merges and the model reconciliation.

Two merge notions meet here, deliberately kept distinct:

* the **data merge** — :func:`merge_partials` reduces the per-shard
  partial count rows of the shared arena in fixed ascending shard
  order.  The shards partition the vertex universe, so the reduction
  is an exact integer sum; the fixed order makes the determinism
  *obvious* (auditable), not merely true.
* the **model merge charge** — :class:`MergeLedger` charges the
  schedule certifier's 32-cycle host fee
  (:data:`~repro.analysis.static.schedule.MERGE_CYCLES_PER_EDGE`) for
  every dependency edge that crosses lanes under the admission lane
  assignment, exactly as ``ScheduleModel`` predicts.  Merge charges
  are model-level coordinator work: they price the synchronization,
  they are **not** added to any tenant's cycle ledger — tenant
  accounting stays bit-identical to sequential.

:func:`reconcile` closes the loop after a parallel run: it re-simulates
the lane timeline with the measured costs in the certifier's exact
float-op order and asserts — term by term, exact equality — that the
run matches :meth:`CertifiedSchedule.what_if`, and that the ledger's
execution-time charges match the admission assignment's cross-edge
count.  A mismatch is a :class:`~repro.errors.SisaError` with the full
diff in ``details``: the parallel subsystem refuses to *report* numbers
the certifier would not have *predicted*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigError, SisaError


def merge_partials(arena: np.ndarray, shards: int, width: int) -> np.ndarray:
    """Reduce the first ``width`` columns of the per-shard arena rows
    in fixed ascending shard order; returns the merged int64 counts."""
    if shards < 1:
        raise ConfigError("shards must be positive")
    merged = arena[0, :width].copy()
    for k in range(1, shards):
        merged += arena[k, :width]
    return merged


@dataclass
class MergeLedger:
    """Execution-time record of the host merge charges of one run.

    Built at admission from the certified schedule and the admission
    lane assignment: every dependency edge whose endpoints sit on
    different lanes owes one host merge when its *destination* node
    runs (the coordinator synchronizes the producer lane's published
    value into the consumer's context).  :meth:`charge` is called by
    the executor as each node completes, so at the end of the run the
    ledger holds exactly the charges the model predicted — or
    :func:`reconcile` raises.
    """

    merge_cycles_per_edge: float
    cross_in_edges: dict[int, int]
    charged_nodes: list[int] = field(default_factory=list)
    cross_edges: int = 0

    @classmethod
    def from_schedule(cls, schedule, lane_of: dict[int, int]) -> "MergeLedger":
        cross_in: dict[int, int] = {}
        for edge in schedule.edges:
            if lane_of[edge.src] != lane_of[edge.dst]:
                cross_in[edge.dst] = cross_in.get(edge.dst, 0) + 1
        return cls(
            merge_cycles_per_edge=float(schedule.merge_cycles_per_edge),
            cross_in_edges=cross_in,
        )

    def charge(self, node_id: int) -> int:
        """Charge the host merges owed by ``node_id``'s cross-lane
        in-edges; returns how many were charged (0 for a node fed
        entirely from its own lane)."""
        owed = self.cross_in_edges.get(int(node_id), 0)
        if owed:
            self.charged_nodes.append(int(node_id))
            self.cross_edges += owed
        return owed

    @property
    def expected_cross_edges(self) -> int:
        """Total cross-lane edges under the admission assignment."""
        return sum(self.cross_in_edges.values())

    @property
    def merge_cycles(self) -> float:
        return self.merge_cycles_per_edge * self.cross_edges

    def as_dict(self) -> dict[str, Any]:
        return {
            "merge_cycles_per_edge": self.merge_cycles_per_edge,
            "cross_edges": self.cross_edges,
            "merge_cycles": self.merge_cycles,
            "charged_nodes": list(self.charged_nodes),
        }


@dataclass(frozen=True)
class ParallelReport:
    """The reconciled outcome of one parallel batch execution."""

    lanes: int
    shards: int
    policy: str
    makespan: float
    merge_cycles: float
    cross_edges: int
    parallel_cycles: float  # makespan + merge charge, == what_if()
    sequential_cycles: float
    lane_busy: tuple[float, ...]
    lane_work: tuple[float, ...]  # pure per-lane work (no idle gaps)
    lane_max_occupancy: float  # max lane work / makespan
    lane_mean_occupancy: float  # mean lane work / makespan
    admission_cross_edges: int  # ledger charges (admission lane map)
    admission_merge_cycles: float
    shard_vertices: tuple[int, ...]
    offloaded_units: int
    inline_units: int

    @property
    def speedup(self) -> float:
        """Modeled sequential/parallel ratio (1.0 for an empty run)."""
        if self.parallel_cycles <= 0.0:
            return 1.0
        return self.sequential_cycles / self.parallel_cycles

    def as_dict(self) -> dict[str, Any]:
        return {
            "lanes": self.lanes,
            "shards": self.shards,
            "policy": self.policy,
            "makespan": self.makespan,
            "merge_cycles": self.merge_cycles,
            "cross_edges": self.cross_edges,
            "parallel_cycles": self.parallel_cycles,
            "sequential_cycles": self.sequential_cycles,
            "speedup": self.speedup,
            "lane_busy": list(self.lane_busy),
            "lane_work": list(self.lane_work),
            "lane_max_occupancy": self.lane_max_occupancy,
            "lane_mean_occupancy": self.lane_mean_occupancy,
            "admission_cross_edges": self.admission_cross_edges,
            "admission_merge_cycles": self.admission_merge_cycles,
            "shard_vertices": list(self.shard_vertices),
            "offloaded_units": self.offloaded_units,
            "inline_units": self.inline_units,
        }


def reconcile(
    schedule,
    lanes: int,
    ledger: MergeLedger,
    *,
    shards: int,
    policy: str,
    shard_vertices: tuple[int, ...],
    offloaded_units: int,
    inline_units: int,
) -> ParallelReport:
    """Reconcile one parallel run against the certifier's model.

    Re-simulates the lane timeline with the measured costs in
    :meth:`CertifiedSchedule.what_if`'s exact float-op order (same
    ``max``/add sequencing, so equality can be exact, not approximate)
    and asserts every modeled component matches; separately asserts the
    execution-time ledger charged exactly the admission assignment's
    cross-lane edges.  Raises :class:`~repro.errors.SisaError` with the
    full mismatch in ``details`` rather than reporting unreconciled
    numbers.
    """
    if not schedule.measured:
        raise SisaError(
            "cannot reconcile an unmeasured schedule: the replay must "
            "record every node cost",
            details={
                "nodes": len(schedule.nodes),
                "measured": len(schedule.costs),
            },
        )
    lane_of, __ = schedule.assign(lanes)
    n = len(schedule.nodes)
    lane_busy = [0.0] * lanes
    lane_work = [0.0] * lanes
    finish = [0.0] * n
    for node in schedule.order:
        est = max((finish[p] for p in schedule.preds[node]), default=0.0)
        lane = lane_of[node]
        t0 = max(lane_busy[lane], est)
        t1 = t0 + schedule.costs[node]
        finish[node] = t1
        lane_busy[lane] = t1
        lane_work[lane] += schedule.costs[node]
    cross = sum(
        1 for e in schedule.edges if lane_of[e.src] != lane_of[e.dst]
    )
    makespan = max(lane_busy, default=0.0)
    merge = schedule.merge_cycles_per_edge * cross
    model = schedule.what_if(lanes)
    mismatches: dict[str, Any] = {}
    if makespan != model.makespan:
        mismatches["makespan"] = [makespan, model.makespan]
    if merge != model.merge_cycles:
        mismatches["merge_cycles"] = [merge, model.merge_cycles]
    if cross != model.cross_edges:
        mismatches["cross_edges"] = [cross, model.cross_edges]
    if tuple(lane_busy) != model.lane_busy:
        mismatches["lane_busy"] = [list(lane_busy), list(model.lane_busy)]
    if makespan + merge != model.parallel_cycles:
        mismatches["parallel_cycles"] = [
            makespan + merge, model.parallel_cycles
        ]
    if mismatches:
        raise SisaError(
            "parallel run does not reconcile with the certified "
            "schedule's what-if model",
            details={"lanes": lanes, "mismatches": mismatches},
        )
    if ledger.cross_edges != ledger.expected_cross_edges:
        raise SisaError(
            "merge ledger charges do not match the admission "
            "assignment's cross-lane edges",
            details={
                "charged": ledger.cross_edges,
                "expected": ledger.expected_cross_edges,
            },
        )
    if makespan > 0.0:
        max_occ = max(lane_work) / makespan
        mean_occ = sum(lane_work) / (lanes * makespan)
    else:
        max_occ = 0.0
        mean_occ = 0.0
    return ParallelReport(
        lanes=lanes,
        shards=shards,
        policy=policy,
        makespan=makespan,
        merge_cycles=merge,
        cross_edges=cross,
        parallel_cycles=makespan + merge,
        sequential_cycles=model.sequential_cycles,
        lane_busy=tuple(lane_busy),
        lane_work=tuple(lane_work),
        lane_max_occupancy=max_occ,
        lane_mean_occupancy=mean_occ,
        admission_cross_edges=ledger.cross_edges,
        admission_merge_cycles=ledger.merge_cycles,
        shard_vertices=tuple(int(v) for v in shard_vertices),
        offloaded_units=int(offloaded_units),
        inline_units=int(inline_units),
    )
