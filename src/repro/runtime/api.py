"""The thin SISA software layer (paper Fig. 3).

Two levels of abstraction on top of :class:`SisaContext`:

* :class:`SisaSet` — an opaque handle over a set ID, with operator
  overloads and iterators ("Set classes and iterators over sets that
  abstract away details of set representation and organization").
* :func:`c_api` — the C-style wrapper functions that map one-to-one to
  SISA instructions (``sisa_intersect``, ``sisa_union``, ...), shown in
  the figure's "Function wrappers that map directly to HW instructions"
  box.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.runtime.context import SisaContext


class SisaSet:
    """An opaque reference to a SISA set (the figure's ``VertexSet``).

    Operators mirror the paper's example syntax::

        union = A | B          # A.SISA_Union(B)
        inter = A & B
        diff = A - B
        count = A.intersect_count(B)
        for v in A: ...

    Sets are context managers, so scoped temporaries are freed without
    leaking set IDs::

        with A & B as shared:
            ...                # shared.free() runs on exit
    """

    __slots__ = ("ctx", "set_id")

    def __init__(self, ctx: SisaContext, set_id: int):
        self.ctx = ctx
        self.set_id = set_id

    # -- construction -------------------------------------------------------

    @classmethod
    def create(
        cls,
        ctx: SisaContext,
        elements: Iterable[int] = (),
        *,
        universe: int,
        dense: bool = False,
    ) -> "SisaSet":
        return cls(ctx, ctx.create_set(elements, universe=universe, dense=dense))

    def clone(self) -> "SisaSet":
        return SisaSet(self.ctx, self.ctx.clone(self.set_id))

    def free(self) -> None:
        self.ctx.free(self.set_id)

    # -- scoped lifetime ------------------------------------------------------

    def __enter__(self) -> "SisaSet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.free()

    # -- operators -----------------------------------------------------------

    def _wrap(self, set_id: int) -> "SisaSet":
        return SisaSet(self.ctx, set_id)

    def __and__(self, other: "SisaSet") -> "SisaSet":
        return self._wrap(self.ctx.intersect(self.set_id, other.set_id))

    def __or__(self, other: "SisaSet") -> "SisaSet":
        return self._wrap(self.ctx.union(self.set_id, other.set_id))

    def __sub__(self, other: "SisaSet") -> "SisaSet":
        return self._wrap(self.ctx.difference(self.set_id, other.set_id))

    def __iand__(self, other: "SisaSet") -> "SisaSet":
        self.ctx.intersect_into(self.set_id, other.set_id)
        return self

    def __ior__(self, other: "SisaSet") -> "SisaSet":
        self.ctx.union_into(self.set_id, other.set_id)
        return self

    def __isub__(self, other: "SisaSet") -> "SisaSet":
        self.ctx.difference_into(self.set_id, other.set_id)
        return self

    def intersect_count(self, other: "SisaSet") -> int:
        return self.ctx.intersect_count(self.set_id, other.set_id)

    def union_count(self, other: "SisaSet") -> int:
        return self.ctx.union_count(self.set_id, other.set_id)

    def difference_count(self, other: "SisaSet") -> int:
        return self.ctx.difference_count(self.set_id, other.set_id)

    # -- batched / CISC forms (parity with the batched runtime) ---------------

    def intersect_count_batch(self, others: Iterable["SisaSet"]) -> np.ndarray:
        """``|A ∩ B_i|`` over a whole frontier of sets: one amortized
        count burst, cycle-identical to the sequential stream."""
        return self.ctx.intersect_count_batch(
            self.set_id, [other.set_id for other in others]
        )

    def intersect_batch(self, others: Iterable["SisaSet"]) -> list["SisaSet"]:
        """Materializing batched intersection over a frontier."""
        return [
            self._wrap(set_id)
            for set_id in self.ctx.intersect_batch(
                self.set_id, [other.set_id for other in others]
            )
        ]

    def intersect_many(self, *others: "SisaSet") -> "SisaSet":
        """CISC-style multi-set intersection ``A ∩ B_1 ∩ ... ∩ B_l``
        (one instruction; intermediates stay in the accelerator)."""
        return self._wrap(
            self.ctx.intersect_many(
                self.set_id, *(other.set_id for other in others)
            )
        )

    # -- elements -------------------------------------------------------------

    def insert(self, x: int) -> None:
        self.ctx.insert(self.set_id, x)

    def remove(self, x: int) -> None:
        self.ctx.remove(self.set_id, x)

    def __contains__(self, x: object) -> bool:
        return isinstance(x, (int, np.integer)) and self.ctx.member(
            self.set_id, int(x)
        )

    def __len__(self) -> int:
        return self.ctx.cardinality(self.set_id)

    def __iter__(self) -> Iterator[int]:
        return iter(int(v) for v in self.ctx.elements(self.set_id))

    def to_array(self) -> np.ndarray:
        return self.ctx.elements(self.set_id)

    def __repr__(self) -> str:
        meta = self.ctx.sm.meta(self.set_id)
        return (
            f"SisaSet(id={self.set_id}, |A|={meta.cardinality}, "
            f"{meta.representation.value})"
        )


class CApi:
    """The C-style wrappers of Fig. 3 (``SetId``-based, one function per
    SISA instruction family)."""

    def __init__(self, ctx: SisaContext, universe: int):
        self.ctx = ctx
        self.universe = universe

    # SetId create(Vertex* vs, size_t count);
    def create(self, vertices: Iterable[int] = (), *, dense: bool = False) -> int:
        return self.ctx.create_set(vertices, universe=self.universe, dense=dense)

    # void delete(SetId id);
    def delete(self, set_id: int) -> None:
        self.ctx.free(set_id)

    # SetId clone(SetId id);
    def clone(self, set_id: int) -> int:
        return self.ctx.clone(set_id)

    # void insert(SetId id, Vertex v, ...);
    def insert(self, set_id: int, *vertices: int) -> None:
        """Variadic element insert: one batched element-update dispatch
        burst (cycle-identical to the scalar per-vertex stream)."""
        if len(vertices) == 1:
            self.ctx.insert(set_id, vertices[0])
        elif vertices:
            self.ctx.insert_batch([(set_id, v) for v in vertices])

    # void remove(SetId id, Vertex v, ...);
    def remove(self, set_id: int, *vertices: int) -> None:
        """Variadic element remove, batched like :meth:`insert`."""
        if len(vertices) == 1:
            self.ctx.remove(set_id, vertices[0])
        elif vertices:
            self.ctx.remove_batch([(set_id, v) for v in vertices])

    # SetId union(SetId A, SetId B, ...);
    def union(self, a: int, b: int) -> int:
        return self.ctx.union(a, b)

    # SetId intersect(SetId A, SetId B, ...);
    def intersect(self, a: int, b: int) -> int:
        return self.ctx.intersect(a, b)

    # SetId difference(SetId A, SetId B, ...);
    def difference(self, a: int, b: int) -> int:
        return self.ctx.difference(a, b)

    # size_t intersect_count(SetId A, SetId B, ...);
    def intersect_count(self, a: int, b: int) -> int:
        return self.ctx.intersect_count(a, b)

    # size_t cardinality(SetId id, ...);
    def cardinality(self, set_id: int) -> int:
        return self.ctx.cardinality(set_id)

    # bool is_member(SetId id, Vertex v, ...);
    def is_member(self, set_id: int, v: int) -> bool:
        return self.ctx.member(set_id, v)

    # SetId intersect_many(SetId A1, ..., SetId Al);   [CISC extension]
    def intersect_many(self, *set_ids: int) -> int:
        return self.ctx.intersect_many(*set_ids)


def c_api(ctx: SisaContext, universe: int) -> CApi:
    """Build the C-style wrapper table bound to one context."""
    return CApi(ctx, universe)
