"""Execution traces of set operations.

The paper gathers "traces of executed set operations" to compare
full and partial (cut-off) executions (Fig. 9b: histograms of the sizes
of processed sets per thread).  A :class:`Trace` records one event per
executed set instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class TraceEvent:
    opcode: Opcode
    lane: int
    size_a: int
    size_b: int
    output_size: int
    backend: str
    variant: str


@dataclass
class Trace:
    enabled: bool = False
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def set_sizes(self, *, lane: int | None = None) -> np.ndarray:
        """Sizes of all processed input sets (the Fig. 9b quantity)."""
        sizes: list[int] = []
        for event in self.events:
            if lane is not None and event.lane != lane:
                continue
            sizes.append(event.size_a)
            if event.size_b:
                sizes.append(event.size_b)
        return np.asarray(sizes, dtype=np.int64)

    def histogram(
        self, bins: np.ndarray, *, lane: int | None = None
    ) -> np.ndarray:
        sizes = self.set_sizes(lane=lane)
        counts, __ = np.histogram(sizes, bins=bins)
        return counts

    def __len__(self) -> int:
        return len(self.events)
