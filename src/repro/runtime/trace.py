"""Execution traces of set operations.

The paper gathers "traces of executed set operations" to compare
full and partial (cut-off) executions (Fig. 9b: histograms of the sizes
of processed sets per thread).  A :class:`Trace` records one event per
executed set instruction.

:class:`SetSizeHistogram` is the aggregated form of the same quantity:
fixed power-of-two buckets of processed input-set sizes, cheap enough
to feed per instruction burst.  The observability layer keeps one per
tenant in a serving pool, so the Fig. 9b distribution is available per
tenant without retaining the full event stream a :class:`Trace` holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.isa.opcodes import Opcode

# Power-of-two size buckets cover every practical set size: bucket i
# holds sizes with bit_length i, i.e. [2**(i-1), 2**i - 1] (bucket 0 is
# the empty set).  64 buckets exceed any addressable set.
SET_SIZE_BUCKETS = 64


class SetSizeHistogram:
    """Fixed power-of-two-bucket histogram of processed set sizes.

    ``counts[i]`` is the number of processed input sets whose size has
    ``bit_length() == i`` (``counts[0]`` counts empty sets).  The fixed
    bucketing makes histograms from different runs, sessions and
    tenants mergeable bucket-for-bucket — the property the pool's
    per-tenant aggregation relies on.
    """

    __slots__ = ("counts", "total")

    def __init__(self):
        self.counts = [0] * SET_SIZE_BUCKETS
        self.total = 0

    def observe(self, size: int) -> None:
        self.counts[int(size).bit_length()] += 1
        self.total += 1

    def observe_many(self, sizes) -> None:
        counts = self.counts
        n = 0
        for size in sizes:
            counts[int(size).bit_length()] += 1
            n += 1
        self.total += n

    def merge(self, other: "SetSizeHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total

    @staticmethod
    def bucket_bounds(index: int) -> tuple[int, int]:
        """The inclusive ``[lo, hi]`` size range of bucket ``index``."""
        if index == 0:
            return (0, 0)
        return (1 << (index - 1), (1 << index) - 1)

    def nonzero(self) -> dict[int, int]:
        """``{bucket_index: count}`` for the populated buckets."""
        return {i: c for i, c in enumerate(self.counts) if c}

    def as_dict(self) -> dict:
        """A JSON-safe summary keyed by the bucket's ``[lo, hi]``."""
        return {
            "total": self.total,
            "buckets": {
                f"{lo}-{hi}": count
                for i, count in self.nonzero().items()
                for lo, hi in [self.bucket_bounds(i)]
            },
        }

    def __len__(self) -> int:
        return self.total


@dataclass(frozen=True)
class TraceEvent:
    opcode: Opcode
    lane: int
    size_a: int
    size_b: int
    output_size: int
    backend: str
    variant: str


@dataclass
class Trace:
    enabled: bool = False
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def set_sizes(self, *, lane: int | None = None) -> np.ndarray:
        """Sizes of all processed input sets (the Fig. 9b quantity)."""
        sizes: list[int] = []
        for event in self.events:
            if lane is not None and event.lane != lane:
                continue
            sizes.append(event.size_a)
            if event.size_b:
                sizes.append(event.size_b)
        return np.asarray(sizes, dtype=np.int64)

    def histogram(
        self, bins: np.ndarray, *, lane: int | None = None
    ) -> np.ndarray:
        sizes = self.set_sizes(lane=lane)
        counts, __ = np.histogram(sizes, bins=bins)
        return counts

    def size_histogram(self, *, lane: int | None = None) -> SetSizeHistogram:
        """The recorded events folded into a :class:`SetSizeHistogram`
        (the aggregated per-tenant form the observability layer keeps)."""
        hist = SetSizeHistogram()
        hist.observe_many(self.set_sizes(lane=lane))
        return hist

    def __len__(self) -> int:
        return len(self.events)
