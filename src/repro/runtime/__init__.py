"""The SISA runtime: contexts, set graphs, batched execution, software
layer, traces."""

from repro.runtime import batch
from repro.runtime.api import CApi, SisaSet, c_api
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph
from repro.runtime.trace import Trace, TraceEvent

__all__ = [
    "CApi",
    "SisaSet",
    "batch",
    "c_api",
    "SisaContext",
    "SetGraph",
    "Trace",
    "TraceEvent",
]
