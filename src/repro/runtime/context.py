"""The SISA runtime context: functional execution plus timing simulation.

A :class:`SisaContext` is the entry point for running set-centric
algorithms.  It plays the role of the whole simulated machine:

* it holds the Set Metadata table and hands out logical set IDs,
* every set operation runs *functionally* (exact results, via
  ``repro.sets.kernels``) and is *costed* by the SCU dispatch model,
* costs land on the simulated thread lane of the currently running
  task (``repro.hw.engine``), giving deterministic parallel runtimes.

Execution modes (the three bars of the paper's Fig. 6):

* ``mode="sisa"``      — set ops offloaded to PIM (SISA-PUM/PNM),
* ``mode="cpu-set"``   — same set-centric algorithms, set ops executed
  by the host CPU model (the ``_set-based`` baseline),

The ``_non-set`` baselines do not use a SisaContext at all; they charge
a :class:`~repro.baselines.cpu_kernels.CpuCostModel` directly.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigError
from repro.hw.config import CpuConfig, HardwareConfig
from repro.hw.cost import Cost
from repro.hw.engine import EngineMark, EngineReport, ExecutionEngine
from repro.isa.metadata import SetMetadataTable
from repro.isa.opcodes import Opcode, SetOp
from repro.isa.scu import DispatchStats, Scu
from repro.runtime import batch as batchmod
from repro.runtime.trace import Trace, TraceEvent
from repro.sets import kernels
from repro.sets.base import VertexSet
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

MODES = ("sisa", "cpu-set")


@dataclass(frozen=True)
class ContextMark:
    """Run boundary on a long-lived context (see :meth:`SisaContext.mark`)."""

    engine: "EngineMark"
    stats: "DispatchStats"
    registrations: int


class SisaContext:
    """Simulated machine state for one algorithm run."""

    def __init__(
        self,
        *,
        threads: int = 32,
        mode: str = "sisa",
        hw: HardwareConfig | None = None,
        cpu: CpuConfig | None = None,
        gallop_threshold: float | None = None,
        smb_enabled: bool = True,
        trace: bool = False,
        decision_memo: dict | None = None,
        observability=None,
    ):
        if mode not in MODES:
            raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.hw = hw or HardwareConfig()
        self.cpu = cpu or CpuConfig()
        self.threads = threads
        self.scu = Scu(
            self.hw,
            host_fallback=(mode == "cpu-set"),
            cpu=self.cpu,
            gallop_threshold=gallop_threshold,
            smb_enabled=smb_enabled,
            decision_memo=decision_memo,
        )
        self.sm = SetMetadataTable()
        self.trace = Trace(enabled=trace)
        if mode == "sisa":
            # Bandwidth proportionality (Tesseract): each lane maps to a
            # vault whose full bandwidth it enjoys.
            lanes = min(threads, self.hw.num_vaults)
            bytes_per_cycle = self.hw.vault_bytes_per_cycle
            self.engine = ExecutionEngine(lanes, bytes_per_cycle)
        else:
            lanes = min(threads, self.cpu.max_threads)
            bytes_per_cycle = self.cpu.effective_bandwidth_bytes_per_cycle(lanes)
            self.engine = ExecutionEngine(lanes, bytes_per_cycle)
        self._current_lane = 0
        # Scan costs are pure functions of the set size; cache them so
        # the per-iteration model bookkeeping stays off the hot path.
        self._scan_costs: dict[int, Cost] = {}
        # Optional observability hub (repro.observability), shared with
        # the SCU.  Nullable and observation-only: kernel spans and
        # burst histograms are fed at batch granularity, after the
        # engine charge, from the same BatchDispatch components — so
        # enabling it cannot change modeled cycles or outputs.
        self.obs = observability
        self.scu.obs = observability

    # ------------------------------------------------------------------
    # Task scheduling
    # ------------------------------------------------------------------

    def begin_task(self) -> int:
        """Start a parallel task ("[in par]" loop body in the listings)."""
        self._current_lane = self.engine.begin_task()
        return self._current_lane

    @contextmanager
    def task(self) -> Iterator[int]:
        yield self.begin_task()

    @contextmanager
    def on_lane(self, lane: int) -> Iterator[int]:
        """Pin charging to an already-placed task's lane (fused burst
        execution: ops of a deferred unit must land where its
        ``begin_task`` placed it)."""
        prev = self._current_lane
        with self.engine.on_lane(lane):
            self._current_lane = lane
            try:
                yield lane
            finally:
                self._current_lane = prev

    # ------------------------------------------------------------------
    # Set lifecycle
    # ------------------------------------------------------------------

    def create_set(
        self,
        elements: Iterable[int] | np.ndarray = (),
        *,
        universe: int,
        dense: bool = False,
        sorted_: bool | None = None,
        charge: bool = True,
    ) -> int:
        """Create a set and return its logical set ID.

        ``dense=True`` requests a dense bitvector.  Auxiliary bitsets
        are honored on the ``cpu-set`` host baseline too (tuned CPU
        set-centric codes use std::bitset-style auxiliaries; the paper
        notes matching Eppstein's bound requires bitvector P and X) —
        what the host lacks is SISA's *neighborhood* DB representation
        and the PIM execution of the operations.
        """
        if dense:
            value: VertexSet = DenseBitvector.from_elements(
                np.asarray(list(elements) if not isinstance(elements, np.ndarray) else elements),
                universe,
            )
        else:
            value = SparseArray(
                np.asarray(list(elements) if not isinstance(elements, np.ndarray) else elements),
                universe,
                sorted_=sorted_,
            )
        return self.register(value, charge=charge)

    def register(self, value: VertexSet, *, charge: bool = True) -> int:
        """Register an existing set value; optionally charge allocation."""
        set_id = self.sm.register(value)
        if charge:
            dispatch = self.scu.dispatch_create(
                value.cardinality,
                dense=isinstance(value, DenseBitvector),
                universe=value.universe,
            )
            self.engine.charge(dispatch.cost)
        return set_id

    def free(self, set_id: int) -> None:
        dispatch = self.scu.dispatch_delete(self.sm.meta(set_id))
        self.engine.charge(dispatch.cost)
        self.sm.delete(set_id)

    def release(self, set_id: int) -> None:
        """Model-internal set teardown (graph unloading): drop the SM
        entry and invalidate any cached SMB entry without dispatching a
        DELETE instruction.  Counterpart of ``register(charge=False)``
        — used for structures whose setup was outside the measured
        region.  The SMB invalidation matters: freed IDs are recycled,
        and a stale SMB entry would turn a recycled set's first
        metadata fetch into a false hit."""
        self.scu.smb.invalidate(set_id)
        self.sm.delete(set_id)

    def clone(self, set_id: int) -> int:
        dispatch = self.scu.dispatch_clone(self.sm.meta(set_id))
        self.engine.charge(dispatch.cost)
        return self.sm.register(self.sm.value(set_id))

    def value(self, set_id: int) -> VertexSet:
        """Raw set value (model-internal; charges nothing)."""
        return self.sm.value(set_id)

    # ------------------------------------------------------------------
    # Binary operations
    # ------------------------------------------------------------------

    def _binary(self, op: SetOp, a: int, b: int) -> VertexSet:
        """Materializing binary op: exact result plus modeled cost."""
        va, vb = self.sm.value(a), self.sm.value(b)
        if op is SetOp.INTERSECT:
            result = kernels.intersect(va, vb)
        elif op is SetOp.UNION:
            result = kernels.union(va, vb)
        else:
            result = kernels.difference(va, vb)
        dispatch = self.scu.dispatch_binary(
            op,
            self.sm.meta(a),
            self.sm.meta(b),
            output_size=result.cardinality,
            count_only=False,
        )
        self.engine.charge(dispatch.cost)
        if self.trace.enabled:
            self.trace.record(
                TraceEvent(
                    opcode=dispatch.opcode,
                    lane=self._current_lane,
                    size_a=va.cardinality,
                    size_b=vb.cardinality,
                    output_size=result.cardinality,
                    backend=dispatch.backend,
                    variant=dispatch.variant,
                )
            )
        return result

    def _count(self, op: SetOp, a: int, b: int) -> int:
        """Count-form binary op (§6.2.3): the result cardinality is
        computed by the zero-materialization kernels — no result set is
        allocated for any representation pair."""
        va, vb = self.sm.value(a), self.sm.value(b)
        if op is SetOp.INTERSECT_COUNT:
            card = kernels.intersect_cardinality(va, vb)
        elif op is SetOp.UNION_COUNT:
            card = kernels.union_cardinality(va, vb)
        else:
            card = kernels.difference_cardinality(va, vb)
        dispatch = self.scu.dispatch_binary(
            op,
            self.sm.meta(a),
            self.sm.meta(b),
            output_size=0,
            count_only=True,
        )
        self.engine.charge(dispatch.cost)
        if self.trace.enabled:
            self.trace.record(
                TraceEvent(
                    opcode=dispatch.opcode,
                    lane=self._current_lane,
                    size_a=va.cardinality,
                    size_b=vb.cardinality,
                    output_size=card,
                    backend=dispatch.backend,
                    variant=dispatch.variant,
                )
            )
        return card

    def intersect(self, a: int, b: int) -> int:
        return self.sm.register(self._binary(SetOp.INTERSECT, a, b))

    def union(self, a: int, b: int) -> int:
        return self.sm.register(self._binary(SetOp.UNION, a, b))

    def difference(self, a: int, b: int) -> int:
        return self.sm.register(self._binary(SetOp.DIFFERENCE, a, b))

    def intersect_count(self, a: int, b: int) -> int:
        return self._count(SetOp.INTERSECT_COUNT, a, b)

    def union_count(self, a: int, b: int) -> int:
        return self._count(SetOp.UNION_COUNT, a, b)

    def difference_count(self, a: int, b: int) -> int:
        return self._count(SetOp.DIFFERENCE_COUNT, a, b)

    # ------------------------------------------------------------------
    # Batched count operations (amortized dispatch over a frontier)
    # ------------------------------------------------------------------

    def _count_batch(
        self, op: SetOp, kind: str, a: int, bs, *, inter=None
    ) -> np.ndarray:
        """Count-form ``a op b_i`` for a whole frontier ``bs``.

        Functionally one vectorized kernel over the concatenated
        operand arrays (see :mod:`repro.runtime.batch`); timing-wise an
        amortized SCU dispatch whose per-op costs, stats and SMB
        behaviour — and therefore simulated cycles — are identical to
        issuing the ops sequentially on the current task's lane.

        ``inter`` supplies the per-operand intersection cardinalities
        precomputed elsewhere (the shard-parallel workers of
        :mod:`repro.parallel` merge per-shard partials into exactly the
        array :func:`repro.runtime.batch.intersect_counts` would have
        produced); the functional kernel is then skipped while the SCU
        dispatch, engine charge, SMB trajectory and trace are issued
        unchanged — the simulated machine cannot tell who computed the
        counts.
        """
        sm = self.sm
        n = len(bs)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        obs = self.obs
        span = obs.kernel_start(f"{kind}_count", n) if obs is not None else None
        va = sm.value(a)
        metas = sm.metas_of(bs)
        if inter is None:
            values = sm.values_of(bs)
            inter = batchmod.intersect_counts(va, values)
        if kind == "intersect":
            counts = inter
        else:
            cards = np.fromiter((m.cardinality for m in metas), np.int64, n)
            counts = batchmod.derive_counts(kind, va.cardinality, cards, inter)
        bd = self.scu.dispatch_binary_batch(op, sm.meta(a), metas, count_only=True)
        self.engine.charge_batch(bd.compute, bd.memory, bd.latency)
        if obs is not None:
            obs.kernel_end(
                span,
                sum(bd.compute)
                + sum(bd.latency)
                + sum(bd.memory) / self.engine.bytes_per_cycle,
                va.cardinality,
                (m.cardinality for m in metas),
            )
        if self.trace.enabled:
            size_a = va.cardinality
            lane = self._current_lane
            for i, meta in enumerate(metas):
                self.trace.record(
                    TraceEvent(
                        opcode=bd.opcodes[i],
                        lane=lane,
                        size_a=size_a,
                        size_b=meta.cardinality,
                        output_size=int(counts[i]),
                        backend=bd.backends[i],
                        variant=bd.variants[i],
                    )
                )
        return counts

    def intersect_batch(self, a: int, bs) -> list[int]:
        """Materializing batched intersection ``A ∩ B_i`` over a
        frontier: returns one new set id per operand.

        Functionally one vectorized probe pass (results are zero-copy
        slices of the flattened hit array); the modeled cost, stats and
        SMB behaviour are identical to issuing the ``intersect`` ops
        sequentially (results are registered after the dispatch phase,
        which charges nothing and touches no modeled state)."""
        return self._materialize_batch(
            SetOp.INTERSECT, a, batchmod.intersect_values, bs
        )

    def _materialize_batch(self, op: SetOp, a: int, values_fn, bs) -> list[int]:
        """Shared implementation of the materializing batched fan-outs:
        results from one functional batch kernel, one amortized dispatch
        whose per-op costs/stats/SMB trajectory — and thus simulated
        cycles — are identical to the sequential per-op stream."""
        if not len(bs):
            return []
        sm = self.sm
        obs = self.obs
        span = (
            obs.kernel_start(f"{op.name.lower()}_batch", len(bs))
            if obs is not None
            else None
        )
        va = sm.value(a)
        values = sm.values_of(bs)
        metas = sm.metas_of(bs)
        results = values_fn(va, values)
        output_sizes = [r.cardinality for r in results]
        bd = self.scu.dispatch_binary_batch(
            op,
            sm.meta(a),
            metas,
            output_sizes=output_sizes,
            count_only=False,
        )
        self.engine.charge_batch(bd.compute, bd.memory, bd.latency)
        if obs is not None:
            obs.kernel_end(
                span,
                sum(bd.compute)
                + sum(bd.latency)
                + sum(bd.memory) / self.engine.bytes_per_cycle,
                va.cardinality,
                (m.cardinality for m in metas),
            )
        if self.trace.enabled:
            size_a = va.cardinality
            lane = self._current_lane
            for i, meta in enumerate(metas):
                self.trace.record(
                    TraceEvent(
                        opcode=bd.opcodes[i],
                        lane=lane,
                        size_a=size_a,
                        size_b=meta.cardinality,
                        output_size=output_sizes[i],
                        backend=bd.backends[i],
                        variant=bd.variants[i],
                    )
                )
        register = sm.register
        return [register(r) for r in results]

    def union_batch(self, a: int, bs) -> list[int]:
        """Materializing batched union ``A ∪ B_i`` over a frontier:
        one new set id per operand, cycle-identical to the sequential
        ``union`` stream (same dispatch path as :meth:`intersect_batch`)."""
        return self._materialize_batch(SetOp.UNION, a, batchmod.union_values, bs)

    def difference_batch(self, a: int, bs) -> list[int]:
        """Materializing batched difference ``A \\ B_i`` over a
        frontier, cycle-identical to the sequential ``difference``
        stream."""
        return self._materialize_batch(
            SetOp.DIFFERENCE, a, batchmod.difference_values, bs
        )

    def intersect_count_batch(self, a: int, bs, *, inter=None) -> np.ndarray:
        """``|A ∩ B_i|`` for every set id in ``bs`` (one batched
        instruction burst; no result sets are materialized)."""
        return self._count_batch(
            SetOp.INTERSECT_COUNT, "intersect", a, bs, inter=inter
        )

    def union_count_batch(self, a: int, bs, *, inter=None) -> np.ndarray:
        """``|A ∪ B_i|`` for every set id in ``bs``."""
        return self._count_batch(SetOp.UNION_COUNT, "union", a, bs, inter=inter)

    def difference_count_batch(self, a: int, bs, *, inter=None) -> np.ndarray:
        """``|A \\ B_i|`` for every set id in ``bs``."""
        return self._count_batch(
            SetOp.DIFFERENCE_COUNT, "difference", a, bs, inter=inter
        )

    _FUSED_OPS = {
        "intersect": SetOp.INTERSECT_COUNT,
        "union": SetOp.UNION_COUNT,
        "difference": SetOp.DIFFERENCE_COUNT,
    }

    def fused_count_burst(
        self, a: int, bs, *, kind: str = "intersect", include_decode: bool = False
    ) -> np.ndarray:
        """One constituent burst of a fused cross-task count macro.

        Functionally identical to the ``*_count_batch`` fan-outs;
        charged to the *current* lane under the fused-dispatch rule of
        :meth:`repro.isa.scu.Scu.dispatch_binary_fused` (one macro
        decode per fused group, one probe-metadata lookup per
        constituent).  Plan executors wrap each constituent in
        :meth:`on_lane` so the charges land on the lane the unit's task
        was placed on.
        """
        op = self._FUSED_OPS[kind]
        sm = self.sm
        n = len(bs)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        obs = self.obs
        span = obs.kernel_start(f"fused_{kind}", n) if obs is not None else None
        va = sm.value(a)
        values = sm.values_of(bs)
        metas = sm.metas_of(bs)
        inter = batchmod.intersect_counts(va, values)
        if kind == "intersect":
            counts = inter
        else:
            cards = np.fromiter((m.cardinality for m in metas), np.int64, n)
            counts = batchmod.derive_counts(kind, va.cardinality, cards, inter)
        bd = self.scu.dispatch_binary_fused(
            op, sm.meta(a), metas, count_only=True, include_decode=include_decode
        )
        self.engine.charge_batch(bd.compute, bd.memory, bd.latency)
        if obs is not None:
            obs.kernel_end(
                span,
                sum(bd.compute)
                + sum(bd.latency)
                + sum(bd.memory) / self.engine.bytes_per_cycle,
                va.cardinality,
                (m.cardinality for m in metas),
            )
        if self.trace.enabled:
            size_a = va.cardinality
            lane = self._current_lane
            for i, meta in enumerate(metas):
                self.trace.record(
                    TraceEvent(
                        opcode=bd.opcodes[i],
                        lane=lane,
                        size_a=size_a,
                        size_b=meta.cardinality,
                        output_size=int(counts[i]),
                        backend=bd.backends[i],
                        variant=bd.variants[i],
                    )
                )
        return counts

    def intersect_many(self, *set_ids: int) -> int:
        """CISC-style multi-set intersection ``A1 ∩ ... ∩ Al`` in one
        instruction (paper Section 11's proposed extension).

        Functionally it folds pairwise intersections smallest-first;
        its timing advantage over a chain of binary instructions is a
        single dispatch/metadata phase and no write-back of the
        intermediate results (they stay in the accelerator).
        """
        if len(set_ids) < 2:
            raise ConfigError("intersect_many needs at least two sets")
        from repro.isa.metadata import SetMeta

        ordered = sorted(set_ids, key=lambda sid: self.sm.meta(sid).cardinality)
        values = [self.sm.value(sid) for sid in ordered]
        result = values[0]
        total_cost = Cost()
        sizes_trace = []
        for sid, value in zip(ordered[1:], values[1:]):
            # The running intermediate stays inside the accelerator; it
            # is described by an ephemeral metadata record, not an SM
            # entry.
            running_meta = SetMeta(
                set_id=ordered[0],
                representation=result.representation,
                cardinality=result.cardinality,
                universe=result.universe,
                address=0,
            )
            inter = kernels.intersect(result, value)
            # Chain step cost: the binary-op cost without the output
            # write (output_size=0), since the intermediate never
            # leaves the accelerator.
            step = self.scu.dispatch_binary(
                SetOp.INTERSECT,
                running_meta,
                self.sm.meta(sid),
                output_size=0,
                count_only=False,
            )
            sizes_trace.append((result.cardinality, value.cardinality))
            result = inter
            total_cost += step.cost
        # One final output write.
        total_cost += Cost(
            memory_bytes=result.cardinality * self.hw.word_bits / 8
        )
        self.engine.charge(total_cost)
        if self.trace.enabled:
            self.trace.record(
                TraceEvent(
                    opcode=Opcode.INTERSECT_MANY,
                    lane=self._current_lane,
                    size_a=sizes_trace[0][0] if sizes_trace else 0,
                    size_b=sizes_trace[0][1] if sizes_trace else 0,
                    output_size=result.cardinality,
                    backend="pim",
                    variant="chained",
                )
            )
        return self.sm.register(result)

    # In-place variants ("∩=", "∪=", "\\=" in the listings).

    def intersect_into(self, a: int, b: int) -> None:
        self.sm.update(a, self._binary(SetOp.INTERSECT, a, b))

    def union_into(self, a: int, b: int) -> None:
        self.sm.update(a, self._binary(SetOp.UNION, a, b))

    def difference_into(self, a: int, b: int) -> None:
        self.sm.update(a, self._binary(SetOp.DIFFERENCE, a, b))

    # ------------------------------------------------------------------
    # Scalar / element operations
    # ------------------------------------------------------------------

    def cardinality(self, set_id: int) -> int:
        dispatch = self.scu.dispatch_cardinality(self.sm.meta(set_id))
        self.engine.charge(dispatch.cost)
        return self.sm.meta(set_id).cardinality

    def member(self, set_id: int, x: int) -> bool:
        dispatch = self.scu.dispatch_member(self.sm.meta(set_id))
        self.engine.charge(dispatch.cost)
        return self.sm.value(set_id).contains(x)

    def insert(self, set_id: int, x: int) -> None:
        """``A ∪= {x}`` (Table 5 opcode 0x5 for DBs)."""
        dispatch = self.scu.dispatch_element_update(
            self.sm.meta(set_id), insert=True
        )
        self.engine.charge(dispatch.cost)
        value = self.sm.value(set_id)
        self.sm.update(set_id, value.with_element(x))

    def remove(self, set_id: int, x: int) -> None:
        """``A \\= {x}`` (Table 5 opcode 0x6 for DBs)."""
        dispatch = self.scu.dispatch_element_update(
            self.sm.meta(set_id), insert=False
        )
        self.engine.charge(dispatch.cost)
        value = self.sm.value(set_id)
        self.sm.update(set_id, value.without_element(x))

    # ------------------------------------------------------------------
    # Batched element updates (amortized dispatch over an update burst)
    # ------------------------------------------------------------------

    def _element_update_batch(self, updates, *, insert: bool) -> np.ndarray:
        """Apply ``(set_id, x)`` element updates as one dispatch burst.

        Functionally each target set is rewritten once by a bulk
        ``with_elements``/``without_elements`` merge; timing-wise the
        SCU dispatches one element-update instruction per requested
        update, in stream order, each observing the cardinality the
        equivalent sequential ``insert``/``remove`` stream would have
        seen (no-op updates — element already present/absent — still
        dispatch and pay, exactly like the scalar path).  Returns a
        bool array marking which updates took effect (the changed-bit
        an update instruction reports back).
        """
        n = len(updates)
        if n == 0:
            return np.zeros(0, dtype=bool)
        obs = self.obs
        span = (
            obs.kernel_start("insert" if insert else "remove", n)
            if obs is not None
            else None
        )
        sm = self.sm
        # Group updates per target set, remembering stream positions.
        groups: dict[int, list[tuple[int, int]]] = {}
        for pos, (set_id, x) in enumerate(updates):
            groups.setdefault(int(set_id), []).append((pos, int(x)))
        metas = [sm.meta(int(set_id)) for set_id, _ in updates]
        cards = [0] * n
        effective = np.zeros(n, dtype=bool)
        new_values: list[tuple[int, VertexSet]] = []
        for set_id, items in groups.items():
            value = sm.value(set_id)
            xs = np.asarray([x for _, x in items], dtype=np.int64)
            present = value.contains_many(xs)
            card = value.cardinality
            applied: set[int] = set()
            changed: list[int] = []
            for (pos, x), was_present in zip(items, present):
                cards[pos] = card
                takes_effect = (
                    (not was_present and x not in applied)
                    if insert
                    else (was_present and x not in applied)
                )
                if takes_effect:
                    applied.add(x)
                    changed.append(x)
                    card += 1 if insert else -1
                    effective[pos] = True
            if changed:
                arr = np.asarray(changed, dtype=np.int64)
                new_values.append(
                    (set_id, value.with_elements(arr) if insert else value.without_elements(arr))
                )
        bd = self.scu.dispatch_element_update_batch(metas, cards, insert=insert)
        self.engine.charge_batch(bd.compute, bd.memory, bd.latency)
        if obs is not None:
            obs.kernel_end(
                span,
                sum(bd.compute)
                + sum(bd.latency)
                + sum(bd.memory) / self.engine.bytes_per_cycle,
                None,
                cards,
            )
        for set_id, value in new_values:
            sm.update(set_id, value)
        return effective

    def insert_batch(self, updates) -> np.ndarray:
        """Batched ``A_i ∪= {x_i}`` for ``(set_id, x)`` pairs: one
        amortized dispatch burst, cycle-identical to the sequential
        ``insert`` stream."""
        return self._element_update_batch(updates, insert=True)

    def remove_batch(self, updates) -> np.ndarray:
        """Batched ``A_i \\= {x_i}`` for ``(set_id, x)`` pairs."""
        return self._element_update_batch(updates, insert=False)

    def convert_representation(self, set_id: int, *, dense: bool) -> bool:
        """Re-materialize a set in the other representation (SA ↔ DB).

        The paper fixes representations at program start (Section 6.1);
        a streaming workload re-decides them as neighborhoods grow or
        shrink across the density threshold.  Modeled as one streaming
        read of the old representation plus a CREATE of the new one;
        the logical set id (and its SM entry) is preserved.  Returns
        True when a conversion actually happened.
        """
        value = self.sm.value(set_id)
        if isinstance(value, DenseBitvector) == dense:
            return False
        size = value.cardinality
        cost = self._scan_costs.get(size)
        if cost is None:
            if self.mode == "cpu-set":
                cost = self.scu.cpu.neighborhood_scan(size)
            else:
                cost = self.scu.pnm.scan(size)
            self._scan_costs[size] = cost
        self.engine.charge(cost)
        dispatch = self.scu.dispatch_create(
            size, dense=dense, universe=value.universe
        )
        self.engine.charge(dispatch.cost)
        arr = value.to_array()
        new_value: VertexSet
        if dense:
            new_value = DenseBitvector.from_elements(arr, value.universe)
        else:
            new_value = SparseArray.from_sorted(arr, value.universe)
        self.sm.update(set_id, new_value)
        return True

    def elements(self, set_id: int) -> np.ndarray:
        """Iterate a set (the software layer's set iterator): streams
        the set out of memory once."""
        value = self.sm.value(set_id)
        size = value.cardinality
        cost = self._scan_costs.get(size)
        if cost is None:
            if self.mode == "cpu-set":
                cost = self.scu.cpu.neighborhood_scan(size)
            else:
                cost = self.scu.pnm.scan(size)
            self._scan_costs[size] = cost
        self.engine.charge(cost)
        return value.to_array()

    def is_empty(self, set_id: int) -> bool:
        return self.cardinality(set_id) == 0

    # ------------------------------------------------------------------
    # Host-side (non-SISA) work
    # ------------------------------------------------------------------

    def charge_host(self, cost: Cost) -> None:
        """Charge non-SISA instruction work (loop control, scoring, ...)."""
        self.engine.charge(cost)

    def charge_host_ops(self, operations: float) -> None:
        self.engine.charge(Cost(compute_cycles=operations))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def mark(self) -> "ContextMark":
        """Snapshot engine + SCU + SM state (start of a run).

        The session API brackets each ``run`` with a mark so a
        long-lived context can still report per-run cycles, instruction
        stats and set registrations.  On a fresh context the deltas are
        bit-identical to the absolute report.
        """
        return ContextMark(
            engine=self.engine.mark(),
            stats=self.scu.stats.snapshot(),
            registrations=self.sm.registrations,
        )

    def report_since(self, mark: "ContextMark") -> EngineReport:
        return self.engine.report_since(mark.engine)

    def stats_since(self, mark: "ContextMark"):
        return self.scu.stats.since(mark.stats)

    def registrations_since(self, mark: "ContextMark") -> int:
        return self.sm.registrations - mark.registrations

    def report(self) -> EngineReport:
        return self.engine.report()

    @property
    def runtime_cycles(self) -> float:
        return self.engine.runtime_cycles

    @property
    def instruction_count(self) -> int:
        return self.scu.stats.instructions

    def opcode_counts(self) -> dict[Opcode, int]:
        return dict(self.scu.stats.by_opcode)
