"""SetGraph: a graph whose neighborhoods are SISA sets.

Implements the paper's predefined graph structure (Section 6.1): when a
SISA program starts, small neighborhoods are created as sparse arrays
and large ones as dense bitvectors.  Two selection policies are
provided:

* ``policy="fraction"`` — the largest ``t`` fraction of neighborhoods
  become DBs (the evaluation's phrasing: "40% of neighborhoods are
  stored as DBs", and Fig. 7b's x-axis "% of neighborhoods kept as
  DBs");
* ``policy="threshold"`` — ``N(v)`` becomes a DB iff ``|N(v)| >= t*n``
  (Section 6.1's formula).

Either way, DBs are admitted in decreasing degree order while the extra
storage stays within ``budget`` (default 10%) of the all-SA footprint,
matching the paper's storage-budget rule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph
from repro.runtime.context import SisaContext
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray


class SetGraph:
    """Neighborhood sets registered in a :class:`SisaContext`."""

    def __init__(
        self,
        ctx: SisaContext,
        neighborhoods: list[np.ndarray],
        universe: int,
        *,
        t: float = 0.4,
        budget: float = 0.1,
        policy: str = "fraction",
    ):
        if not 0.0 <= t <= 1.0:
            raise ConfigError("t must be in [0, 1]")
        if budget < 0.0:
            raise ConfigError("budget must be non-negative")
        if policy not in ("fraction", "threshold"):
            raise ConfigError("policy must be 'fraction' or 'threshold'")
        self.ctx = ctx
        self.universe = universe
        self.t = t
        self.budget = budget
        self.policy = policy
        self._set_ids: list[int] = []
        self._dense_mask = self._choose_dense(neighborhoods)
        for v, nbrs in enumerate(neighborhoods):
            if self._dense_mask[v]:
                value = DenseBitvector.from_elements(nbrs, universe)
            else:
                value = SparseArray.from_sorted(
                    np.asarray(nbrs, dtype=np.int64), universe
                )
            # Neighborhood materialization is graph loading, not part of
            # the measured region: register without charging.
            self._set_ids.append(ctx.register(value, charge=False))

    # ------------------------------------------------------------------

    def _choose_dense(self, neighborhoods: list[np.ndarray]) -> np.ndarray:
        degrees = np.asarray([len(nbrs) for nbrs in neighborhoods], dtype=np.int64)
        count = degrees.size
        dense = np.zeros(count, dtype=bool)
        # The dense-bitvector representation is a SISA feature enabled
        # by in-situ PIM; the host `_set-based` baseline stores every
        # neighborhood as a sorted array, as tuned CPU set-centric
        # codes do.
        if count == 0 or self.t == 0.0 or self.ctx.mode == "cpu-set":
            return dense
        word_bits = self.ctx.hw.word_bits
        sa_total_bits = int(word_bits * degrees.sum())
        budget_bits = self.budget * sa_total_bits
        order = np.argsort(-degrees, kind="stable")
        if self.policy == "fraction":
            candidates = order[: int(round(self.t * count))]
        else:
            candidates = order[degrees[order] >= self.t * self.universe]
        extra = 0.0
        for v in candidates:
            delta = max(0, self.universe - word_bits * int(degrees[v]))
            if extra + delta > budget_bits:
                # Budget exhausted: skip DBs that need extra storage
                # (paper: "above a certain number of DBs, SISA starts
                # to use SAs only").  DBs no larger than their SA are
                # always admitted (delta == 0).
                if delta > 0:
                    continue
            dense[v] = True
            extra += delta
        return dense

    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: CSRGraph,
        ctx: SisaContext,
        *,
        t: float = 0.4,
        budget: float = 0.1,
        policy: str = "fraction",
    ) -> "SetGraph":
        neighborhoods = [graph.neighbors(v) for v in range(graph.num_vertices)]
        return cls(
            ctx,
            neighborhoods,
            graph.num_vertices,
            t=t,
            budget=budget,
            policy=policy,
        )

    @classmethod
    def from_digraph(
        cls,
        digraph: DiGraph,
        ctx: SisaContext,
        *,
        t: float = 0.4,
        budget: float = 0.1,
        policy: str = "fraction",
    ) -> "SetGraph":
        neighborhoods = [
            digraph.out_neighbors(v) for v in range(digraph.num_vertices)
        ]
        return cls(
            ctx,
            neighborhoods,
            digraph.num_vertices,
            t=t,
            budget=budget,
            policy=policy,
        )

    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._set_ids)

    def neighborhood(self, v: int) -> int:
        """Set ID of ``N(v)`` (or ``N+(v)`` for oriented SetGraphs)."""
        return self._set_ids[v]

    @property
    def set_ids(self) -> list[int]:
        """Per-vertex neighborhood set IDs (``repro.streaming`` mutates
        the underlying sets through these)."""
        return self._set_ids

    def degree(self, v: int) -> int:
        return self.ctx.sm.meta(self._set_ids[v]).cardinality

    def neighborhood_counts(self, u: int, vs) -> np.ndarray:
        """Batched fan-out ``|N(u) ∩ N(v)|`` for every vertex in ``vs``.

        One batched count instruction burst (see
        :meth:`repro.runtime.context.SisaContext.intersect_count_batch`):
        N(u)'s metadata is fetched once and the whole frontier is
        counted by one vectorized kernel, at the exact modeled cost of
        the equivalent sequential ``intersect_count`` stream."""
        ids = self._set_ids
        if isinstance(vs, np.ndarray):
            vs = vs.tolist()
        return self.ctx.intersect_count_batch(ids[u], [ids[v] for v in vs])

    @property
    def dense_mask(self) -> np.ndarray:
        return self._dense_mask

    @property
    def num_dense(self) -> int:
        return int(self._dense_mask.sum())

    @property
    def dense_fraction(self) -> float:
        return self.num_dense / self.num_vertices if self.num_vertices else 0.0

    @property
    def storage_bits(self) -> int:
        return sum(
            self.ctx.value(set_id).storage_bits for set_id in self._set_ids
        )
