"""Batched set-instruction execution: the functional fan-out kernels.

This module implements the *functional* half of SISA's batched
count-form instructions.  It maps to the paper's Section 6.2.3:
cardinality-of-result instruction variants (``|A ∩ B|``, ``|A ∪ B|``,
``|A \\ B|``) exist precisely so graph-mining kernels never materialize
intermediate sets.  Graph algorithms issue these instructions in dense
bursts — one probe set ``A`` (a neighborhood or a running candidate
set) against a whole frontier ``B_1 .. B_k`` — so the runtime exposes a
batched form (:meth:`repro.runtime.context.SisaContext.intersect_count_batch`
and friends) that:

* fetches operand values/metadata once per frontier,
* runs ONE vectorized kernel over the concatenated (CSR-style) element
  arrays of all sparse operands instead of ``k`` per-op kernel
  launches (:func:`repro.sets.kernels.intersect_count_flat_sa` /
  ``intersect_count_flat_db``),
* charges the SCU the aggregate of the per-op model costs through
  :meth:`repro.isa.scu.Scu.dispatch_binary_batch`, preserving per-op
  stats, SMB behaviour and bit-identical simulated cycles.

Only interpreter overhead is amortized; the modeled hardware cost of a
batch equals that of the equivalent sequential instruction stream.

Union and difference counts are derived from the intersection counts
by the identities ``|A ∪ B| = |A| + |B| - |A ∩ B|`` and
``|A \\ B| = |A| - |A ∩ B|`` — the same identities the scalar
cardinality kernels use, so results match exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SetError
from repro.sets import kernels
from repro.sets.base import VertexSet
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray


def intersect_counts(a: VertexSet, values: Sequence[VertexSet]) -> np.ndarray:
    """``|A ∩ B_i|`` for every ``B_i``, with zero materialization.

    Sparse operands are concatenated into one flat frontier array and
    counted in a single vectorized pass; dense operands are counted by
    per-set popcounts/bit probes (their words are already contiguous).
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if n == 1:
        v = values[0]
        if v.universe != a.universe:
            raise SetError(f"universe mismatch: {a.universe} vs {v.universe}")
        return np.asarray([kernels.intersect_cardinality(a, v)], dtype=np.int64)
    universe = a.universe
    sa_idx: list[int] = []
    sa_arrays: list[np.ndarray] = []
    db_pairs: list[tuple[int, DenseBitvector]] = []
    boundaries = [0]
    total = 0
    for i, v in enumerate(values):
        if v.universe != universe:
            raise SetError(f"universe mismatch: {universe} vs {v.universe}")
        if type(v) is SparseArray:
            arr = v.elements
            total += arr.size
            boundaries.append(total)
            sa_idx.append(i)
            sa_arrays.append(arr)
        else:
            db_pairs.append((i, v))
    if not db_pairs and type(a) is SparseArray:
        # Hot path (all-SA frontier, SA probe): skip the scatter back
        # through an index list.
        flat = np.concatenate(sa_arrays)
        return kernels.intersect_count_flat_sa(
            a.to_array(), flat, np.asarray(boundaries)
        )
    out = np.zeros(n, dtype=np.int64)
    if sa_idx:
        flat = np.concatenate(sa_arrays)
        offsets = np.asarray(boundaries)
        if isinstance(a, DenseBitvector):
            out[sa_idx] = kernels.intersect_count_flat_db(a.words, flat, offsets)
        else:
            out[sa_idx] = kernels.intersect_count_flat_sa(
                a.to_array(), flat, offsets
            )
    if db_pairs:
        if isinstance(a, DenseBitvector):
            for i, v in db_pairs:
                out[i] = kernels.intersect_count_db_db(a, v)
        else:
            arr = a.elements
            if arr.size:
                word_idx = arr // 64
                shift = (arr % 64).astype(np.uint64)
                one = np.uint64(1)
                for i, v in db_pairs:
                    out[i] = int(
                        np.count_nonzero((v.words[word_idx] >> shift) & one)
                    )
    return out


def intersect_values(a: VertexSet, values: Sequence[VertexSet]) -> list[VertexSet]:
    """Materializing batched intersection ``A ∩ B_i`` for every ``B_i``.

    Sparse operands are probed against ``A`` in one vectorized pass;
    each result is a zero-copy slice of the single flattened hit array
    (segment hits preserve the segment's sorted order, so the slices
    are valid sorted SAs as-is).  Dense operands fall back to the
    pairwise kernels — their results stay dense and word-contiguous.
    """
    n = len(values)
    results: list[VertexSet | None] = [None] * n
    if n == 0:
        return []  # type: ignore[return-value]
    universe = a.universe
    sa_idx: list[int] = []
    sa_arrays: list[np.ndarray] = []
    boundaries = [0]
    total = 0
    for i, v in enumerate(values):
        if v.universe != universe:
            raise SetError(f"universe mismatch: {universe} vs {v.universe}")
        if type(v) is SparseArray:
            # Segment hits inherit the segment's order; materialized
            # results must be sorted SAs, so unsorted operands are
            # probed via their sorted view.
            arr = v.elements if v.is_sorted else v.to_array()
            total += arr.size
            boundaries.append(total)
            sa_idx.append(i)
            sa_arrays.append(arr)
        else:
            results[i] = kernels.intersect(a, v)
    if sa_idx:
        flat = np.concatenate(sa_arrays)
        offsets = np.asarray(boundaries)
        if isinstance(a, DenseBitvector):
            mask = kernels._probe_bits(a.words, flat) if flat.size else np.zeros(0, bool)
        else:
            mask = kernels._probe_sorted(a.to_array(), flat)
        hits = flat[mask]
        cum = np.zeros(mask.size + 1, dtype=np.int64)
        np.cumsum(mask, dtype=np.int64, out=cum[1:])
        starts = cum[offsets[:-1]]
        ends = cum[offsets[1:]]
        for j, i in enumerate(sa_idx):
            results[i] = SparseArray.from_sorted(
                hits[starts[j]:ends[j]], universe
            )
    return results  # type: ignore[return-value]


def union_values(a: VertexSet, values: Sequence[VertexSet]) -> list[VertexSet]:
    """Materializing batched union ``A ∪ B_i`` for every ``B_i``.

    All-sparse frontiers run as one flat probe pass (which elements of
    each ``B_i`` are new w.r.t. ``A``) followed by a per-segment
    disjoint merge with ``A``'s sorted array — representation for
    representation the same results as :func:`repro.sets.kernels.union`
    per pair; dense operands fall back to the pairwise kernels (their
    results stay dense).
    """
    n = len(values)
    if n == 0:
        return []
    universe = a.universe
    results: list[VertexSet | None] = [None] * n
    sa_idx: list[int] = []
    sa_arrays: list[np.ndarray] = []
    boundaries = [0]
    total = 0
    for i, v in enumerate(values):
        if v.universe != universe:
            raise SetError(f"universe mismatch: {universe} vs {v.universe}")
        if type(v) is SparseArray and type(a) is SparseArray:
            arr = v.elements if v.is_sorted else v.to_array()
            total += arr.size
            boundaries.append(total)
            sa_idx.append(i)
            sa_arrays.append(arr)
        else:
            results[i] = kernels.union(a, v)
    if sa_idx:
        arr_a = a.to_array()
        flat = np.concatenate(sa_arrays)
        offsets = np.asarray(boundaries)
        mask = kernels._probe_sorted(arr_a, flat)
        for j, i in enumerate(sa_idx):
            seg = flat[offsets[j]:offsets[j + 1]]
            new = seg[~mask[offsets[j]:offsets[j + 1]]]
            results[i] = SparseArray.from_sorted(
                kernels._merge_sorted_disjoint(arr_a, new), universe
            )
    return results  # type: ignore[return-value]


def difference_values(a: VertexSet, values: Sequence[VertexSet]) -> list[VertexSet]:
    """Materializing batched difference ``A \\ B_i`` for every ``B_i``.

    The probe direction is per-operand (``A``'s elements against each
    ``B_i``), so there is no shared flat pass; the batch amortizes the
    dispatch/metadata phase while each result comes from the same
    pairwise kernel the scalar stream runs.
    """
    results: list[VertexSet] = []
    universe = a.universe
    for v in values:
        if v.universe != universe:
            raise SetError(f"universe mismatch: {universe} vs {v.universe}")
        results.append(kernels.difference(a, v))
    return results


def derive_counts(
    op_kind: str,
    a_cardinality: int,
    b_cardinalities: np.ndarray,
    inter: np.ndarray,
) -> np.ndarray:
    """Turn intersection counts into the requested count form."""
    if op_kind == "intersect":
        return inter
    if op_kind == "union":
        return a_cardinality + b_cardinalities - inter
    if op_kind == "difference":
        return a_cardinality - inter
    raise SetError(f"unknown count form {op_kind!r}")
