"""Shared plumbing for set-centric algorithm implementations.

Every algorithm in this package follows the same contract:

* it consumes a :class:`~repro.runtime.context.SisaContext` plus one or
  two :class:`~repro.runtime.setgraph.SetGraph` views of the input,
* it produces its functional output (counts, cliques, orders, ...) and
  leaves the timing in the context's engine,
* long-running pattern searches accept a *pattern cutoff*, mirroring
  the paper's methodology for long simulations ("we usually also
  pre-specify a number of graph patterns to be found", Section 9.1).

The per-call entry points (``triangle_count(graph, ...)`` and friends)
are deprecated shims over the session API
(:class:`~repro.session.session.SisaSession`): each builds a cold
session, runs the registered workload once, and repackages the result
as the legacy :class:`AlgorithmRun` — a cold session issues exactly the
pre-session instruction stream, so the shims are cycle-identical to the
code they replaced.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable

from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.orientation import degeneracy_order
from repro.hw.config import CpuConfig, HardwareConfig
from repro.hw.engine import EngineReport
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph
from repro.session import ExecutionConfig, RunResult, SisaSession


class PatternBudget:
    """Counts found patterns and signals when the cutoff is reached."""

    def __init__(self, limit: int | None = None):
        self.limit = limit
        self.found = 0

    def count(self, amount: int = 1) -> None:
        self.found += amount

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.found >= self.limit


@dataclass
class AlgorithmRun:
    """Functional output plus the simulated timing of one run.

    Superseded by :class:`~repro.session.result.RunResult`; kept as the
    return type of the deprecated one-shot shims.
    """

    output: Any
    report: EngineReport
    context: SisaContext

    @property
    def runtime_cycles(self) -> float:
        return self.report.runtime_cycles

    @property
    def runtime_mcycles(self) -> float:
        """Millions of cycles — the unit of the paper's Fig. 6 y-axis."""
        return self.report.runtime_cycles / 1e6


def make_context(
    *,
    threads: int = 32,
    mode: str = "sisa",
    hw: HardwareConfig | None = None,
    cpu: CpuConfig | None = None,
    gallop_threshold: float | None = None,
    smb_enabled: bool = True,
    trace: bool = False,
) -> SisaContext:
    return SisaContext(
        threads=threads,
        mode=mode,
        hw=hw,
        cpu=cpu,
        gallop_threshold=gallop_threshold,
        smb_enabled=smb_enabled,
        trace=trace,
    )


def oriented_setgraph(
    graph: CSRGraph,
    ctx: SisaContext,
    *,
    t: float = 0.4,
    budget: float = 0.1,
    policy: str = "fraction",
) -> tuple[DiGraph, SetGraph]:
    """Degeneracy-orient the graph and materialize N+ as SISA sets."""
    result = degeneracy_order(graph)
    digraph = orient_by_order(graph, result.order)
    sg = SetGraph.from_digraph(digraph, ctx, t=t, budget=budget, policy=policy)
    return digraph, sg


# ---------------------------------------------------------------------------
# Deprecated one-shot shims
# ---------------------------------------------------------------------------


# Entry points that already warned this process (the standard warning
# filters dedupe per *call site*, so a shim hammered from a loop — or
# from many modules of the same application — would re-warn on every
# new location; one notice per entry point is enough).
_warned_one_shots: set[str] = set()


def warn_one_shot(name: str, workload: str, *, stacklevel: int = 3) -> None:
    """Deprecation notice shared by every one-shot entry point.

    Emitted once per entry point per process, and attributed to the
    *caller* of the shim (``stacklevel=3``: ``warnings.warn`` → this
    helper → the shim → its caller), so the notice points at the code
    that needs migrating, not at the shim.  Wrappers that add a frame
    between the user and the shim can pass a larger ``stacklevel``.
    """
    if name in _warned_one_shots:
        return
    _warned_one_shots.add(name)
    warnings.warn(
        f"{name}() is deprecated; hold a repro.session.SisaSession and "
        f"call session.run({workload!r}) to amortize setup across runs",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_one_shot_warnings() -> None:
    """Re-arm every one-shot deprecation notice (test support)."""
    _warned_one_shots.clear()


def one_shot_session(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    policy: str = "fraction",
    **context_kwargs: Any,
) -> SisaSession:
    """A cold session configured exactly like the legacy kwarg sprawl."""
    config = ExecutionConfig(
        threads=threads,
        mode=mode,
        t=t,
        budget=budget,
        policy=policy,
        **context_kwargs,
    )
    return SisaSession(graph, config)


def one_shot_result(run: RunResult) -> AlgorithmRun:
    """Repackage a cold-session RunResult as the legacy AlgorithmRun.

    On a cold session the context's lifetime report *is* the run's
    report, so the legacy semantics are preserved bit-for-bit.
    """
    ctx = run.session.ctx
    return AlgorithmRun(output=run.output, report=ctx.report(), context=ctx)


def run_algorithm(
    algorithm: Callable[..., Any],
    graph: CSRGraph,
    *args: Any,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    policy: str = "fraction",
    trace: bool = False,
    gallop_threshold: float | None = None,
    smb_enabled: bool = True,
    hw: HardwareConfig | None = None,
    cpu: CpuConfig | None = None,
    **kwargs: Any,
) -> AlgorithmRun:
    """Deprecated: run ``algorithm(graph, ctx, sg, ...)`` on a cold session.

    Use ``SisaSession.run(algorithm, ...)`` instead — the session keeps
    the context and SetGraph alive across calls.
    """
    warn_one_shot("run_algorithm", "<algorithm>")
    session = one_shot_session(
        graph,
        threads=threads,
        mode=mode,
        t=t,
        budget=budget,
        policy=policy,
        trace=trace,
        gallop_threshold=gallop_threshold,
        smb_enabled=smb_enabled,
        hw=hw,
        cpu=cpu,
    )
    return one_shot_result(session.run(algorithm, *args, **kwargs))
