"""Set-centric Breadth-First Search (paper Algorithm 12).

BFS is one of the paper's "low-complexity" examples: SISA does not
target it, but the set-centric formulation is still expressible.  The
frontier ``F`` and the unvisited set ``Pi`` are dense bitvectors; the
top-down step visits ``N(u) ∩ Pi`` and the bottom-up step scans
``N(w) ∩ F`` for each unvisited ``w``.  The direction-optimizing
variant switches on frontier size, as in Beamer et al.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def bfs_on(
    graph: CSRGraph,
    ctx: SisaContext,
    sg: SetGraph,
    root: int,
    *,
    direction: str = "auto",
) -> np.ndarray:
    """Parent array (root's parent is itself; unreachable is -1)."""
    if direction not in ("top-down", "bottom-up", "auto"):
        raise ConfigError("direction must be top-down, bottom-up, or auto")
    n = graph.num_vertices
    if not 0 <= root < n:
        raise ConfigError("root out of range")
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    unvisited = ctx.create_set(
        [v for v in range(n) if v != root], universe=n, dense=True
    )
    frontier = ctx.create_set([root], universe=n, dense=True)
    while ctx.cardinality(frontier) > 0:
        frontier_size = ctx.cardinality(frontier)
        remaining = ctx.cardinality(unvisited)
        if direction == "top-down":
            bottom_up = False
        elif direction == "bottom-up":
            bottom_up = True
        else:
            # Direction-optimizing heuristic: go bottom-up once the
            # frontier is a sizable fraction of the unvisited set.
            bottom_up = frontier_size * 8 > max(1, remaining)
        new_frontier = ctx.create_set([], universe=n, dense=True)
        if bottom_up:
            for w in ctx.elements(unvisited):
                ctx.begin_task()
                w = int(w)
                hits = ctx.intersect(sg.neighborhood(w), frontier)
                if ctx.cardinality(hits) > 0:
                    first = int(ctx.elements(hits)[0])
                    parent[w] = first
                    ctx.insert(new_frontier, w)
                ctx.free(hits)
        else:
            for u in ctx.elements(frontier):
                ctx.begin_task()
                u = int(u)
                reached = ctx.intersect(sg.neighborhood(u), unvisited)
                for w in ctx.elements(reached):
                    w = int(w)
                    if parent[w] == -1:
                        parent[w] = u
                        ctx.insert(new_frontier, w)
                ctx.free(reached)
        ctx.difference_into(unvisited, new_frontier)
        ctx.free(frontier)
        frontier = new_frontier
    ctx.free(frontier)
    ctx.free(unvisited)
    return parent


def bfs(
    graph: CSRGraph,
    root: int = 0,
    *,
    direction: str = "auto",
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: BFS on a cold session."""
    warn_one_shot("bfs", "bfs")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(session.run("bfs", root=root, direction=direction))
