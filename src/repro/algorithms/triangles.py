"""Triangle counting (paper Algorithm 1, set-centric node iterator).

The set-centric formulation counts, for every directed edge ``(u, v)``
of the degeneracy-oriented graph, the size of ``N+(u) ∩ N+(v)``.
Orienting by the degeneracy order makes every triangle counted exactly
once and bounds the merge work by ``O(m c)`` (paper Section 7.2).
"""

from __future__ import annotations

from repro.algorithms.common import AlgorithmRun, make_context, oriented_setgraph
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def triangle_count_oriented(
    digraph_sg: SetGraph, ctx: SisaContext, *, batch: bool = True
) -> int:
    """Count triangles on an already-oriented SetGraph.

    The per-edge ``|N+(u) ∩ N+(v)|`` counts of one vertex's out-
    neighborhood are issued as one batched count burst (``batch=True``,
    the default) — same instruction stream, same simulated cycles as
    the scalar loop (``batch=False``), at NumPy speed.
    """
    total = 0
    for u in range(digraph_sg.num_vertices):
        ctx.begin_task()
        out_u = digraph_sg.neighborhood(u)
        nbrs = ctx.elements(out_u)
        if batch:
            if nbrs.size:
                total += int(digraph_sg.neighborhood_counts(u, nbrs).sum())
        else:
            for v in nbrs:
                total += ctx.intersect_count(
                    out_u, digraph_sg.neighborhood(int(v))
                )
    return total


def triangle_count(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    batch: bool = True,
    **context_kwargs,
) -> AlgorithmRun:
    """End-to-end set-centric triangle counting."""
    ctx = make_context(threads=threads, mode=mode, **context_kwargs)
    __, sg = oriented_setgraph(graph, ctx, t=t, budget=budget)
    count = triangle_count_oriented(sg, ctx, batch=batch)
    return AlgorithmRun(output=count, report=ctx.report(), context=ctx)


def clustering_coefficient(
    graph: CSRGraph, *, threads: int = 32, mode: str = "sisa", **context_kwargs
) -> AlgorithmRun:
    """Global clustering coefficient: 3 * triangles / open wedges.

    The paper motivates triangle counting by clustering coefficients
    (Section 5.1.1); this derived metric exercises the same kernel.
    """
    run = triangle_count(graph, threads=threads, mode=mode, **context_kwargs)
    degrees = graph.degrees.astype(float)
    wedges = float((degrees * (degrees - 1) / 2).sum())
    coefficient = 3.0 * run.output / wedges if wedges > 0 else 0.0
    return AlgorithmRun(
        output=coefficient, report=run.report, context=run.context
    )
