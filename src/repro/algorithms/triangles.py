"""Triangle counting (paper Algorithm 1, set-centric node iterator).

The set-centric formulation counts, for every directed edge ``(u, v)``
of the degeneracy-oriented graph, the size of ``N+(u) ∩ N+(v)``.
Orienting by the degeneracy order makes every triangle counted exactly
once and bounds the merge work by ``O(m c)`` (paper Section 7.2).
"""

from __future__ import annotations

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def triangle_count_oriented(
    digraph_sg: SetGraph, ctx: SisaContext, *, batch: bool = True
) -> int:
    """Count triangles on an already-oriented SetGraph.

    The per-edge ``|N+(u) ∩ N+(v)|`` counts of one vertex's out-
    neighborhood are issued as one batched count burst (``batch=True``,
    the default) — same instruction stream, same simulated cycles as
    the scalar loop (``batch=False``), at NumPy speed.
    """
    total = 0
    for u in range(digraph_sg.num_vertices):
        ctx.begin_task()
        out_u = digraph_sg.neighborhood(u)
        nbrs = ctx.elements(out_u)
        if batch:
            if nbrs.size:
                total += int(digraph_sg.neighborhood_counts(u, nbrs).sum())
        else:
            for v in nbrs:
                total += ctx.intersect_count(
                    out_u, digraph_sg.neighborhood(int(v))
                )
    return total


def triangle_count(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    batch: bool = True,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: triangle counting on a cold session."""
    warn_one_shot("triangle_count", "triangles")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(session.run("triangles", batch=batch))


def clustering_coefficient(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    batch: bool = True,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: global clustering coefficient on a cold session.

    The paper motivates triangle counting by clustering coefficients
    (Section 5.1.1); this derived metric exercises the same kernel.
    """
    warn_one_shot("clustering_coefficient", "clustering_coefficient")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(session.run("clustering_coefficient", batch=batch))
