"""k-clique listing and counting (paper Algorithm 3, after Danisch et al.).

The graph is oriented by the degeneracy order; each recursion level
intersects the running candidate set ``C_i`` with the out-neighborhood
of the next clique vertex.  Work is ``O(k m (c/2)^(k-2))`` with merge
intersections (paper Table 6).

The specialized 4-clique counter from Table 4 of the paper is also
provided (``four_clique_count``): it replaces the recursion by two
nested loops and an ``intersect_count``.
"""

from __future__ import annotations

from repro.algorithms.common import (
    AlgorithmRun,
    PatternBudget,
    make_context,
    oriented_setgraph,
)
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def _count_from(
    ctx: SisaContext,
    sg: SetGraph,
    level: int,
    k: int,
    candidates: int,
    prefix: list[int],
    budget: PatternBudget,
    cliques: list[tuple[int, ...]] | None,
) -> int:
    """Recursive step: ``candidates`` holds C_level (paper lines 11-18)."""
    if budget.exhausted:
        return 0
    if level == k:
        found = ctx.cardinality(candidates)
        if cliques is not None:
            for w in ctx.elements(candidates):
                cliques.append(tuple(prefix + [int(w)]))
        budget.count(found)
        return found
    total = 0
    for v in ctx.elements(candidates):
        if budget.exhausted:
            break
        v = int(v)
        next_candidates = ctx.intersect(sg.neighborhood(v), candidates)
        total += _count_from(
            ctx, sg, level + 1, k, next_candidates, prefix + [v], budget, cliques
        )
        ctx.free(next_candidates)
    return total


def kclique_count_on(
    ctx: SisaContext,
    sg: SetGraph,
    k: int,
    *,
    max_patterns: int | None = None,
    collect: bool = False,
) -> int | list[tuple[int, ...]]:
    """Count (or list) k-cliques on an oriented SetGraph."""
    if k < 2:
        raise ConfigError("k must be at least 2")
    budget = PatternBudget(max_patterns)
    cliques: list[tuple[int, ...]] | None = [] if collect else None
    total = 0
    for u in range(sg.num_vertices):
        if budget.exhausted:
            break
        ctx.begin_task()
        c2 = sg.neighborhood(u)
        total += _count_from(ctx, sg, 2, k, c2, [u], budget, cliques)
    if collect:
        assert cliques is not None
        return cliques
    return total


def kclique_count(
    graph: CSRGraph,
    k: int,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    max_patterns: int | None = None,
    collect: bool = False,
    **context_kwargs,
) -> AlgorithmRun:
    """End-to-end k-clique counting/listing (kcc-k in the evaluation)."""
    ctx = make_context(threads=threads, mode=mode, **context_kwargs)
    __, sg = oriented_setgraph(graph, ctx, t=t, budget=budget)
    output = kclique_count_on(
        ctx, sg, k, max_patterns=max_patterns, collect=collect
    )
    return AlgorithmRun(output=output, report=ctx.report(), context=ctx)


def four_clique_count_on(
    ctx: SisaContext,
    sg: SetGraph,
    *,
    max_patterns: int | None = None,
) -> int:
    """Table 4's specialized 4-clique snippet: no recursion needed."""
    budget = PatternBudget(max_patterns)
    count = 0
    for v1 in range(sg.num_vertices):
        if budget.exhausted:
            break
        ctx.begin_task()
        out_v1 = sg.neighborhood(v1)
        for v2 in ctx.elements(out_v1):
            if budget.exhausted:
                break
            s1 = ctx.intersect(out_v1, sg.neighborhood(int(v2)))
            for v3 in ctx.elements(s1):
                found = ctx.intersect_count(s1, sg.neighborhood(int(v3)))
                count += found
                budget.count(found)
                if budget.exhausted:
                    break
            ctx.free(s1)
    return count


def four_clique_count(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    max_patterns: int | None = None,
    **context_kwargs,
) -> AlgorithmRun:
    ctx = make_context(threads=threads, mode=mode, **context_kwargs)
    __, sg = oriented_setgraph(graph, ctx, t=t, budget=budget)
    count = four_clique_count_on(ctx, sg, max_patterns=max_patterns)
    return AlgorithmRun(output=count, report=ctx.report(), context=ctx)
