"""k-clique listing and counting (paper Algorithm 3, after Danisch et al.).

The graph is oriented by the degeneracy order; each recursion level
intersects the running candidate set ``C_i`` with the out-neighborhood
of the next clique vertex.  Work is ``O(k m (c/2)^(k-2))`` with merge
intersections (paper Table 6).

The specialized 4-clique counter from Table 4 of the paper is also
provided (``four_clique_count``): it replaces the recursion by two
nested loops and an ``intersect_count``.
"""

from __future__ import annotations

from repro.algorithms.common import (
    AlgorithmRun,
    PatternBudget,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.errors import ConfigError, SisaError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def _count_from(
    ctx: SisaContext,
    sg: SetGraph,
    level: int,
    k: int,
    candidates: int,
    prefix: list[int],
    budget: PatternBudget,
    cliques: list[tuple[int, ...]] | None,
    batch: bool,
) -> int:
    """Recursive step: ``candidates`` holds C_level (paper lines 11-18)."""
    if budget.exhausted:
        return 0
    if level == k:
        found = ctx.cardinality(candidates)
        if cliques is not None:
            for w in ctx.elements(candidates):
                cliques.append(tuple(prefix + [int(w)]))
        budget.count(found)
        return found
    if level == k - 1 and cliques is None and budget.limit is None:
        # Zero-materialization counting fast path (§6.2.3): the last
        # recursion level only needs |C_k| = |N+(v) ∩ C_{k-1}| per v,
        # so count-form instructions replace the materialize /
        # cardinality / delete triple.
        vs = ctx.elements(candidates)
        if vs.size == 0:
            return 0
        if batch:
            counts = ctx.intersect_count_batch(
                candidates, [sg.neighborhood(v) for v in vs.tolist()]
            )
            total = int(counts.sum())
        else:
            total = 0
            for v in vs:
                total += ctx.intersect_count(candidates, sg.neighborhood(int(v)))
        budget.count(total)
        return total
    total = 0
    for v in ctx.elements(candidates):
        if budget.exhausted:
            break
        v = int(v)
        next_candidates = ctx.intersect(sg.neighborhood(v), candidates)
        total += _count_from(
            ctx, sg, level + 1, k, next_candidates, prefix + [v], budget,
            cliques, batch,
        )
        ctx.free(next_candidates)
    return total


def kclique_count_on(
    ctx: SisaContext,
    sg: SetGraph,
    k: int,
    *,
    max_patterns: int | None = None,
    collect: bool = False,
    batch: bool = True,
) -> int | list[tuple[int, ...]]:
    """Count (or list) k-cliques on an oriented SetGraph.

    Pure counting runs (no ``collect``, no pattern cutoff) use the
    zero-materialization counting fast path at the deepest level,
    batched over each candidate frontier when ``batch=True``.
    """
    if k < 2:
        raise ConfigError("k must be at least 2")
    budget = PatternBudget(max_patterns)
    cliques: list[tuple[int, ...]] | None = [] if collect else None
    total = 0
    for u in range(sg.num_vertices):
        if budget.exhausted:
            break
        ctx.begin_task()
        c2 = sg.neighborhood(u)
        total += _count_from(ctx, sg, 2, k, c2, [u], budget, cliques, batch)
    if collect:
        if cliques is None:  # pragma: no cover - internal invariant
            raise SisaError(
                "internal error: collect=True but no clique list was kept",
                details={"k": k, "collect": collect},
            )
        return cliques
    return total


def kclique_count(
    graph: CSRGraph,
    k: int,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    max_patterns: int | None = None,
    collect: bool = False,
    batch: bool = True,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: k-clique counting/listing (kcc-k) on a cold
    session."""
    warn_one_shot("kclique_count", "kclique")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run(
            "kclique", k=k, max_patterns=max_patterns, collect=collect,
            batch=batch,
        )
    )


def four_clique_count_on(
    ctx: SisaContext,
    sg: SetGraph,
    *,
    max_patterns: int | None = None,
    batch: bool = True,
) -> int:
    """Table 4's specialized 4-clique snippet: no recursion needed.

    The inner ``|S1 ∩ N+(v3)|`` fan-out is one batched count burst per
    wedge when ``batch=True`` and no pattern cutoff is active —
    identical instruction stream and simulated cycles, minus the
    interpreter overhead.
    """
    budget = PatternBudget(max_patterns)
    count = 0
    nbh = sg.neighborhood
    if budget.limit is None:
        # Batched formulation (identical instruction stream whether the
        # ops run batched or scalar): materialize all wedge sets S1 of
        # one vertex's frontier in one burst, then one count burst per
        # wedge.
        for v1 in range(sg.num_vertices):
            ctx.begin_task()
            out_v1 = nbh(v1)
            vs2 = ctx.elements(out_v1).tolist()
            if not vs2:
                continue
            nbh2 = [nbh(v2) for v2 in vs2]
            if batch:
                s1_ids = ctx.intersect_batch(out_v1, nbh2)
            else:
                s1_ids = [ctx.intersect(out_v1, nb) for nb in nbh2]
            for s1 in s1_ids:
                vs3 = ctx.elements(s1).tolist()
                if vs3:
                    if batch:
                        found = int(
                            ctx.intersect_count_batch(
                                s1, [nbh(v3) for v3 in vs3]
                            ).sum()
                        )
                    else:
                        found = 0
                        for v3 in vs3:
                            found += ctx.intersect_count(s1, nbh(v3))
                    count += found
                    budget.count(found)
                ctx.free(s1)
        return count
    for v1 in range(sg.num_vertices):
        if budget.exhausted:
            break
        ctx.begin_task()
        out_v1 = nbh(v1)
        for v2 in ctx.elements(out_v1):
            if budget.exhausted:
                break
            s1 = ctx.intersect(out_v1, nbh(int(v2)))
            for v3 in ctx.elements(s1):
                found = ctx.intersect_count(s1, nbh(int(v3)))
                count += found
                budget.count(found)
                if budget.exhausted:
                    break
            ctx.free(s1)
    return count


def four_clique_count(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    max_patterns: int | None = None,
    batch: bool = True,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: specialized 4-clique counting on a cold session."""
    warn_one_shot("four_clique_count", "four_clique")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run("four_clique", max_patterns=max_patterns, batch=batch)
    )
