"""Set-centric graph mining algorithms (paper Section 5)."""

from repro.algorithms.bfs import bfs, bfs_on
from repro.algorithms.bron_kerbosch import maximal_cliques, maximal_cliques_on
from repro.algorithms.clique_star import (
    kclique_star,
    kclique_star_from_k1_on,
    kclique_star_intersect_on,
)
from repro.algorithms.clustering import (
    clusters_from_edges,
    jarvis_patrick,
    jarvis_patrick_on,
)
from repro.algorithms.common import AlgorithmRun, PatternBudget, make_context
from repro.algorithms.degeneracy import approx_degeneracy, approx_degeneracy_on
from repro.algorithms.fsm import FsmResult, frequent_subgraphs, frequent_subgraphs_on
from repro.algorithms.kclique import (
    four_clique_count,
    four_clique_count_on,
    kclique_count,
    kclique_count_on,
)
from repro.algorithms.link_prediction import (
    LinkPredictionResult,
    link_prediction_effectiveness,
)
from repro.algorithms.similarity import (
    MEASURES,
    all_pairs_similarity_on,
    similarity_on,
    vertex_similarity,
)
from repro.algorithms.subgraph_iso import (
    star_pattern,
    subgraph_isomorphism,
    subgraph_isomorphism_on,
)
from repro.algorithms.triangles import (
    clustering_coefficient,
    triangle_count,
    triangle_count_oriented,
)

__all__ = [
    "bfs",
    "bfs_on",
    "maximal_cliques",
    "maximal_cliques_on",
    "kclique_star",
    "kclique_star_from_k1_on",
    "kclique_star_intersect_on",
    "clusters_from_edges",
    "jarvis_patrick",
    "jarvis_patrick_on",
    "AlgorithmRun",
    "PatternBudget",
    "make_context",
    "approx_degeneracy",
    "approx_degeneracy_on",
    "FsmResult",
    "frequent_subgraphs",
    "frequent_subgraphs_on",
    "four_clique_count",
    "four_clique_count_on",
    "kclique_count",
    "kclique_count_on",
    "LinkPredictionResult",
    "link_prediction_effectiveness",
    "MEASURES",
    "all_pairs_similarity_on",
    "similarity_on",
    "vertex_similarity",
    "star_pattern",
    "subgraph_isomorphism",
    "subgraph_isomorphism_on",
    "clustering_coefficient",
    "triangle_count",
    "triangle_count_oriented",
]
