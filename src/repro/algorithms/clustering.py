"""Jarvis-Patrick clustering (paper Algorithm 11).

Two vertices belong to the same cluster when their neighborhoods are
similar enough: for each edge ``(v, u)``, keep it iff the similarity of
``N(v)`` and ``N(u)`` exceeds a threshold tau.  The evaluation runs
this with the Jaccard (cl-jac), overlap (cl-ovr) and total-neighbors
(cl-tot) coefficients.

The output is the set of kept edges plus the connected components they
induce (the clusters).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.algorithms.similarity import (
    BATCHABLE_MEASURES,
    iter_shared_first_runs,
    similarity_batch_on,
    similarity_on,
)
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def jarvis_patrick_on(
    graph: CSRGraph,
    ctx: SisaContext,
    sg: SetGraph,
    *,
    tau: float,
    measure: str = "common_neighbors",
    batch: bool = True,
) -> list[tuple[int, int]]:
    """Edges whose endpoint similarity exceeds tau.

    With ``batch=True`` (and a batchable measure — all cardinality-only
    measures plus Adamic-Adar / Resource Allocation), each vertex's
    edge run is scored as one batched instruction burst over its
    incident edges instead of one dispatch per edge."""
    kept: list[tuple[int, int]] = []
    edges = graph.edge_array()
    if batch and measure in BATCHABLE_MEASURES:
        for u, i, j in iter_shared_first_runs(edges):
            ctx.begin_task()
            run = edges[i:j]
            scores = similarity_batch_on(
                ctx, sg, u, run[:, 1], measure=measure
            )
            ctx.charge_host_ops(2 * len(run))  # threshold compare + append
            for (uu, vv), score in zip(run, scores):
                if score > tau:
                    kept.append((int(uu), int(vv)))
        return kept
    for u, v in edges:
        ctx.begin_task()
        score = similarity_on(ctx, sg, int(u), int(v), measure=measure)
        ctx.charge_host_ops(2)  # threshold compare + append
        if score > tau:
            kept.append((int(u), int(v)))
    return kept


def clusters_from_edges(
    num_vertices: int, edges: list[tuple[int, int]]
) -> list[set[int]]:
    """Connected components of the kept-edge graph (host-side union-find)."""
    parent = list(range(num_vertices))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for u, v in edges:
        ra, rb = find(u), find(v)
        if ra != rb:
            parent[ra] = rb
    groups: dict[int, set[int]] = {}
    touched = {w for edge in edges for w in edge}
    for w in touched:
        groups.setdefault(find(w), set()).add(w)
    return sorted(groups.values(), key=lambda s: (-len(s), min(s)))


def jarvis_patrick(
    graph: CSRGraph,
    *,
    tau: float = 2.0,
    measure: str = "common_neighbors",
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    batch: bool = True,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: Jarvis-Patrick clustering (cl-*) on a cold
    session."""
    warn_one_shot("jarvis_patrick", "jarvis_patrick")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run("jarvis_patrick", tau=tau, measure=measure, batch=batch)
    )
