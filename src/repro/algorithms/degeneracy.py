"""Set-centric approximate degeneracy order and k-core (paper Algorithm 6).

The streaming scheme (Farach-Colton & Tsai) strips, per round, every
vertex whose degree is at most ``(1 + eps)`` times the current average.
Its set operations — ``V \\= X`` and ``N(v) \\= X`` — are exactly the
SISA-accelerated kind: ``X`` is a dense bitvector and each
neighborhood update is one difference instruction.

Runs in ``O(log n)`` rounds with approximation ratio ``2 + eps``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def approx_degeneracy_on(
    graph: CSRGraph,
    ctx: SisaContext,
    sg: SetGraph,
    *,
    eps: float = 0.5,
) -> np.ndarray:
    """Per-vertex approximate degeneracy rank eta (round index)."""
    if eps <= 0:
        raise ConfigError("eps must be positive")
    n = graph.num_vertices
    eta = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return eta
    # Mutable copies of the neighborhoods (the algorithm shrinks them).
    live_neighborhoods = [ctx.clone(sg.neighborhood(v)) for v in range(n)]
    remaining = ctx.create_set(range(n), universe=n, dense=True)
    round_index = 0
    alive = n
    while alive:
        live = ctx.elements(remaining)
        # Degrees are O(1) metadata reads; the average is host-side math.
        degrees = np.array(
            [ctx.cardinality(live_neighborhoods[int(v)]) for v in live]
        )
        ctx.charge_host_ops(live.size)
        threshold = (1.0 + eps) * degrees.mean()
        stripped = live[degrees <= threshold]
        if stripped.size == 0:
            stripped = live[degrees == degrees.min()]
        eta[stripped] = round_index
        x = ctx.create_set(stripped, universe=n, dense=True)
        ctx.difference_into(remaining, x)
        for v in ctx.elements(remaining):
            ctx.begin_task()
            ctx.difference_into(live_neighborhoods[int(v)], x)
        ctx.free(x)
        alive -= stripped.size
        round_index += 1
    for v in range(n):
        ctx.free(live_neighborhoods[v])
    ctx.free(remaining)
    return eta


def approx_degeneracy(
    graph: CSRGraph,
    *,
    eps: float = 0.5,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: approximate degeneracy on a cold session."""
    warn_one_shot("approx_degeneracy", "approx_degeneracy")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(session.run("approx_degeneracy", eps=eps))


def kcore_from_eta(
    graph: CSRGraph,
    eta: np.ndarray,
    k: int,
) -> np.ndarray:
    """Derive a k-core approximation from the eta order (paper 5.1.5):
    iterate in eta order, dropping vertices with out-degree < k in the
    induced orientation, until a fixed point."""
    n = graph.num_vertices
    alive = np.ones(n, dtype=bool)
    changed = True
    while changed:
        changed = False
        # Orientation: v -> u iff eta(v) < eta(u), ties by id.
        for v in np.argsort(eta, kind="stable"):
            if not alive[v]:
                continue
            nbrs = graph.neighbors(int(v))
            degree = int(np.count_nonzero(alive[nbrs]))
            if degree < k:
                alive[v] = False
                changed = True
    return np.flatnonzero(alive)
