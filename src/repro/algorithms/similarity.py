"""Vertex similarity measures (paper Algorithm 9).

All measures are built from the cardinalities of neighborhood
intersections/unions, which is exactly what SISA's count-form
instructions compute without materializing intermediates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph

MEASURES = (
    "jaccard",
    "overlap",
    "common_neighbors",
    "total_neighbors",
    "adamic_adar",
    "resource_allocation",
    "preferential_attachment",
)

# Measures expressible purely in set cardinalities: these run on the
# count-form instructions and can be batched over a shared-u frontier.
COUNT_MEASURES = (
    "jaccard",
    "overlap",
    "common_neighbors",
    "total_neighbors",
    "preferential_attachment",
)

# Everything batchable over a shared-u frontier: the count measures
# plus the shared-neighbor measures (Adamic-Adar, Resource Allocation),
# which batch through the materializing fan-out instead of the
# count-form burst.
BATCHABLE_MEASURES = COUNT_MEASURES + ("adamic_adar", "resource_allocation")


def similarity_on(
    ctx: SisaContext,
    sg: SetGraph,
    u: int,
    v: int,
    *,
    measure: str = "jaccard",
) -> float:
    """Similarity of ``N(u)`` and ``N(v)`` under the chosen measure."""
    if measure not in MEASURES:
        raise ConfigError(f"unknown measure {measure!r}; known: {MEASURES}")
    nu, nv = sg.neighborhood(u), sg.neighborhood(v)
    if measure == "preferential_attachment":
        return float(ctx.cardinality(nu) * ctx.cardinality(nv))
    if measure == "common_neighbors":
        return float(ctx.intersect_count(nu, nv))
    if measure == "total_neighbors":
        return float(ctx.union_count(nu, nv))
    if measure == "jaccard":
        inter = ctx.intersect_count(nu, nv)
        du, dv = ctx.cardinality(nu), ctx.cardinality(nv)
        union = du + dv - inter
        return inter / union if union else 0.0
    if measure == "overlap":
        inter = ctx.intersect_count(nu, nv)
        smaller = min(ctx.cardinality(nu), ctx.cardinality(nv))
        return inter / smaller if smaller else 0.0
    # Adamic-Adar / Resource Allocation need the shared neighbors
    # themselves, not just the count: materialize the intersection.
    shared = ctx.intersect(nu, nv)
    total = 0.0
    for w in ctx.elements(shared):
        dw = ctx.cardinality(sg.neighborhood(int(w)))
        if measure == "adamic_adar":
            total += 1.0 / math.log(dw) if dw > 1 else 0.0
        else:
            total += 1.0 / dw if dw > 0 else 0.0
    ctx.free(shared)
    return total


def iter_shared_first_runs(pairs):
    """Yield ``(u, start, end)`` for maximal consecutive runs of rows
    sharing their first entry — the frontier grouping used to batch
    pair scoring (one task and one count burst per run)."""
    n = len(pairs)
    i = 0
    while i < n:
        u = int(pairs[i][0])
        j = i + 1
        while j < n and int(pairs[j][0]) == u:
            j += 1
        yield u, i, j
        i = j


def similarity_batch_on(
    ctx: SisaContext,
    sg: SetGraph,
    u: int,
    vs,
    *,
    measure: str = "jaccard",
) -> np.ndarray:
    """Similarity of ``N(u)`` against a whole frontier of ``N(v)``.

    For the cardinality-only measures (:data:`COUNT_MEASURES`) this
    issues one batched count burst plus one ``|N(u)|`` fetch — the
    metadata of the shared operand is read once per frontier instead of
    once per pair.  Note this is a deliberate modeled-cost improvement,
    not just interpreter amortization: the per-pair path re-issues the
    ``|N(u)|`` cardinality instruction for every pair, so the batched
    form executes fewer instructions (scores are unchanged).  Measures
    needing the shared neighbors themselves (Adamic-Adar, Resource
    Allocation) fall back to the per-pair path.
    """
    if measure not in MEASURES:
        raise ConfigError(f"unknown measure {measure!r}; known: {MEASURES}")
    vs = [int(v) for v in vs]
    if measure not in BATCHABLE_MEASURES:
        return np.asarray(
            [similarity_on(ctx, sg, u, v, measure=measure) for v in vs],
            dtype=np.float64,
        )
    if measure not in COUNT_MEASURES:
        return _shared_neighbor_batch_on(ctx, sg, u, vs, measure=measure)
    nu = sg.neighborhood(u)
    nvs = [sg.neighborhood(v) for v in vs]
    if measure == "total_neighbors":
        return ctx.union_count_batch(nu, nvs).astype(np.float64)
    if measure == "common_neighbors":
        return ctx.intersect_count_batch(nu, nvs).astype(np.float64)
    if measure == "preferential_attachment":
        du = ctx.cardinality(nu)
        dvs = np.asarray([ctx.cardinality(nv) for nv in nvs], dtype=np.float64)
        return du * dvs
    inter = ctx.intersect_count_batch(nu, nvs).astype(np.float64)
    du = ctx.cardinality(nu)
    dvs = np.asarray([ctx.cardinality(nv) for nv in nvs], dtype=np.float64)
    if measure == "jaccard":
        denom = du + dvs - inter
    else:  # overlap
        denom = np.minimum(float(du), dvs)
    return np.divide(
        inter, denom, out=np.zeros_like(inter), where=denom > 0
    )


def _shared_neighbor_batch_on(
    ctx: SisaContext,
    sg: SetGraph,
    u: int,
    vs: list[int],
    *,
    measure: str,
) -> np.ndarray:
    """Batched Adamic-Adar / Resource Allocation over a shared-u
    frontier.

    These measures need the shared neighbors themselves, so the burst
    runs on the materializing batched intersection
    (:meth:`SisaContext.intersect_batch` — cycle-identical to the
    sequential ``intersect`` stream) and then iterates each result.
    Like the cardinality hoist of the count measures, the degree fetch
    ``|N(w)|`` is issued once per *unique* shared neighbor of the
    frontier rather than once per occurrence — a deliberate modeled
    improvement over the per-pair path (scores are unchanged: each
    pair still accumulates its weights in sorted-neighbor order).
    """
    nu = sg.neighborhood(u)
    shared_ids = ctx.intersect_batch(nu, [sg.neighborhood(v) for v in vs])
    arrays = [ctx.elements(sid) for sid in shared_ids]
    weights: dict[int, float] = {}
    for ws in arrays:
        for w in ws:
            w = int(w)
            if w in weights:
                continue
            dw = ctx.cardinality(sg.neighborhood(w))
            if measure == "adamic_adar":
                weights[w] = 1.0 / math.log(dw) if dw > 1 else 0.0
            else:
                weights[w] = 1.0 / dw if dw > 0 else 0.0
    scores = np.zeros(len(vs), dtype=np.float64)
    for i, ws in enumerate(arrays):
        total = 0.0
        for w in ws:
            total += weights[int(w)]
        scores[i] = total
    for sid in shared_ids:
        ctx.free(sid)
    return scores


def all_pairs_similarity_on(
    ctx: SisaContext,
    sg: SetGraph,
    pairs: np.ndarray,
    *,
    measure: str = "jaccard",
    batch: bool = True,
) -> np.ndarray:
    """Score a batch of vertex pairs (one parallel task per pair block).

    With ``batch=True``, consecutive pairs sharing their first vertex
    are scored as one batched fan-out (pair order — and thus the score
    array — is unchanged)."""
    scores = np.zeros(len(pairs), dtype=np.float64)
    if batch and measure in BATCHABLE_MEASURES:
        for u, i, j in iter_shared_first_runs(pairs):
            ctx.begin_task()
            scores[i:j] = similarity_batch_on(
                ctx, sg, u, [int(p[1]) for p in pairs[i:j]], measure=measure
            )
        return scores
    for i, (u, v) in enumerate(pairs):
        ctx.begin_task()
        scores[i] = similarity_on(ctx, sg, int(u), int(v), measure=measure)
    return scores


def vertex_similarity(
    graph: CSRGraph,
    u: int,
    v: int,
    *,
    measure: str = "jaccard",
    threads: int = 1,
    mode: str = "sisa",
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: one pair similarity on a cold session."""
    warn_one_shot("vertex_similarity", "similarity")
    session = one_shot_session(
        graph, threads=threads, mode=mode, **context_kwargs
    )
    return one_shot_result(session.run("similarity", u=u, v=v, measure=measure))
