"""Vertex similarity measures (paper Algorithm 9).

All measures are built from the cardinalities of neighborhood
intersections/unions, which is exactly what SISA's count-form
instructions compute without materializing intermediates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.common import AlgorithmRun, make_context
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph

MEASURES = (
    "jaccard",
    "overlap",
    "common_neighbors",
    "total_neighbors",
    "adamic_adar",
    "resource_allocation",
    "preferential_attachment",
)


def similarity_on(
    ctx: SisaContext,
    sg: SetGraph,
    u: int,
    v: int,
    *,
    measure: str = "jaccard",
) -> float:
    """Similarity of ``N(u)`` and ``N(v)`` under the chosen measure."""
    if measure not in MEASURES:
        raise ConfigError(f"unknown measure {measure!r}; known: {MEASURES}")
    nu, nv = sg.neighborhood(u), sg.neighborhood(v)
    if measure == "preferential_attachment":
        return float(ctx.cardinality(nu) * ctx.cardinality(nv))
    if measure == "common_neighbors":
        return float(ctx.intersect_count(nu, nv))
    if measure == "total_neighbors":
        return float(ctx.union_count(nu, nv))
    if measure == "jaccard":
        inter = ctx.intersect_count(nu, nv)
        du, dv = ctx.cardinality(nu), ctx.cardinality(nv)
        union = du + dv - inter
        return inter / union if union else 0.0
    if measure == "overlap":
        inter = ctx.intersect_count(nu, nv)
        smaller = min(ctx.cardinality(nu), ctx.cardinality(nv))
        return inter / smaller if smaller else 0.0
    # Adamic-Adar / Resource Allocation need the shared neighbors
    # themselves, not just the count: materialize the intersection.
    shared = ctx.intersect(nu, nv)
    total = 0.0
    for w in ctx.elements(shared):
        dw = ctx.cardinality(sg.neighborhood(int(w)))
        if measure == "adamic_adar":
            total += 1.0 / math.log(dw) if dw > 1 else 0.0
        else:
            total += 1.0 / dw if dw > 0 else 0.0
    ctx.free(shared)
    return total


def all_pairs_similarity_on(
    ctx: SisaContext,
    sg: SetGraph,
    pairs: np.ndarray,
    *,
    measure: str = "jaccard",
) -> np.ndarray:
    """Score a batch of vertex pairs (one parallel task per pair block)."""
    scores = np.zeros(len(pairs), dtype=np.float64)
    for i, (u, v) in enumerate(pairs):
        ctx.begin_task()
        scores[i] = similarity_on(ctx, sg, int(u), int(v), measure=measure)
    return scores


def vertex_similarity(
    graph: CSRGraph,
    u: int,
    v: int,
    *,
    measure: str = "jaccard",
    threads: int = 1,
    mode: str = "sisa",
    **context_kwargs,
) -> AlgorithmRun:
    ctx = make_context(threads=threads, mode=mode, **context_kwargs)
    sg = SetGraph.from_graph(graph, ctx)
    score = similarity_on(ctx, sg, u, v, measure=measure)
    return AlgorithmRun(output=score, report=ctx.report(), context=ctx)
