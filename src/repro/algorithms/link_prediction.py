"""Link prediction and accuracy testing (paper Algorithm 10).

Pipeline (Wang et al.): remove a random subset ``E_rndm`` of the edges,
score candidate vertex pairs on the sparsified graph with a vertex
similarity measure, predict the top-scoring pairs, and measure
``eff = |E_predict ∩ E_rndm|``.

Edge sets are SISA sets over the pair universe (edge id = u * n + v for
u < v), stored as sparse arrays.  The final effectiveness computation
is one set intersection — exactly the paper's formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.graphs.csr import CSRGraph


def edge_ids(edges: np.ndarray, n: int) -> np.ndarray:
    """Canonical pair ids (u < v) over the universe of n*n pairs."""
    lo = np.minimum(edges[:, 0], edges[:, 1]).astype(np.int64)
    hi = np.maximum(edges[:, 0], edges[:, 1]).astype(np.int64)
    return lo * n + hi


@dataclass
class LinkPredictionResult:
    effectiveness: int
    removed_edges: int
    predicted_edges: int
    precision: float


def candidate_pairs(
    graph: CSRGraph, *, limit: int | None = None
) -> np.ndarray:
    """Two-hop non-adjacent vertex pairs: the standard candidate pool
    (any pair with no common neighbor scores zero under neighborhood
    measures, so scoring it is wasted work)."""
    n = graph.num_vertices
    seen: set[int] = set()
    pairs: list[tuple[int, int]] = []
    for w in range(n):
        nbrs = graph.neighbors(w)
        for i in range(nbrs.size):
            for j in range(i + 1, nbrs.size):
                u, v = int(nbrs[i]), int(nbrs[j])
                key = u * n + v
                if key in seen or graph.has_edge(u, v):
                    continue
                seen.add(key)
                pairs.append((u, v))
                if limit is not None and len(pairs) >= limit:
                    return np.asarray(pairs, dtype=np.int64)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def link_prediction_effectiveness(
    graph: CSRGraph,
    *,
    removal_fraction: float = 0.1,
    measure: str = "jaccard",
    batch: bool = True,
    top_k: int | None = None,
    candidate_limit: int | None = 20_000,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    seed: int = 7,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: the full Algorithm 10 pipeline on a cold session.

    The pipeline itself (sparsification, candidate scoring, the final
    ``|E_predict ∩ E_rndm|`` intersection) lives in the
    ``link_prediction`` session workload.
    """
    warn_one_shot("link_prediction_effectiveness", "link_prediction")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run(
            "link_prediction",
            removal_fraction=removal_fraction,
            measure=measure,
            batch=batch,
            top_k=top_k,
            candidate_limit=candidate_limit,
            seed=seed,
        )
    )
