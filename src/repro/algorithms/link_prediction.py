"""Link prediction and accuracy testing (paper Algorithm 10).

Pipeline (Wang et al.): remove a random subset ``E_rndm`` of the edges,
score candidate vertex pairs on the sparsified graph with a vertex
similarity measure, predict the top-scoring pairs, and measure
``eff = |E_predict ∩ E_rndm|``.

Edge sets are SISA sets over the pair universe (edge id = u * n + v for
u < v), stored as sparse arrays.  The final effectiveness computation
is one set intersection — exactly the paper's formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import AlgorithmRun, make_context
from repro.algorithms.similarity import all_pairs_similarity_on
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def edge_ids(edges: np.ndarray, n: int) -> np.ndarray:
    """Canonical pair ids (u < v) over the universe of n*n pairs."""
    lo = np.minimum(edges[:, 0], edges[:, 1]).astype(np.int64)
    hi = np.maximum(edges[:, 0], edges[:, 1]).astype(np.int64)
    return lo * n + hi


@dataclass
class LinkPredictionResult:
    effectiveness: int
    removed_edges: int
    predicted_edges: int
    precision: float


def candidate_pairs(
    graph: CSRGraph, *, limit: int | None = None
) -> np.ndarray:
    """Two-hop non-adjacent vertex pairs: the standard candidate pool
    (any pair with no common neighbor scores zero under neighborhood
    measures, so scoring it is wasted work)."""
    n = graph.num_vertices
    seen: set[int] = set()
    pairs: list[tuple[int, int]] = []
    for w in range(n):
        nbrs = graph.neighbors(w)
        for i in range(nbrs.size):
            for j in range(i + 1, nbrs.size):
                u, v = int(nbrs[i]), int(nbrs[j])
                key = u * n + v
                if key in seen or graph.has_edge(u, v):
                    continue
                seen.add(key)
                pairs.append((u, v))
                if limit is not None and len(pairs) >= limit:
                    return np.asarray(pairs, dtype=np.int64)
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def link_prediction_effectiveness(
    graph: CSRGraph,
    *,
    removal_fraction: float = 0.1,
    measure: str = "jaccard",
    batch: bool = True,
    top_k: int | None = None,
    candidate_limit: int | None = 20_000,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    seed: int = 7,
    **context_kwargs,
) -> AlgorithmRun:
    """Run the full Algorithm 10 pipeline and report effectiveness."""
    if not 0.0 < removal_fraction < 1.0:
        raise ConfigError("removal_fraction must be in (0, 1)")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    edges = graph.edge_array()
    m = edges.shape[0]
    removed_count = max(1, int(removal_fraction * m))
    removed_idx = rng.choice(m, size=removed_count, replace=False)
    removed_mask = np.zeros(m, dtype=bool)
    removed_mask[removed_idx] = True
    sparse_edges = edges[~removed_mask]
    removed_edges = edges[removed_mask]

    sparse_graph = CSRGraph.from_edges(n, sparse_edges)
    ctx = make_context(threads=threads, mode=mode, **context_kwargs)
    sg = SetGraph.from_graph(sparse_graph, ctx, t=t, budget=budget)

    # E_rndm and (later) E_predict live in the pair-id universe.
    pair_universe = n * n
    e_rndm = ctx.create_set(
        edge_ids(removed_edges, n), universe=pair_universe, dense=False
    )

    pairs = candidate_pairs(sparse_graph, limit=candidate_limit)
    # Candidate scoring is the hot loop: batched count-form instruction
    # bursts over runs of pairs sharing their first endpoint.
    scores = all_pairs_similarity_on(ctx, sg, pairs, measure=measure, batch=batch)
    if top_k is None:
        top_k = removed_count
    top_k = min(top_k, len(pairs))
    top_idx = np.argsort(-scores, kind="stable")[:top_k]
    predicted = pairs[np.sort(top_idx)]
    e_predict = ctx.create_set(
        edge_ids(predicted, n) if len(predicted) else [],
        universe=pair_universe,
        dense=False,
    )
    eff = ctx.intersect_count(e_predict, e_rndm)
    result = LinkPredictionResult(
        effectiveness=eff,
        removed_edges=removed_count,
        predicted_edges=top_k,
        precision=eff / top_k if top_k else 0.0,
    )
    return AlgorithmRun(output=result, report=ctx.report(), context=ctx)
