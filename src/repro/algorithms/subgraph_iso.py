"""Subgraph isomorphism: the VF2 algorithm, set-centric (paper Algorithm 7).

Searches for embeddings of a (small) pattern graph ``G2`` in a target
graph ``G1``.  Target-side state is kept in SISA sets:

* ``M1`` — mapped target vertices (dense bitvector),
* ``T1`` — unmapped target vertices adjacent to ``M1`` (dense bitvector).

The feasibility rules use exactly the paper's set expressions::

    checkTerm = |N1(v1) ∩ T1| >= |N2(v2) ∩ T2|
    checkNew  = |N1(v1) \\ (M1 ∪ T1)| >= |N2(v2) \\ (M2 ∪ T2)|

Pattern-side sets are host-side Python sets (the pattern has a handful
of vertices; the paper likewise treats the pattern as small).

Labeled graphs are supported through ``verify_labels``: vertex labels
must match, and edge labels are checked on the edges between the new
pair and already-mapped vertices via ``N1(v1) ∩ M1`` (paper lines
15-19).  Embeddings are counted as *monomorphisms* (every pattern edge
maps to a target edge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.common import (
    AlgorithmRun,
    PatternBudget,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.labels import Labeling
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def star_pattern(k: int) -> CSRGraph:
    """A k-star: one center connected to k leaves (the si-ks workload)."""
    edges = [(0, i) for i in range(1, k + 1)]
    return CSRGraph.from_edges(k + 1, edges)


@dataclass
class _SearchState:
    core_pattern_to_target: dict[int, int]
    m1: int  # set id: mapped target vertices
    t1: int  # set id: frontier of M1


class _Vf2Search:
    def __init__(
        self,
        graph: CSRGraph,
        ctx: SisaContext,
        sg: SetGraph,
        pattern: CSRGraph,
        *,
        target_labels: Labeling | None,
        pattern_labels: Labeling | None,
        budget: PatternBudget,
        collect: bool,
    ):
        self.graph = graph
        self.ctx = ctx
        self.sg = sg
        self.pattern = pattern
        self.target_labels = target_labels
        self.pattern_labels = pattern_labels
        self.budget = budget
        self.matches: list[dict[int, int]] = []
        self.count = 0
        self.collect = collect

    # -- pattern-side helpers (host work; the pattern is tiny) -----------

    def _pattern_frontier(self, mapped: set[int]) -> set[int]:
        frontier: set[int] = set()
        for u in mapped:
            frontier.update(int(w) for w in self.pattern.neighbors(u))
        return frontier - mapped

    def _next_pattern_vertex(self, mapped: set[int]) -> int:
        frontier = self._pattern_frontier(mapped)
        self.ctx.charge_host_ops(4 * max(1, self.pattern.num_vertices))
        if frontier:
            return min(frontier)
        unmapped = set(range(self.pattern.num_vertices)) - mapped
        return min(unmapped)

    def _verify_labels(self, state: _SearchState, v1: int, v2: int) -> bool:
        """Paper's verify_labels: vertex labels plus labels of edges into
        the already-mapped part (found via N1(v1) ∩ M1)."""
        if self.target_labels is None or self.pattern_labels is None:
            return True
        if self.target_labels.vertex_label(v1) != self.pattern_labels.vertex_label(v2):
            return False
        ctx, sg = self.ctx, self.sg
        mapped_neighbors = ctx.intersect(sg.neighborhood(v1), state.m1)
        target_to_pattern = {
            tv: pv for pv, tv in state.core_pattern_to_target.items()
        }
        ok = True
        for w1 in ctx.elements(mapped_neighbors):
            w1 = int(w1)
            w2 = target_to_pattern[w1]
            if not self.pattern.has_edge(v2, w2):
                continue  # target-only edge; irrelevant for monomorphism
            if self.target_labels.edge_label(v1, w1) != self.pattern_labels.edge_label(
                v2, w2
            ):
                ok = False
                break
        ctx.free(mapped_neighbors)
        return ok

    # -- feasibility ------------------------------------------------------

    def _feasible(
        self, state: _SearchState, mapped_pattern: set[int], v1: int, v2: int
    ) -> bool:
        ctx, sg = self.ctx, self.sg
        # R_core: every mapped pattern-neighbor of v2 must map to a
        # target-neighbor of v1.
        for u2 in self.pattern.neighbors(v2):
            u2 = int(u2)
            if u2 in state.core_pattern_to_target:
                u1 = state.core_pattern_to_target[u2]
                if not ctx.member(sg.neighborhood(v1), u1):
                    return False
        # Lookahead rules (checkTerm / checkNew).  For *monomorphism*
        # counting the induced-isomorphism form of checkNew is too
        # strong (a "new" pattern neighbor may map to a frontier target
        # vertex, because extra target edges are allowed), so the second
        # rule compares the combined frontier + new counts.
        t2 = self._pattern_frontier(mapped_pattern)
        n2 = {int(w) for w in self.pattern.neighbors(v2)}
        term2 = len(n2 & t2)
        new2 = len(n2 - t2 - mapped_pattern)
        term1 = ctx.intersect_count(sg.neighborhood(v1), state.t1)
        if term1 < term2:
            return False
        covered = ctx.union(state.m1, state.t1)
        new1 = ctx.difference_count(sg.neighborhood(v1), covered)
        ctx.free(covered)
        if term1 + new1 < term2 + new2:
            return False
        return self._verify_labels(state, v1, v2)

    # -- recursion ----------------------------------------------------------

    def match(self, state: _SearchState) -> None:
        if self.budget.exhausted:
            return
        ctx, sg = self.ctx, self.sg
        mapped_pattern = set(state.core_pattern_to_target)
        if len(mapped_pattern) == self.pattern.num_vertices:
            self.count += 1
            self.budget.count()
            if self.collect:
                self.matches.append(dict(state.core_pattern_to_target))
            return
        v2 = self._next_pattern_vertex(mapped_pattern)
        # Candidate target vertices: frontier if v2 touches the mapped
        # part, otherwise every unmapped vertex (root step).
        has_mapped_neighbor = any(
            int(u) in mapped_pattern for u in self.pattern.neighbors(v2)
        )
        if has_mapped_neighbor:
            candidate_set = ctx.clone(state.t1)
            candidates = ctx.elements(candidate_set)
            ctx.free(candidate_set)
        else:
            candidates = range(self.graph.num_vertices)
        for v1 in candidates:
            if self.budget.exhausted:
                break
            v1 = int(v1)
            if ctx.member(state.m1, v1):
                continue
            if not self._feasible(state, mapped_pattern, v1, v2):
                continue
            # NewState: extend M1 and recompute the frontier
            #   T1' = (T1 ∪ N(v1)) \ M1'.
            m_next = ctx.clone(state.m1)
            ctx.insert(m_next, v1)
            t_union = ctx.union(state.t1, sg.neighborhood(v1))
            t_next = ctx.difference(t_union, m_next)
            ctx.free(t_union)
            next_state = _SearchState(
                {**state.core_pattern_to_target, v2: v1}, m_next, t_next
            )
            self.match(next_state)
            ctx.free(m_next)
            ctx.free(t_next)


def subgraph_isomorphism_on(
    graph: CSRGraph,
    ctx: SisaContext,
    sg: SetGraph,
    pattern: CSRGraph,
    *,
    target_labels: Labeling | None = None,
    pattern_labels: Labeling | None = None,
    max_matches: int | None = None,
    collect: bool = False,
) -> int | list[dict[int, int]]:
    """Count (or list) monomorphic embeddings of ``pattern`` in ``graph``."""
    budget = PatternBudget(max_matches)
    search = _Vf2Search(
        graph,
        ctx,
        sg,
        pattern,
        target_labels=target_labels,
        pattern_labels=pattern_labels,
        budget=budget,
        collect=collect,
    )
    n = graph.num_vertices
    ctx.begin_task()
    m1 = ctx.create_set([], universe=n, dense=True)
    t1 = ctx.create_set([], universe=n, dense=True)
    search.match(_SearchState({}, m1, t1))
    ctx.free(m1)
    ctx.free(t1)
    if collect:
        return search.matches
    return search.count


def subgraph_isomorphism(
    graph: CSRGraph,
    pattern: CSRGraph,
    *,
    target_labels: Labeling | None = None,
    pattern_labels: Labeling | None = None,
    max_matches: int | None = None,
    collect: bool = False,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: VF2 subgraph isomorphism (si-*) on a cold
    session."""
    warn_one_shot("subgraph_isomorphism", "subgraph_iso")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run(
            "subgraph_iso",
            pattern=pattern,
            target_labels=target_labels,
            pattern_labels=pattern_labels,
            max_matches=max_matches,
            collect=collect,
        )
    )
