"""k-clique-star listing (paper Algorithms 4 and 5).

A k-clique-star is a k-clique plus the adjacent vertices connected to
*all* clique members.  Two set-centric variants are implemented:

* :func:`kclique_star_intersect` — Algorithm 4 (Jabbour et al.): find
  k-cliques, then intersect all member neighborhoods and union with the
  clique.
* :func:`kclique_star_from_k1` — Algorithm 5 (the paper's own variant):
  find (k+1)-cliques and group them by their k-subsets; the extra
  vertices of each group form the star.
"""

from __future__ import annotations

from collections import defaultdict

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.algorithms.kclique import kclique_count_on
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def kclique_star_intersect_on(
    graph: CSRGraph,
    ctx: SisaContext,
    undirected_sg: SetGraph,
    oriented_sg: SetGraph,
    k: int,
    *,
    max_patterns: int | None = None,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Algorithm 4: per k-clique, ``X = ∩_{u∈clique} N(u)``; star = X ∪ clique.

    Returns ``(clique, star_vertices)`` pairs (deduplicated).
    """
    cliques = kclique_count_on(
        ctx, oriented_sg, k, max_patterns=max_patterns, collect=True
    )
    assert isinstance(cliques, list)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
    stars: dict[tuple[int, ...], tuple[int, ...]] = {}
    for clique in cliques:
        ctx.begin_task()
        members = list(clique)
        # One CISC-style multi-set instruction (paper Section 11's
        # proposed extension) computes ∩_{u∈Vc} N(u) without writing
        # intermediates back.
        x = ctx.intersect_many(
            *(undirected_sg.neighborhood(u) for u in members)
        )
        extras = tuple(
            int(w) for w in ctx.elements(x) if int(w) not in set(members)
        )
        ctx.free(x)
        if extras:
            stars[tuple(sorted(members))] = extras
    return sorted(stars.items())


def kclique_star_from_k1_on(
    ctx: SisaContext,
    oriented_sg: SetGraph,
    k: int,
    *,
    max_patterns: int | None = None,
) -> dict[tuple[int, ...], tuple[int, ...]]:
    """Algorithm 5: mine (k+1)-cliques, then S[c \\ {v}] ∪= c.

    Returns a map from k-clique to the union of its adjacent star
    vertices (only k-cliques with at least one extra vertex).
    """
    k1_cliques = kclique_count_on(
        ctx, oriented_sg, k + 1, max_patterns=max_patterns, collect=True
    )
    assert isinstance(k1_cliques, list)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
    stars: dict[tuple[int, ...], set[int]] = defaultdict(set)
    for clique in k1_cliques:
        ctx.begin_task()
        members = set(clique)
        # One set-insert per (sub-clique, extra-vertex) pair; the map
        # update is host-side bookkeeping.
        ctx.charge_host_ops(len(clique) * 4)
        for v in clique:
            key = tuple(sorted(members - {v}))
            stars[key].add(v)
    return {key: tuple(sorted(extra)) for key, extra in sorted(stars.items())}


def kclique_star(
    graph: CSRGraph,
    k: int,
    *,
    variant: str = "from_k1",
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    max_patterns: int | None = None,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: k-clique-star listing (ksc-k) on a cold session."""
    if variant not in ("intersect", "from_k1"):
        raise ConfigError("variant must be 'intersect' or 'from_k1'")
    warn_one_shot("kclique_star", "kclique_star")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run(
            "kclique_star", k=k, variant=variant, max_patterns=max_patterns
        )
    )
