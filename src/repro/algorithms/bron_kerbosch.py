"""Maximal clique listing: Bron-Kerbosch with pivoting and degeneracy
ordering (paper Algorithm 2; Eppstein-Loffler-Strash variant).

The auxiliary sets ``P`` (candidates) and ``X`` (excluded) are the
paper's canonical dynamic sets; following its recommendation (Section
6.2.4) they are stored as dense bitvectors so that adds/removes are a
single bit write and the ``P ∩ N(v)`` / ``X ∩ N(v)`` steps can run on
SISA-PUM when ``N(v)`` is dense.

The outer loop follows the degeneracy order; a vertex ``v`` seeds the
recursion with ``P`` its later neighbors and ``X`` its earlier
neighbors, maintained set-centrically with a shrinking ``Later`` DB.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    PatternBudget,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.graphs.csr import CSRGraph
from repro.graphs.orientation import degeneracy_order
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def _pivot(
    ctx: SisaContext, sg: SetGraph, p: int, x: int
) -> int:
    """Tomita pivoting: pick u from P ∪ X maximizing |P ∩ N(u)|."""
    union = ctx.union(p, x)
    best_vertex = -1
    best_score = -1
    for u in ctx.elements(union):
        score = ctx.intersect_count(p, sg.neighborhood(int(u)))
        if score > best_score:
            best_score = score
            best_vertex = int(u)
    ctx.free(union)
    return best_vertex


def _bk_pivot(
    ctx: SisaContext,
    sg: SetGraph,
    r: list[int],
    p: int,
    x: int,
    cliques: list[tuple[int, ...]],
    budget: PatternBudget,
) -> None:
    if budget.exhausted:
        return
    if ctx.cardinality(p) == 0 and ctx.cardinality(x) == 0:
        cliques.append(tuple(sorted(r)))
        budget.count()
        return
    if ctx.cardinality(p) == 0:
        return
    u = _pivot(ctx, sg, p, x)
    candidates = ctx.difference(p, sg.neighborhood(u))
    for v in ctx.elements(candidates):
        if budget.exhausted:
            break
        v = int(v)
        nv = sg.neighborhood(v)
        p_next = ctx.intersect(p, nv)
        x_next = ctx.intersect(x, nv)
        _bk_pivot(ctx, sg, r + [v], p_next, x_next, cliques, budget)
        ctx.free(p_next)
        ctx.free(x_next)
        ctx.remove(p, v)
        ctx.insert(x, v)
    ctx.free(candidates)


def maximal_cliques_on(
    graph: CSRGraph,
    ctx: SisaContext,
    sg: SetGraph,
    *,
    max_patterns: int | None = None,
    max_patterns_per_root: int | None = None,
    order: np.ndarray | None = None,
) -> list[tuple[int, ...]]:
    """List maximal cliques given prebuilt context and SetGraph.

    ``max_patterns`` bounds the total clique count; alternatively
    ``max_patterns_per_root`` caps each root task's subtree (the
    paper's per-thread cutoff, which preserves parallelism on dense
    graphs where a single root would exhaust a global cutoff).
    ``order`` accepts a precomputed degeneracy order (the session API
    caches it); the order computation is host-side and uncharged, so
    passing it changes no modeled cost.
    """
    n = graph.num_vertices
    if order is None:
        order = degeneracy_order(graph).order
    cliques: list[tuple[int, ...]] = []
    budget = PatternBudget(max_patterns)
    # `Later` holds vertices not yet used as a recursion root; it starts
    # full and loses one vertex per outer iteration.
    later = ctx.create_set(range(n), universe=n, dense=True)
    for v in order:
        if budget.exhausted:
            break
        ctx.begin_task()
        v = int(v)
        nv = sg.neighborhood(v)
        ctx.remove(later, v)
        p = ctx.intersect(nv, later)
        x = ctx.difference(nv, later)
        if max_patterns_per_root is None:
            root_budget = budget
        else:
            remaining = (
                None if budget.limit is None else budget.limit - budget.found
            )
            limit = (
                max_patterns_per_root
                if remaining is None
                else min(max_patterns_per_root, remaining)
            )
            root_budget = PatternBudget(max(0, limit))
        _bk_pivot(ctx, sg, [v], p, x, cliques, root_budget)
        if root_budget is not budget:
            budget.count(root_budget.found)
        ctx.free(p)
        ctx.free(x)
    ctx.free(later)
    return cliques


def maximal_cliques(
    graph: CSRGraph,
    *,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    max_patterns: int | None = None,
    max_patterns_per_root: int | None = None,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: Bron-Kerbosch clique listing on a cold session."""
    warn_one_shot("maximal_cliques", "maximal_cliques")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(
        session.run(
            "maximal_cliques",
            max_patterns=max_patterns,
            max_patterns_per_root=max_patterns_per_root,
        )
    )
