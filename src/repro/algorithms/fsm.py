"""Frequent subgraph mining (paper Algorithm 8, Apriori-style).

Candidates of size ``k`` are generated from frequent subgraphs of size
``k - 1`` by edge extension; each candidate's support is measured with
the VF2 subgraph-isomorphism kernel (Algorithm 7), which is where all
the set operations happen.  A pattern is frequent when its embedding
count reaches ``sigma * n``.

Patterns are canonicalized by a simple exact graph-invariant key
(sorted degree sequence + sorted canonical adjacency under the best
permutation) — exponential in pattern size, fine for the small pattern
sizes FSM explores here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.algorithms.common import (
    AlgorithmRun,
    one_shot_result,
    one_shot_session,
    warn_one_shot,
)
from repro.algorithms.subgraph_iso import subgraph_isomorphism_on
from repro.errors import ConfigError
from repro.graphs.csr import CSRGraph
from repro.runtime.context import SisaContext
from repro.runtime.setgraph import SetGraph


def canonical_key(pattern: CSRGraph) -> tuple:
    """A permutation-invariant key for small patterns (exact, brute force)."""
    n = pattern.num_vertices
    best: tuple | None = None
    base_edges = {(int(u), int(v)) for u, v in pattern.edge_array()}
    for perm in itertools.permutations(range(n)):
        mapped = tuple(
            sorted(
                (min(perm[u], perm[v]), max(perm[u], perm[v]))
                for u, v in base_edges
            )
        )
        if best is None or mapped < best:
            best = mapped
    return (n, best)


def _extend_pattern(pattern: CSRGraph) -> list[CSRGraph]:
    """All one-vertex extensions: attach a new vertex to any subset
    position (single edge) — the tree-join style generation kernel."""
    n = pattern.num_vertices
    extensions = []
    edges = [(int(u), int(v)) for u, v in pattern.edge_array()]
    for anchor in range(n):
        extensions.append(CSRGraph.from_edges(n + 1, edges + [(anchor, n)]))
    # Also close one extra edge between existing vertices (cycle growth).
    for u in range(n):
        for v in range(u + 1, n):
            if not pattern.has_edge(u, v):
                extensions.append(CSRGraph.from_edges(n, edges + [(u, v)]))
    return extensions


@dataclass
class FsmResult:
    frequent: dict[int, list[CSRGraph]]  # size -> patterns
    supports: dict[tuple, int]  # canonical key -> embedding count

    @property
    def total_frequent(self) -> int:
        return sum(len(p) for p in self.frequent.values())


def frequent_subgraphs_on(
    graph: CSRGraph,
    ctx: SisaContext,
    sg: SetGraph,
    *,
    sigma: float,
    max_size: int = 3,
    max_matches_per_pattern: int = 2_000,
) -> FsmResult:
    """Mine frequent subgraphs of up to ``max_size`` vertices."""
    if not 0.0 < sigma:
        raise ConfigError("sigma must be positive")
    n = graph.num_vertices
    threshold = sigma * n
    single_edge = CSRGraph.from_edges(2, [(0, 1)])
    frequent: dict[int, list[CSRGraph]] = {}
    supports: dict[tuple, int] = {}

    count = subgraph_isomorphism_on(
        graph, ctx, sg, single_edge, max_matches=max_matches_per_pattern
    )
    assert isinstance(count, int)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
    supports[canonical_key(single_edge)] = count
    if count >= threshold:
        frequent[2] = [single_edge]
    def measure(candidates: dict[tuple, CSRGraph]) -> list[CSRGraph]:
        found: list[CSRGraph] = []
        for key, candidate in sorted(candidates.items()):
            if key in supports:
                continue
            count = subgraph_isomorphism_on(
                graph,
                ctx,
                sg,
                candidate,
                max_matches=max_matches_per_pattern,
            )
            assert isinstance(count, int)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
            supports[key] = count
            if count >= threshold:
                found.append(candidate)
        return found

    size = 3
    while size <= max_size and frequent.get(size - 1):
        candidates: dict[tuple, CSRGraph] = {}
        for parent in frequent[size - 1]:
            for child in _extend_pattern(parent):
                if child.num_vertices != size:
                    continue
                candidates.setdefault(canonical_key(child), child)
        found = measure(candidates)
        # Densification pass: a frequent size-k pattern's edge closures
        # are also size-k candidates (e.g. the triangle closes a path).
        # Iterate to a fixed point within this size.
        frontier = list(found)
        while frontier:
            closures: dict[tuple, CSRGraph] = {}
            for parent in frontier:
                for child in _extend_pattern(parent):
                    if child.num_vertices != size:
                        continue
                    key = canonical_key(child)
                    if key not in supports:
                        closures.setdefault(key, child)
            frontier = measure(closures)
            found.extend(frontier)
        if found:
            frequent[size] = found
        size += 1
    return FsmResult(frequent=frequent, supports=supports)


def frequent_subgraphs(
    graph: CSRGraph,
    *,
    sigma: float = 0.5,
    max_size: int = 3,
    threads: int = 32,
    mode: str = "sisa",
    t: float = 0.4,
    budget: float = 0.1,
    **context_kwargs,
) -> AlgorithmRun:
    """Deprecated shim: frequent subgraph mining on a cold session."""
    warn_one_shot("frequent_subgraphs", "fsm")
    session = one_shot_session(
        graph, threads=threads, mode=mode, t=t, budget=budget, **context_kwargs
    )
    return one_shot_result(session.run("fsm", sigma=sigma, max_size=max_size))
