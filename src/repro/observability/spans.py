"""Request-scoped span tracing for the serving stack.

Every step of a request's life — ``pool.submit`` → validate → admit →
compile → fuse → execute → cache — opens a :class:`Span`.  Spans form
trees: the pool's ``run()`` opens a root, each session batch and plan
nests under it, and the context's instrumented instruction bursts
become the kernel leaves, giving the full ``submit → … → kernel``
nesting the Chrome-trace export renders.

Two timelines coexist on every span:

* **wall-clock** (``perf_counter`` seconds) — when the simulator
  itself did the work; this is what the Chrome-trace ``ts``/``dur``
  fields carry, so off-the-shelf viewers lay the spans out;
* **modeled cycles** (``cycles``) — what the simulated machine paid
  inside the span.  Kernel spans carry the exact per-burst dispatch
  cost; plan spans carry the plan's attributed engine work, so a span
  tree's cycle accounting can be checked against the engine's
  per-tenant ledgers (tests do exactly that).

Recording is observation-only: no engine charge, no RNG, no SCU state.
The fused plan executor interleaves slices of different plans, so the
recorder supports *detached* starts (a span parented explicitly rather
than on the current stack) and :meth:`SpanRecorder.under` (temporarily
re-entering an open span so nested instrumentation lands in the right
subtree).

``max_spans`` bounds memory: past the cap new spans are created (the
callers still need handles) but not attached to the tree, and
``dropped`` counts them.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter


class Span:
    """One timed, attributed step of a request's execution."""

    __slots__ = (
        "name", "t0", "t1", "parent", "children", "attrs", "cycles",
    )

    def __init__(self, name: str, parent: "Span | None", attrs: dict | None):
        self.name = name
        self.t0 = perf_counter()
        self.t1: float | None = None
        self.parent = parent
        self.children: list[Span] = []
        self.attrs = attrs
        self.cycles: float | None = None

    @property
    def wall_seconds(self) -> float:
        end = self.t1 if self.t1 is not None else perf_counter()
        return end - self.t0

    def depth(self) -> int:
        """1 + the longest chain of descendants under this span."""
        best = 0
        stack = [(self, 1)]
        while stack:
            span, d = stack.pop()
            if d > best:
                best = d
            for child in span.children:
                stack.append((child, d + 1))
        return best

    def walk(self):
        """Yield ``(span, depth)`` pre-order, this span at depth 0."""
        stack = [(self, 0)]
        while stack:
            span, d = stack.pop()
            yield span, d
            for child in reversed(span.children):
                stack.append((child, d + 1))

    def find(self, name: str) -> "Span | None":
        """First descendant (pre-order) whose name matches exactly."""
        for span, __ in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        state = "open" if self.t1 is None else f"{self.wall_seconds * 1e6:.0f}us"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class SpanRecorder:
    """Collects span trees for one observability hub.

    The recorder keeps a *current* stack: :meth:`start` parents the new
    span on the stack top and pushes it; :meth:`end` pops it.  Spans
    with no open parent become roots (one per ``pool.run()`` or
    stand-alone ``session.run()``).
    """

    def __init__(self, *, max_spans: int = 250_000):
        self.max_spans = max_spans
        self.roots: list[Span] = []
        self.count = 0
        self.dropped = 0
        self._stack: list[Span] = []
        self.t0 = perf_counter()  # trace epoch for the Chrome export

    # -- recording ----------------------------------------------------

    def _attach(self, span: Span) -> None:
        if self.count >= self.max_spans:
            self.dropped += 1
            return
        self.count += 1
        if span.parent is not None:
            span.parent.children.append(span)
        else:
            self.roots.append(span)

    def start(self, name: str, attrs: dict | None = None) -> Span:
        """Open a span under the current stack top and make it current."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name, parent, attrs)
        self._attach(span)
        self._stack.append(span)
        return span

    def start_detached(
        self, name: str, parent: Span | None, attrs: dict | None = None
    ) -> Span:
        """Open a span under an explicit parent without touching the
        current stack (fused executors open all plan spans up front,
        then re-enter them slice by slice via :meth:`under`)."""
        span = Span(name, parent, attrs)
        self._attach(span)
        return span

    def end(self, span: Span, *, cycles: float | None = None) -> None:
        span.t1 = perf_counter()
        if cycles is not None:
            span.cycles = cycles
        # Pop through abandoned descendants too, so an exception that
        # skipped inner end() calls cannot wedge the stack.  Detached
        # spans were never pushed, so ending one leaves the stack alone.
        if any(top is span for top in self._stack):
            while self._stack:
                if self._stack.pop() is span:
                    break

    def enter(self, span: Span) -> None:
        """Push an already-open span as the current stack top (paired
        with :meth:`exit`; the procedural form of :meth:`under` for
        code that cannot nest another context manager)."""
        self._stack.append(span)

    def exit(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, attrs: dict | None = None):
        s = self.start(name, attrs)
        try:
            yield s
        finally:
            self.end(s)

    @contextmanager
    def under(self, span: Span | None):
        """Temporarily make ``span`` the current stack top, so spans
        started inside nest under it (kernel instrumentation during a
        fused slice lands in the owning plan's subtree)."""
        if span is None:
            yield
            return
        self._stack.append(span)
        try:
            yield
        finally:
            if self._stack and self._stack[-1] is span:
                self._stack.pop()

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- export -------------------------------------------------------

    def max_depth(self) -> int:
        """The deepest nesting level across all recorded trees."""
        return max((root.depth() for root in self.roots), default=0)

    def chrome_trace(self, roots: list[Span] | None = None) -> dict:
        """The recorded spans as a Chrome-trace-format JSON object.

        One complete ("X") event per finished span; ``ts``/``dur`` are
        microseconds relative to the recorder's epoch.  Each root tree
        gets its own ``tid`` so interleaved plans render side by side,
        and every event carries its tree depth, modeled cycles and
        attributes in ``args``.  Load the dumped JSON in any
        ``chrome://tracing``-compatible viewer (e.g. Perfetto).
        """
        events = []
        t0 = self.t0
        for tid, root in enumerate(roots if roots is not None else self.roots):
            for span, depth in root.walk():
                if span.t1 is None:
                    continue  # still open; not representable as "X"
                args: dict = {"depth": depth}
                if span.cycles is not None:
                    args["modeled_cycles"] = span.cycles
                if span.attrs:
                    args.update(
                        (k, v)
                        for k, v in span.attrs.items()
                        if isinstance(v, (str, int, float, bool, type(None)))
                    )
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": (span.t0 - t0) * 1e6,
                        "dur": (span.t1 - span.t0) * 1e6,
                        "pid": 0,
                        "tid": tid,
                        "args": args,
                    }
                )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }
