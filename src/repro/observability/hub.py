"""The Observability hub: one object threaded through every layer.

A single :class:`Observability` instance is shared by a
:class:`~repro.session.pool.SessionPool`, its sessions, their contexts
and SCUs, the result caches, the admission controller and the
orientation maintainers.  Each layer holds a nullable reference
(``obs``/``self.obs``) and guards every feed with ``if obs is not
None`` — with observability disabled no instrumentation code runs at
all, and with it enabled every feed is observation-only (no engine
charge, no RNG, no SCU state), so modeled cycles and outputs are
bit-identical either way (asserted by ``bench_observability`` and the
observability tests).

The hub owns:

* ``registry`` — the :class:`MetricsRegistry` behind ``pool.metrics()``
  (families pre-declared here so hot paths skip name lookups);
* ``spans`` — the :class:`SpanRecorder` assembling per-request span
  trees (``submit → … → kernel``);
* ``set_sizes`` — one Fig. 9b-style
  :class:`~repro.runtime.trace.SetSizeHistogram` per tenant;
* ``sink`` — an optional periodic :class:`JsonlSink` the pool flushes
  every N ``run()`` calls.

``tenant``/``workload`` form the hub's *current attribution context*:
executors set them when a plan slice starts, so kernel-level feeds
(which know nothing about plans) still label their metrics correctly.
"""

from __future__ import annotations

from collections import Counter

from repro.runtime.trace import SetSizeHistogram
from repro.observability.registry import (
    CYCLE_BUCKETS,
    WALL_BUCKETS,
    MetricsRegistry,
)
from repro.observability.spans import SpanRecorder


class Observability:
    """Shared metrics + spans + per-tenant trace aggregation."""

    def __init__(
        self,
        *,
        max_series: int = 64,
        max_spans: int = 250_000,
        sink=None,
    ):
        self.registry = MetricsRegistry(max_series=max_series)
        self.spans = SpanRecorder(max_spans=max_spans)
        self.set_sizes: dict[str, SetSizeHistogram] = {}
        self.sink = sink
        # Current attribution context (set by plan executors).
        self.tenant = "default"
        self.workload = ""
        reg = self.registry
        # Pre-declared families, bound to attributes so the hot feed
        # paths are one dict update away from the counters.
        self._dispatch = reg.counter(
            "sisa_dispatch_total",
            "SISA instructions dispatched by the SCU",
            ("opcode", "backend"),
        )
        self._fused = reg.counter(
            "fused_macros_total",
            "cross-task fused count-burst macros issued",
            ("tenant",),
        )
        self._burst_cycles = reg.histogram(
            "burst_modeled_cycles",
            "modeled cycles per instrumented instruction burst",
            ("tenant", "workload"),
            buckets=CYCLE_BUCKETS,
        )
        self._run_wall = reg.histogram(
            "plan_wall_seconds",
            "wall-clock seconds per executed plan",
            ("tenant", "workload"),
            buckets=WALL_BUCKETS,
        )
        self._cache = reg.counter(
            "result_cache_events_total",
            "result-cache hits/misses/corruptions/evictions",
            ("event", "workload"),
        )
        self._orientation = reg.counter(
            "orientation_events_total",
            "incremental-orientation maintenance events",
            ("event",),
        )
        self._admission = reg.counter(
            "admission_decisions_total",
            "admission controller decisions",
            ("action", "tenant"),
        )
        self._dedup = reg.counter(
            "plan_dedup_total",
            "sub-requests answered by dedup instead of execution",
            ("tenant", "workload"),
        )
        self._tenant_cycles = reg.counter(
            "tenant_work_cycles_total",
            "modeled work cycles charged to each tenant (pool ledger)",
            ("tenant",),
        )
        self._tenant_retry = reg.counter(
            "tenant_retry_cycles_total",
            "modeled cycles charged to each tenant's retry ledger",
            ("tenant",),
        )
        self._runs = reg.counter(
            "pool_runs_total", "pool.run() calls completed"
        )
        self._plans = reg.counter(
            "plans_total", "plan executions by outcome", ("outcome",)
        )
        self._lane_util = reg.gauge(
            "parallel_lane_utilization",
            "per-lane work share of the last parallel run's makespan",
            ("lane",),
        )
        self._shard_vertices = reg.gauge(
            "parallel_shard_vertices",
            "vertices owned by each shard in the last parallel run",
            ("shard",),
        )
        self._parallel_units = reg.counter(
            "parallel_units_total",
            "count-burst units by execution path (offloaded/inline)",
            ("path",),
        )
        self._parallel_merge = reg.counter(
            "parallel_merge_cycles_total",
            "modeled host merge cycles charged across parallel runs",
        )

    # ------------------------------------------------------------------
    # Attribution context
    # ------------------------------------------------------------------

    def set_context(self, tenant: str, workload: str) -> None:
        self.tenant = tenant
        self.workload = workload

    # ------------------------------------------------------------------
    # SCU dispatch feeds (repro.isa.scu)
    # ------------------------------------------------------------------

    def dispatch(self, opcode, backend: str) -> None:
        self._dispatch.inc((opcode.name, backend))

    def dispatch_batch(self, opcodes, backends) -> None:
        inc = self._dispatch.inc
        for (opcode, backend), n in Counter(zip(opcodes, backends)).items():
            inc((opcode.name, backend), n)

    def fused_macro(self) -> None:
        self._fused.inc((self.tenant,))

    # ------------------------------------------------------------------
    # Kernel burst feeds (repro.runtime.context)
    # ------------------------------------------------------------------

    def kernel_start(self, kind: str, n: int):
        """Open a kernel-level span for one instruction burst."""
        return self.spans.start(f"kernel:{kind}", {"ops": n})

    def kernel_end(self, span, cycles: float, size_a, sizes_b) -> None:
        """Close a kernel span: exact modeled burst cost on the span,
        the burst into the cycle histogram, and every processed input
        set size into the current tenant's Fig. 9b histogram.
        ``size_a=None`` skips the probe-operand observation (bursts
        with no shared probe operand, e.g. element updates)."""
        self.spans.end(span, cycles=cycles)
        self._burst_cycles.observe((self.tenant, self.workload), cycles)
        hist = self.set_sizes.get(self.tenant)
        if hist is None:
            hist = self.set_sizes[self.tenant] = SetSizeHistogram()
        if size_a is not None:
            hist.observe(size_a)
        if sizes_b is not None:
            hist.observe_many(sizes_b)

    # ------------------------------------------------------------------
    # Serving-layer feeds
    # ------------------------------------------------------------------

    def cache_event(self, event: str, workload: str) -> None:
        self._cache.inc((event, workload))

    def orientation_event(self, event: str) -> None:
        self._orientation.inc((event,))

    def admission(self, action: str, tenant: str) -> None:
        self._admission.inc((action, tenant))

    def dedup(self, workload: str) -> None:
        self._dedup.inc((self.tenant, workload))

    def charge(self, tenant: str, cycles: float) -> None:
        """Mirror one pool ledger charge.  The counter accumulates with
        the same float additions in the same order as the pool's
        ``_tenant_cycles`` dict, so the two stay *exactly* equal."""
        self._tenant_cycles.inc((tenant,), cycles)

    def charge_retry(self, tenant: str, cycles: float) -> None:
        self._tenant_retry.inc((tenant,), cycles)

    def plan_done(self, outcome: str) -> None:
        self._plans.inc((outcome,))

    def parallel_run(self, report) -> None:
        """Publish one reconciled parallel run
        (:class:`~repro.parallel.merge.ParallelReport`): lane-
        utilization and shard-balance gauges, offload-path counters,
        the merge-charge counter, and one detached span per lane
        (modeled busy cycles) and per shard (owned vertices)."""
        makespan = report.makespan
        for lane, work in enumerate(report.lane_work):
            self._lane_util.set(
                (str(lane),),
                work / makespan if makespan > 0.0 else 0.0,
            )
        for shard, count in enumerate(report.shard_vertices):
            self._shard_vertices.set((str(shard),), float(count))
        self._parallel_units.inc(("offloaded",), report.offloaded_units)
        self._parallel_units.inc(("inline",), report.inline_units)
        self._parallel_merge.inc((), report.merge_cycles)
        for lane, busy in enumerate(report.lane_busy):
            span = self.spans.start_detached(
                f"parallel:lane:{lane}", None, {"lanes": report.lanes}
            )
            self.spans.end(span, cycles=busy)
        for shard, count in enumerate(report.shard_vertices):
            span = self.spans.start_detached(
                f"parallel:shard:{shard}", None, {"vertices": count}
            )
            self.spans.end(span, cycles=None)

    def run_done(self) -> None:
        self._runs.inc(())

    def plan_wall(self, tenant: str, workload: str, seconds: float) -> None:
        self._run_wall.observe((tenant, workload), seconds)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """One JSON-safe snapshot of everything the hub aggregates."""
        return {
            "metrics": self.registry.snapshot(),
            "set_sizes": {
                tenant: hist.as_dict()
                for tenant, hist in sorted(self.set_sizes.items())
            },
            "spans": {
                "recorded": self.spans.count,
                "dropped": self.spans.dropped,
                "max_depth": self.spans.max_depth(),
            },
        }

    def prometheus_text(self) -> str:
        from repro.observability.export import prometheus_text

        return prometheus_text(self.registry)

    def flush_sink(self, health: dict, runs: int) -> bool:
        """Drive the periodic JSONL sink (no-op without one)."""
        if self.sink is None:
            return False
        return self.sink.maybe_write(self.registry, health, runs)
