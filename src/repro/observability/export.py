"""Telemetry exporters: Prometheus text, Chrome traces, JSONL sink.

Three machine-readable views of one :class:`MetricsRegistry` /
:class:`SpanRecorder` pair:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` lines,
  histogram ``_bucket``/``_sum``/``_count`` expansion), so a scrape
  endpoint is one ``write()`` away;
* :func:`write_chrome_trace` — dumps a span tree (or a whole
  recorder) as Chrome-trace JSON for off-the-shelf viewers;
* :class:`JsonlSink` — the periodic append-only log the pool drives
  every N ``run()`` calls: each record carries the pool's
  ``HealthSnapshot.as_dict()`` plus the registry counter *deltas*
  since the previous record, so a soak's whole degradation history
  replays from one file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.observability.registry import MetricsRegistry, label_str


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_block(names, values) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{n}="{_escape(label_str(v))}"' for n, v in zip(names, values)
    )
    return "{" + pairs + "}"


def _merge_labels(names, values, extra_name, extra_value) -> str:
    pairs = [f'{n}="{_escape(label_str(v))}"' for n, v in zip(names, values)]
    pairs.append(f'{extra_name}="{extra_value}"')
    return "{" + ",".join(pairs) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, family in sorted(registry.families().items()):
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        names = family.label_names
        if family.kind == "histogram":
            for key in sorted(family.series, key=repr):
                series = family.series[key]
                cumulative = 0
                for bound, count in zip(family.buckets, series.counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_merge_labels(names, key, 'le', f'{bound:g}')}"
                        f" {cumulative}"
                    )
                cumulative += series.counts[-1]
                lines.append(
                    f"{name}_bucket"
                    f"{_merge_labels(names, key, 'le', '+Inf')} {cumulative}"
                )
                block = _label_block(names, key)
                lines.append(f"{name}_sum{block} {series.sum:g}")
                lines.append(f"{name}_count{block} {series.count}")
        else:
            for key in sorted(family.series, key=repr):
                lines.append(
                    f"{name}{_label_block(names, key)} "
                    f"{family.series[key]:g}"
                )
    return "\n".join(lines) + "\n"


def write_chrome_trace(recorder_or_span, path) -> Path:
    """Dump spans as Chrome-trace JSON; returns the written path.

    Accepts a :class:`~repro.observability.spans.SpanRecorder` (whole
    trace) or a single :class:`~repro.observability.spans.Span` (one
    request's tree, e.g. ``result.spans``).
    """
    from repro.observability.spans import Span, SpanRecorder

    if isinstance(recorder_or_span, SpanRecorder):
        payload = recorder_or_span.chrome_trace()
    elif isinstance(recorder_or_span, Span):
        recorder = SpanRecorder()
        recorder.t0 = recorder_or_span.t0
        payload = recorder.chrome_trace([recorder_or_span])
    else:
        raise TypeError(
            "write_chrome_trace takes a SpanRecorder or a Span, got "
            f"{type(recorder_or_span).__name__}"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))
    return path


class JsonlSink:
    """Append-only JSONL telemetry log, one record per flush.

    Each record is one JSON object::

        {"seq": 3, "timestamp": ..., "runs": 12,
         "health": {...HealthSnapshot.as_dict()...},
         "metrics_delta": {family: {"label|values": delta, ...}}}

    ``metrics_delta`` holds only what changed since the previous
    record (counters/gauges by difference, histograms by added
    count/sum), so tailing the file shows each interval's activity
    directly.
    """

    def __init__(self, path, *, every: int = 1):
        from repro.errors import ConfigError

        if every < 1:
            raise ConfigError("telemetry interval must be >= 1 run")
        self.path = Path(path)
        self.every = every
        self.records_written = 0
        self._calls = 0
        self._last_snapshot: dict | None = None
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def maybe_write(self, registry: MetricsRegistry, health: dict, runs: int) -> bool:
        """Count one ``run()``; flush a record every ``every`` calls.
        Returns True when a record was written."""
        self._calls += 1
        if self._calls % self.every:
            return False
        self.write(registry, health, runs)
        return True

    def write(self, registry: MetricsRegistry, health: dict, runs: int) -> None:
        snapshot = registry.snapshot()
        record = {
            "seq": self.records_written,
            "timestamp": time.time(),
            "runs": runs,
            "health": health,
            "metrics_delta": MetricsRegistry.delta(
                snapshot, self._last_snapshot
            ),
        }
        self._last_snapshot = snapshot
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, default=str) + "\n")
        self.records_written += 1
