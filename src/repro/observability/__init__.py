"""End-to-end observability for the SISA serving stack.

One :class:`Observability` hub per pool bundles a bounded
:class:`MetricsRegistry`, a :class:`SpanRecorder` (request-scoped
``submit → … → kernel`` span trees) and per-tenant Fig. 9b set-size
histograms; the exporters render them as ``pool.metrics()`` snapshots,
Prometheus text, Chrome-trace JSON and a periodic JSONL sink.

All instrumentation is observation-only and nullable-guarded: disabled
observability runs zero instrumentation code, enabled observability
leaves modeled cycles and outputs bit-identical.
"""

from repro.observability.registry import (
    CYCLE_BUCKETS,
    OVERFLOW_LABEL,
    WALL_BUCKETS,
    MetricsRegistry,
)
from repro.observability.spans import Span, SpanRecorder
from repro.observability.export import (
    JsonlSink,
    prometheus_text,
    write_chrome_trace,
)
from repro.observability.hub import Observability

__all__ = [
    "CYCLE_BUCKETS",
    "OVERFLOW_LABEL",
    "WALL_BUCKETS",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "JsonlSink",
    "prometheus_text",
    "write_chrome_trace",
    "Observability",
]
