"""The metrics registry: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the single mutable store behind
``pool.metrics()``.  Three metric kinds cover everything the serving
stack reports:

* **counters** — monotonically increasing floats (instructions
  dispatched, cache hits, cycles charged to a tenant);
* **gauges** — last-written values (queue depths, resident sessions);
* **histograms** — fixed-boundary bucket counts plus a running sum
  (modeled cycles per burst, wall-clock seconds per run).

Every series is keyed by a tuple of label *values* under a family's
declared label *names* (``("tenant", "workload")`` → ``("t0",
"triangles")``).  Bucket boundaries are fixed at family creation so
snapshots taken at different times are always mergeable/diffable.

**Cardinality cap.**  Labels like ``workload`` or ``opcode`` are drawn
from small closed sets, but a buggy caller could label by request id
and grow the registry without bound.  Each family therefore holds at
most ``max_series`` distinct label tuples; past the cap, new label
tuples fold into one reserved overflow series (so totals stay exact)
and ``dropped_series`` counts how many distinct tuples were folded.

The registry is observation-only state: feeding it never touches the
engine, the SCU statistics or any RNG, so enabling metrics cannot
change modeled cycles or outputs (asserted by the observability bench
and tests).
"""

from __future__ import annotations

from repro.errors import ConfigError

# One reserved label value for series folded by the cardinality cap.
OVERFLOW_LABEL = "__overflow__"

# Modeled-cycle histogram boundaries (cycles per instrumented burst):
# decade buckets spanning a single metadata fetch to a full large-graph
# region.  Fixed here so per-tenant histograms from different sessions
# and epochs aggregate bucket-for-bucket.
CYCLE_BUCKETS = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

# Wall-clock histogram boundaries (seconds): 10 µs .. 10 s.
WALL_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def label_str(value) -> str:
    """A stable string form of one label value (enums by name)."""
    name = getattr(value, "name", None)
    if name is not None and not isinstance(value, str):
        return str(name)
    return str(value)


class _Family:
    """Shared bookkeeping of one named metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple, max_series: int):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self.series: dict[tuple, object] = {}
        self.dropped_series = 0
        self._overflow_key = (OVERFLOW_LABEL,) * len(self.label_names)

    def _key(self, labels: tuple) -> tuple:
        """Admit ``labels`` as a series key, folding past the cap."""
        series = self.series
        if labels in series or len(series) < self.max_series:
            return labels
        if labels != self._overflow_key:
            self.dropped_series += 1
        return self._overflow_key


class _CounterFamily(_Family):
    kind = "counter"

    def inc(self, labels: tuple, amount: float = 1.0) -> None:
        key = self._key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def get(self, labels: tuple) -> float:
        return self.series.get(labels, 0.0)


class _GaugeFamily(_Family):
    kind = "gauge"

    def set(self, labels: tuple, value: float) -> None:
        self.series[self._key(labels)] = value

    def get(self, labels: tuple) -> float:
        return self.series.get(labels, 0.0)


class _HistogramSeries:
    """Bucket counts + sum + count of one histogram series."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, nbuckets: int):
        self.counts = [0] * (nbuckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class _HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple,
        max_series: int,
        buckets: tuple,
    ):
        super().__init__(name, help, label_names, max_series)
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigError("histogram buckets must be sorted and non-empty")
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, labels: tuple, value: float) -> None:
        key = self._key(labels)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _HistogramSeries(len(self.buckets))
        # Linear scan: bucket lists are short (<= 8) and fixed, and the
        # common case (small bursts) exits in the first iterations.
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series.counts[idx] += 1
        series.sum += value
        series.count += 1


class MetricsRegistry:
    """A bounded, label-aware store of counters, gauges and histograms.

    ``max_series`` is the per-family cardinality cap (see module
    docstring).  Families are created on first use through
    :meth:`counter` / :meth:`gauge` / :meth:`histogram`; re-declaring a
    family with different label names or kind raises ``ConfigError`` —
    a name means one thing for the registry's whole lifetime.
    """

    def __init__(self, *, max_series: int = 64):
        if max_series < 1:
            raise ConfigError("max_series must be positive")
        self.max_series = max_series
        self._families: dict[str, _Family] = {}

    # -- family declaration -------------------------------------------

    def _declare(self, cls, name: str, help: str, label_names: tuple, **kw):
        family = self._families.get(name)
        if family is not None:
            if not isinstance(family, cls) or family.label_names != tuple(
                label_names
            ):
                raise ConfigError(
                    f"metric {name!r} is already declared as a "
                    f"{family.kind} with labels {family.label_names!r}"
                )
            return family
        family = cls(name, help, tuple(label_names), self.max_series, **kw)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", label_names: tuple = ()
    ) -> _CounterFamily:
        return self._declare(_CounterFamily, name, help, label_names)

    def gauge(
        self, name: str, help: str = "", label_names: tuple = ()
    ) -> _GaugeFamily:
        return self._declare(_GaugeFamily, name, help, label_names)

    def histogram(
        self,
        name: str,
        help: str = "",
        label_names: tuple = (),
        *,
        buckets: tuple = CYCLE_BUCKETS,
    ) -> _HistogramFamily:
        return self._declare(
            _HistogramFamily, name, help, label_names, buckets=buckets
        )

    # -- convenience write paths --------------------------------------

    def inc(self, name: str, labels: tuple = (), amount: float = 1.0) -> None:
        self._families[name].inc(labels, amount)

    def set(self, name: str, labels: tuple = (), value: float = 0.0) -> None:
        self._families[name].set(labels, value)

    def observe(self, name: str, labels: tuple = (), value: float = 0.0) -> None:
        self._families[name].observe(labels, value)

    # -- read paths ---------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def families(self) -> dict[str, _Family]:
        return dict(self._families)

    def counter_value(self, name: str, labels: tuple = ()) -> float:
        """One counter series' current value (0.0 when absent)."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return family.series.get(labels, 0.0)

    def snapshot(self) -> dict:
        """A JSON-safe copy of every family and series.

        Label values are stringified (enums by name) and joined with
        ``|`` into one key per series, so the snapshot round-trips
        through ``json.dumps`` unchanged.
        """
        out: dict = {}
        for name, family in sorted(self._families.items()):
            entry: dict = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "dropped_series": family.dropped_series,
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
                entry["series"] = {
                    "|".join(label_str(v) for v in key): {
                        "counts": list(s.counts),
                        "sum": s.sum,
                        "count": s.count,
                    }
                    for key, s in family.series.items()
                }
            else:
                entry["series"] = {
                    "|".join(label_str(v) for v in key): value
                    for key, value in family.series.items()
                }
            out[name] = entry
        return out

    @staticmethod
    def delta(
        current: dict, previous: dict | None
    ) -> dict:
        """Counter/gauge deltas between two :meth:`snapshot` dicts
        (histograms are reported by their running ``count``/``sum``).

        Used by the periodic JSONL sink so each record carries what
        changed since the last record, not the lifetime totals."""
        if previous is None:
            previous = {}
        out: dict = {}
        for name, entry in current.items():
            prev_entry = previous.get(name, {})
            prev_series = prev_entry.get("series", {})
            series: dict = {}
            if entry["kind"] == "histogram":
                for key, s in entry["series"].items():
                    p = prev_series.get(key, {"sum": 0.0, "count": 0})
                    d_count = s["count"] - p["count"]
                    if d_count:
                        series[key] = {
                            "count": d_count,
                            "sum": s["sum"] - p["sum"],
                        }
            else:
                for key, value in entry["series"].items():
                    d = value - prev_series.get(key, 0.0)
                    if d:
                        series[key] = d
            if series:
                out[name] = series
        return out
