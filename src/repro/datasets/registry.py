"""Synthetic stand-ins for the paper's Table 7 datasets.

The paper evaluates on Network Repository graphs that we cannot download
in this offline environment.  Per the substitution policy in DESIGN.md,
every dataset is replaced by a deterministic synthetic graph matched on:

* vertex count ``n`` (exact, except *large* graphs which are scaled down
  by the recorded ``scale`` factor so pure-Python simulation finishes),
* edge count ``m`` (approximate; generators sample to a target),
* the structural regime the paper says drives SISA's behaviour
  (Fig. 7a): heavy-tailed + dense clusters for bio/brain graphs,
  dense quasi-bipartite cores for economic graphs, light tails for
  social / scientific-computing graphs, near-complete density for
  ant-colony interaction and DIMACS instances.

``load(name)`` returns the same graph on every call (seeded from the
dataset name).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import DatasetError
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    bipartite_core_graph,
    chung_lu_graph,
    gnp_random_graph,
    near_complete_graph,
    planted_clique_graph,
)

# Structural regimes (see module docstring).
BIO = "bio"  # heavy tail + planted dense cliques
BRAIN = "brain"  # heavy tail, moderate cliques
INTERACTION = "interaction"  # small, near-complete
ECON = "econ"  # dense quasi-bipartite core
SOCIAL = "social"  # light tail
SCIENTIFIC = "scientific"  # light tail, near-regular
DIMACS = "dimacs"  # G(n, 0.9)


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one Table 7 dataset and its synthetic stand-in."""

    name: str
    paper_vertices: int
    paper_edges: int
    regime: str
    large: bool = False
    # Down-scale factor applied to (n, m) for large graphs.
    scale: int = 1

    @property
    def num_vertices(self) -> int:
        return max(64, self.paper_vertices // self.scale)

    @property
    def num_edges(self) -> int:
        """Edge count of the stand-in.

        Scaling n by s and m by s^2 preserves the edge *density*
        (and the degree-to-n ratio) of the original graph — scaling m
        by only s would make the stand-in s times denser than the
        paper's graph and distort every set-size trade-off.  Very
        sparse giants keep at least average degree 4 so the mining
        workloads stay non-trivial.
        """
        density_preserving = self.paper_edges // (self.scale * self.scale)
        return max(128, 2 * self.num_vertices, density_preserving)


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> None:
    _SPECS[spec.name] = spec


# --- Small-graph suite (Fig. 6) --------------------------------------
_register(DatasetSpec("bio-SC-GT", 1_700, 34_000, BIO))
_register(DatasetSpec("bio-CE-PG", 1_800, 48_000, BIO))
_register(DatasetSpec("bio-DM-CX", 4_000, 77_000, BIO))
_register(DatasetSpec("bio-DR-CX", 3_200, 85_000, BIO))
_register(DatasetSpec("bio-HS-LC", 4_200, 39_000, BIO))
_register(DatasetSpec("bio-SC-HT", 2_000, 63_000, BIO))
_register(DatasetSpec("bio-WormNetB3", 2_400, 79_000, BIO))
_register(DatasetSpec("bn-flyMedulla", 1_800, 8_900, BRAIN))
_register(DatasetSpec("bn-mouse", 1_100, 90_800, BRAIN))
_register(DatasetSpec("int-antCol3-d1", 161, 11_100, INTERACTION))
_register(DatasetSpec("int-antCol5-d1", 153, 9_000, INTERACTION))
_register(DatasetSpec("int-antCol6-d2", 165, 10_200, INTERACTION))
_register(DatasetSpec("intD-antCol4", 134, 5_000, INTERACTION))
_register(DatasetSpec("int-HosWardProx", 1_800, 1_400, INTERACTION))
_register(DatasetSpec("econ-beacxc", 498, 42_000, ECON))
_register(DatasetSpec("econ-beaflw", 508, 44_900, ECON))
_register(DatasetSpec("econ-mbeacxc", 493, 41_600, ECON))
_register(DatasetSpec("econ-orani678", 2_500, 86_800, ECON))
_register(DatasetSpec("soc-fbMsg", 1_900, 13_800, SOCIAL))
_register(DatasetSpec("dimacs-c500-9", 501, 112_000, DIMACS))

# --- Large-graph suite (Fig. 8), scaled down for Python simulation ---
_register(DatasetSpec("bio-humanGene", 14_000, 9_000_000, BIO, large=True, scale=8))
_register(DatasetSpec("bio-mouseGene", 45_000, 14_500_000, BIO, large=True, scale=16))
_register(DatasetSpec("int-dating", 169_000, 17_300_000, SOCIAL, large=True, scale=32))
_register(
    DatasetSpec("edit-enwiktionary", 2_100_000, 5_500_000, SOCIAL, large=True, scale=128)
)
_register(DatasetSpec("sc-pwtk", 217_900, 5_600_000, SCIENTIFIC, large=True, scale=32))
_register(DatasetSpec("soc-orkut", 3_100_000, 117_000_000, SOCIAL, large=True, scale=512))


def _seed_for(name: str) -> int:
    return zlib.crc32(name.encode("utf-8"))


_BUILDERS: dict[str, Callable[[DatasetSpec, int], CSRGraph]] = {
    # Per-dataset jitter on the tail shape keeps structurally similar
    # datasets from collapsing into identical cutoff-bounded workloads.
    BIO: lambda spec, seed: planted_clique_graph(
        spec.num_vertices,
        spec.num_edges,
        num_cliques=max(4, spec.num_vertices // 200),
        clique_size=max(8, min(24, spec.num_vertices // 60)),
        gamma=1.85 + 0.03 * (seed % 5),
        seed=seed,
        max_weight_fraction=0.25 + 0.02 * (seed % 7),
    ),
    BRAIN: lambda spec, seed: planted_clique_graph(
        spec.num_vertices,
        spec.num_edges,
        num_cliques=max(3, spec.num_vertices // 300),
        clique_size=10,
        gamma=2.0,
        seed=seed,
        max_weight_fraction=0.2 + 0.03 * (seed % 5),
    ),
    INTERACTION: lambda spec, seed: near_complete_graph(
        spec.num_vertices,
        missing_fraction=max(
            0.05,
            1.0 - 2.0 * spec.num_edges / (spec.num_vertices * (spec.num_vertices - 1)),
        ),
        seed=seed,
    )
    if spec.num_edges * 4 > spec.num_vertices ** 2 // 2
    else chung_lu_graph(spec.num_vertices, spec.num_edges, gamma=2.4, seed=seed),
    ECON: lambda spec, seed: bipartite_core_graph(
        spec.num_vertices, spec.num_edges, core_fraction=0.25, seed=seed
    ),
    SOCIAL: lambda spec, seed: chung_lu_graph(
        spec.num_vertices, spec.num_edges, gamma=2.6, seed=seed
    ),
    # Scientific-computing meshes are near-regular (sc-pwtk's max degree
    # is under 0.1% of n): an Erdos-Renyi graph at matched density has
    # the right concentrated degree distribution.
    SCIENTIFIC: lambda spec, seed: gnp_random_graph(
        spec.num_vertices,
        min(1.0, 2.0 * spec.num_edges / (spec.num_vertices * (spec.num_vertices - 1))),
        seed=seed,
    ),
    DIMACS: lambda spec, seed: gnp_random_graph(spec.num_vertices, 0.9, seed=seed),
}


def dataset_names(*, large: bool | None = None) -> list[str]:
    """All registered dataset names, optionally filtered by size class."""
    return [
        name
        for name, spec in _SPECS.items()
        if large is None or spec.large == large
    ]


def dataset_spec(name: str) -> DatasetSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {sorted(_SPECS)}"
        ) from None


@lru_cache(maxsize=None)
def load(name: str) -> CSRGraph:
    """Load (generate) the deterministic stand-in graph for ``name``."""
    spec = dataset_spec(name)
    builder = _BUILDERS[spec.regime]
    return builder(spec, _seed_for(name))
