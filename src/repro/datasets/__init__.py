"""Named synthetic stand-ins for the paper's Table 7 datasets."""

from repro.datasets.registry import (
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load,
)

__all__ = ["DatasetSpec", "dataset_names", "dataset_spec", "load"]
