"""The Set Metadata (SM) structure and set-id management.

The SCU maintains, per logical set ID, the set's representation type,
cardinality, and location (paper Sections 3 and 8.4).  Set IDs are
returned by set-creating instructions and used like pointers.  The SM
is conceptually in memory; the SMB cache (``repro.hw.cache``) makes
lookups cheap when metadata is hot.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import SetError
from repro.sets.base import Representation, VertexSet


@dataclass
class SetMeta:
    """One SM entry: what the SCU knows about a set."""

    set_id: int
    representation: Representation
    cardinality: int
    universe: int
    # A synthetic 'address' so the model can mimic address mapping.
    address: int

    @property
    def is_dense(self) -> bool:
        return self.representation is Representation.DENSE


class SetMetadataTable:
    """Maps logical set IDs to SM entries and to the backing set values."""

    def __init__(self) -> None:
        self._meta: dict[int, SetMeta] = {}
        self._values: dict[int, VertexSet] = {}
        self._ids = itertools.count(1)
        self._next_address = 0x1000_0000
        # Monotonic count of register() calls — the session API's reuse
        # benchmark asserts a warm run performs zero re-registrations.
        self.registrations = 0
        # Freed SM slots are recycled (id + SetMeta record) so hot
        # create/free loops (e.g. per-edge intermediates in k-clique)
        # do not grow the id space or re-allocate metadata records.
        # Cost-model equivalent to fresh ids: the SCU invalidates the
        # SMB entry on delete either way.
        self._free: list[SetMeta] = []

    def register(self, value: VertexSet) -> int:
        self.registrations += 1
        if self._free:
            meta = self._free.pop()
            set_id = meta.set_id
            meta.representation = value.representation
            meta.cardinality = value.cardinality
            meta.universe = value.universe
            meta.address = self._next_address
        else:
            set_id = next(self._ids)
            meta = SetMeta(
                set_id=set_id,
                representation=value.representation,
                cardinality=value.cardinality,
                universe=value.universe,
                address=self._next_address,
            )
        self._meta[set_id] = meta
        self._next_address += max(64, value.storage_bits // 8)
        self._values[set_id] = value
        return set_id

    def update(self, set_id: int, value: VertexSet) -> None:
        meta = self.meta(set_id)
        meta.representation = value.representation
        meta.cardinality = value.cardinality
        meta.universe = value.universe
        self._values[set_id] = value

    def meta(self, set_id: int) -> SetMeta:
        try:
            return self._meta[set_id]
        except KeyError:
            raise SetError(f"unknown set id {set_id}") from None

    def value(self, set_id: int) -> VertexSet:
        try:
            return self._values[set_id]
        except KeyError:
            raise SetError(f"unknown set id {set_id}") from None

    def metas_of(self, set_ids) -> list[SetMeta]:
        """SM entries for a whole frontier (one metadata fetch phase)."""
        meta = self._meta
        try:
            return [meta[s] for s in set_ids]
        except KeyError as exc:
            raise SetError(f"unknown set id {exc.args[0]}") from None

    def values_of(self, set_ids) -> list[VertexSet]:
        """Backing values for a whole frontier."""
        values = self._values
        try:
            return [values[s] for s in set_ids]
        except KeyError as exc:
            raise SetError(f"unknown set id {exc.args[0]}") from None

    def delete(self, set_id: int) -> None:
        meta = self.meta(set_id)  # raise on unknown ids
        del self._meta[set_id]
        del self._values[set_id]
        self._free.append(meta)

    def __contains__(self, set_id: int) -> bool:
        return set_id in self._meta

    def __len__(self) -> int:
        return len(self._meta)
