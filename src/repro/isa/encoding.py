"""RISC-V compliant binary encoding of SISA instructions (paper Fig. 5).

Bit layout of the 32-bit instruction word::

    31      25 24  20 19  15 14 13 12 11   7 6      0
    [ funct7 ][ rs2 ][ rs1 ][xd][xs1][xs2][ rd ][opcode]

* ``funct7`` (7 bits): the SISA operation identifier (up to 128 ops),
* ``rs1``/``rs2`` (5 bits each): registers holding input set IDs,
* ``rd`` (5 bits): register receiving the output set ID,
* ``xd``/``xs1``/``xs2``: 1 if the corresponding register operand is used,
* ``opcode`` (7 bits): the RISC-V custom opcode, fixed to 0x16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IsaError
from repro.isa.opcodes import CUSTOM_OPCODE, MAX_FUNCT7


@dataclass(frozen=True)
class EncodedInstruction:
    """Decoded field view of one 32-bit SISA instruction word."""

    funct7: int
    rs2: int
    rs1: int
    xd: bool
    xs1: bool
    xs2: bool
    rd: int
    opcode: int = CUSTOM_OPCODE


def encode(
    funct7: int,
    *,
    rd: int = 0,
    rs1: int = 0,
    rs2: int = 0,
    xd: bool = True,
    xs1: bool = True,
    xs2: bool = True,
) -> int:
    """Pack fields into a 32-bit instruction word."""
    if not 0 <= funct7 <= MAX_FUNCT7:
        raise IsaError(f"funct7 out of range: {funct7}")
    for name, reg in (("rd", rd), ("rs1", rs1), ("rs2", rs2)):
        if not 0 <= reg < 32:
            raise IsaError(f"{name} out of range: {reg}")
    word = 0
    word |= (funct7 & 0x7F) << 25
    word |= (rs2 & 0x1F) << 20
    word |= (rs1 & 0x1F) << 15
    word |= (1 if xd else 0) << 14
    word |= (1 if xs1 else 0) << 13
    word |= (1 if xs2 else 0) << 12
    word |= (rd & 0x1F) << 7
    word |= CUSTOM_OPCODE & 0x7F
    return word


def decode(word: int) -> EncodedInstruction:
    """Unpack a 32-bit instruction word; validates the custom opcode."""
    if not 0 <= word < (1 << 32):
        raise IsaError("instruction word must be a 32-bit value")
    opcode = word & 0x7F
    if opcode != CUSTOM_OPCODE:
        raise IsaError(
            f"not a SISA instruction: opcode 0x{opcode:02x} != 0x{CUSTOM_OPCODE:02x}"
        )
    return EncodedInstruction(
        funct7=(word >> 25) & 0x7F,
        rs2=(word >> 20) & 0x1F,
        rs1=(word >> 15) & 0x1F,
        xd=bool((word >> 14) & 1),
        xs1=bool((word >> 13) & 1),
        xs2=bool((word >> 12) & 1),
        rd=(word >> 7) & 0x1F,
        opcode=opcode,
    )
