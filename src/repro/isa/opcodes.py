"""The SISA instruction set (paper Table 5 plus management instructions).

Table 5 assigns opcodes 0x0-0x6 to the intersection variants and the
single-element DB updates.  The remaining operations named in Figure 3
(union/difference variants, cardinality-of-result forms, membership,
create/delete/clone/insert/remove) are assigned the subsequent opcode
space; the paper notes "the number of SISA instructions is less than
20, leaving space for potential new variants" in the 7-bit funct7
field (up to 128).
"""

from __future__ import annotations

import enum


class SetOp(enum.Enum):
    """Abstract set operations the ISA implements."""

    INTERSECT = "intersect"
    UNION = "union"
    DIFFERENCE = "difference"
    INTERSECT_COUNT = "intersect_count"
    UNION_COUNT = "union_count"
    DIFFERENCE_COUNT = "difference_count"
    CARDINALITY = "cardinality"
    MEMBER = "member"
    INSERT = "insert"
    REMOVE = "remove"
    CREATE = "create"
    DELETE = "delete"
    CLONE = "clone"


class Opcode(enum.IntEnum):
    """Concrete instruction opcodes (the funct7 field value)."""

    # -- Table 5 ----------------------------------------------------------
    INTERSECT_SA_SA_MERGE = 0x0
    INTERSECT_SA_SA_GALLOP = 0x1
    INTERSECT_SA_SA_AUTO = 0x2  # merge vs. galloping chosen by the SCU
    INTERSECT_SA_DB = 0x3
    INTERSECT_DB_DB = 0x4  # in-situ bitwise AND
    INSERT_DB = 0x5  # A ∪ {x}: set bit
    REMOVE_DB = 0x6  # A \ {x}: clear bit
    # -- union / difference variants ---------------------------------------
    UNION_SA_SA_MERGE = 0x7
    UNION_SA_DB = 0x8
    UNION_DB_DB = 0x9  # in-situ bitwise OR
    DIFFERENCE_SA_SA_MERGE = 0xA
    DIFFERENCE_SA_SA_GALLOP = 0xB
    DIFFERENCE_SA_SA_AUTO = 0xC
    DIFFERENCE_SA_DB = 0xD
    DIFFERENCE_DB_SA = 0xE
    DIFFERENCE_DB_DB = 0xF  # in-situ NOT + AND
    # -- cardinality-of-result forms (avoid materializing, §6.2.3) ---------
    INTERSECT_COUNT = 0x10
    UNION_COUNT = 0x11
    DIFFERENCE_COUNT = 0x12
    # -- scalar / management -------------------------------------------------
    CARDINALITY = 0x13
    MEMBER = 0x14
    INSERT_SA = 0x15
    REMOVE_SA = 0x16
    CREATE = 0x17
    DELETE = 0x18
    CLONE = 0x19
    # CISC-style extension from the paper's Discussion (Section 11):
    # intersect multiple sets in a single instruction, A1 ∩ ... ∩ Al.
    INTERSECT_MANY = 0x1A


# RISC-V custom-opcode value used in the low 7 bits (paper §6.3.5).
CUSTOM_OPCODE = 0x16

# Maximum value representable in funct7.
MAX_FUNCT7 = 0x7F


def opcode_uses_pum(opcode: Opcode) -> bool:
    """Instructions executed by in-situ bulk bitwise PIM (SISA-PUM)."""
    return opcode in (
        Opcode.INTERSECT_DB_DB,
        Opcode.UNION_DB_DB,
        Opcode.DIFFERENCE_DB_DB,
        Opcode.INSERT_DB,
        Opcode.REMOVE_DB,
    )


def opcode_is_count(opcode: Opcode) -> bool:
    return opcode in (
        Opcode.INTERSECT_COUNT,
        Opcode.UNION_COUNT,
        Opcode.DIFFERENCE_COUNT,
    )
