"""The SISA instruction-set layer: opcodes, encoding, metadata, SCU."""

from repro.isa.encoding import EncodedInstruction, decode, encode
from repro.isa.metadata import SetMeta, SetMetadataTable
from repro.isa.opcodes import (
    CUSTOM_OPCODE,
    Opcode,
    SetOp,
    opcode_is_count,
    opcode_uses_pum,
)
from repro.isa.perfmodel import (
    VariantPrediction,
    choose_intersection_variant,
    predict_galloping,
    predict_streaming,
)
from repro.isa.scu import Dispatch, DispatchStats, Scu

__all__ = [
    "EncodedInstruction",
    "decode",
    "encode",
    "SetMeta",
    "SetMetadataTable",
    "CUSTOM_OPCODE",
    "Opcode",
    "SetOp",
    "opcode_is_count",
    "opcode_uses_pum",
    "VariantPrediction",
    "choose_intersection_variant",
    "predict_galloping",
    "predict_streaming",
    "Dispatch",
    "DispatchStats",
    "Scu",
]
