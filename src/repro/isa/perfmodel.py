"""The SCU's analytic performance models for set-operation variants.

Section 8.3 of the paper: the runtime of each SISA instruction variant
is dominated by either *streaming* or *random accesses*:

* streaming (merge):   l_M + W * max(|A|, |B|) / min(b_M, b_L)
* random (galloping):  l_M * min(|A|, |B|) * log2(max(|A|, |B|))

The SCU evaluates both models from the metadata (sizes and
representations) and picks the variant with the smaller predicted
runtime.  A configurable *galloping threshold* (evaluated in Fig. 7b)
can force the decision by relative size ratio instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.config import HardwareConfig


@dataclass(frozen=True)
class VariantPrediction:
    """Predicted runtime (cycles) for one instruction variant."""

    variant: str
    predicted_cycles: float


def predict_streaming(config: HardwareConfig, size_a: int, size_b: int) -> float:
    """Paper model: l_M + W * max(|A|, |B|) / min(b_M, b_L)."""
    word_bytes = config.word_bits / 8
    bytes_streamed = word_bytes * max(size_a, size_b)
    return config.dram_latency_cycles + bytes_streamed / config.stream_bytes_per_cycle


def predict_galloping(config: HardwareConfig, size_a: int, size_b: int) -> float:
    """Paper model: l_M * min * log2(max), with near-memory latency."""
    small = min(size_a, size_b)
    big = max(size_a, size_b)
    if small == 0:
        return config.dram_latency_cycles
    return (
        config.pnm_random_access_cycles
        * small
        * max(1.0, math.log2(max(big, 2)))
    )


def choose_intersection_variant(
    config: HardwareConfig,
    size_a: int,
    size_b: int,
    *,
    gallop_threshold: float | None = None,
) -> VariantPrediction:
    """Pick merge vs. galloping for an SA ∩ SA instruction.

    With ``gallop_threshold`` set (Fig. 7b's sensitivity knob), galloping
    is used iff one set is at least that many times larger than the
    other; otherwise the analytic models decide.
    """
    stream = predict_streaming(config, size_a, size_b)
    gallop = predict_galloping(config, size_a, size_b)
    if gallop_threshold is not None:
        small = max(1, min(size_a, size_b))
        big = max(size_a, size_b)
        use_gallop = big >= gallop_threshold * small
        if use_gallop:
            return VariantPrediction("galloping", gallop)
        return VariantPrediction("merge", stream)
    if gallop < stream:
        return VariantPrediction("galloping", gallop)
    return VariantPrediction("merge", stream)
