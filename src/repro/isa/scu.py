"""The SISA Controller Unit (SCU).

The SCU receives SISA instructions from the host core, looks up operand
metadata (through the SMB cache), and schedules execution on the most
beneficial accelerator (paper Sections 3, 8.2):

* two dense bitvectors  -> SISA-PUM (in-situ bulk bitwise),
* anything else         -> SISA-PNM (logic-layer cores), with the
  merge-vs-galloping choice made by the Section 8.3 performance models.

In ``host_fallback`` mode the same decisions are made but the set
algorithms run on the host CPU model instead of PIM — this is the
paper's ``_set-based`` baseline (set-centric formulations without
memory acceleration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.hw.cache import LruCache
from repro.hw.config import CpuConfig, HardwareConfig
from repro.hw.cost import Cost
from repro.hw.cpu import CpuBackend
from repro.hw.pnm import PnmBackend
from repro.hw.pum import PumBackend
from repro.isa.metadata import SetMeta
from repro.isa.opcodes import Opcode, SetOp
from repro.isa.perfmodel import choose_intersection_variant
from repro.sets.base import Representation


@dataclass
class DispatchStats:
    """Counters the evaluation section reports on."""

    instructions: int = 0
    pum_ops: int = 0
    pnm_ops: int = 0
    host_ops: int = 0
    merge_picks: int = 0
    gallop_picks: int = 0
    fused_macros: int = 0  # cross-task fused count-burst macros issued
    by_opcode: dict[Opcode, int] = field(default_factory=dict)

    def record(self, opcode: Opcode) -> None:
        self.instructions += 1
        self.by_opcode[opcode] = self.by_opcode.get(opcode, 0) + 1

    def snapshot(self) -> "DispatchStats":
        """A frozen copy of the counters (start of a new run)."""
        return DispatchStats(
            instructions=self.instructions,
            pum_ops=self.pum_ops,
            pnm_ops=self.pnm_ops,
            host_ops=self.host_ops,
            merge_picks=self.merge_picks,
            gallop_picks=self.gallop_picks,
            fused_macros=self.fused_macros,
            by_opcode=dict(self.by_opcode),
        )

    def since(self, mark: "DispatchStats") -> "DispatchStats":
        """Counter deltas accumulated after ``mark`` (per-run stats)."""
        by_opcode = {
            opcode: count - mark.by_opcode.get(opcode, 0)
            for opcode, count in self.by_opcode.items()
            if count != mark.by_opcode.get(opcode, 0)
        }
        return DispatchStats(
            instructions=self.instructions - mark.instructions,
            pum_ops=self.pum_ops - mark.pum_ops,
            pnm_ops=self.pnm_ops - mark.pnm_ops,
            host_ops=self.host_ops - mark.host_ops,
            merge_picks=self.merge_picks - mark.merge_picks,
            gallop_picks=self.gallop_picks - mark.gallop_picks,
            fused_macros=self.fused_macros - mark.fused_macros,
            by_opcode=by_opcode,
        )

    def add(self, other: "DispatchStats") -> None:
        """Accumulate another delta in place (per-plan attribution of a
        fused batch, where one plan's work arrives in many slices)."""
        self.instructions += other.instructions
        self.pum_ops += other.pum_ops
        self.pnm_ops += other.pnm_ops
        self.host_ops += other.host_ops
        self.merge_picks += other.merge_picks
        self.gallop_picks += other.gallop_picks
        self.fused_macros += other.fused_macros
        for opcode, count in other.by_opcode.items():
            self.by_opcode[opcode] = self.by_opcode.get(opcode, 0) + count


@dataclass(frozen=True)
class Dispatch:
    """Outcome of SCU decision-making for one instruction."""

    opcode: Opcode
    backend: str  # "pum" | "pnm" | "host"
    variant: str  # "merge" | "galloping" | "bitwise" | "probe" | "bitwrite" | ...
    cost: Cost


@dataclass
class BatchDispatch:
    """Outcome of one amortized SCU dispatch over a whole frontier.

    Per-op decisions and cost components are kept as parallel lists so
    the engine can accumulate them in exactly the order a sequential
    instruction stream would have (simulated cycles stay identical);
    only the Python-level dispatch overhead is amortized.
    """

    opcodes: list[Opcode]
    backends: list[str]
    variants: list[str]
    compute: list[float]
    memory: list[float]
    latency: list[float]

    def __len__(self) -> int:
        return len(self.opcodes)


class Scu:
    """Decides instruction variants and accounts their costs."""

    def __init__(
        self,
        hw: HardwareConfig,
        *,
        host_fallback: bool = False,
        cpu: CpuConfig | None = None,
        gallop_threshold: float | None = None,
        smb_enabled: bool = True,
        decision_memo: dict | None = None,
    ):
        self.hw = hw
        self.host_fallback = host_fallback
        self.gallop_threshold = gallop_threshold
        self.pum = PumBackend(hw)
        self.pnm = PnmBackend(hw)
        self.cpu = CpuBackend(cpu or CpuConfig())
        self.smb = LruCache(hw.smb_entries if smb_enabled else 0)
        self.stats = DispatchStats()
        # Optional observability hub (repro.observability).  Nullable
        # and observation-only: feeds mirror what stats already record,
        # labeled by opcode/backend, and never affect costs.
        self.obs = None
        # Dispatch memoizes (variant decision, model cost) per
        # operand-shape key.  The stored Cost is the exact object a
        # fresh computation would produce, so memoized and fresh
        # dispatches are bit-identical; only Python work is saved.
        # Bounded (see _MEMO_LIMIT): materializing ops key on the
        # output size, so long large-graph runs would otherwise grow
        # the table without bound; past the cap, shapes are simply
        # recomputed, which yields the same values.
        # A SessionPool passes a shared ``decision_memo`` so every
        # session over the same hardware/mode shares one table: the
        # memoized values are pure functions of the operand shapes and
        # the fixed configs, so sharing changes nothing but Python time.
        self._decision_memo: dict[tuple, tuple] = (
            {} if decision_memo is None else decision_memo
        )
        # Optional memo access hook ``(op, key) -> None`` — the race
        # detector's shim.  Every read/fill of the (possibly pool-
        # shared) decision table reports through it; repolint's
        # shared-structure-write rule keeps direct ``_decision_memo``
        # mutation confined to this module so the hook stays complete.
        self.memo_event = None

    _MEMO_LIMIT = 1 << 16

    # ------------------------------------------------------------------
    # Metadata access costs
    # ------------------------------------------------------------------

    def _metadata_cost(self, *set_ids: int) -> Cost:
        """SCU dispatch plus one SM lookup per operand (SMB-cached).

        A miss is one additional access to the in-memory SM structure;
        the SM lives near the SCU (logic layer), so the miss pays the
        near-memory access latency rather than a full off-chip round
        trip (paper Section 8.4, "Set Metadata").
        """
        cost = Cost(compute_cycles=self.hw.scu_dispatch_cycles)
        for set_id in set_ids:
            if self.smb.access(set_id):
                cost += Cost(compute_cycles=self.hw.sm_hit_cycles)
            else:
                cost += Cost(latency_cycles=self.hw.pnm_random_access_cycles)
        return cost

    # ------------------------------------------------------------------
    # Binary set operations
    # ------------------------------------------------------------------

    def dispatch_binary(
        self,
        op: SetOp,
        a: SetMeta,
        b: SetMeta,
        *,
        output_size: int = 0,
        count_only: bool = False,
    ) -> Dispatch:
        """Decide and cost a binary set operation ``a op b``.

        The metadata phase (SCU dispatch + one SMB-cached SM lookup per
        operand, plus the host's descriptor pointer chase in
        ``host_fallback`` mode) is accumulated in the same order as
        :meth:`_metadata_cost`; the variant decision and model cost are
        memoized per operand shape (see :meth:`_decide`).
        """
        hw = self.hw
        comp = hw.scu_dispatch_cycles
        lat = 0.0
        access = self.smb.access
        if access(a.set_id):
            comp += hw.sm_hit_cycles
        else:
            lat += hw.pnm_random_access_cycles
        if access(b.set_id):
            comp += hw.sm_hit_cycles
        else:
            lat += hw.pnm_random_access_cycles
        if self.host_fallback:
            # The host has no SCU/SMB: each set operation starts with a
            # dependent pointer chase to the operand descriptors.
            lat += self.cpu.config.set_op_latency_cycles
        opcode, backend, variant, cost = self._decide(
            op, a, b, output_size, count_only
        )
        self.stats.record(opcode)
        if self.obs is not None:
            self.obs.dispatch(opcode, backend)
        return Dispatch(
            opcode,
            backend,
            variant,
            Cost(
                comp + cost.compute_cycles,
                cost.memory_bytes,
                lat + cost.latency_cycles,
            ),
        )

    def _decide(
        self,
        op: SetOp,
        a: SetMeta,
        b: SetMeta,
        output_size: int,
        count_only: bool,
    ) -> tuple[Opcode, str, str, Cost]:
        """Variant decision + model cost, memoized per operand shape.

        The memo caches the exact objects a fresh computation would
        produce (the decision and cost only depend on the operand
        shapes and the fixed hardware config), so memoized and fresh
        dispatches are bit-identical; backend/variant statistics are
        still updated per call.
        """
        stats = self.stats
        dense = Representation.DENSE
        a_dense = a.representation is dense
        b_dense = b.representation is dense
        if a_dense and b_dense:
            key = ("d", op, count_only, a.universe)
        elif a_dense or b_dense:
            sparse_card = b.cardinality if a_dense else a.cardinality
            key = ("m", op, a_dense, sparse_card, output_size)
        else:
            bigger = a if a.cardinality >= b.cardinality else b
            key = (
                "s",
                op,
                a.cardinality,
                b.cardinality,
                output_size,
                bigger.representation is Representation.SPARSE_UNSORTED,
            )
        hit = self._decision_memo.get(key)
        if self.memo_event is not None:
            self.memo_event("read", key)
        if hit is None:
            if a_dense and b_dense:
                d = self._dispatch_dense_pair(op, a, count_only=count_only)
                picks = 0
            elif a_dense or b_dense:
                d = self._dispatch_mixed(op, a, b, output_size=output_size)
                picks = 0
            else:
                before = stats.gallop_picks
                d = self._dispatch_sparse_pair(op, a, b, output_size=output_size)
                picks = 2 if stats.gallop_picks > before else 1
            if len(self._decision_memo) < self._MEMO_LIMIT:
                self._decision_memo[key] = (
                    d.opcode, d.backend, d.variant, d.cost, picks,
                )
                if self.memo_event is not None:
                    self.memo_event("write-idempotent", key)
            return d.opcode, d.backend, d.variant, d.cost
        opcode, backend, variant, cost, picks = hit
        if backend == "pum":
            stats.pum_ops += 1
        elif backend == "pnm":
            stats.pnm_ops += 1
        else:
            stats.host_ops += 1
        if picks == 1:
            stats.merge_picks += 1
        elif picks == 2:
            stats.gallop_picks += 1
        return opcode, backend, variant, cost

    def dispatch_binary_batch(
        self,
        op: SetOp,
        a: SetMeta,
        bs: list[SetMeta],
        *,
        output_sizes: list[int] | None = None,
        count_only: bool = False,
    ) -> BatchDispatch:
        """Amortized dispatch of ``a op b_i`` for a whole frontier.

        One SCU call replaces ``len(bs)`` :meth:`dispatch_binary` calls.
        Per-op semantics are fully preserved: SMB accesses happen pair
        by pair in instruction order (the LRU trajectory is identical),
        per-op stats are recorded, and every per-op cost is computed by
        the same models — float for float — as the sequential path, so
        simulated cycle totals are identical.  What is amortized is the
        Python-level dispatch overhead: operand metadata is fetched
        once by the caller and variant decisions/model costs are
        memoized per operand shape.
        """
        hw = self.hw
        smb = self.smb
        access = smb.access
        stats = self.stats
        by_opcode = stats.by_opcode
        decide = self._decide
        a_id = a.set_id
        host = self.host_fallback
        disp_c = hw.scu_dispatch_cycles
        hit_c = hw.sm_hit_cycles
        miss_c = hw.pnm_random_access_cycles
        host_c = self.cpu.config.set_op_latency_cycles if host else 0.0
        # After the first op touched A, the A lookup is a guaranteed SMB
        # hit: A is at most second-most-recent, so no later insert can
        # have evicted it (holds for any capacity >= 2).
        a_resident = False
        fast_a = smb.capacity >= 2
        smb_entries = smb._entries
        smb_stats = smb.stats
        opcodes: list[Opcode] = []
        backends: list[str] = []
        variants: list[str] = []
        compute: list[float] = []
        memory: list[float] = []
        latency: list[float] = []
        for i, b in enumerate(bs):
            # Metadata phase: identical accesses and float-accumulation
            # order as `_metadata_cost(a_id, b_id)` + host latency.
            comp = disp_c
            lat = 0.0
            if a_resident:
                smb_entries.move_to_end(a_id)
                smb_stats.hits += 1
                comp += hit_c
            elif access(a_id):
                comp += hit_c
                a_resident = fast_a
            else:
                lat += miss_c
                a_resident = fast_a
            if access(b.set_id):
                comp += hit_c
            else:
                lat += miss_c
            if host:
                lat += host_c
            output_size = 0 if output_sizes is None else output_sizes[i]
            opcode, backend, variant, cost = decide(
                op, a, b, output_size, count_only
            )
            by_opcode[opcode] = by_opcode.get(opcode, 0) + 1
            opcodes.append(opcode)
            backends.append(backend)
            variants.append(variant)
            compute.append(comp + cost.compute_cycles)
            memory.append(cost.memory_bytes)
            latency.append(lat + cost.latency_cycles)
        stats.instructions += len(opcodes)
        if self.obs is not None:
            self.obs.dispatch_batch(opcodes, backends)
        return BatchDispatch(opcodes, backends, variants, compute, memory, latency)

    def dispatch_binary_fused(
        self,
        op: SetOp,
        a: SetMeta,
        bs: list[SetMeta],
        *,
        count_only: bool = True,
        include_decode: bool = False,
    ) -> BatchDispatch:
        """One constituent burst of a *fused* cross-task count macro.

        A plan executor fuses compatible count-form frontier bursts from
        different workload plans into one macro instruction: the SCU
        decodes the macro once and each constituent burst names its
        probe operand once, instead of re-dispatching and re-fetching
        the probe metadata per op as the unfused stream does.  Charging
        rule (the explicit lane-placement model of cross-task fusion):

        * the macro decode (``scu_dispatch_cycles``) is paid once, by
          the constituent with ``include_decode=True`` (the executor
          sets it on the first burst of each macro) — it lands on that
          burst's lane;
        * each constituent pays its probe operand's SMB-cached metadata
          lookup once, on its own lane;
        * each op pays only its frontier operand's metadata lookup plus
          the variant model cost — decided and costed by the very same
          memoized :meth:`_decide` the sequential stream uses, so the
          per-op *work* is unchanged; only the per-op dispatch/metadata
          overhead is elided by the macro encoding.

        Per-op stats and opcodes are recorded exactly like the unfused
        burst (a fused macro is the same logical instruction stream);
        ``stats.fused_macros`` counts the macros.  Not offered in
        ``host_fallback`` mode — the host baseline has no SCU to fuse
        dispatches in, so plan executors fall back to the unfused
        batched stream there.
        """
        if self.host_fallback:
            raise IsaError("fused dispatch requires the SCU (sisa mode)")
        hw = self.hw
        access = self.smb.access
        stats = self.stats
        by_opcode = stats.by_opcode
        decide = self._decide
        hit_c = hw.sm_hit_cycles
        miss_c = hw.pnm_random_access_cycles
        comp0 = hw.scu_dispatch_cycles if include_decode else 0.0
        lat0 = 0.0
        if access(a.set_id):
            comp0 += hit_c
        else:
            lat0 += miss_c
        opcodes: list[Opcode] = []
        backends: list[str] = []
        variants: list[str] = []
        compute: list[float] = []
        memory: list[float] = []
        latency: list[float] = []
        for b in bs:
            comp = comp0
            lat = lat0
            comp0 = 0.0
            lat0 = 0.0
            if access(b.set_id):
                comp += hit_c
            else:
                lat += miss_c
            opcode, backend, variant, cost = decide(op, a, b, 0, count_only)
            by_opcode[opcode] = by_opcode.get(opcode, 0) + 1
            opcodes.append(opcode)
            backends.append(backend)
            variants.append(variant)
            compute.append(comp + cost.compute_cycles)
            memory.append(cost.memory_bytes)
            latency.append(lat + cost.latency_cycles)
        stats.instructions += len(opcodes)
        if include_decode:
            stats.fused_macros += 1
        if self.obs is not None:
            self.obs.dispatch_batch(opcodes, backends)
            if include_decode:
                self.obs.fused_macro()
        return BatchDispatch(opcodes, backends, variants, compute, memory, latency)

    def _dispatch_dense_pair(
        self, op: SetOp, a: SetMeta, *, count_only: bool
    ) -> Dispatch:
        universe = a.universe
        if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
            opcode = Opcode.INTERSECT_COUNT if count_only else Opcode.INTERSECT_DB_DB
            pim = self.pum.intersect(universe)
        elif op in (SetOp.UNION, SetOp.UNION_COUNT):
            opcode = Opcode.UNION_COUNT if count_only else Opcode.UNION_DB_DB
            pim = self.pum.union(universe)
        elif op in (SetOp.DIFFERENCE, SetOp.DIFFERENCE_COUNT):
            opcode = (
                Opcode.DIFFERENCE_COUNT if count_only else Opcode.DIFFERENCE_DB_DB
            )
            pim = self.pum.difference(universe)
        else:
            raise IsaError(f"not a binary set operation: {op}")
        if count_only:
            pim += self.pum.cardinality_of_result(universe)
        if self.host_fallback:
            self.stats.host_ops += 1
            cost = self.cpu.bitwise(universe, output=not count_only)
            return Dispatch(opcode, "host", "bitwise", cost)
        self.stats.pum_ops += 1
        return Dispatch(opcode, "pum", "bitwise", pim)

    def _dispatch_mixed(
        self, op: SetOp, a: SetMeta, b: SetMeta, *, output_size: int
    ) -> Dispatch:
        sparse = b if a.is_dense else a
        if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
            opcode = Opcode.INTERSECT_SA_DB
        elif op in (SetOp.UNION, SetOp.UNION_COUNT):
            opcode = Opcode.UNION_SA_DB
        elif op in (SetOp.DIFFERENCE, SetOp.DIFFERENCE_COUNT):
            opcode = Opcode.DIFFERENCE_DB_SA if a.is_dense else Opcode.DIFFERENCE_SA_DB
        else:
            raise IsaError(f"not a binary set operation: {op}")
        if self.host_fallback:
            self.stats.host_ops += 1
            cost = self.cpu.sa_probe_db(sparse.cardinality, output_size=output_size)
            return Dispatch(opcode, "host", "probe", cost)
        self.stats.pnm_ops += 1
        cost = self.pnm.sa_probe_db(sparse.cardinality, output_size=output_size)
        return Dispatch(opcode, "pnm", "probe", cost)

    def _dispatch_sparse_pair(
        self, op: SetOp, a: SetMeta, b: SetMeta, *, output_size: int
    ) -> Dispatch:
        choice = choose_intersection_variant(
            self.hw,
            a.cardinality,
            b.cardinality,
            gallop_threshold=self.gallop_threshold,
        )
        # Galloping needs a sorted larger operand; fall back to merge if
        # the larger set is an unsorted auxiliary SA.
        bigger = a if a.cardinality >= b.cardinality else b
        if (
            choice.variant == "galloping"
            and bigger.representation is Representation.SPARSE_UNSORTED
        ):
            choice = choose_intersection_variant(
                self.hw, a.cardinality, b.cardinality, gallop_threshold=float("inf")
            )
        gallop = choice.variant == "galloping"
        if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
            opcode = (
                Opcode.INTERSECT_SA_SA_GALLOP if gallop else Opcode.INTERSECT_SA_SA_MERGE
            )
        elif op in (SetOp.UNION, SetOp.UNION_COUNT):
            # Union must touch all elements of both sets; always merge.
            gallop = False
            opcode = Opcode.UNION_SA_SA_MERGE
        elif op in (SetOp.DIFFERENCE, SetOp.DIFFERENCE_COUNT):
            opcode = (
                Opcode.DIFFERENCE_SA_SA_GALLOP
                if gallop
                else Opcode.DIFFERENCE_SA_SA_MERGE
            )
        else:
            raise IsaError(f"not a binary set operation: {op}")
        if gallop:
            self.stats.gallop_picks += 1
        else:
            self.stats.merge_picks += 1
        if self.host_fallback:
            self.stats.host_ops += 1
            if gallop:
                cost = self.cpu.galloping(
                    a.cardinality, b.cardinality, output_size=output_size
                )
            else:
                cost = self.cpu.merge(
                    a.cardinality, b.cardinality, output_size=output_size
                )
            return Dispatch(opcode, "host", choice.variant, cost)
        self.stats.pnm_ops += 1
        if gallop:
            cost = self.pnm.galloping(
                a.cardinality, b.cardinality, output_size=output_size
            )
        else:
            cost = self.pnm.streaming(
                a.cardinality, b.cardinality, output_size=output_size
            )
        return Dispatch(opcode, "pnm", choice.variant, cost)

    # ------------------------------------------------------------------
    # Unary / scalar operations
    # ------------------------------------------------------------------

    def dispatch_cardinality(self, a: SetMeta) -> Dispatch:
        """|A| is O(1): the size lives in the metadata (Section 6.2.3)."""
        cost = self._metadata_cost(a.set_id)
        self.stats.record(Opcode.CARDINALITY)
        if self.obs is not None:
            self.obs.dispatch(Opcode.CARDINALITY, "scu")
        return Dispatch(Opcode.CARDINALITY, "scu", "metadata", cost)

    def dispatch_member(self, a: SetMeta) -> Dispatch:
        cost = self._metadata_cost(a.set_id)
        backend = "host" if self.host_fallback else "pnm"
        unit = self.cpu if self.host_fallback else self.pnm
        if a.is_dense:
            cost += unit.membership_dense()
        elif a.representation is Representation.SPARSE_SORTED:
            cost += unit.membership_sorted(a.cardinality)
        else:
            cost += unit.membership_unsorted(a.cardinality)
        if self.host_fallback:
            self.stats.host_ops += 1
        else:
            self.stats.pnm_ops += 1
        self.stats.record(Opcode.MEMBER)
        if self.obs is not None:
            self.obs.dispatch(Opcode.MEMBER, backend)
        return Dispatch(Opcode.MEMBER, backend, "membership", cost)

    def dispatch_element_update(self, a: SetMeta, *, insert: bool) -> Dispatch:
        cost = self._metadata_cost(a.set_id)
        if a.is_dense:
            opcode = Opcode.INSERT_DB if insert else Opcode.REMOVE_DB
            if self.host_fallback:
                self.stats.host_ops += 1
                cost += self.cpu.bit_write()
                backend = "host"
            else:
                self.stats.pum_ops += 1
                cost += self.pum.bit_write()
                backend = "pum"
            variant = "bitwrite"
        else:
            opcode = Opcode.INSERT_SA if insert else Opcode.REMOVE_SA
            if self.host_fallback:
                self.stats.host_ops += 1
                cost += self.cpu.element_update_sa(a.cardinality)
                backend = "host"
            else:
                self.stats.pnm_ops += 1
                cost += self.pnm.element_update_sa(a.cardinality)
                backend = "pnm"
            variant = "shift"
        self.stats.record(opcode)
        if self.obs is not None:
            self.obs.dispatch(opcode, backend)
        return Dispatch(opcode, backend, variant, cost)

    def dispatch_element_update_batch(
        self,
        metas: list[SetMeta],
        cardinalities: list[int],
        *,
        insert: bool,
    ) -> BatchDispatch:
        """Amortized dispatch of a whole element-update burst.

        ``metas[i]`` is the SM entry of the set the i-th update targets
        and ``cardinalities[i]`` the cardinality that update observes
        (the caller advances it as earlier updates of the burst take
        effect, exactly as the sequential stream's ``sm.update`` calls
        would).  Per-op semantics are preserved: SMB accesses happen
        update by update in instruction order, per-op stats are
        recorded, and each per-op cost is computed by the same models —
        float for float — as :meth:`dispatch_element_update`, so
        simulated cycles are identical to the sequential stream.  Only
        the Python-level dispatch overhead is amortized (the variant
        decision and model cost are memoized per operand shape).
        """
        hw = self.hw
        access = self.smb.access
        stats = self.stats
        by_opcode = stats.by_opcode
        memo = self._decision_memo
        memo_event = self.memo_event
        host = self.host_fallback
        disp_c = hw.scu_dispatch_cycles
        hit_c = hw.sm_hit_cycles
        miss_c = hw.pnm_random_access_cycles
        opcodes: list[Opcode] = []
        backends: list[str] = []
        variants: list[str] = []
        compute: list[float] = []
        memory: list[float] = []
        latency: list[float] = []
        for meta, card in zip(metas, cardinalities):
            comp = disp_c
            lat = 0.0
            if access(meta.set_id):
                comp += hit_c
            else:
                lat += miss_c
            dense = meta.is_dense
            key = ("e", insert, dense, 0 if dense else card)
            hit = memo.get(key)
            if memo_event is not None:
                memo_event("read", key)
            if hit is None:
                if dense:
                    opcode = Opcode.INSERT_DB if insert else Opcode.REMOVE_DB
                    cost = self.cpu.bit_write() if host else self.pum.bit_write()
                    backend = "host" if host else "pum"
                    variant = "bitwrite"
                else:
                    opcode = Opcode.INSERT_SA if insert else Opcode.REMOVE_SA
                    cost = (
                        self.cpu.element_update_sa(card)
                        if host
                        else self.pnm.element_update_sa(card)
                    )
                    backend = "host" if host else "pnm"
                    variant = "shift"
                if len(memo) < self._MEMO_LIMIT:
                    memo[key] = (opcode, backend, variant, cost, 0)
                    if memo_event is not None:
                        memo_event("write-idempotent", key)
            else:
                opcode, backend, variant, cost, _ = hit
            if host:
                stats.host_ops += 1
            elif dense:
                stats.pum_ops += 1
            else:
                stats.pnm_ops += 1
            by_opcode[opcode] = by_opcode.get(opcode, 0) + 1
            opcodes.append(opcode)
            backends.append(backend)
            variants.append(variant)
            compute.append(comp + cost.compute_cycles)
            memory.append(cost.memory_bytes)
            latency.append(lat + cost.latency_cycles)
        stats.instructions += len(opcodes)
        if self.obs is not None:
            self.obs.dispatch_batch(opcodes, backends)
        return BatchDispatch(opcodes, backends, variants, compute, memory, latency)

    def dispatch_create(self, size: int, *, dense: bool, universe: int) -> Dispatch:
        """Allocate + initialize a set.

        Allocation is a standard ``malloc`` plus an SM entry write
        (paper Section 8.4, "Life Cycle of a Set"); the data write
        streams the initial contents.  Empty dense sets are zeroed with
        one bulk row-clear, so only touched rows count.
        """
        bits = self.hw.word_bits * size if not dense else min(
            universe, max(size, 1) * self.hw.word_bits
        )
        cost = Cost(
            compute_cycles=2 * self.hw.scu_dispatch_cycles,
            memory_bytes=bits / 8,
        )
        self.stats.record(Opcode.CREATE)
        return Dispatch(Opcode.CREATE, "pnm", "alloc", cost)

    def dispatch_delete(self, a: SetMeta) -> Dispatch:
        hw = self.hw
        comp = hw.scu_dispatch_cycles
        lat = 0.0
        if self.smb.access(a.set_id):
            comp += hw.sm_hit_cycles
        else:
            lat += hw.pnm_random_access_cycles
        self.smb.invalidate(a.set_id)
        self.stats.record(Opcode.DELETE)
        return Dispatch(Opcode.DELETE, "scu", "free", Cost(comp, 0.0, lat))

    def dispatch_clone(self, a: SetMeta) -> Dispatch:
        """Copy a set.  Dense clones are in-DRAM RowClone copies
        (row-granular, near-free); sparse clones stream the elements."""
        if a.is_dense:
            rows = max(1, a.universe // self.hw.row_size_bits)
            cost = self._metadata_cost(a.set_id) + Cost(
                latency_cycles=rows * self.hw.effective_op_latency_cycles
            )
        else:
            cost = self._metadata_cost(a.set_id) + Cost(
                memory_bytes=a.cardinality * self.hw.word_bits / 8,
                latency_cycles=self.hw.effective_op_latency_cycles,
            )
        self.stats.record(Opcode.CLONE)
        return Dispatch(Opcode.CLONE, "pnm", "copy", cost)
