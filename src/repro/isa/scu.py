"""The SISA Controller Unit (SCU).

The SCU receives SISA instructions from the host core, looks up operand
metadata (through the SMB cache), and schedules execution on the most
beneficial accelerator (paper Sections 3, 8.2):

* two dense bitvectors  -> SISA-PUM (in-situ bulk bitwise),
* anything else         -> SISA-PNM (logic-layer cores), with the
  merge-vs-galloping choice made by the Section 8.3 performance models.

In ``host_fallback`` mode the same decisions are made but the set
algorithms run on the host CPU model instead of PIM — this is the
paper's ``_set-based`` baseline (set-centric formulations without
memory acceleration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IsaError
from repro.hw.cache import LruCache
from repro.hw.config import CpuConfig, HardwareConfig
from repro.hw.cost import Cost
from repro.hw.cpu import CpuBackend
from repro.hw.pnm import PnmBackend
from repro.hw.pum import PumBackend
from repro.isa.metadata import SetMeta
from repro.isa.opcodes import Opcode, SetOp
from repro.isa.perfmodel import choose_intersection_variant
from repro.sets.base import Representation


@dataclass
class DispatchStats:
    """Counters the evaluation section reports on."""

    instructions: int = 0
    pum_ops: int = 0
    pnm_ops: int = 0
    host_ops: int = 0
    merge_picks: int = 0
    gallop_picks: int = 0
    by_opcode: dict[Opcode, int] = field(default_factory=dict)

    def record(self, opcode: Opcode) -> None:
        self.instructions += 1
        self.by_opcode[opcode] = self.by_opcode.get(opcode, 0) + 1


@dataclass(frozen=True)
class Dispatch:
    """Outcome of SCU decision-making for one instruction."""

    opcode: Opcode
    backend: str  # "pum" | "pnm" | "host"
    variant: str  # "merge" | "galloping" | "bitwise" | "probe" | "bitwrite" | ...
    cost: Cost


class Scu:
    """Decides instruction variants and accounts their costs."""

    def __init__(
        self,
        hw: HardwareConfig,
        *,
        host_fallback: bool = False,
        cpu: CpuConfig | None = None,
        gallop_threshold: float | None = None,
        smb_enabled: bool = True,
    ):
        self.hw = hw
        self.host_fallback = host_fallback
        self.gallop_threshold = gallop_threshold
        self.pum = PumBackend(hw)
        self.pnm = PnmBackend(hw)
        self.cpu = CpuBackend(cpu or CpuConfig())
        self.smb = LruCache(hw.smb_entries if smb_enabled else 0)
        self.stats = DispatchStats()

    # ------------------------------------------------------------------
    # Metadata access costs
    # ------------------------------------------------------------------

    def _metadata_cost(self, *set_ids: int) -> Cost:
        """SCU dispatch plus one SM lookup per operand (SMB-cached).

        A miss is one additional access to the in-memory SM structure;
        the SM lives near the SCU (logic layer), so the miss pays the
        near-memory access latency rather than a full off-chip round
        trip (paper Section 8.4, "Set Metadata").
        """
        cost = Cost(compute_cycles=self.hw.scu_dispatch_cycles)
        for set_id in set_ids:
            if self.smb.access(set_id):
                cost += Cost(compute_cycles=self.hw.sm_hit_cycles)
            else:
                cost += Cost(latency_cycles=self.hw.pnm_random_access_cycles)
        return cost

    # ------------------------------------------------------------------
    # Binary set operations
    # ------------------------------------------------------------------

    def dispatch_binary(
        self,
        op: SetOp,
        a: SetMeta,
        b: SetMeta,
        *,
        output_size: int = 0,
        count_only: bool = False,
    ) -> Dispatch:
        """Decide and cost a binary set operation ``a op b``."""
        base = self._metadata_cost(a.set_id, b.set_id)
        if self.host_fallback:
            # The host has no SCU/SMB: each set operation starts with a
            # dependent pointer chase to the operand descriptors.
            base += Cost(latency_cycles=self.cpu.config.set_op_latency_cycles)
        both_dense = a.is_dense and b.is_dense
        if both_dense:
            dispatch = self._dispatch_dense_pair(op, a, count_only=count_only)
        elif a.is_dense or b.is_dense:
            dispatch = self._dispatch_mixed(op, a, b, output_size=output_size)
        else:
            dispatch = self._dispatch_sparse_pair(
                op, a, b, output_size=output_size
            )
        self.stats.record(dispatch.opcode)
        return Dispatch(
            dispatch.opcode, dispatch.backend, dispatch.variant, base + dispatch.cost
        )

    def _dispatch_dense_pair(
        self, op: SetOp, a: SetMeta, *, count_only: bool
    ) -> Dispatch:
        universe = a.universe
        if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
            opcode = Opcode.INTERSECT_COUNT if count_only else Opcode.INTERSECT_DB_DB
            pim = self.pum.intersect(universe)
        elif op in (SetOp.UNION, SetOp.UNION_COUNT):
            opcode = Opcode.UNION_COUNT if count_only else Opcode.UNION_DB_DB
            pim = self.pum.union(universe)
        elif op in (SetOp.DIFFERENCE, SetOp.DIFFERENCE_COUNT):
            opcode = (
                Opcode.DIFFERENCE_COUNT if count_only else Opcode.DIFFERENCE_DB_DB
            )
            pim = self.pum.difference(universe)
        else:
            raise IsaError(f"not a binary set operation: {op}")
        if count_only:
            pim += self.pum.cardinality_of_result(universe)
        if self.host_fallback:
            self.stats.host_ops += 1
            cost = self.cpu.bitwise(universe, output=not count_only)
            return Dispatch(opcode, "host", "bitwise", cost)
        self.stats.pum_ops += 1
        return Dispatch(opcode, "pum", "bitwise", pim)

    def _dispatch_mixed(
        self, op: SetOp, a: SetMeta, b: SetMeta, *, output_size: int
    ) -> Dispatch:
        sparse = b if a.is_dense else a
        if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
            opcode = Opcode.INTERSECT_SA_DB
        elif op in (SetOp.UNION, SetOp.UNION_COUNT):
            opcode = Opcode.UNION_SA_DB
        elif op in (SetOp.DIFFERENCE, SetOp.DIFFERENCE_COUNT):
            opcode = Opcode.DIFFERENCE_DB_SA if a.is_dense else Opcode.DIFFERENCE_SA_DB
        else:
            raise IsaError(f"not a binary set operation: {op}")
        if self.host_fallback:
            self.stats.host_ops += 1
            cost = self.cpu.sa_probe_db(sparse.cardinality, output_size=output_size)
            return Dispatch(opcode, "host", "probe", cost)
        self.stats.pnm_ops += 1
        cost = self.pnm.sa_probe_db(sparse.cardinality, output_size=output_size)
        return Dispatch(opcode, "pnm", "probe", cost)

    def _dispatch_sparse_pair(
        self, op: SetOp, a: SetMeta, b: SetMeta, *, output_size: int
    ) -> Dispatch:
        choice = choose_intersection_variant(
            self.hw,
            a.cardinality,
            b.cardinality,
            gallop_threshold=self.gallop_threshold,
        )
        # Galloping needs a sorted larger operand; fall back to merge if
        # the larger set is an unsorted auxiliary SA.
        bigger = a if a.cardinality >= b.cardinality else b
        if (
            choice.variant == "galloping"
            and bigger.representation is Representation.SPARSE_UNSORTED
        ):
            choice = choose_intersection_variant(
                self.hw, a.cardinality, b.cardinality, gallop_threshold=float("inf")
            )
        gallop = choice.variant == "galloping"
        if op in (SetOp.INTERSECT, SetOp.INTERSECT_COUNT):
            opcode = (
                Opcode.INTERSECT_SA_SA_GALLOP if gallop else Opcode.INTERSECT_SA_SA_MERGE
            )
        elif op in (SetOp.UNION, SetOp.UNION_COUNT):
            # Union must touch all elements of both sets; always merge.
            gallop = False
            opcode = Opcode.UNION_SA_SA_MERGE
        elif op in (SetOp.DIFFERENCE, SetOp.DIFFERENCE_COUNT):
            opcode = (
                Opcode.DIFFERENCE_SA_SA_GALLOP
                if gallop
                else Opcode.DIFFERENCE_SA_SA_MERGE
            )
        else:
            raise IsaError(f"not a binary set operation: {op}")
        if gallop:
            self.stats.gallop_picks += 1
        else:
            self.stats.merge_picks += 1
        if self.host_fallback:
            self.stats.host_ops += 1
            if gallop:
                cost = self.cpu.galloping(
                    a.cardinality, b.cardinality, output_size=output_size
                )
            else:
                cost = self.cpu.merge(
                    a.cardinality, b.cardinality, output_size=output_size
                )
            return Dispatch(opcode, "host", choice.variant, cost)
        self.stats.pnm_ops += 1
        if gallop:
            cost = self.pnm.galloping(
                a.cardinality, b.cardinality, output_size=output_size
            )
        else:
            cost = self.pnm.streaming(
                a.cardinality, b.cardinality, output_size=output_size
            )
        return Dispatch(opcode, "pnm", choice.variant, cost)

    # ------------------------------------------------------------------
    # Unary / scalar operations
    # ------------------------------------------------------------------

    def dispatch_cardinality(self, a: SetMeta) -> Dispatch:
        """|A| is O(1): the size lives in the metadata (Section 6.2.3)."""
        cost = self._metadata_cost(a.set_id)
        self.stats.record(Opcode.CARDINALITY)
        return Dispatch(Opcode.CARDINALITY, "scu", "metadata", cost)

    def dispatch_member(self, a: SetMeta) -> Dispatch:
        cost = self._metadata_cost(a.set_id)
        backend = "host" if self.host_fallback else "pnm"
        unit = self.cpu if self.host_fallback else self.pnm
        if a.is_dense:
            cost += unit.membership_dense()
        elif a.representation is Representation.SPARSE_SORTED:
            cost += unit.membership_sorted(a.cardinality)
        else:
            cost += unit.membership_unsorted(a.cardinality)
        if self.host_fallback:
            self.stats.host_ops += 1
        else:
            self.stats.pnm_ops += 1
        self.stats.record(Opcode.MEMBER)
        return Dispatch(Opcode.MEMBER, backend, "membership", cost)

    def dispatch_element_update(self, a: SetMeta, *, insert: bool) -> Dispatch:
        cost = self._metadata_cost(a.set_id)
        if a.is_dense:
            opcode = Opcode.INSERT_DB if insert else Opcode.REMOVE_DB
            if self.host_fallback:
                self.stats.host_ops += 1
                cost += self.cpu.bit_write()
                backend = "host"
            else:
                self.stats.pum_ops += 1
                cost += self.pum.bit_write()
                backend = "pum"
            variant = "bitwrite"
        else:
            opcode = Opcode.INSERT_SA if insert else Opcode.REMOVE_SA
            if self.host_fallback:
                self.stats.host_ops += 1
                cost += self.cpu.element_update_sa(a.cardinality)
                backend = "host"
            else:
                self.stats.pnm_ops += 1
                cost += self.pnm.element_update_sa(a.cardinality)
                backend = "pnm"
            variant = "shift"
        self.stats.record(opcode)
        return Dispatch(opcode, backend, variant, cost)

    def dispatch_create(self, size: int, *, dense: bool, universe: int) -> Dispatch:
        """Allocate + initialize a set.

        Allocation is a standard ``malloc`` plus an SM entry write
        (paper Section 8.4, "Life Cycle of a Set"); the data write
        streams the initial contents.  Empty dense sets are zeroed with
        one bulk row-clear, so only touched rows count.
        """
        bits = self.hw.word_bits * size if not dense else min(
            universe, max(size, 1) * self.hw.word_bits
        )
        cost = Cost(
            compute_cycles=2 * self.hw.scu_dispatch_cycles,
            memory_bytes=bits / 8,
        )
        self.stats.record(Opcode.CREATE)
        return Dispatch(Opcode.CREATE, "pnm", "alloc", cost)

    def dispatch_delete(self, a: SetMeta) -> Dispatch:
        cost = self._metadata_cost(a.set_id)
        self.smb.invalidate(a.set_id)
        self.stats.record(Opcode.DELETE)
        return Dispatch(Opcode.DELETE, "scu", "free", cost)

    def dispatch_clone(self, a: SetMeta) -> Dispatch:
        """Copy a set.  Dense clones are in-DRAM RowClone copies
        (row-granular, near-free); sparse clones stream the elements."""
        if a.is_dense:
            rows = max(1, a.universe // self.hw.row_size_bits)
            cost = self._metadata_cost(a.set_id) + Cost(
                latency_cycles=rows * self.hw.effective_op_latency_cycles
            )
        else:
            cost = self._metadata_cost(a.set_id) + Cost(
                memory_bytes=a.cardinality * self.hw.word_bits / 8,
                latency_cycles=self.hw.effective_op_latency_cycles,
            )
        self.stats.record(Opcode.CLONE)
        return Dispatch(Opcode.CLONE, "pnm", "copy", cost)
