"""Abstract vertex-set interface shared by both SISA representations.

The paper represents a set ``S`` of vertices either as a *sparse array*
(SA: the elements as integers, ``W * |S|`` bits) or as a *dense
bitvector* (DB: one bit per universe element, ``n`` bits).  Section 6.1,
Figure 4.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np


class Representation(enum.Enum):
    """How a set is stored (paper Table 5, 'A and B represent.')."""

    SPARSE_SORTED = "sa-sorted"
    SPARSE_UNSORTED = "sa-unsorted"
    DENSE = "db"

    @property
    def is_sparse(self) -> bool:
        return self is not Representation.DENSE


class VertexSet(ABC):
    """A set of vertex ids drawn from a universe ``{0, ..., universe-1}``."""

    __slots__ = ()

    @property
    @abstractmethod
    def universe(self) -> int:
        """Universe size ``n`` (number of representable vertex ids)."""

    @property
    @abstractmethod
    def representation(self) -> Representation:
        """The storage representation of this set."""

    @property
    @abstractmethod
    def cardinality(self) -> int:
        """Number of elements; SISA tracks this in set metadata, so the
        ``|A|`` instruction is O(1) (Section 6.2.3)."""

    @abstractmethod
    def to_array(self) -> np.ndarray:
        """Elements as a sorted int array (materializes for DB sets)."""

    @abstractmethod
    def contains(self, x: int) -> bool:
        """Membership ``x in A``."""

    @property
    @abstractmethod
    def storage_bits(self) -> int:
        """Size of this representation in bits (paper Fig. 4)."""

    # -- element updates (mutation-as-new-value) ---------------------------
    #
    # SISA sets are mutable through the element-update instructions
    # (Table 5 opcodes 0x5/0x6 for DBs, INSERT_SA/REMOVE_SA for SAs).
    # Every representation must support them: the runtime's scalar
    # ``insert``/``remove`` and the batched element-update dispatch both
    # go through these methods.  Values stay immutable Python objects —
    # an update returns a new value (which is also what makes zero-copy
    # graph snapshots possible, see ``repro.streaming``).

    @abstractmethod
    def with_element(self, x: int) -> "VertexSet":
        """``A ∪ {x}``; returns ``self`` when ``x`` is already present."""

    @abstractmethod
    def without_element(self, x: int) -> "VertexSet":
        """``A \\ {x}``; returns ``self`` when ``x`` is absent."""

    def with_elements(self, xs: np.ndarray) -> "VertexSet":
        """``A ∪ {x_1, ..., x_k}`` as one functional step (the batched
        element-update path).  Representations override this with a
        vectorized form; the default folds :meth:`with_element`."""
        value: VertexSet = self
        for x in np.asarray(xs).ravel():
            value = value.with_element(int(x))
        return value

    def without_elements(self, xs: np.ndarray) -> "VertexSet":
        """``A \\ {x_1, ..., x_k}`` as one functional step."""
        value: VertexSet = self
        for x in np.asarray(xs).ravel():
            value = value.without_element(int(x))
        return value

    def contains_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized membership of ``xs`` (model-internal helper; the
        batched update path uses it to resolve which updates take
        effect, mirroring the changed-bit an update instruction would
        report)."""
        xs = np.asarray(xs, dtype=np.int64).ravel()
        return np.fromiter(
            (self.contains(int(x)) for x in xs), dtype=bool, count=xs.size
        )

    def __len__(self) -> int:
        return self.cardinality

    def __iter__(self) -> Iterator[int]:
        return iter(int(x) for x in self.to_array())

    def __contains__(self, x: object) -> bool:
        return isinstance(x, (int, np.integer)) and self.contains(int(x))

    def to_python_set(self) -> set[int]:
        return {int(x) for x in self.to_array()}
