"""Abstract vertex-set interface shared by both SISA representations.

The paper represents a set ``S`` of vertices either as a *sparse array*
(SA: the elements as integers, ``W * |S|`` bits) or as a *dense
bitvector* (DB: one bit per universe element, ``n`` bits).  Section 6.1,
Figure 4.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np


class Representation(enum.Enum):
    """How a set is stored (paper Table 5, 'A and B represent.')."""

    SPARSE_SORTED = "sa-sorted"
    SPARSE_UNSORTED = "sa-unsorted"
    DENSE = "db"

    @property
    def is_sparse(self) -> bool:
        return self is not Representation.DENSE


class VertexSet(ABC):
    """A set of vertex ids drawn from a universe ``{0, ..., universe-1}``."""

    __slots__ = ()

    @property
    @abstractmethod
    def universe(self) -> int:
        """Universe size ``n`` (number of representable vertex ids)."""

    @property
    @abstractmethod
    def representation(self) -> Representation:
        """The storage representation of this set."""

    @property
    @abstractmethod
    def cardinality(self) -> int:
        """Number of elements; SISA tracks this in set metadata, so the
        ``|A|`` instruction is O(1) (Section 6.2.3)."""

    @abstractmethod
    def to_array(self) -> np.ndarray:
        """Elements as a sorted int array (materializes for DB sets)."""

    @abstractmethod
    def contains(self, x: int) -> bool:
        """Membership ``x in A``."""

    @property
    @abstractmethod
    def storage_bits(self) -> int:
        """Size of this representation in bits (paper Fig. 4)."""

    def __len__(self) -> int:
        return self.cardinality

    def __iter__(self) -> Iterator[int]:
        return iter(int(x) for x in self.to_array())

    def __contains__(self, x: object) -> bool:
        return isinstance(x, (int, np.integer)) and self.contains(int(x))

    def to_python_set(self) -> set[int]:
        return {int(x) for x in self.to_array()}
