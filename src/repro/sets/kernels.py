"""Functional kernels for set operations across representations.

Each kernel computes the exact result of a set operation for a specific
pair of representations.  These are the *functional* halves of the SISA
instructions in Table 5 of the paper; the *timing* halves live in
``repro.isa.perfmodel``.  Every kernel is pure: inputs are never
mutated and results are new set objects.

Output-representation convention (matches the paper's Figure 4 flow):

* DB op DB  -> DB (in-situ bulk bitwise),
* anything involving an SA -> SA (produced by a near-memory core).

All SA kernels exploit the sorted invariant: neighborhood SAs are
sorted, so membership probes of a sorted probe array produce hits that
are already in order and never need re-sorting.  The count-only
kernels (``*_cardinality`` plus the per-pair ``*_count_*`` functions)
realize the paper's Section 6.2.3 cardinality-of-result instructions:
they return the result size without allocating a result set for *any*
representation pair.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SetError
from repro.sets.base import Representation, VertexSet
from repro.sets.bitops import popcount
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import ELEMENT_DTYPE, SparseArray


def _check_universe(a: VertexSet, b: VertexSet) -> int:
    if a.universe != b.universe:
        raise SetError(
            f"universe mismatch: {a.universe} vs {b.universe}"
        )
    return a.universe


def _probe_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask over ``needles``: which occur in sorted ``haystack``.

    One vectorized binary-search pass; ``needles`` may be unsorted.
    """
    if haystack.size == 0 or needles.size == 0:
        return np.zeros(needles.size, dtype=bool)
    idx = np.searchsorted(haystack, needles)
    np.minimum(idx, haystack.size - 1, out=idx)
    return haystack[idx] == needles


def _probe_bits(words: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask over ``needles``: which bits are set in a DB's words."""
    bits = (words[needles // 64] >> (needles % 64).astype(np.uint64)) & np.uint64(1)
    return bits.astype(bool)


def _merge_sorted_disjoint(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted, *disjoint* arrays into one sorted array.

    Scatter-based: the final slot of ``a[i]`` is ``i`` plus the number
    of ``b`` elements below it (and symmetrically for ``b``), so two
    ``searchsorted`` passes replace the concatenate-and-resort that
    ``np.union1d`` would do.
    """
    out = np.empty(a.size + b.size, dtype=ELEMENT_DTYPE)
    out[np.arange(a.size) + np.searchsorted(b, a)] = a
    out[np.arange(b.size) + np.searchsorted(a, b)] = b
    return out


# ---------------------------------------------------------------------------
# Intersection
# ---------------------------------------------------------------------------

def intersect_merge(a: SparseArray, b: SparseArray) -> SparseArray:
    """Merge-based SA intersection: O(|A| + |B|) streaming (opcode 0x0).

    Functionally realized as a membership probe of the smaller sorted
    array into the larger (the output is identical to a two-pointer
    merge); hits of a sorted probe array are already sorted, so no
    re-sort is needed.
    """
    n = _check_universe(a, b)
    arr_a, arr_b = a.to_array(), b.to_array()
    small, big = (arr_a, arr_b) if arr_a.size <= arr_b.size else (arr_b, arr_a)
    return SparseArray.from_sorted(small[_probe_sorted(big, small)], n)


def intersect_gallop(a: SparseArray, b: SparseArray) -> SparseArray:
    """Galloping SA intersection, O(min * log max) (opcode 0x1).

    Search strategy: one vectorized binary search (``searchsorted``) of
    every element of the smaller set into the larger sorted set — the
    batched equivalent of per-element galloping; the timing model
    (``repro.isa.perfmodel``) prices it as ``l_M * min * log2(max)``.
    The smaller operand is probed in storage order, so when it is a
    sorted SA the hits come out sorted and the final sort is skipped.
    """
    n = _check_universe(a, b)
    small, big = (a, b) if a.cardinality <= b.cardinality else (b, a)
    small_arr = small.elements
    hits = small_arr[_probe_sorted(big.to_array(), small_arr)]
    if not small.is_sorted:
        hits = np.sort(hits)
    return SparseArray.from_sorted(hits, n)


def intersect_sa_db(a: SparseArray, b: DenseBitvector) -> SparseArray:
    """SA ∩ DB: iterate the SA, O(1) bit probes into the DB (opcode 0x3).

    Probe hits preserve the SA's storage order, so a sorted input SA
    yields sorted hits with no extra sort.
    """
    n = _check_universe(a, b)
    arr = a.elements
    if arr.size == 0:
        return SparseArray.empty(n)
    hits = arr[_probe_bits(b.words, arr)]
    if not a.is_sorted:
        hits = np.sort(hits)
    return SparseArray.from_sorted(hits, n)


def intersect_db_db(a: DenseBitvector, b: DenseBitvector) -> DenseBitvector:
    """DB ∩ DB: in-situ bulk bitwise AND (opcode 0x4)."""
    n = _check_universe(a, b)
    return DenseBitvector(a.words & b.words, n)


# ---------------------------------------------------------------------------
# Union
# ---------------------------------------------------------------------------

def union_merge(a: SparseArray, b: SparseArray) -> SparseArray:
    """SA ∪ SA via probe + scatter-merge of the sorted inputs (no
    concatenate-and-resort as in ``np.union1d``)."""
    n = _check_universe(a, b)
    arr_a, arr_b = a.to_array(), b.to_array()
    b_only = arr_b[~_probe_sorted(arr_a, arr_b)]
    return SparseArray.from_sorted(_merge_sorted_disjoint(arr_a, b_only), n)


def union_sa_db(a: SparseArray, b: DenseBitvector) -> DenseBitvector:
    """SA ∪ DB: set one bit per SA element (result stays dense)."""
    n = _check_universe(a, b)
    words = b.words.copy()
    arr = a.elements
    if arr.size:
        np.bitwise_or.at(
            words, arr // 64, np.uint64(1) << (arr % 64).astype(np.uint64)
        )
    return DenseBitvector(words, n)


def union_db_db(a: DenseBitvector, b: DenseBitvector) -> DenseBitvector:
    """DB ∪ DB: in-situ bulk bitwise OR."""
    n = _check_universe(a, b)
    return DenseBitvector(a.words | b.words, n)


# ---------------------------------------------------------------------------
# Difference (A \ B)
# ---------------------------------------------------------------------------

def difference_merge(a: SparseArray, b: SparseArray) -> SparseArray:
    """SA \\ SA: membership probe of A into B, keep the misses."""
    n = _check_universe(a, b)
    arr_a = a.to_array()
    return SparseArray.from_sorted(arr_a[~_probe_sorted(b.to_array(), arr_a)], n)


def difference_gallop(a: SparseArray, b: SparseArray) -> SparseArray:
    """Galloping difference: binary-search each element of A in B (same
    vectorized ``searchsorted`` strategy as :func:`intersect_gallop`).
    A sorted A yields sorted survivors, skipping the final sort."""
    n = _check_universe(a, b)
    arr = a.elements
    keep = arr[~_probe_sorted(b.to_array(), arr)]
    if not a.is_sorted:
        keep = np.sort(keep)
    return SparseArray.from_sorted(keep, n)


def difference_sa_db(a: SparseArray, b: DenseBitvector) -> SparseArray:
    """SA \\ DB: iterate A with O(1) bit probes (order-preserving, so a
    sorted A needs no re-sort)."""
    n = _check_universe(a, b)
    arr = a.elements
    if arr.size == 0:
        return SparseArray.empty(n)
    keep = arr[~_probe_bits(b.words, arr)]
    if not a.is_sorted:
        keep = np.sort(keep)
    return SparseArray.from_sorted(keep, n)


def difference_db_sa(a: DenseBitvector, b: SparseArray) -> DenseBitvector:
    """DB \\ SA: clear one bit per SA element."""
    n = _check_universe(a, b)
    words = a.words.copy()
    arr = b.elements
    if arr.size:
        np.bitwise_and.at(
            words, arr // 64, ~(np.uint64(1) << (arr % 64).astype(np.uint64))
        )
    return DenseBitvector(words, n)


def difference_db_db(a: DenseBitvector, b: DenseBitvector) -> DenseBitvector:
    """DB \\ DB via the set-algebra rule A \\ B = A ∩ B' (paper §8.1:
    in-situ NOT then AND)."""
    n = _check_universe(a, b)
    return DenseBitvector(a.words & ~b.words, n)


# ---------------------------------------------------------------------------
# Count-only kernels (§6.2.3): result sizes with zero materialization
# ---------------------------------------------------------------------------

def intersect_count_sa_sa(a: SparseArray, b: SparseArray) -> int:
    """|A ∩ B| for two SAs: probe the smaller into the larger and count
    hits — no result array is ever allocated."""
    small, big = (a, b) if a.cardinality <= b.cardinality else (b, a)
    return int(np.count_nonzero(_probe_sorted(big.to_array(), small.elements)))


def intersect_count_sa_db(a: SparseArray, b: DenseBitvector) -> int:
    """|A ∩ B| for SA vs DB: count set bits under the SA's elements."""
    arr = a.elements
    if arr.size == 0:
        return 0
    return int(np.count_nonzero(_probe_bits(b.words, arr)))


def intersect_count_db_db(a: DenseBitvector, b: DenseBitvector) -> int:
    """|A ∩ B| for two DBs: popcount of the bitwise AND."""
    return int(popcount(a.words & b.words).sum())


def intersect_cardinality(a: VertexSet, b: VertexSet) -> int:
    """``|A ∩ B|`` without materializing the result (paper §6.2.3:
    dedicated cardinality-of-result instructions avoid intermediates).
    True for every representation pair — no kernel here allocates a
    result set."""
    _check_universe(a, b)
    if isinstance(a, DenseBitvector):
        if isinstance(b, DenseBitvector):
            return intersect_count_db_db(a, b)
        return intersect_count_sa_db(b, a)
    if isinstance(b, DenseBitvector):
        return intersect_count_sa_db(a, b)
    return intersect_count_sa_sa(a, b)


def union_cardinality(a: VertexSet, b: VertexSet) -> int:
    """``|A ∪ B| = |A| + |B| - |A ∩ B|``."""
    return a.cardinality + b.cardinality - intersect_cardinality(a, b)


def difference_cardinality(a: VertexSet, b: VertexSet) -> int:
    """``|A \\ B| = |A| - |A ∩ B|``."""
    return a.cardinality - intersect_cardinality(a, b)


# ---------------------------------------------------------------------------
# Batched count primitives: one vectorized pass over a whole frontier
# ---------------------------------------------------------------------------

def _segment_counts(hits: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment hit counts for concatenated segments.

    ``offsets`` is a CSR-style boundary array of length ``k + 1``; the
    cumulative-sum formulation handles empty segments (which
    ``np.add.reduceat`` would mishandle)."""
    cum = np.zeros(hits.size + 1, dtype=np.int64)
    np.cumsum(hits, dtype=np.int64, out=cum[1:])
    return cum[offsets[1:]] - cum[offsets[:-1]]


def intersect_count_flat_sa(
    probe_sorted: np.ndarray, flat: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """``|P ∩ S_i|`` for every segment ``S_i`` of ``flat``.

    ``flat`` concatenates the element arrays of many SAs (CSR-style
    boundaries in ``offsets``); one ``searchsorted`` pass over the whole
    frontier replaces per-set kernel launches."""
    if flat.size == 0 or probe_sorted.size == 0:
        return np.zeros(offsets.size - 1, dtype=np.int64)
    return _segment_counts(_probe_sorted(probe_sorted, flat), offsets)


def intersect_count_flat_db(
    words: np.ndarray, flat: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """``|P ∩ S_i]`` where P is a dense bitvector: one vectorized bit
    probe of the whole concatenated frontier."""
    if flat.size == 0:
        return np.zeros(offsets.size - 1, dtype=np.int64)
    return _segment_counts(_probe_bits(words, flat), offsets)


# ---------------------------------------------------------------------------
# Generic dispatch (functional semantics; the SCU handles timing)
# ---------------------------------------------------------------------------

def intersect(a: VertexSet, b: VertexSet) -> VertexSet:
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return intersect_db_db(a, b)
    if isinstance(a, SparseArray) and isinstance(b, DenseBitvector):
        return intersect_sa_db(a, b)
    if isinstance(a, DenseBitvector) and isinstance(b, SparseArray):
        return intersect_sa_db(b, a)
    assert isinstance(a, SparseArray) and isinstance(b, SparseArray)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
    return intersect_merge(a, b)


def union(a: VertexSet, b: VertexSet) -> VertexSet:
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return union_db_db(a, b)
    if isinstance(a, SparseArray) and isinstance(b, DenseBitvector):
        return union_sa_db(a, b)
    if isinstance(a, DenseBitvector) and isinstance(b, SparseArray):
        return union_sa_db(b, a)
    assert isinstance(a, SparseArray) and isinstance(b, SparseArray)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
    return union_merge(a, b)


def difference(a: VertexSet, b: VertexSet) -> VertexSet:
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return difference_db_db(a, b)
    if isinstance(a, SparseArray) and isinstance(b, DenseBitvector):
        return difference_sa_db(a, b)
    if isinstance(a, DenseBitvector) and isinstance(b, SparseArray):
        return difference_db_sa(a, b)
    assert isinstance(a, SparseArray) and isinstance(b, SparseArray)  # repolint: disable=library-assert -- kernel-internal dispatch invariant
    return difference_merge(a, b)
