"""Functional kernels for set operations across representations.

Each kernel computes the exact result of a set operation for a specific
pair of representations.  These are the *functional* halves of the SISA
instructions in Table 5 of the paper; the *timing* halves live in
``repro.isa.perfmodel``.  Every kernel is pure: inputs are never
mutated and results are new set objects.

Output-representation convention (matches the paper's Figure 4 flow):

* DB op DB  -> DB (in-situ bulk bitwise),
* anything involving an SA -> SA (produced by a near-memory core).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SetError
from repro.sets.base import Representation, VertexSet
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import ELEMENT_DTYPE, SparseArray


def _check_universe(a: VertexSet, b: VertexSet) -> int:
    if a.universe != b.universe:
        raise SetError(
            f"universe mismatch: {a.universe} vs {b.universe}"
        )
    return a.universe


# ---------------------------------------------------------------------------
# Intersection
# ---------------------------------------------------------------------------

def intersect_merge(a: SparseArray, b: SparseArray) -> SparseArray:
    """Merge-based SA intersection: O(|A| + |B|) streaming (opcode 0x0)."""
    n = _check_universe(a, b)
    result = np.intersect1d(a.to_array(), b.to_array(), assume_unique=True)
    return SparseArray.from_sorted(result.astype(ELEMENT_DTYPE), n)


def intersect_gallop(a: SparseArray, b: SparseArray) -> SparseArray:
    """Galloping SA intersection: binary-search the smaller set's
    elements in the larger set, O(min * log max) (opcode 0x1)."""
    n = _check_universe(a, b)
    small, big = (a, b) if a.cardinality <= b.cardinality else (b, a)
    small_arr = small.elements
    big_arr = big.to_array()
    if small_arr.size == 0 or big_arr.size == 0:
        return SparseArray.empty(n)
    idx = np.searchsorted(big_arr, small_arr)
    idx = np.minimum(idx, big_arr.size - 1)
    hits = small_arr[big_arr[idx] == small_arr]
    return SparseArray.from_sorted(np.sort(hits), n)


def intersect_sa_db(a: SparseArray, b: DenseBitvector) -> SparseArray:
    """SA ∩ DB: iterate the SA, O(1) bit probes into the DB (opcode 0x3)."""
    n = _check_universe(a, b)
    arr = a.elements
    if arr.size == 0:
        return SparseArray.empty(n)
    words = b.words
    bits = (words[arr // 64] >> (arr % 64).astype(np.uint64)) & np.uint64(1)
    hits = arr[bits.astype(bool)]
    return SparseArray.from_sorted(np.sort(hits), n)


def intersect_db_db(a: DenseBitvector, b: DenseBitvector) -> DenseBitvector:
    """DB ∩ DB: in-situ bulk bitwise AND (opcode 0x4)."""
    n = _check_universe(a, b)
    return DenseBitvector(a.words & b.words, n)


# ---------------------------------------------------------------------------
# Union
# ---------------------------------------------------------------------------

def union_merge(a: SparseArray, b: SparseArray) -> SparseArray:
    n = _check_universe(a, b)
    result = np.union1d(a.to_array(), b.to_array())
    return SparseArray.from_sorted(result.astype(ELEMENT_DTYPE), n)


def union_sa_db(a: SparseArray, b: DenseBitvector) -> DenseBitvector:
    """SA ∪ DB: set one bit per SA element (result stays dense)."""
    n = _check_universe(a, b)
    words = b.words.copy()
    arr = a.elements
    if arr.size:
        np.bitwise_or.at(
            words, arr // 64, np.uint64(1) << (arr % 64).astype(np.uint64)
        )
    return DenseBitvector(words, n)


def union_db_db(a: DenseBitvector, b: DenseBitvector) -> DenseBitvector:
    """DB ∪ DB: in-situ bulk bitwise OR."""
    n = _check_universe(a, b)
    return DenseBitvector(a.words | b.words, n)


# ---------------------------------------------------------------------------
# Difference (A \ B)
# ---------------------------------------------------------------------------

def difference_merge(a: SparseArray, b: SparseArray) -> SparseArray:
    n = _check_universe(a, b)
    result = np.setdiff1d(a.to_array(), b.to_array(), assume_unique=True)
    return SparseArray.from_sorted(result.astype(ELEMENT_DTYPE), n)


def difference_gallop(a: SparseArray, b: SparseArray) -> SparseArray:
    """Galloping difference: probe each element of A in B."""
    n = _check_universe(a, b)
    arr = a.elements
    b_arr = b.to_array()
    if arr.size == 0:
        return SparseArray.empty(n)
    if b_arr.size == 0:
        return SparseArray.from_sorted(np.sort(arr), n)
    idx = np.minimum(np.searchsorted(b_arr, arr), b_arr.size - 1)
    keep = arr[b_arr[idx] != arr]
    return SparseArray.from_sorted(np.sort(keep), n)


def difference_sa_db(a: SparseArray, b: DenseBitvector) -> SparseArray:
    """SA \\ DB: iterate A with O(1) bit probes."""
    n = _check_universe(a, b)
    arr = a.elements
    if arr.size == 0:
        return SparseArray.empty(n)
    words = b.words
    bits = (words[arr // 64] >> (arr % 64).astype(np.uint64)) & np.uint64(1)
    keep = arr[~bits.astype(bool)]
    return SparseArray.from_sorted(np.sort(keep), n)


def difference_db_sa(a: DenseBitvector, b: SparseArray) -> DenseBitvector:
    """DB \\ SA: clear one bit per SA element."""
    n = _check_universe(a, b)
    words = a.words.copy()
    arr = b.elements
    if arr.size:
        np.bitwise_and.at(
            words, arr // 64, ~(np.uint64(1) << (arr % 64).astype(np.uint64))
        )
    return DenseBitvector(words, n)


def difference_db_db(a: DenseBitvector, b: DenseBitvector) -> DenseBitvector:
    """DB \\ DB via the set-algebra rule A \\ B = A ∩ B' (paper §8.1:
    in-situ NOT then AND)."""
    n = _check_universe(a, b)
    return DenseBitvector(a.words & ~b.words, n)


# ---------------------------------------------------------------------------
# Generic dispatch (functional semantics; the SCU handles timing)
# ---------------------------------------------------------------------------

def intersect(a: VertexSet, b: VertexSet) -> VertexSet:
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return intersect_db_db(a, b)
    if isinstance(a, SparseArray) and isinstance(b, DenseBitvector):
        return intersect_sa_db(a, b)
    if isinstance(a, DenseBitvector) and isinstance(b, SparseArray):
        return intersect_sa_db(b, a)
    assert isinstance(a, SparseArray) and isinstance(b, SparseArray)
    return intersect_merge(a, b)


def union(a: VertexSet, b: VertexSet) -> VertexSet:
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return union_db_db(a, b)
    if isinstance(a, SparseArray) and isinstance(b, DenseBitvector):
        return union_sa_db(a, b)
    if isinstance(a, DenseBitvector) and isinstance(b, SparseArray):
        return union_sa_db(b, a)
    assert isinstance(a, SparseArray) and isinstance(b, SparseArray)
    return union_merge(a, b)


def difference(a: VertexSet, b: VertexSet) -> VertexSet:
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return difference_db_db(a, b)
    if isinstance(a, SparseArray) and isinstance(b, DenseBitvector):
        return difference_sa_db(a, b)
    if isinstance(a, DenseBitvector) and isinstance(b, SparseArray):
        return difference_db_sa(a, b)
    assert isinstance(a, SparseArray) and isinstance(b, SparseArray)
    return difference_merge(a, b)


def intersect_cardinality(a: VertexSet, b: VertexSet) -> int:
    """``|A ∩ B|`` without materializing the result (paper §6.2.3:
    dedicated cardinality-of-result instructions avoid intermediates)."""
    if isinstance(a, DenseBitvector) and isinstance(b, DenseBitvector):
        return int(np.bitwise_count(a.words & b.words).sum())
    return intersect(a, b).cardinality


def union_cardinality(a: VertexSet, b: VertexSet) -> int:
    """``|A ∪ B| = |A| + |B| - |A ∩ B|``."""
    return a.cardinality + b.cardinality - intersect_cardinality(a, b)


def difference_cardinality(a: VertexSet, b: VertexSet) -> int:
    return a.cardinality - intersect_cardinality(a, b)
