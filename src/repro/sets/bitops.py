"""Portable word-level popcount.

``np.bitwise_count`` only exists on NumPy >= 2.0.  On older NumPy we
fall back to an ``unpackbits``-based popcount so the package still
imports (and stays correct, just slower) on NumPy 1.x.

Both implementations take an array of ``uint64`` words (any shape) and
return the per-word popcount; callers typically ``.sum()`` the result
to get a set cardinality.
"""

from __future__ import annotations

import numpy as np


def _popcount_unpackbits(words: np.ndarray) -> np.ndarray:
    """NumPy 1.x fallback: expand each 64-bit word to 64 bits and sum."""
    w = np.ascontiguousarray(np.asarray(words, dtype=np.uint64))
    if w.size == 0:
        return np.zeros(w.shape, dtype=np.uint8)
    bits = np.unpackbits(w.view(np.uint8).reshape(w.shape + (8,)), axis=-1)
    return bits.sum(axis=-1, dtype=np.uint8)


if hasattr(np, "bitwise_count"):
    popcount = np.bitwise_count
else:  # pragma: no cover - exercised only on NumPy < 2.0
    popcount = _popcount_unpackbits
