"""Conversions between the SA and DB set representations."""

from __future__ import annotations

from repro.sets.base import VertexSet
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray


def to_dense(s: VertexSet) -> DenseBitvector:
    if isinstance(s, DenseBitvector):
        return s
    return DenseBitvector.from_elements(s.to_array(), s.universe)


def to_sparse(s: VertexSet) -> SparseArray:
    if isinstance(s, SparseArray):
        return s
    return SparseArray.from_sorted(s.to_array(), s.universe)


def as_representation(s: VertexSet, dense: bool) -> VertexSet:
    return to_dense(s) if dense else to_sparse(s)
