"""SISA set representations (sparse arrays, dense bitvectors) and kernels."""

from repro.sets.base import Representation, VertexSet
from repro.sets.convert import as_representation, to_dense, to_sparse
from repro.sets.dense import DenseBitvector
from repro.sets.sparse import SparseArray

__all__ = [
    "Representation",
    "VertexSet",
    "DenseBitvector",
    "SparseArray",
    "as_representation",
    "to_dense",
    "to_sparse",
]
