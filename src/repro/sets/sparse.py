"""Sparse-array (SA) vertex sets.

An SA stores the ``k`` elements of a set as integers, using
``W * k`` bits where ``W`` is the word size (paper Section 2 and
Figure 4).  Neighborhood SAs are sorted; auxiliary SAs may be unsorted
(paper Section 6.2.1 explicitly supports the unsorted-SA-vs-sorted-SA
intersection variant).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import SetError
from repro.sets.base import Representation, VertexSet

ELEMENT_DTYPE = np.int64
WORD_BITS = 32  # W in the paper's storage formulas


class SparseArray(VertexSet):
    """A vertex set stored as an integer array."""

    __slots__ = ("_elements", "_universe", "_sorted")

    def __init__(
        self,
        elements: Iterable[int] | np.ndarray,
        universe: int,
        *,
        sorted_: bool | None = None,
        _trusted: bool = False,
    ):
        arr = np.asarray(
            list(elements) if not isinstance(elements, np.ndarray) else elements,
            dtype=ELEMENT_DTYPE,
        ).ravel()
        if not _trusted:
            if arr.size and (arr.min() < 0 or arr.max() >= universe):
                raise SetError("element out of universe range")
            if np.unique(arr).size != arr.size:
                raise SetError("sparse array elements must be distinct")
        if sorted_ is None:
            sorted_ = bool(arr.size < 2 or np.all(arr[:-1] < arr[1:]))
        self._elements = arr
        self._universe = int(universe)
        self._sorted = bool(sorted_)

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, universe: int) -> "SparseArray":
        return cls(np.empty(0, dtype=ELEMENT_DTYPE), universe, sorted_=True, _trusted=True)

    @classmethod
    def from_sorted(cls, arr: np.ndarray, universe: int) -> "SparseArray":
        """Wrap an already-sorted, distinct array without copying."""
        return cls(arr, universe, sorted_=True, _trusted=True)

    @classmethod
    def full(cls, universe: int) -> "SparseArray":
        return cls.from_sorted(np.arange(universe, dtype=ELEMENT_DTYPE), universe)

    # -- VertexSet interface ---------------------------------------------

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def representation(self) -> Representation:
        if self._sorted:
            return Representation.SPARSE_SORTED
        return Representation.SPARSE_UNSORTED

    @property
    def cardinality(self) -> int:
        return int(self._elements.size)

    @property
    def is_sorted(self) -> bool:
        return self._sorted

    @property
    def elements(self) -> np.ndarray:
        """The raw element array in storage order (may be unsorted)."""
        return self._elements

    def to_array(self) -> np.ndarray:
        if self._sorted:
            return self._elements
        return np.sort(self._elements)

    def contains(self, x: int) -> bool:
        if self._sorted:
            i = np.searchsorted(self._elements, x)
            return bool(i < self._elements.size and self._elements[i] == x)
        return bool(np.any(self._elements == x))

    @property
    def storage_bits(self) -> int:
        return WORD_BITS * self.cardinality

    # -- mutation-as-new-value helpers ------------------------------------

    def with_element(self, x: int) -> "SparseArray":
        """``A | {x}``; keeps sortedness (O(|A|) data movement, as the
        paper notes for SA add/remove in Section 6.2.4)."""
        if not 0 <= x < self._universe:
            raise SetError("element out of universe range")
        if self.contains(x):
            return self
        if self._sorted:
            i = int(np.searchsorted(self._elements, x))
            arr = np.insert(self._elements, i, x)
            return SparseArray.from_sorted(arr, self._universe)
        return SparseArray(
            np.append(self._elements, x), self._universe, sorted_=False, _trusted=True
        )

    def without_element(self, x: int) -> "SparseArray":
        """``A \\ {x}``."""
        if not self.contains(x):
            return self
        arr = self._elements[self._elements != x]
        return SparseArray(arr, self._universe, sorted_=self._sorted, _trusted=True)

    def with_elements(self, xs: np.ndarray) -> "SparseArray":
        """Bulk ``A ∪ {x_1..x_k}``: one vectorized merge instead of k
        inserts (the functional half of the batched element-update
        instruction burst)."""
        xs = np.asarray(xs, dtype=ELEMENT_DTYPE).ravel()
        if xs.size == 0:
            return self
        if xs.size and (xs.min() < 0 or xs.max() >= self._universe):
            raise SetError("element out of universe range")
        new = np.setdiff1d(xs, self._elements)
        if new.size == 0:
            return self
        if self._sorted:
            merged = np.union1d(self._elements, new)
            return SparseArray.from_sorted(merged, self._universe)
        return SparseArray(
            np.concatenate([self._elements, new]),
            self._universe,
            sorted_=False,
            _trusted=True,
        )

    def without_elements(self, xs: np.ndarray) -> "SparseArray":
        """Bulk ``A \\ {x_1..x_k}``."""
        xs = np.asarray(xs, dtype=ELEMENT_DTYPE).ravel()
        if xs.size == 0:
            return self
        keep = ~np.isin(self._elements, xs)
        if keep.all():
            return self
        return SparseArray(
            self._elements[keep], self._universe, sorted_=self._sorted, _trusted=True
        )

    def contains_many(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=ELEMENT_DTYPE).ravel()
        if self._sorted:
            idx = np.searchsorted(self._elements, xs)
            inside = idx < self._elements.size
            out = np.zeros(xs.size, dtype=bool)
            out[inside] = self._elements[idx[inside]] == xs[inside]
            return out
        return np.isin(xs, self._elements)

    def shuffled(self, seed: int = 0) -> "SparseArray":
        """An unsorted permutation of this set (for tests and for
        exercising the unsorted-SA instruction variants)."""
        rng = np.random.default_rng(seed)
        return SparseArray(
            rng.permutation(self._elements),
            self._universe,
            sorted_=self._elements.size < 2,
            _trusted=True,
        )

    def __repr__(self) -> str:
        kind = "sorted" if self._sorted else "unsorted"
        return f"SparseArray({kind}, |A|={self.cardinality}, n={self._universe})"
