"""Dense-bitvector (DB) vertex sets.

A DB stores a set over universe ``{0..n-1}`` as ``n`` bits packed into
64-bit words.  DB pairs are processed with in-situ bulk bitwise PIM
(SISA-PUM); element add/remove is a single bit write (paper Sections
6.1, 6.2.4, 8.1).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import SetError
from repro.sets.base import Representation, VertexSet
from repro.sets.bitops import popcount

WORD = 64


def _num_words(universe: int) -> int:
    return (universe + WORD - 1) // WORD


class DenseBitvector(VertexSet):
    """A vertex set stored as a packed bitvector of ``universe`` bits."""

    __slots__ = ("_words", "_universe", "_cardinality")

    def __init__(self, words: np.ndarray, universe: int, *, cardinality: int | None = None):
        words = np.asarray(words, dtype=np.uint64)
        if words.size != _num_words(universe):
            raise SetError(
                f"expected {_num_words(universe)} words for universe {universe}, "
                f"got {words.size}"
            )
        # Mask tail bits beyond the universe so popcounts stay correct.
        tail = universe % WORD
        if tail and words.size:
            words = words.copy()
            words[-1] &= np.uint64((1 << tail) - 1)
        self._words = words
        self._universe = int(universe)
        if cardinality is None:
            cardinality = int(popcount(self._words).sum())
        self._cardinality = cardinality

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls, universe: int) -> "DenseBitvector":
        return cls(np.zeros(_num_words(universe), dtype=np.uint64), universe, cardinality=0)

    @classmethod
    def full(cls, universe: int) -> "DenseBitvector":
        words = np.full(_num_words(universe), np.uint64(0xFFFFFFFFFFFFFFFF))
        return cls(words, universe, cardinality=universe)

    @classmethod
    def from_elements(
        cls, elements: Iterable[int] | np.ndarray, universe: int
    ) -> "DenseBitvector":
        arr = np.asarray(
            list(elements) if not isinstance(elements, np.ndarray) else elements,
            dtype=np.int64,
        ).ravel()
        if arr.size and (arr.min() < 0 or arr.max() >= universe):
            raise SetError("element out of universe range")
        words = np.zeros(_num_words(universe), dtype=np.uint64)
        if arr.size:
            arr = np.unique(arr)
            np.bitwise_or.at(
                words, arr // WORD, np.uint64(1) << (arr % WORD).astype(np.uint64)
            )
        return cls(words, universe, cardinality=int(arr.size))

    # -- VertexSet interface ---------------------------------------------

    @property
    def universe(self) -> int:
        return self._universe

    @property
    def representation(self) -> Representation:
        return Representation.DENSE

    @property
    def cardinality(self) -> int:
        return self._cardinality

    @property
    def words(self) -> np.ndarray:
        return self._words

    def to_array(self) -> np.ndarray:
        bits = np.unpackbits(
            self._words.view(np.uint8), bitorder="little", count=self._universe
        )
        return np.flatnonzero(bits).astype(np.int64)

    def contains(self, x: int) -> bool:
        if not 0 <= x < self._universe:
            return False
        word = self._words[x // WORD]
        return bool((word >> np.uint64(x % WORD)) & np.uint64(1))

    @property
    def storage_bits(self) -> int:
        return self._universe

    # -- mutation-as-new-value helpers ------------------------------------

    def with_element(self, x: int) -> "DenseBitvector":
        """``A | {x}``: a single set-bit (SISA instruction 0x5)."""
        if not 0 <= x < self._universe:
            raise SetError("element out of universe range")
        if self.contains(x):
            return self
        words = self._words.copy()
        words[x // WORD] |= np.uint64(1) << np.uint64(x % WORD)
        return DenseBitvector(words, self._universe, cardinality=self._cardinality + 1)

    def without_element(self, x: int) -> "DenseBitvector":
        """``A \\ {x}``: a single clear-bit (SISA instruction 0x6)."""
        if not self.contains(x):
            return self
        words = self._words.copy()
        words[x // WORD] &= ~(np.uint64(1) << np.uint64(x % WORD))
        return DenseBitvector(words, self._universe, cardinality=self._cardinality - 1)

    def with_elements(self, xs: np.ndarray) -> "DenseBitvector":
        """Bulk ``A ∪ {x_1..x_k}``: k set-bit writes applied in one
        functional step."""
        xs = np.asarray(xs, dtype=np.int64).ravel()
        if xs.size == 0:
            return self
        if xs.min() < 0 or xs.max() >= self._universe:
            raise SetError("element out of universe range")
        new = xs[~self.contains_many(xs)]
        if new.size == 0:
            return self
        new = np.unique(new)
        words = self._words.copy()
        np.bitwise_or.at(
            words, new // WORD, np.uint64(1) << (new % WORD).astype(np.uint64)
        )
        return DenseBitvector(
            words, self._universe, cardinality=self._cardinality + int(new.size)
        )

    def without_elements(self, xs: np.ndarray) -> "DenseBitvector":
        """Bulk ``A \\ {x_1..x_k}``: k clear-bit writes in one step."""
        xs = np.asarray(xs, dtype=np.int64).ravel()
        if xs.size == 0:
            return self
        gone = np.unique(xs[self.contains_many(xs)])
        if gone.size == 0:
            return self
        words = self._words.copy()
        np.bitwise_and.at(
            words,
            gone // WORD,
            ~(np.uint64(1) << (gone % WORD).astype(np.uint64)),
        )
        return DenseBitvector(
            words, self._universe, cardinality=self._cardinality - int(gone.size)
        )

    def contains_many(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=np.int64).ravel()
        out = np.zeros(xs.size, dtype=bool)
        inside = (xs >= 0) & (xs < self._universe)
        if inside.any():
            sel = xs[inside]
            bits = (
                self._words[sel // WORD] >> (sel % WORD).astype(np.uint64)
            ) & np.uint64(1)
            out[inside] = bits.astype(bool)
        return out

    def complement(self) -> "DenseBitvector":
        """``A'`` via in-situ NOT (used for difference: A \\ B = A & B')."""
        words = ~self._words
        return DenseBitvector(words, self._universe)

    def __repr__(self) -> str:
        return f"DenseBitvector(|A|={self.cardinality}, n={self._universe})"
