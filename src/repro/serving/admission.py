"""Per-tenant admission control and the bounded retry policy.

PR 5 made ``tenant_cycles`` a fairness *ledger*; this module makes it
an admission-control *input*.  A :class:`TenantQuota` bounds what one
tenant may queue (``max_queue_depth``) and spend (``cycle_budget``, in
modeled work cycles — the same currency the pool ledgers); the
:class:`AdmissionController` turns the quota plus the observed state
into a deterministic :class:`AdmissionDecision`:

* ``admit`` — queue the plan now;
* ``defer`` — the tenant's pending queue is full but its deferral
  window is not: the plan parks in the pool's deferred queue and is
  promoted (in deferral order) when the queue drains at the next
  ``run()``;
* ``reject`` — the tenant's cycle budget is exhausted, or both queues
  are full; ``pool.submit`` raises
  :class:`~repro.errors.AdmissionError` with the limit and observed
  value in ``details``.

Budget semantics (the invariant tests and the robustness soak assert):
a tenant's *spent* cycles are its useful ledger plus its charged retry
cycles; no plan is admitted — and under the hardened run path no
queued plan even *starts* — once spent >= budget, so the ledger can
overshoot the budget by at most the cost of the single plan that
crossed it.  Decisions never depend on wall-clock or randomness, so a
replayed submission sequence reproduces the same admit/defer/reject
trace bit for bit.

:class:`RetryPolicy` is the execution-side counterpart: it bounds how
many times the hardened pool re-attempts a faulted plan and whether
stream-drifted plans are recompiled, with every failed attempt's
modeled cycles charged to the owning tenant's retry ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigError


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may queue and spend.

    ``None`` disables a limit.  ``cycle_budget`` is in modeled work
    cycles (the ``pool.tenant_cycles`` currency); ``max_queue_depth``
    bounds the tenant's plans pending between ``run()`` calls;
    ``max_deferred`` bounds its parked overflow plans.
    """

    cycle_budget: float | None = None
    max_queue_depth: int | None = None
    max_deferred: int = 8

    def __post_init__(self) -> None:
        if self.cycle_budget is not None and self.cycle_budget <= 0:
            raise ConfigError("cycle_budget must be positive (or None)")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ConfigError("max_queue_depth must be positive (or None)")
        if self.max_deferred < 0:
            raise ConfigError("max_deferred must be non-negative")


@dataclass(frozen=True)
class AdmissionDecision:
    """One deterministic admission outcome."""

    action: str  # "admit" | "defer" | "reject"
    tenant: str
    reason: str  # "ok" | "queue-full" | "budget-exhausted"
    details: dict = field(default_factory=dict)

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class AdmissionController:
    """Deterministic admit/defer/reject decisions from per-tenant
    quotas plus the observed queue and ledger state."""

    def __init__(
        self,
        quotas: Mapping[str, TenantQuota] | None = None,
        *,
        default_quota: TenantQuota | None = None,
    ):
        self.quotas = dict(quotas or {})
        for tenant, quota in self.quotas.items():
            if not isinstance(quota, TenantQuota):
                raise ConfigError(
                    f"quota for tenant {tenant!r} must be a TenantQuota"
                )
        self.default_quota = default_quota
        self.admissions: dict[str, int] = {}
        self.deferrals: dict[str, int] = {}
        self.rejections: dict[str, int] = {}
        self.reject_reasons: dict[str, int] = {}
        # Optional observability hub (set by the owning pool); mirrors
        # decisions into labeled counters.  Observation-only.
        self.obs = None

    def quota(self, tenant: str) -> TenantQuota | None:
        """The quota governing ``tenant`` (named, else the default,
        else ``None`` = unlimited)."""
        return self.quotas.get(tenant, self.default_quota)

    def budget_exhausted(self, tenant: str, spent: float) -> bool:
        quota = self.quota(tenant)
        return (
            quota is not None
            and quota.cycle_budget is not None
            and spent >= quota.cycle_budget
        )

    def decide(
        self,
        tenant: str,
        *,
        queued: int,
        deferred: int,
        spent: float,
    ) -> AdmissionDecision:
        """Decide one submission; records the outcome in the
        controller's counters."""
        quota = self.quota(tenant)
        decision = self._decide(tenant, quota, queued, deferred, spent)
        if decision.action == "admit":
            self.admissions[tenant] = self.admissions.get(tenant, 0) + 1
        elif decision.action == "defer":
            self.deferrals[tenant] = self.deferrals.get(tenant, 0) + 1
        else:
            self.rejections[tenant] = self.rejections.get(tenant, 0) + 1
            self.reject_reasons[decision.reason] = (
                self.reject_reasons.get(decision.reason, 0) + 1
            )
        if self.obs is not None:
            self.obs.admission(decision.action, tenant)
        return decision

    def _decide(
        self,
        tenant: str,
        quota: TenantQuota | None,
        queued: int,
        deferred: int,
        spent: float,
    ) -> AdmissionDecision:
        if quota is None:
            return AdmissionDecision("admit", tenant, "ok")
        if quota.cycle_budget is not None and spent >= quota.cycle_budget:
            return AdmissionDecision(
                "reject",
                tenant,
                "budget-exhausted",
                {
                    "cycle_budget": quota.cycle_budget,
                    "spent_cycles": spent,
                },
            )
        if quota.max_queue_depth is not None and queued >= quota.max_queue_depth:
            if deferred < quota.max_deferred:
                return AdmissionDecision(
                    "defer",
                    tenant,
                    "queue-full",
                    {
                        "max_queue_depth": quota.max_queue_depth,
                        "queued": queued,
                        "deferred": deferred,
                    },
                )
            return AdmissionDecision(
                "reject",
                tenant,
                "queue-full",
                {
                    "max_queue_depth": quota.max_queue_depth,
                    "queued": queued,
                    "max_deferred": quota.max_deferred,
                    "deferred": deferred,
                },
            )
        return AdmissionDecision("admit", tenant, "ok")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on the hardened pool's per-plan recovery.

    ``max_retries`` is the number of *extra* execution attempts after
    the first (so a plan executes at most ``max_retries + 1`` times);
    ``recompile_on_drift`` controls whether a stream-drifted plan is
    recompiled at the current version (the alternative is a structured
    ``FailedResult`` with reason ``"drift"``).  Every failed attempt's
    modeled cycles are charged to the owning tenant's retry ledger, so
    retries spend budget exactly like useful work.
    """

    max_retries: int = 2
    recompile_on_drift: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1
