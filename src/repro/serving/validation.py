"""The front-door validation rule engine.

Before this module, a malformed request died wherever it happened to
hit bottom: an unknown workload raised at registry lookup, a misspelled
parameter at plan compile, a bad ``measure`` inside the kernel, an
out-of-range vertex as an opaque numpy ``IndexError`` — and an unknown
``ExecutionConfig`` override key as a bare ``TypeError`` from the
dataclass constructor.  The rule engine moves all of that to the door:

* Validators are small named functions registered with :func:`rule`
  (the per-validator registry idiom of the kg-microbe build system's
  per-source transform registry): each declares which workloads it
  applies to and returns violations instead of raising.
* :class:`RuleSet` composes validators; :func:`default_rules` builds
  the stock set for a workload (every global rule plus its targeted
  ones), and callers may pass their own composition.
* :func:`validate_request` is the single validation code path shared
  by ``session.compile``, ``session.run`` and ``pool.submit``.  On
  failure it raises one structured
  :class:`~repro.errors.ValidationError` whose ``details`` carry every
  violation (rule name, message, offending values) machine-readably.
* :func:`resolve_execution_config` / :func:`validate_config_overrides`
  run the config-scoped rules, so ``SessionPool(bogus_knob=1)`` fails
  with a :class:`~repro.errors.ConfigError` naming the bad key instead
  of a dataclass ``TypeError``.

Validation is host-side and uncharged: it never dispatches
instructions, never builds cached structures, and never changes the
modeled cycles of an accepted request.

Imports from ``repro.session`` are deferred inside functions: the
session layer itself validates through this module, and module-level
imports in either direction would cycle.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.errors import ConfigError, SisaError, ValidationError

SCOPES = ("request", "config")


@dataclass(frozen=True)
class Violation:
    """One failed check: the rule that failed, a human-readable
    message, and a machine-readable context payload."""

    rule: str
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "message": self.message, **self.details}


@dataclass
class RequestContext:
    """What validators see.

    ``session`` (and therefore ``graph``) may be ``None`` when a
    request is validated without a session (pure shape checks still
    run; graph-dependent rules skip).  ``overrides`` is populated only
    for config-scoped validation.
    """

    workload: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    spec: Any = None  # WorkloadSpec, once resolved
    session: Any = None
    overrides: dict[str, Any] = field(default_factory=dict)

    @property
    def graph(self):
        """The current CSR graph state, or ``None`` sessionless."""
        return None if self.session is None else self.session.current_graph

    @property
    def num_vertices(self) -> int | None:
        graph = self.graph
        return None if graph is None else graph.num_vertices


@dataclass(frozen=True)
class Rule:
    """One registered validator."""

    name: str
    check: Callable[[RequestContext], Any]
    scope: str  # one of SCOPES
    workloads: frozenset[str] | None  # None = applies to every workload
    description: str

    def applies_to(self, workload: str | None) -> bool:
        return self.workloads is None or workload in self.workloads

    def violations(self, ctx: RequestContext) -> list[Violation]:
        """Run the check, normalizing its return value: ``None`` means
        pass; a string, a :class:`Violation` or an iterable of either
        means failure(s)."""
        found = self.check(ctx)
        if found is None:
            return []
        if isinstance(found, (str, Violation)):
            found = [found]
        return [
            v if isinstance(v, Violation) else Violation(self.name, str(v))
            for v in found
        ]


_RULES: dict[str, Rule] = {}


def rule(
    name: str,
    *,
    scope: str = "request",
    workloads: Iterable[str] | None = None,
    description: str = "",
    replace: bool = False,
) -> Callable[[Callable[[RequestContext], Any]], Callable[[RequestContext], Any]]:
    """Register a validator under ``name``.

    ``workloads`` restricts a request-scoped rule to specific workload
    names (``None`` = global).  Re-registering an existing name raises
    unless ``replace=True`` — the same anti-shadowing contract as the
    workload registry.
    """
    if scope not in SCOPES:
        raise ConfigError(f"rule scope must be one of {SCOPES}, got {scope!r}")

    def decorate(fn: Callable[[RequestContext], Any]):
        if name in _RULES and not replace:
            raise SisaError(
                f"validation rule {name!r} is already registered; pass "
                "replace=True to overwrite it deliberately"
            )
        doc_line = next(iter((fn.__doc__ or "").strip().splitlines()), "")
        _RULES[name] = Rule(
            name=name,
            check=fn,
            scope=scope,
            workloads=frozenset(workloads) if workloads is not None else None,
            description=description or doc_line,
        )
        return fn

    return decorate


def available_rules(scope: str | None = None) -> dict[str, str]:
    """Registered rule names mapped to their descriptions."""
    return {
        name: r.description
        for name, r in sorted(_RULES.items())
        if scope is None or r.scope == scope
    }


class RuleSet:
    """An ordered, composable collection of registered rules."""

    def __init__(self, names: Iterable[str]):
        self.names = tuple(names)
        unknown = [n for n in self.names if n not in _RULES]
        if unknown:
            raise ConfigError(
                f"unknown validation rule(s) {unknown}; available: "
                f"{sorted(_RULES)}",
                details={"unknown_rules": unknown},
            )

    def __iter__(self):
        return iter(self.names)

    def __len__(self) -> int:
        return len(self.names)

    def extend(self, names: Iterable[str]) -> "RuleSet":
        """A new RuleSet with extra rules appended (dedup, keep order)."""
        merged = list(self.names)
        merged.extend(n for n in names if n not in merged)
        return RuleSet(merged)

    def validate(self, ctx: RequestContext) -> list[Violation]:
        """Run every applicable rule; returns all violations found."""
        found: list[Violation] = []
        for name in self.names:
            r = _RULES[name]
            if r.scope == "request" and not r.applies_to(ctx.workload):
                continue
            found.extend(r.violations(ctx))
        return found


def default_rules(workload: str | None = None) -> RuleSet:
    """The stock request RuleSet for ``workload``: every global
    request rule plus the rules targeting that workload, in
    registration order."""
    return RuleSet(
        name
        for name, r in _RULES.items()
        if r.scope == "request" and r.applies_to(workload)
    )


# ---------------------------------------------------------------------------
# Shared signature introspection (the one home of the accepted/required
# parameter logic that used to live privately in the plan compiler)
# ---------------------------------------------------------------------------

_SIGNATURES: dict[Callable, tuple[frozenset | None, frozenset]] = {}


def signature_params(fn: Callable) -> tuple[frozenset | None, frozenset]:
    """``(accepted, required)`` keyword parameters of a workload fn.

    ``accepted`` is ``None`` when the fn takes ``**kwargs``;
    ``required`` are the parameters without defaults (never includes
    the leading session argument or ``view``)."""
    cached = _SIGNATURES.get(fn)
    if cached is not None:
        return cached
    names: list[str] = []
    required: list[str] = []
    accepts_any = False
    for i, p in enumerate(inspect.signature(fn).parameters.values()):
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            accepts_any = True
        elif i > 0:  # skip the leading session argument
            names.append(p.name)
            if p.default is inspect.Parameter.empty and p.name != "view":
                required.append(p.name)
    result = (
        None if accepts_any else frozenset(names),
        frozenset(required),
    )
    _SIGNATURES[fn] = result
    return result


# ---------------------------------------------------------------------------
# Built-in request rules
# ---------------------------------------------------------------------------


@rule("params-accepted")
def _params_accepted(ctx: RequestContext):
    """Every parameter name must exist in the workload's signature."""
    accepted, __ = signature_params(ctx.spec.fn)
    if accepted is None:
        return None
    unknown = set(ctx.params) - accepted
    if unknown:
        return Violation(
            "params-accepted",
            f"workload {ctx.workload!r} got unexpected parameter(s) "
            f"{sorted(unknown)}; accepted: {sorted(accepted)}",
            {"unknown": sorted(unknown), "accepted": sorted(accepted)},
        )
    return None


@rule("params-required")
def _params_required(ctx: RequestContext):
    """Parameters without defaults must be supplied at the door, not
    discovered as a TypeError when the kernel finally runs."""
    __, required = signature_params(ctx.spec.fn)
    missing = required - set(ctx.params)
    if missing:
        return Violation(
            "params-required",
            f"workload {ctx.workload!r} is missing required parameter(s) "
            f"{sorted(missing)}",
            {"missing": sorted(missing)},
        )
    return None


def _is_int(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _is_real(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not (
        isinstance(value, bool)
    )


# Declarative per-parameter domains: workload -> param -> (predicate,
# requirement text).  ``None`` values pass (the workload resolves its
# own default).  Kept deliberately weaker than nothing the kernels
# accept: a request passing these rules may still be expensive, but it
# can no longer be *malformed*.
_DOMAINS: dict[str, dict[str, tuple[Callable[[Any], bool], str]]] = {
    "kclique": {"k": (lambda v: _is_int(v) and v >= 1, "an integer >= 1")},
    "kclique_star": {
        "k": (lambda v: _is_int(v) and v >= 1, "an integer >= 1"),
        "variant": (
            lambda v: v in ("intersect", "from_k1"),
            "'intersect' or 'from_k1'",
        ),
    },
    "bfs": {"root": (_is_int, "a vertex index")},
    "similarity": {
        "u": (_is_int, "a vertex index"),
        "v": (_is_int, "a vertex index"),
    },
    "link_prediction": {
        "removal_fraction": (
            lambda v: _is_real(v) and 0.0 < v < 1.0,
            "a fraction in (0, 1)",
        ),
        "seed": (_is_int, "an integer"),
    },
    "fsm": {
        # sigma is a fraction-of-n multiplier, but values above 1 are
        # legitimate (threshold > n: the search provably stops early).
        "sigma": (lambda v: _is_real(v) and v > 0.0, "a positive number"),
        "max_size": (lambda v: _is_int(v) and v >= 1, "an integer >= 1"),
    },
    "approx_degeneracy": {
        "eps": (lambda v: _is_real(v) and v > 0, "a positive number")
    },
    "jarvis_patrick": {
        "tau": (lambda v: _is_real(v) and v >= 0, "a non-negative number")
    },
}


@rule("param-domains")
def _param_domains(ctx: RequestContext):
    """Scalar parameters must lie in their workload's documented
    domain (types and ranges from the declarative table)."""
    table = _DOMAINS.get(ctx.workload or "")
    if not table:
        return None
    found = []
    for name, (ok, requirement) in table.items():
        if name not in ctx.params or ctx.params[name] is None:
            continue
        value = ctx.params[name]
        if not ok(value):
            found.append(
                Violation(
                    "param-domains",
                    f"parameter {name!r} of workload {ctx.workload!r} must "
                    f"be {requirement}, got {value!r}",
                    {"param": name, "value": repr(value), "requirement": requirement},
                )
            )
    return found or None


_MEASURE_PARAMS = {
    "similarity": "MEASURES",
    "similarity_pairs": "BATCHABLE_MEASURES",
    "jarvis_patrick": "BATCHABLE_MEASURES",
    "link_prediction": "BATCHABLE_MEASURES",
}


@rule(
    "measure-known",
    workloads=tuple(_MEASURE_PARAMS),
)
def _measure_known(ctx: RequestContext):
    """``measure`` must name a similarity measure the workload's batch
    path supports."""
    measure = ctx.params.get("measure")
    if measure is None:
        return None
    from repro.algorithms import similarity as sim

    allowed = getattr(sim, _MEASURE_PARAMS[ctx.workload])
    if measure not in allowed:
        return Violation(
            "measure-known",
            f"unknown measure {measure!r} for workload {ctx.workload!r}; "
            f"supported: {sorted(allowed)}",
            {"measure": repr(measure), "supported": sorted(allowed)},
        )
    return None


@rule("pairs-shape", workloads=("similarity_pairs",))
def _pairs_shape(ctx: RequestContext):
    """A watchlist must be an integer array of shape ``(n, 2)``."""
    pairs = ctx.params.get("pairs")
    if pairs is None:
        return None
    try:
        arr = np.asarray(pairs)
    except (TypeError, ValueError):  # pragma: no cover - non-array inputs
        return Violation("pairs-shape", "pairs is not array-like")
    if arr.ndim != 2 or arr.shape[1] != 2:
        return Violation(
            "pairs-shape",
            f"pairs must have shape (n, 2), got {arr.shape}",
            {"shape": list(arr.shape)},
        )
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        return Violation(
            "pairs-shape",
            f"pairs must hold vertex indices (integer dtype), got {arr.dtype}",
            {"dtype": str(arr.dtype)},
        )
    return None


@rule("vertices-in-range")
def _vertices_in_range(ctx: RequestContext):
    """Every vertex-index parameter must address the session's graph
    (skipped sessionless)."""
    n = ctx.num_vertices
    if n is None:
        return None
    found = []

    def check(name: str, value: Any):
        if _is_int(value) and not 0 <= int(value) < n:
            found.append(
                Violation(
                    "vertices-in-range",
                    f"parameter {name!r} = {int(value)} is outside the "
                    f"graph's vertex range [0, {n})",
                    {"param": name, "value": int(value), "num_vertices": n},
                )
            )

    for name in ("root", "u", "v"):
        if name in ctx.params:
            check(name, ctx.params[name])
    pairs = ctx.params.get("pairs")
    if ctx.workload == "similarity_pairs" and pairs is not None:
        arr = np.asarray(pairs)
        if (
            arr.ndim == 2
            and arr.shape[1] == 2
            and arr.size
            and np.issubdtype(arr.dtype, np.integer)
            and (arr.min() < 0 or arr.max() >= n)
        ):
            found.append(
                Violation(
                    "vertices-in-range",
                    f"pairs contain vertices outside [0, {n})",
                    {"num_vertices": n},
                )
            )
    return found or None


@rule("batch-flag")
def _batch_flag(ctx: RequestContext):
    """``batch`` is a tri-state flag: True, False or None (= session
    default)."""
    if "batch" in ctx.params and ctx.params["batch"] not in (None, True, False):
        return Violation(
            "batch-flag",
            f"parameter 'batch' must be True, False or None, got "
            f"{ctx.params['batch']!r}",
            {"value": repr(ctx.params["batch"])},
        )
    return None


# ---------------------------------------------------------------------------
# Config-scoped rules
# ---------------------------------------------------------------------------


@rule("config-overrides", scope="config")
def _config_overrides(ctx: RequestContext):
    """ExecutionConfig override keys must name real config knobs."""
    import dataclasses

    from repro.session.config import ExecutionConfig

    accepted = {f.name for f in dataclasses.fields(ExecutionConfig)}
    unknown = sorted(set(ctx.overrides) - accepted)
    if unknown:
        return Violation(
            "config-overrides",
            f"unknown ExecutionConfig override(s) {unknown}; accepted: "
            f"{sorted(accepted)}",
            {"unknown_keys": unknown, "accepted": sorted(accepted)},
        )
    return None


CONFIG_RULES = ("config-overrides",)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _raise(workload: str | None, violations: list[Violation]) -> None:
    messages = "; ".join(v.message for v in violations)
    raise ValidationError(
        f"invalid request for workload {workload!r}: {messages}"
        if workload is not None
        else messages,
        details={
            "workload": workload,
            "violations": [v.as_dict() for v in violations],
        },
    )


def validate_request(
    session,
    workload: str,
    params: Mapping[str, Any],
    *,
    rules: RuleSet | None = None,
):
    """Validate one workload request; returns the resolved
    :class:`~repro.session.registry.WorkloadSpec` on success.

    This is the single front door shared by ``session.compile``,
    ``session.run`` and ``pool.submit``: name resolution, signature
    checks and every applicable registered rule run here, and any
    failure raises one :class:`~repro.errors.ValidationError` carrying
    all violations in ``details``.
    """
    from repro.session.registry import get_workload

    if not isinstance(workload, str):
        _raise(
            None,
            [
                Violation(
                    "workload-registered",
                    "workloads are requested by registered name; got "
                    f"{type(workload).__name__}",
                    {"got_type": type(workload).__name__},
                )
            ],
        )
    try:
        spec = get_workload(workload)
    except ConfigError as exc:
        # Preserve the registry's message (it lists what *is*
        # available) while upgrading to the structured error.
        raise ValidationError(
            str(exc),
            details={
                "workload": workload,
                "violations": [
                    Violation("workload-registered", str(exc)).as_dict()
                ],
            },
        ) from None
    ctx = RequestContext(
        workload=spec.name, params=dict(params), spec=spec, session=session
    )
    ruleset = rules if rules is not None else default_rules(spec.name)
    violations = ruleset.validate(ctx)
    if violations:
        _raise(spec.name, violations)
    return spec


def validate_config_overrides(overrides: Mapping[str, Any]) -> None:
    """Run the config-scoped rules over keyword overrides; raises a
    :class:`~repro.errors.ValidationError` (a ``ConfigError``) naming
    any bad key.  Per-violation details (e.g. ``unknown_keys``) are
    flattened onto the error's top-level ``details`` so callers can
    read them without walking the violation list."""
    ctx = RequestContext(overrides=dict(overrides))
    violations = RuleSet(CONFIG_RULES).validate(ctx)
    if violations:
        merged: dict[str, Any] = {}
        for v in violations:
            merged.update(v.details)
        raise ValidationError(
            "; ".join(v.message for v in violations),
            details={
                **merged,
                "violations": [v.as_dict() for v in violations],
            },
        )


def resolve_execution_config(config, overrides: Mapping[str, Any]):
    """The one code path resolving ``(config, **overrides)`` into an
    :class:`~repro.session.config.ExecutionConfig`.

    Unknown override keys fail through the rule engine with a
    ``ConfigError`` naming the key (previously a bare dataclass
    ``TypeError``); a non-config ``config`` argument is rejected
    likewise instead of exploding on attribute access later.
    """
    from repro.session.config import ExecutionConfig

    if config is not None and not isinstance(config, ExecutionConfig):
        raise ValidationError(
            f"config must be an ExecutionConfig (or None), got "
            f"{type(config).__name__}",
            details={"got_type": type(config).__name__},
        )
    if overrides:
        validate_config_overrides(overrides)
        if config is not None:
            return config.replace(**overrides)
        return ExecutionConfig(**overrides)
    return config if config is not None else ExecutionConfig()
