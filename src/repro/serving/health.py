"""Health reporting for the hardened SessionPool.

``pool.health()`` assembles one immutable :class:`HealthSnapshot` from
state the pool already tracks — queues, ledgers, retry/failure
counters, the fault injector's tallies, and each live session's cache
and orientation statistics.  Nothing here mutates the pool; a snapshot
is a value you can log, diff between soak iterations, or assert on in
tests.

"Degraded" deliberately means *recovered-from trouble*, not just
trouble: a pool that retried plans, recompiled drifted plans, detected
cache corruption or resynced an orientation maintainer is degraded
even when every request ultimately succeeded.  ``healthy`` is the
stronger claim — no degradation and no failed or parked work.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True)
class TenantHealth:
    """One tenant's budget and queue state at snapshot time."""

    tenant: str
    cycles: float  # useful work charged to this tenant
    retry_cycles: float  # failed-attempt work charged to this tenant
    queued: int  # plans pending in the main queue
    deferred: int  # plans parked in the deferral queue
    rejections: int  # submissions refused by admission control
    cycle_budget: float | None = None

    @property
    def spent_cycles(self) -> float:
        """Total budget draw: useful plus retry cycles."""
        return self.cycles + self.retry_cycles

    @property
    def remaining_budget(self) -> float | None:
        if self.cycle_budget is None:
            return None
        return max(0.0, self.cycle_budget - self.spent_cycles)

    @property
    def budget_exhausted(self) -> bool:
        return (
            self.cycle_budget is not None
            and self.spent_cycles >= self.cycle_budget
        )

    def as_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["spent_cycles"] = self.spent_cycles
        out["remaining_budget"] = self.remaining_budget
        out["budget_exhausted"] = self.budget_exhausted
        return out


@dataclass(frozen=True)
class HealthSnapshot:
    """One immutable pool health reading."""

    sessions: int  # live sessions in the LRU
    pending: int  # plans queued for the next run()
    deferred: int  # plans parked by admission control
    completed: int  # successful plan executions to date
    failed: int  # structured FailedResults returned to date
    retries: int  # failed attempts that were retried
    drift_recompiles: int  # stale plans recompiled at a newer version
    wasted_cycles: float  # modeled cycles spent on failed attempts
    rejections: int  # submissions refused by admission control
    cache_corruptions: int  # poisoned entries caught by fingerprinting
    cache_evictions: int  # entries dropped (LRU bound or injected)
    orientation_resyncs: int  # charged maintainer re-peels
    # Parallel-serving state of the most recent ``parallel=True`` run
    # (zero/empty when the pool never ran parallel): lane occupancy is
    # per-lane work over makespan from the reconciled schedule models
    # (max/mean across sessions), ``shard_vertices`` the per-shard
    # vertex counts of the most recently reported session's partition.
    lane_max_occupancy: float = 0.0
    lane_mean_occupancy: float = 0.0
    shard_vertices: tuple = ()
    worker_crashes: int = 0  # "worker-crash" FailedResults to date
    injected_faults: Mapping = field(default_factory=dict)
    tenants: tuple = ()  # TenantHealth, sorted by tenant name

    def __post_init__(self) -> None:
        # A frozen dataclass holding a plain dict is only shallowly
        # immutable — freeze the mapping too, so a snapshot cannot be
        # edited after the fact (and cannot alias the injector's live
        # tally dict).
        object.__setattr__(
            self,
            "injected_faults",
            MappingProxyType(dict(self.injected_faults)),
        )
        # O(1) per-tenant lookup for .tenant(); built once here rather
        # than scanned per call.
        object.__setattr__(
            self, "_by_tenant", {t.tenant: t for t in self.tenants}
        )

    @property
    def degraded(self) -> bool:
        """True when any degradation path has fired — even if every
        request ultimately succeeded."""
        return bool(
            self.failed
            or self.retries
            or self.drift_recompiles
            or self.cache_corruptions
            or self.orientation_resyncs
        )

    @property
    def healthy(self) -> bool:
        """No degradation, no failures, nothing parked."""
        return not self.degraded and self.deferred == 0

    def tenant(self, name: str) -> TenantHealth:
        """The named tenant's health (O(1); KeyError if unknown)."""
        return self._by_tenant[name]

    def as_dict(self) -> dict:
        """A JSON-safe copy.  Hand-built (``dataclasses.asdict`` would
        deep-copy through the mapping proxy and fail), with every
        mutable container defensively copied so callers cannot reach
        back into the snapshot."""
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in ("injected_faults", "tenants")
        }
        out["injected_faults"] = dict(self.injected_faults)
        out["tenants"] = [t.as_dict() for t in self.tenants]
        out["shard_vertices"] = list(self.shard_vertices)
        out["degraded"] = self.degraded
        out["healthy"] = self.healthy
        return out
