"""Serving-hardening layer: the front door of the SessionPool.

The session/plan stack (PRs 3-5) gave the reproduction a serving-shaped
API; this package gives it defined behavior at the edges:

* :mod:`repro.serving.validation` — a pluggable ``@rule`` registry of
  request/config validators composed into per-workload
  :class:`RuleSet`\\ s, so malformed requests fail at the door with one
  structured :class:`~repro.errors.ValidationError` instead of a deep
  ``SisaError`` (or a silent wrong answer) mid-execution.
* :mod:`repro.serving.admission` — :class:`TenantQuota` +
  :class:`AdmissionController`: deterministic admit/defer/reject
  decisions on per-tenant queue depth and modeled-cycle budgets, and
  the :class:`RetryPolicy` bounding drift recompiles and fault retries.
* :mod:`repro.serving.faults` — a seeded :class:`FaultInjector` that
  drives the degradation paths on purpose (stream drift, result-cache
  corruption/eviction, orientation desync, kernel-stage exceptions).
* :mod:`repro.serving.health` — the :class:`HealthSnapshot` /
  :class:`TenantHealth` records behind ``pool.health()``.

Modeled cycles for successful work are untouched by this package; only
failure paths gain defined behavior.
"""

from repro.errors import AdmissionError, InjectedFault, ValidationError
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    RetryPolicy,
    TenantQuota,
)
from repro.serving.faults import FaultInjector
from repro.serving.health import HealthSnapshot, TenantHealth
from repro.serving.validation import (
    RequestContext,
    RuleSet,
    Violation,
    available_rules,
    default_rules,
    resolve_execution_config,
    rule,
    validate_config_overrides,
    validate_request,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionError",
    "FaultInjector",
    "HealthSnapshot",
    "InjectedFault",
    "RequestContext",
    "RetryPolicy",
    "RuleSet",
    "TenantHealth",
    "TenantQuota",
    "ValidationError",
    "Violation",
    "available_rules",
    "default_rules",
    "resolve_execution_config",
    "rule",
    "validate_config_overrides",
    "validate_request",
]
