"""Seeded fault injection for soak-testing the hardened pool.

The degradation paths in :class:`~repro.session.pool.SessionPool` —
drift recompiles, cache recompute, orientation resync, per-plan retry
— are only trustworthy if they are exercised on purpose.  A
:class:`FaultInjector` is handed to the pool and drives them from one
seeded ``numpy`` generator, so a soak run's entire fault schedule is
reproducible from ``(seed, rates)``.

Fault kinds and how each is made *recoverable by construction*:

* ``drift`` — inserts and immediately deletes one deterministically
  chosen **absent** edge on the session's stream.  Membership is
  restored bit-identically, but ``mutations`` advances twice, so every
  plan pinned to the old version goes stale exactly as a real
  concurrent update burst would — without changing any answer.
* ``cache`` — evicts one result-cache entry (degrade to recompute) or
  corrupts one in place (exercises the cache's fingerprint
  verification: the poisoned entry must be detected and recomputed,
  never served).
* ``orientation`` — marks the session's orientation maintainer
  desynced, as if raw updates bypassed it; the next oriented workload
  degrades to a charged ``resync()``.
* ``kernel`` — raises :class:`~repro.errors.InjectedFault` from inside
  a plan's kernel stage, forcing the pool's isolation + retry path.

``max_per_kind`` bounds how many faults of each kind fire over the
injector's lifetime.  Setting it below the pool's retry allowance
guarantees every plan eventually runs clean — the property the
fault-equivalence test and the robustness soak rely on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InjectedFault

FAULT_KINDS = ("drift", "cache", "orientation", "kernel")


class FaultInjector:
    """Deterministic, rate-driven fault source for pool soak runs."""

    def __init__(
        self,
        seed: int = 0,
        *,
        drift_rate: float = 0.0,
        cache_rate: float = 0.0,
        kernel_rate: float = 0.0,
        orientation_rate: float = 0.0,
        max_per_kind: int | None = None,
    ):
        from repro.errors import ConfigError

        rates = {
            "drift": drift_rate,
            "cache": cache_rate,
            "kernel": kernel_rate,
            "orientation": orientation_rate,
        }
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(
                    f"{kind}_rate must be in [0, 1], got {rate!r}"
                )
        if max_per_kind is not None and max_per_kind < 0:
            raise ConfigError("max_per_kind must be non-negative")
        self.seed = int(seed)
        self.rates = rates
        self.max_per_kind = max_per_kind
        self.rng = np.random.default_rng(self.seed)
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def _should(self, kind: str) -> bool:
        """One seeded coin flip for ``kind``, honoring the per-kind cap.

        The generator is only consumed when the kind is enabled, so a
        schedule with e.g. only drift faults is unaffected by the cache
        rate being zero vs. absent."""
        rate = self.rates[kind]
        if rate <= 0.0:
            return False
        if (
            self.max_per_kind is not None
            and self.injected[kind] >= self.max_per_kind
        ):
            return False
        if self.rng.random() >= rate:
            return False
        self.injected[kind] += 1
        return True

    # ------------------------------------------------------------------
    # Hooks (called by SessionPool / PlanExecutor)
    # ------------------------------------------------------------------

    def before_batch(self, session, plans) -> None:
        """Fired once per session group before its plans execute:
        may drift the stream (staling every pinned plan) and/or desync
        the orientation maintainer."""
        if self._should("drift"):
            self.inject_drift(session)
        if self._should("orientation"):
            self.inject_orientation_desync(session)

    def before_plan(self, session, plan) -> None:
        """Fired before each isolated plan attempt: may drift the
        stream again (forcing a recompile-and-retry) and/or damage the
        result cache."""
        if self._should("drift"):
            self.inject_drift(session)
        if self._should("cache"):
            self.inject_cache_fault(session)

    def on_stage(self, plan, stage: str) -> None:
        """Fired at each kernel-stage boundary inside the executor;
        raises :class:`InjectedFault` when a kernel fault fires."""
        if self._should("kernel"):
            raise InjectedFault(
                f"injected kernel fault in stage {stage!r} of "
                f"workload {plan.name!r}",
                details={
                    "kind": "kernel",
                    "stage": stage,
                    "workload": plan.name,
                    "tenant": plan.tenant,
                },
            )

    # ------------------------------------------------------------------
    # Individual fault mechanics
    # ------------------------------------------------------------------

    def inject_drift(self, session) -> bool:
        """Advance the session's stream version without changing its
        membership: insert then delete one absent edge.  Returns True
        if drift was actually applied (False when the session has no
        stream or no absent edge could be found)."""
        stream = getattr(session, "_stream", None)
        if stream is None:
            return False
        edge = self._absent_edge(stream)
        if edge is None:
            return False
        edges = np.array([edge], dtype=np.int64)
        stream.apply_insertions(edges, canonical=True)
        stream.apply_deletions(edges, canonical=True)
        return True

    def _absent_edge(self, stream):
        """One canonical ``(u, v)`` edge currently absent from the
        stream, chosen by the seeded generator (None if sampling and a
        bounded scan both fail — e.g. a complete graph)."""
        n = stream.num_vertices
        if n < 2:
            return None
        for _ in range(32):
            u, v = (int(x) for x in self.rng.integers(0, n, size=2))
            if u == v:
                continue
            if u > v:
                u, v = v, u
            cand = np.array([[u, v]], dtype=np.int64)
            if stream.absent_edges(cand).shape[0]:
                return (u, v)
        for u in range(n - 1):
            vs = np.arange(u + 1, n, dtype=np.int64)
            cand = np.column_stack([np.full_like(vs, u), vs])
            absent = stream.absent_edges(cand)
            if absent.shape[0]:
                return (int(absent[0, 0]), int(absent[0, 1]))
        return None

    def inject_cache_fault(self, session) -> bool:
        """Damage the session's result cache: corrupt one entry in
        place (odd flips) or evict one (even flips).  Returns True if
        an entry was actually touched."""
        cache = getattr(session, "_results", None)
        if cache is None or len(cache) == 0:
            return False
        if self.rng.integers(0, 2):
            return cache.corrupt_one()
        return cache.evict_one()

    def inject_orientation_desync(self, session) -> bool:
        """Mark the session's orientation maintainer out of sync, as if
        raw stream updates bypassed it."""
        maintainer = getattr(session, "orientation_maintainer", None)
        if maintainer is None:
            return False
        maintainer.mark_desynced()
        return True
