"""Paradigm baselines: neighborhood expansion and relational joins.

The paper compares SISA against the *paradigms* underlying graph
pattern-matching frameworks (Section 9.2, "Comparison to Other
Paradigms"):

* :func:`peregrine_like_count` — neighborhood expansion as in Peregrine
  / GRAMER: grow partial embeddings one vertex at a time, filtering
  candidates with per-edge probes, materializing every partial
  embedding.  No degeneracy orientation, no set algebra.  Maximal
  cliques are not natively supported; :func:`peregrine_like_maximal_cliques`
  emulates the paper's workaround of iterating over possible clique
  sizes.
* :func:`rstream_like_kclique` — relational joins as in RStream /
  TrieJax: build the k-clique relation by repeatedly joining the edge
  table, materializing every intermediate relation.

Both paradigms "focus on programmability in the first place,
sacrificing performance": expect one to three orders of magnitude
slower than the hand-tuned baselines, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import PatternBudget
from repro.baselines.cpu_kernels import CpuRun
from repro.baselines.nonset import BaselineRun
from repro.graphs.csr import CSRGraph
from repro.hw.config import CpuConfig
from repro.hw.cost import Cost


def _clique_pattern(k: int) -> CSRGraph:
    edges = [(i, j) for i in range(k) for j in range(i + 1, k)]
    return CSRGraph.from_edges(k, edges)


def peregrine_like_count(
    graph: CSRGraph,
    pattern: CSRGraph,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
) -> BaselineRun:
    """Count pattern embeddings by unpruned neighborhood expansion.

    Partial embeddings are materialized (vector append per extension);
    candidates come from the union of all mapped vertices' neighborhoods
    and are filtered by per-edge probes against the whole pattern.
    Symmetry is broken by requiring increasing vertex ids for
    automorphism-free counting of symmetric patterns (cliques/stars).
    """
    run = CpuRun(threads=threads, cpu=cpu)
    budget = PatternBudget(max_patterns)
    pattern_n = pattern.num_vertices
    count = 0

    def extend(embedding: list[int]) -> None:
        nonlocal count
        if budget.exhausted:
            return
        level = len(embedding)
        if level == pattern_n:
            count += 1
            budget.count()
            return
        # Candidate pool: neighbors of all mapped vertices (materialized
        # union, no dedup shortcut — the paradigm pays for generality).
        pool: list[int] = []
        for u in embedding:
            nbrs = graph.neighbors(u)
            run.scan(nbrs.size)
            pool.extend(int(w) for w in nbrs)
        if not embedding:
            pool = list(range(graph.num_vertices))
            run.scan(len(pool))
        run.hash_probe(len(pool))  # dedup pass
        seen = sorted(set(pool))
        for v in seen:
            if budget.exhausted:
                break
            if v in embedding:
                continue
            # Symmetry breaking for fully-symmetric patterns.
            if embedding and v <= embedding[-1]:
                continue
            ok = True
            for p_u in range(level):
                if pattern.has_edge(p_u, level):
                    run.probe(max(1, graph.degree(v)))
                    if not graph.has_edge(embedding[p_u], v):
                        ok = False
                        break
            if ok:
                run.alu(8)  # materialize the extended embedding
                run.random_access()
                extend(embedding + [v])

    run.begin_task()
    extend([])
    return BaselineRun(output=count, report=run.report())


def peregrine_like_kclique(
    graph: CSRGraph,
    k: int,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
) -> BaselineRun:
    return peregrine_like_count(
        graph,
        _clique_pattern(k),
        threads=threads,
        cpu=cpu,
        max_patterns=max_patterns,
    )


def peregrine_like_maximal_cliques(
    graph: CSRGraph,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
    max_size: int | None = None,
) -> BaselineRun:
    """The paper's Peregrine workaround: no native maximal-clique
    support, so iterate over clique sizes, list cliques of each size,
    and post-filter for maximality."""
    run = CpuRun(threads=threads, cpu=cpu)
    budget = PatternBudget(max_patterns)
    adjacency = [
        set(int(w) for w in graph.neighbors(v)) for v in range(graph.num_vertices)
    ]
    limit = max_size or (graph.max_degree + 1)
    maximal: list[tuple[int, ...]] = []
    size = 1
    while size <= limit and not budget.exhausted:
        # List cliques of this size by expansion (costed like Peregrine).
        inner = peregrine_like_kclique(
            graph, size, threads=threads, cpu=cpu
        ) if size > 1 else None
        cliques_of_size: list[tuple[int, ...]] = []

        def expand(embedding: list[int]) -> None:
            if len(embedding) == size:
                cliques_of_size.append(tuple(embedding))
                return
            start = embedding[-1] + 1 if embedding else 0
            for v in range(start, graph.num_vertices):
                run.probe(max(1, graph.degree(v)), len(embedding))
                if all(v in adjacency[u] for u in embedding):
                    expand(embedding + [v])

        expand([])
        if inner is not None:
            # Charge the paradigm's expansion cost for this size.
            run.engine.charge_sequential(
                Cost(compute_cycles=inner.report.runtime_cycles)
            )
        if not cliques_of_size:
            break
        # Maximality post-filter: try to extend each clique by any vertex.
        for clique in cliques_of_size:
            if budget.exhausted:
                break
            extendable = False
            members = set(clique)
            for v in range(graph.num_vertices):
                if v in members:
                    continue
                run.hash_probe(len(clique))
                if all(v in adjacency[u] for u in clique):
                    extendable = True
                    break
            if not extendable:
                maximal.append(clique)
                budget.count()
        size += 1
    return BaselineRun(output=sorted(maximal), report=run.report())


def rstream_like_kclique(
    graph: CSRGraph,
    k: int,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
) -> BaselineRun:
    """k-clique counting via relational joins on the edge table.

    ``R_2`` is the oriented edge relation; ``R_{i+1}`` joins ``R_i``
    with the edge table on the last attribute and filters tuples whose
    new vertex closes edges with all previous attributes.  Every
    intermediate relation is materialized and streamed — the join
    paradigm's fundamental overhead.
    """
    run = CpuRun(threads=threads, cpu=cpu)
    budget = PatternBudget(max_patterns)
    edges = graph.edge_array()
    # Orient by vertex id (the join formulation's symmetry breaking).
    relation: list[tuple[int, ...]] = [
        (int(u), int(v)) for u, v in edges
    ]
    run.begin_task()
    run.scan(2 * len(relation))
    adjacency = [
        set(int(w) for w in graph.neighbors(v)) for v in range(graph.num_vertices)
    ]
    level = 2
    while level < k and relation and not budget.exhausted:
        next_relation: list[tuple[int, ...]] = []
        for tup in relation:
            if budget.exhausted:
                break
            last = tup[-1]
            nbrs = graph.neighbors(last)
            run.scan(nbrs.size)
            for w in nbrs:
                w = int(w)
                if w <= last:
                    continue
                run.hash_probe(level - 1)
                if all(w in adjacency[u] for u in tup[:-1]):
                    next_relation.append(tup + (w,))
                    # Materialize the new tuple: level+1 attribute writes.
                    run.alu(level + 1)
                    run.random_access()
        # Stream the materialized relation out and back in (shuffle).
        run.scan((level + 1) * len(next_relation))
        relation = next_relation
        level += 1
    count = len(relation) if k > 2 else len(relation)
    budget.count(count)
    return BaselineRun(output=count, report=run.report())
