"""Cost accounting for the hand-tuned *non-set* CPU baselines.

The paper's most challenging comparison targets are hand-optimized
parallel algorithms (GAP triangle counting, Eppstein's Bron-Kerbosch,
Danisch's k-clique, parallel VF2, ...).  These codes do not express
their inner loops as set-algebra instructions; they probe adjacency
structures directly.  A :class:`CpuRun` wraps a CPU backend and an
execution engine so the baseline implementations can charge their
probes, scans, and arithmetic onto simulated thread lanes — using the
same saturating-bandwidth host model as everything else ("for fair
comparison, all baselines benefit from the high bandwidth of PIM
setting", paper Section 9.1: we give the host the same bandwidth
scaling knee as the ``cpu-set`` configuration).
"""

from __future__ import annotations

from repro.hw.config import CpuConfig
from repro.hw.cpu import CpuBackend
from repro.hw.engine import EngineReport, ExecutionEngine


class CpuRun:
    """Simulated parallel execution of a non-set baseline."""

    def __init__(self, *, threads: int = 32, cpu: CpuConfig | None = None):
        self.config = cpu or CpuConfig()
        self.backend = CpuBackend(self.config)
        lanes = min(threads, self.config.max_threads)
        bandwidth = self.config.effective_bandwidth_bytes_per_cycle(lanes)
        self.engine = ExecutionEngine(lanes, bandwidth)

    # -- task control -----------------------------------------------------

    def begin_task(self) -> int:
        return self.engine.begin_task()

    # -- cost charging ------------------------------------------------------

    def probe(self, degree: int, count: int = 1) -> None:
        """``count`` binary-search edge probes into a sorted adjacency."""
        self.engine.charge(self.backend.edge_probe(degree).scaled(count))

    def hash_probe(self, count: int = 1) -> None:
        self.engine.charge(self.backend.hash_probe().scaled(count))

    def scan(self, elements: int) -> None:
        self.engine.charge(self.backend.neighborhood_scan(elements))

    def random_access(self, count: int = 1) -> None:
        self.engine.charge(self.backend.random_access().scaled(count))

    def alu(self, operations: float) -> None:
        self.engine.charge(self.backend.alu(operations))

    def merge(self, size_a: int, size_b: int, output_size: int = 0) -> None:
        self.engine.charge(
            self.backend.merge(size_a, size_b, output_size=output_size)
        )

    # -- results --------------------------------------------------------------

    def report(self) -> EngineReport:
        return self.engine.report()

    @property
    def runtime_cycles(self) -> float:
        return self.engine.runtime_cycles
