"""Hand-tuned *non-set* baselines for every evaluated problem.

These mirror the paper's ``_non-set`` bars in Fig. 6: tuned parallel
algorithms that do not express their work as set-algebra instructions.
Each function computes the exact same functional output as its
set-centric counterpart, while charging the probe/scan/hash costs that
the corresponding CPU implementation would incur:

* triangle counting — GAP-style hash-join node iterator,
* maximal cliques — Eppstein's Bron-Kerbosch with per-element set
  manipulation on host hash sets,
* k-clique — Danisch's kClist with candidate arrays and adjacency
  flags,
* 4-clique — the "traditional snippet" of the paper's Table 4
  (nested loops with binary-search edge probes),
* subgraph isomorphism — VF2 with direct adjacency probes,
* clustering / link prediction — "very tuned" merge-based counting
  (the paper notes this baseline *beats* the cpu-set variant on simple
  problems while still losing to SISA),
* BFS — standard queue-based traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.algorithms.common import PatternBudget
from repro.baselines.cpu_kernels import CpuRun
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph, orient_by_order
from repro.graphs.orientation import degeneracy_order
from repro.hw.config import CpuConfig
from repro.hw.engine import EngineReport


@dataclass
class BaselineRun:
    """Functional output plus timing of one non-set baseline run."""

    output: Any
    report: EngineReport

    @property
    def runtime_cycles(self) -> float:
        return self.report.runtime_cycles

    @property
    def runtime_mcycles(self) -> float:
        return self.report.runtime_cycles / 1e6


def _oriented(graph: CSRGraph) -> DiGraph:
    return orient_by_order(graph, degeneracy_order(graph).order)


# ---------------------------------------------------------------------------
# Triangle counting
# ---------------------------------------------------------------------------

def triangle_count_nonset(
    graph: CSRGraph, *, threads: int = 32, cpu: CpuConfig | None = None
) -> BaselineRun:
    """GAP-style tuned node iterator: for each arc (u, v), a tight
    two-pointer merge of the sorted N+(u) and N+(v).  This baseline is
    genuinely hard to beat (the paper's tc panel shows SISA's smallest
    speedups, ~2x), because GAP's merge is already streaming-friendly."""
    run = CpuRun(threads=threads, cpu=cpu)
    dg = _oriented(graph)
    total = 0
    for u in range(dg.num_vertices):
        run.begin_task()
        out_u = dg.out_neighbors(u)
        for v in out_u:
            out_v = dg.out_neighbors(int(v))
            run.merge(out_u.size, out_v.size)
            total += int(np.intersect1d(out_u, out_v, assume_unique=True).size)
    return BaselineRun(output=total, report=run.report())


# ---------------------------------------------------------------------------
# Maximal cliques (Bron-Kerbosch, host hash sets)
# ---------------------------------------------------------------------------

def _bk_nonset(
    graph: CSRGraph,
    run: CpuRun,
    adjacency: list[set[int]],
    r: list[int],
    p: set[int],
    x: set[int],
    cliques: list[tuple[int, ...]],
    budget: PatternBudget,
) -> None:
    if budget.exhausted:
        return
    if not p and not x:
        cliques.append(tuple(sorted(r)))
        budget.count()
        return
    if not p:
        return
    # Pivot: maximize |P ∩ N(u)| by probing P against each candidate's
    # hash adjacency.
    best_u, best_score = -1, -1
    for u in sorted(p | x):
        run.hash_probe(len(p))
        score = sum(1 for w in p if w in adjacency[u])
        if score > best_score:
            best_u, best_score = u, score
    candidates = sorted(p - adjacency[best_u])
    run.hash_probe(len(p))
    for v in candidates:
        if budget.exhausted:
            break
        run.hash_probe(len(p) + len(x))  # probe P ∩ N(v), X ∩ N(v)
        run.scan(len(p) + len(x))  # materialize the two child sets
        run.random_access(2)  # allocate them
        run.alu(4)
        _bk_nonset(
            graph,
            run,
            adjacency,
            r + [v],
            {w for w in p if w in adjacency[v]},
            {w for w in x if w in adjacency[v]},
            cliques,
            budget,
        )
        p.discard(v)
        x.add(v)
        run.hash_probe(2)


def maximal_cliques_nonset(
    graph: CSRGraph,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
    max_patterns_per_root: int | None = None,
) -> BaselineRun:
    run = CpuRun(threads=threads, cpu=cpu)
    n = graph.num_vertices
    adjacency = [set(int(w) for w in graph.neighbors(v)) for v in range(n)]
    order = degeneracy_order(graph).order
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    cliques: list[tuple[int, ...]] = []
    budget = PatternBudget(max_patterns)
    for v in order:
        if budget.exhausted:
            break
        run.begin_task()
        v = int(v)
        nbrs = graph.neighbors(v)
        run.scan(nbrs.size)
        p = {int(w) for w in nbrs if rank[int(w)] > rank[v]}
        x = {int(w) for w in nbrs if rank[int(w)] < rank[v]}
        if max_patterns_per_root is None:
            root_budget = budget
        else:
            remaining = (
                None if budget.limit is None else budget.limit - budget.found
            )
            limit = (
                max_patterns_per_root
                if remaining is None
                else min(max_patterns_per_root, remaining)
            )
            root_budget = PatternBudget(max(0, limit))
        _bk_nonset(graph, run, adjacency, [v], p, x, cliques, root_budget)
        if root_budget is not budget:
            budget.count(root_budget.found)
    return BaselineRun(output=cliques, report=run.report())


# ---------------------------------------------------------------------------
# k-clique (Danisch-style with candidate arrays)
# ---------------------------------------------------------------------------

def _kcc_nonset(
    dg: DiGraph,
    run: CpuRun,
    level: int,
    k: int,
    candidates: np.ndarray,
    budget: PatternBudget,
) -> int:
    if budget.exhausted:
        return 0
    if level == k:
        budget.count(candidates.size)
        return int(candidates.size)
    total = 0
    candidate_set = set(int(x) for x in candidates)
    for v in candidates:
        if budget.exhausted:
            break
        out_v = dg.out_neighbors(int(v))
        run.scan(out_v.size)
        run.hash_probe(out_v.size)  # flag-array membership tests
        next_candidates = np.asarray(
            [int(w) for w in out_v if int(w) in candidate_set], dtype=np.int64
        )
        total += _kcc_nonset(dg, run, level + 1, k, next_candidates, budget)
    return total


def kclique_count_nonset(
    graph: CSRGraph,
    k: int,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
) -> BaselineRun:
    run = CpuRun(threads=threads, cpu=cpu)
    dg = _oriented(graph)
    budget = PatternBudget(max_patterns)
    total = 0
    for u in range(dg.num_vertices):
        if budget.exhausted:
            break
        run.begin_task()
        c2 = dg.out_neighbors(u)
        run.scan(c2.size)
        total += _kcc_nonset(dg, run, 2, k, c2.astype(np.int64), budget)
    return BaselineRun(output=total, report=run.report())


def four_clique_count_nonset(
    graph: CSRGraph,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
) -> BaselineRun:
    """Table 4's traditional snippet: four nested loops plus three
    binary-search edge probes per innermost iteration."""
    run = CpuRun(threads=threads, cpu=cpu)
    dg = _oriented(graph)
    budget = PatternBudget(max_patterns)
    count = 0
    max_deg = max(1, dg.max_out_degree)
    for v1 in range(dg.num_vertices):
        if budget.exhausted:
            break
        run.begin_task()
        for v2 in dg.out_neighbors(v1):
            if budget.exhausted:
                break
            for v3 in dg.out_neighbors(int(v2)):
                for v4 in dg.out_neighbors(int(v3)):
                    run.probe(max_deg, 3)
                    if (
                        dg.has_arc(v1, int(v3))
                        and dg.has_arc(v1, int(v4))
                        and dg.has_arc(int(v2), int(v4))
                    ):
                        count += 1
                        budget.count()
                        if budget.exhausted:
                            break
                if budget.exhausted:
                    break
    return BaselineRun(output=count, report=run.report())


# ---------------------------------------------------------------------------
# k-clique-star
# ---------------------------------------------------------------------------

def kclique_star_nonset(
    graph: CSRGraph,
    k: int,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_patterns: int | None = None,
) -> BaselineRun:
    """Enhanced Jabbour scheme without set algebra: per (k+1)-clique,
    group by k-subsets using host hashing."""
    run = CpuRun(threads=threads, cpu=cpu)
    dg = _oriented(graph)
    budget = PatternBudget(max_patterns)
    cliques: list[tuple[int, ...]] = []

    def collect(level: int, prefix: list[int], candidates: np.ndarray) -> None:
        if budget.exhausted:
            return
        if level == k + 1:
            for w in candidates:
                cliques.append(tuple(prefix + [int(w)]))
            budget.count(candidates.size)
            return
        candidate_set = set(int(x) for x in candidates)
        for v in candidates:
            if budget.exhausted:
                break
            out_v = dg.out_neighbors(int(v))
            run.scan(out_v.size)
            run.hash_probe(out_v.size)
            nxt = np.asarray(
                [int(w) for w in out_v if int(w) in candidate_set],
                dtype=np.int64,
            )
            collect(level + 1, prefix + [int(v)], nxt)

    for u in range(dg.num_vertices):
        if budget.exhausted:
            break
        run.begin_task()
        c2 = dg.out_neighbors(u)
        run.scan(c2.size)
        collect(2, [u], c2.astype(np.int64))

    stars: dict[tuple[int, ...], set[int]] = {}
    for clique in cliques:
        run.hash_probe(len(clique))
        members = set(clique)
        for v in clique:
            key = tuple(sorted(members - {v}))
            stars.setdefault(key, set()).add(v)
    output = {key: tuple(sorted(extra)) for key, extra in sorted(stars.items())}
    return BaselineRun(output=output, report=run.report())


# ---------------------------------------------------------------------------
# Subgraph isomorphism (VF2 with direct adjacency probes)
# ---------------------------------------------------------------------------

def subgraph_isomorphism_nonset(
    graph: CSRGraph,
    pattern: CSRGraph,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
    max_matches: int | None = None,
    target_labels=None,
    pattern_labels=None,
) -> BaselineRun:
    run = CpuRun(threads=threads, cpu=cpu)
    budget = PatternBudget(max_matches)
    n = graph.num_vertices
    pattern_n = pattern.num_vertices
    count = 0

    def pattern_frontier(mapped: set[int]) -> set[int]:
        frontier: set[int] = set()
        for u in mapped:
            frontier.update(int(w) for w in pattern.neighbors(u))
        return frontier - mapped

    def match(core: dict[int, int], t1: set[int], m1: set[int]) -> None:
        nonlocal count
        if budget.exhausted:
            return
        mapped_pattern = set(core)
        if len(mapped_pattern) == pattern_n:
            count += 1
            budget.count()
            return
        frontier = pattern_frontier(mapped_pattern)
        run.alu(4 * pattern_n)
        v2 = min(frontier) if frontier else min(
            set(range(pattern_n)) - mapped_pattern
        )
        has_mapped_neighbor = any(
            int(u) in mapped_pattern for u in pattern.neighbors(v2)
        )
        candidates = sorted(t1) if has_mapped_neighbor else range(n)
        for v1 in candidates:
            if budget.exhausted:
                break
            v1 = int(v1)
            if v1 in m1:
                run.hash_probe()
                continue
            ok = True
            for u2 in pattern.neighbors(v2):
                u2 = int(u2)
                if u2 in core:
                    run.probe(max(1, graph.degree(v1)))
                    if not graph.has_edge(v1, core[u2]):
                        ok = False
                        break
            if not ok:
                continue
            # Lookahead: count frontier/new neighbors by scanning N(v1).
            nbrs = graph.neighbors(v1)
            run.scan(nbrs.size)
            run.hash_probe(2 * nbrs.size)
            t2 = pattern_frontier(mapped_pattern)
            n2 = {int(w) for w in pattern.neighbors(v2)}
            term1 = sum(1 for w in nbrs if int(w) in t1)
            new1 = sum(1 for w in nbrs if int(w) not in t1 and int(w) not in m1)
            term2 = len(n2 & t2)
            new2 = len(n2 - t2 - mapped_pattern)
            # Monomorphism lookahead (see repro.algorithms.subgraph_iso).
            if term1 < term2 or term1 + new1 < term2 + new2:
                continue
            if target_labels is not None and pattern_labels is not None:
                run.random_access()
                if target_labels.vertex_label(v1) != pattern_labels.vertex_label(v2):
                    continue
            m_next = m1 | {v1}
            t_next = (t1 | {int(w) for w in nbrs}) - m_next
            run.hash_probe(nbrs.size)
            match({**core, v2: v1}, t_next, m_next)

    run.begin_task()
    match({}, set(), set())
    return BaselineRun(output=count, report=run.report())


# ---------------------------------------------------------------------------
# Clustering / link prediction scoring (tuned merge-based counting)
# ---------------------------------------------------------------------------

def jarvis_patrick_nonset(
    graph: CSRGraph,
    *,
    tau: float = 2.0,
    measure: str = "common_neighbors",
    threads: int = 32,
    cpu: CpuConfig | None = None,
) -> BaselineRun:
    """Tuned merge-intersection clustering: a tight two-pointer loop at
    scan-level cost per element (the paper: "for certain simpler schemes
    such as clustering, the very tuned _non-set baseline outperforms
    _set-based while still falling short of _sisa")."""
    run = CpuRun(threads=threads, cpu=cpu)
    config = run.config
    kept: list[tuple[int, int]] = []
    for u, v in graph.edge_array():
        run.begin_task()
        nu = graph.neighbors(int(u))
        nv = graph.neighbors(int(v))
        # Tight SIMD-friendly merge: scan-level cycles, not branchy-merge.
        run.scan(nu.size + nv.size)
        run.alu(0.5 * (nu.size + nv.size))
        inter = int(np.intersect1d(nu, nv, assume_unique=True).size)
        if measure == "common_neighbors":
            score = float(inter)
        elif measure == "jaccard":
            union = nu.size + nv.size - inter
            score = inter / union if union else 0.0
        elif measure == "overlap":
            smaller = min(nu.size, nv.size)
            score = inter / smaller if smaller else 0.0
        else:  # total_neighbors
            score = float(nu.size + nv.size - inter)
        run.alu(4)
        if score > tau:
            kept.append((int(u), int(v)))
    __ = config
    return BaselineRun(output=kept, report=run.report())


# ---------------------------------------------------------------------------
# BFS
# ---------------------------------------------------------------------------

def bfs_nonset(
    graph: CSRGraph,
    root: int = 0,
    *,
    threads: int = 32,
    cpu: CpuConfig | None = None,
) -> BaselineRun:
    """Standard queue-based top-down BFS."""
    run = CpuRun(threads=threads, cpu=cpu)
    n = graph.num_vertices
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    frontier = [root]
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            run.begin_task()
            nbrs = graph.neighbors(u)
            run.scan(nbrs.size)
            run.random_access(nbrs.size)  # parent[] updates are random
            for w in nbrs:
                w = int(w)
                if parent[w] == -1:
                    parent[w] = u
                    next_frontier.append(w)
        frontier = next_frontier
    return BaselineRun(output=parent, report=run.report())
