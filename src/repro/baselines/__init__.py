"""Baselines: hand-tuned non-set CPU algorithms and paradigm frameworks."""

from repro.baselines.cpu_kernels import CpuRun
from repro.baselines.frameworks import (
    peregrine_like_count,
    peregrine_like_kclique,
    peregrine_like_maximal_cliques,
    rstream_like_kclique,
)
from repro.baselines.nonset import (
    BaselineRun,
    bfs_nonset,
    four_clique_count_nonset,
    jarvis_patrick_nonset,
    kclique_count_nonset,
    kclique_star_nonset,
    maximal_cliques_nonset,
    subgraph_isomorphism_nonset,
    triangle_count_nonset,
)

__all__ = [
    "CpuRun",
    "peregrine_like_count",
    "peregrine_like_kclique",
    "peregrine_like_maximal_cliques",
    "rstream_like_kclique",
    "BaselineRun",
    "bfs_nonset",
    "four_clique_count_nonset",
    "jarvis_patrick_nonset",
    "kclique_count_nonset",
    "kclique_star_nonset",
    "maximal_cliques_nonset",
    "subgraph_isomorphism_nonset",
    "triangle_count_nonset",
]
