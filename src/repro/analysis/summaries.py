"""Speedup summaries, following the paper's Section 9.1 conventions.

The paper reports two summary styles for each experiment family:

* "speedup-of-avgs": the ratio of average runtimes,
* "avg-of-speedups": the geometric mean of per-datapoint speedups.

It explicitly notes these "are not the equivalent arithmetic and
geometric means, and thus do not satisfy the inequality of means".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SpeedupSummary:
    speedup_of_avgs: float
    avg_of_speedups: float

    def __str__(self) -> str:
        return (
            f"speedup-of-avgs={self.speedup_of_avgs:.2f}x, "
            f"avg-of-speedups={self.avg_of_speedups:.2f}x"
        )


def summarize_speedups(
    baseline_runtimes: Sequence[float], improved_runtimes: Sequence[float]
) -> SpeedupSummary:
    """Summarize pairwise speedups of `improved` over `baseline`."""
    if len(baseline_runtimes) != len(improved_runtimes):
        raise ValueError("runtime lists must be parallel")
    if not baseline_runtimes:
        return SpeedupSummary(1.0, 1.0)
    pairs = [
        (base, new)
        for base, new in zip(baseline_runtimes, improved_runtimes)
        if base > 0 and new > 0
    ]
    if not pairs:
        return SpeedupSummary(1.0, 1.0)
    avg_base = sum(base for base, __ in pairs) / len(pairs)
    avg_new = sum(new for __, new in pairs) / len(pairs)
    speedup_of_avgs = avg_base / avg_new if avg_new > 0 else float("inf")
    log_sum = sum(math.log(base / new) for base, new in pairs)
    avg_of_speedups = math.exp(log_sum / len(pairs))
    return SpeedupSummary(speedup_of_avgs, avg_of_speedups)
