"""Theoretical bounds (Table 6) and evaluation summaries (Section 9.1)."""

from repro.analysis.summaries import SpeedupSummary, summarize_speedups
from repro.analysis.theory import (
    GraphParameters,
    bound_clustering_gallop,
    bound_clustering_merge,
    bound_kclique_gallop,
    bound_kclique_merge,
    bound_kcliquestar_merge,
    bound_lp_neighborhood_gallop,
    bound_lp_neighborhood_merge,
    bound_mc_degeneracy,
    bound_tc_gallop,
    bound_tc_merge,
    check_observation_71,
    check_observation_72,
    check_observation_73,
    graph_parameters,
    merge_work_measured,
)

__all__ = [
    "SpeedupSummary",
    "summarize_speedups",
    "GraphParameters",
    "bound_clustering_gallop",
    "bound_clustering_merge",
    "bound_kclique_gallop",
    "bound_kclique_merge",
    "bound_kcliquestar_merge",
    "bound_lp_neighborhood_gallop",
    "bound_lp_neighborhood_merge",
    "bound_mc_degeneracy",
    "bound_tc_gallop",
    "bound_tc_merge",
    "check_observation_71",
    "check_observation_72",
    "check_observation_73",
    "graph_parameters",
    "merge_work_measured",
]
