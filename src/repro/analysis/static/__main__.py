"""CLI front end: ``python -m repro.analysis.static``.

With no flags, runs the linter and the verifier smoke (the CI
``static-analysis`` job's default).  ``--mypy`` additionally type-checks
the strict packages when mypy is importable — the dev container does
not ship it, so the flag degrades to a skip message instead of an
ImportError.  Exit status is non-zero iff any requested check failed.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path


def _repo_root() -> Path:
    # src/repro/analysis/static/__main__.py -> repo root is 4 up from src/
    return Path(__file__).resolve().parents[4]


def _run_lint(paths: list[str]) -> int:
    from repro.analysis.static.lint import lint_paths

    root = _repo_root()
    targets = paths or [str(root / "src" / "repro")]
    violations = lint_paths(targets)
    for v in violations:
        print(v.render())
    print(
        f"repolint: {len(violations)} violation(s) in "
        f"{', '.join(targets)}"
    )
    return 1 if violations else 0


def _run_verify(n: int) -> int:
    from repro.analysis.static.smoke import run_smoke

    failed = 0
    for label, report in run_smoke(n=n):
        print(f"verify[{label}]: {report.summary()}")
        if not report.certified:
            failed += 1
            for hazard in report.hazards:
                print(f"  - [{hazard.kind}] {hazard.message}")
    return 1 if failed else 0


def _run_mypy() -> int:
    if importlib.util.find_spec("mypy") is None:
        print(
            "mypy: not installed in this environment; skipping "
            "(the CI static-analysis job installs and runs it)"
        )
        return 0
    root = _repo_root()
    cmd = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(root / "mypy.ini"),
        str(root / "src" / "repro"),
    ]
    proc = subprocess.run(cmd, cwd=root)
    return proc.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.static",
        description="Project static analysis: contract linter, plan "
        "hazard verifier, optional mypy.",
    )
    parser.add_argument(
        "--lint", action="store_true", help="run the contract linter"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the plan-verifier smoke (full workload grid + soak batch)",
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="type-check the strict packages (skipped if mypy is absent)",
    )
    parser.add_argument(
        "--graph-size",
        type=int,
        default=60,
        metavar="N",
        help="vertex count for the verifier smoke graph (default 60)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    run_lint = args.lint or not (args.lint or args.verify or args.mypy)
    run_verify = args.verify or not (args.lint or args.verify or args.mypy)
    status = 0
    if run_lint:
        status |= _run_lint(list(args.paths))
    if run_verify:
        status |= _run_verify(args.graph_size)
    if args.mypy:
        status |= _run_mypy()
    return status


if __name__ == "__main__":
    raise SystemExit(main())
