"""CLI front end: ``python -m repro.analysis.static``.

With no flags, runs the linter and the verifier smoke (the CI
``static-analysis`` job's default).  ``--schedule`` certifies a
parallel schedule for both smoke batches and prints the modeled
what-if curve; ``--racecheck`` replays them under the happens-before
race detector (non-zero exit on any race).  ``--json PATH`` writes a
machine-readable report of every check that ran — the CI
static-analysis job uploads it as an artifact next to the
``BENCH_*.json`` baselines.  ``--mypy`` additionally type-checks the
strict packages when mypy is importable — the dev container does not
ship it, so the flag degrades to a skip message instead of an
ImportError.  Exit status is non-zero iff any requested check failed.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
from pathlib import Path
from typing import Any


def _repo_root() -> Path:
    # src/repro/analysis/static/__main__.py -> repo root is 4 up from src/
    return Path(__file__).resolve().parents[4]


def _run_lint(paths: list[str], report: dict[str, Any]) -> int:
    from repro.analysis.static.lint import lint_paths

    root = _repo_root()
    targets = paths or [str(root / "src" / "repro")]
    violations = lint_paths(targets)
    for v in violations:
        print(v.render())
    print(
        f"repolint: {len(violations)} violation(s) in "
        f"{', '.join(targets)}"
    )
    report["lint"] = {
        "targets": targets,
        "violations": [v.as_dict() for v in violations],
        "count": len(violations),
    }
    return 1 if violations else 0


def _run_verify(n: int, report: dict[str, Any]) -> int:
    from repro.analysis.static.smoke import run_smoke

    failed = 0
    section: dict[str, Any] = {}
    for label, analysis in run_smoke(n=n):
        print(f"verify[{label}]: {analysis.summary()}")
        section[label] = analysis.as_dict()
        if not analysis.certified:
            failed += 1
            for hazard in analysis.hazards:
                print(f"  - [{hazard.kind}] {hazard.message}")
    report["verify"] = section
    return 1 if failed else 0


def _run_schedule(n: int, lanes: int, report: dict[str, Any]) -> int:
    from repro.analysis.static.smoke import schedule_smoke
    from repro.errors import SisaError

    section: dict[str, Any] = {}
    try:
        schedules = schedule_smoke(n=n, lanes=lanes)
    except SisaError as exc:
        print(f"schedule: certification failed: {exc}")
        report["schedule"] = {"error": str(exc)}
        return 1
    for label, schedule in schedules:
        model = schedule.what_if()
        if model.measured:
            summary = f"modeled speedup {model.speedup:.3f}x (measured)"
        else:
            # Before a replay costs the nodes, the merge charge dwarfs
            # the unit costs; report the structural parallelism (node
            # count over critical-path length) instead of a "speedup".
            structural = (
                model.sequential_cycles / model.makespan
                if model.makespan > 0.0
                else 1.0
            )
            summary = (
                f"structural parallelism {structural:.2f}x over "
                f"{model.cross_edges} cross-lane edge(s) (unit costs; "
                "run --racecheck to measure)"
            )
        print(
            f"schedule[{label}]: {len(schedule.nodes)} nodes, "
            f"{len(schedule.edges)} edges, lanes={lanes}, {summary}"
        )
        section[label] = {
            "nodes": len(schedule.nodes),
            "edges": len(schedule.edges),
            "model": model.as_dict(),
        }
    report["schedule"] = section
    return 0


def _run_racecheck(n: int, lanes: int, report: dict[str, Any]) -> int:
    from repro.analysis.static.smoke import racecheck_smoke

    failed = 0
    section: dict[str, Any] = {}
    for label, schedule, races in racecheck_smoke(n=n, lanes=lanes):
        model = schedule.what_if()
        print(
            f"racecheck[{label}]: {len(races)} race(s) in "
            f"{len(schedule.nodes)}-node replay at lanes={lanes}, "
            f"measured speedup {model.speedup:.3f}x"
        )
        for race in races:
            print(f"  - {race.summary()}")
        section[label] = {
            "races": [race.as_dict() for race in races],
            "model": model.as_dict(),
        }
        if races:
            failed += 1
    report["racecheck"] = section
    return 1 if failed else 0


def _run_mypy() -> int:
    if importlib.util.find_spec("mypy") is None:
        print(
            "mypy: not installed in this environment; skipping "
            "(the CI static-analysis job installs and runs it)"
        )
        return 0
    root = _repo_root()
    cmd = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(root / "mypy.ini"),
        str(root / "src" / "repro"),
    ]
    proc = subprocess.run(cmd, cwd=root)
    return proc.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.static",
        description="Project static analysis: contract linter, plan "
        "hazard verifier, optional mypy.",
    )
    parser.add_argument(
        "--lint", action="store_true", help="run the contract linter"
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the plan-verifier smoke (full workload grid + soak batch)",
    )
    parser.add_argument(
        "--schedule",
        action="store_true",
        help="certify a parallel schedule for both smoke batches and "
        "print the modeled what-if speedup",
    )
    parser.add_argument(
        "--racecheck",
        action="store_true",
        help="replay both smoke batches under their certified schedules "
        "with the happens-before race detector armed",
    )
    parser.add_argument(
        "--lanes",
        type=int,
        default=4,
        metavar="N",
        help="lane width for --schedule / --racecheck (default 4)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write a machine-readable report of every check that ran",
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="type-check the strict packages (skipped if mypy is absent)",
    )
    parser.add_argument(
        "--graph-size",
        type=int,
        default=60,
        metavar="N",
        help="vertex count for the verifier smoke graph (default 60)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    any_flag = (
        args.lint
        or args.verify
        or args.schedule
        or args.racecheck
        or args.mypy
    )
    run_lint = args.lint or not any_flag
    run_verify = args.verify or not any_flag
    status = 0
    report: dict[str, Any] = {}
    if run_lint:
        status |= _run_lint(list(args.paths), report)
    if run_verify:
        status |= _run_verify(args.graph_size, report)
    if args.schedule:
        status |= _run_schedule(args.graph_size, args.lanes, report)
    if args.racecheck:
        status |= _run_racecheck(args.graph_size, args.lanes, report)
    if args.mypy:
        status |= _run_mypy()
    if args.json:
        report["status"] = status
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=2, default=str) + "\n")
        print(f"json report -> {path}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
