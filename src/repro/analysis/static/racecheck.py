"""Happens-before race detection over certified schedules.

The schedule certifier (:mod:`repro.analysis.static.schedule`) proves
ordering from *declared* effects; this module is the dynamic
cross-check that catches what the effect model missed.  An opt-in
:class:`AccessLog` shims the shared structures the future concurrent
pool will touch —

* the session's :class:`~repro.session.cache.ResultCache` (via its
  nullable ``_event`` hook: ``get``/``put``/``invalidate``/fault
  tampering),
* the shared SCU decision memo (:attr:`~repro.isa.scu.Scu.memo_event`),
* the :class:`~repro.streaming.orientation.IncrementalOrientation`
  maintainer (its ``event`` hook fires on every mutation, declared or
  not),
* the pool's per-tenant ledgers (a :class:`LedgerShim` dict installed
  around a replay)

— and attributes every access to the schedule node executing when it
fired (``node=None`` marks host/coordinator work, which the scheduler
serializes and which therefore never races).  Declared structure
effects are synthesized into the log too (:meth:`AccessLog.declared`),
so an *undeclared* mutation — a stage calling
``session._results.invalidate()`` without declaring it, a fault
injector desyncing the orientation mid-node — collides with the
declared readers of other nodes.

:func:`find_races` then replays the log against the schedule's
happens-before relation: two accesses to one token (or a
structure-wide wildcard), from different non-host nodes, at least one
a non-idempotent ``"write"``, with *neither node reachable from the
other in the dependency DAG*, is a race.  Reads never race with reads,
and build-once/deterministic-value installs (``"write-idempotent"``:
cache ``put``, memo fills, struct builds) never race with each other —
the same exemptions the effect system's ``conflicts`` applies
statically.  Each :class:`Race` carries token, accessors, stages,
lanes and the per-lane vector clocks of both nodes — a concrete
interleaving witness — and :func:`raise_on_races` wraps the list into
a structured :class:`~repro.errors.RaceError`.

Honest coverage note: the dynamic detector sees only accesses routed
through the instrumented hooks.  A rogue direct mutation of
``cache._entries`` or ``scu._decision_memo`` bypasses them — that is
exactly what the ``shared-structure-write`` / ``session-state-mutation``
repolint rules forbid statically; the two layers are complementary.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.analysis.static.effects import stage_effects
from repro.analysis.static.schedule import CertifiedSchedule, certify_schedule
from repro.errors import RaceError

#: Access operations, in order of severity.  ``read`` observes,
#: ``write-idempotent`` installs a value any interleaving would install
#: identically (cache put of a deterministic output, memo fill, a
#: build-once struct), ``write`` mutates in a way interleavings can
#: observe (invalidate, evict, desync, ledger update).
OPS = ("read", "write-idempotent", "write")

#: Shared structures the detector knows.
STRUCTURES = ("result-cache", "scu-memo", "orientation", "ledger", "session-struct")


@dataclass(frozen=True)
class Access:
    """One logged touch of a shared structure.

    ``node`` is the schedule node executing when the access fired, or
    ``None`` for host/coordinator work (which the scheduler serializes
    against everything).  ``token=None`` is the structure-wide wildcard
    (e.g. a full-cache invalidation) and conflicts with every token of
    its structure.
    """

    seq: int
    node: int | None
    stage: str | None
    structure: str
    token: str | None
    op: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "node": self.node,
            "stage": self.stage,
            "structure": self.structure,
            "token": self.token,
            "op": self.op,
        }


@dataclass(frozen=True)
class Race:
    """One happens-before violation: two unordered conflicting accesses."""

    structure: str
    token: str | None
    a: Access
    b: Access
    lane_a: int | None = None
    lane_b: int | None = None
    clock_a: tuple[int, ...] = ()
    clock_b: tuple[int, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "structure": self.structure,
            "token": self.token,
            "a": self.a.as_dict(),
            "b": self.b.as_dict(),
            "lane_a": self.lane_a,
            "lane_b": self.lane_b,
            "clock_a": list(self.clock_a),
            "clock_b": list(self.clock_b),
        }

    def summary(self) -> str:
        return (
            f"race on {self.structure}"
            f"[{self.token if self.token is not None else '*'}]: "
            f"node {self.a.node} ({self.a.stage}, {self.a.op}) vs "
            f"node {self.b.node} ({self.b.stage}, {self.b.op}) are "
            "unordered by the dependency DAG"
        )


class LedgerShim(dict):
    """A per-tenant ledger dict that logs every access.

    Installed by :func:`instrument_pool_ledgers` in place of the pool's
    plain ledger dicts for the duration of a race-checked replay; the
    pool's own ``_charge``/``_spent`` code paths run unchanged (it is a
    real dict), but every read and write lands in the log, attributed
    to whatever schedule node is current.  In today's pool all charges
    happen host-side between nodes — provably ordered — so the shim's
    job is to catch a future scheduler charging from inside a lane.
    """

    def __init__(self, data: dict, log: "AccessLog", name: str):
        super().__init__(data)
        self._log = log
        self._name = name

    def _record(self, key: Any, op: str) -> None:
        self._log.record("ledger", f"ledger:{self._name}:{key}", op)

    def __setitem__(self, key, value) -> None:
        self._record(key, "write")
        super().__setitem__(key, value)

    def __getitem__(self, key):
        self._record(key, "read")
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._record(key, "read")
        return super().get(key, default)


class AccessLog:
    """The ordered access log of one race-checked replay.

    The scheduled executor brackets each node's execution with
    :meth:`at`, so hook callbacks fired underneath attribute to the
    right node; anything logged outside an ``at`` block is host work.
    """

    def __init__(self) -> None:
        self.accesses: list[Access] = []
        self._node: int | None = None
        self._stage: str | None = None
        self._maintainers: list[Any] = []

    def __len__(self) -> int:
        return len(self.accesses)

    @contextmanager
    def at(self, node: int, stage: str | None = None) -> Iterator[None]:
        """Attribute accesses logged inside the block to ``node``."""
        prev = (self._node, self._stage)
        self._node, self._stage = int(node), stage
        try:
            yield
        finally:
            self._node, self._stage = prev

    def record(self, structure: str, token: str | None, op: str) -> None:
        self.accesses.append(
            Access(
                seq=len(self.accesses),
                node=self._node,
                stage=self._stage,
                structure=structure,
                token=token,
                op=op,
            )
        )

    # -- hook adapters -------------------------------------------------

    def cache_hook(self, op: str, key: tuple | None) -> None:
        """ResultCache ``_event`` hook.  Keys collapse to workload
        granularity — coarser tokens are strictly more conservative,
        and the idempotence rules keep distinct-param puts quiet."""
        token = None if key is None else f"cache:{key[0]}"
        self.record("result-cache", token, op)

    def memo_hook(self, op: str, key: tuple | None) -> None:
        """SCU ``memo_event`` hook (shape-class granularity)."""
        token = None if key is None else f"memo:{key[0]}"
        self.record("scu-memo", token, op)

    def orientation_hook(self, op: str) -> None:
        """IncrementalOrientation ``event`` hook: every mutation of the
        maintained rank/out-degree state, declared or not."""
        self.record("orientation", "orientation", op)

    # -- declared effects ----------------------------------------------

    def declared(self, node: int, stage) -> None:
        """Synthesize a node's *declared* structure accesses.

        The dynamic hooks only fire on instrumented mutation paths;
        declared struct reads (a stage consuming the oriented graph
        reads the maintainer's rank without any hookable call) are
        injected from the effect declaration instead, so an undeclared
        dynamic ``"write"`` on the same structure from an unordered
        node has a partner access to collide with.
        """
        eff = stage_effects(stage)
        with self.at(node, stage.label):
            for token in sorted(eff.reads):
                target = _struct_target(token)
                if target is not None:
                    self.record(*target, "read")
            for token in sorted(eff.writes):
                target = _struct_target(token)
                if target is not None:
                    # Struct builds are build-once: idempotent installs.
                    self.record(*target, "write-idempotent")

    # -- orientation attach/detach -------------------------------------

    def refresh(self, session) -> None:
        """(Re)install the orientation hook — the maintainer is created
        lazily, possibly mid-replay by the node that builds the
        oriented structure."""
        maintainer = session.orientation_maintainer
        if maintainer is not None and maintainer.event is None:
            maintainer.event = self.orientation_hook
            self._maintainers.append(maintainer)

    def detach(self) -> None:
        for maintainer in self._maintainers:
            if maintainer.event is not None:
                maintainer.event = None
        self._maintainers.clear()

    def as_dict(self) -> dict[str, Any]:
        return {"accesses": [a.as_dict() for a in self.accesses]}


def _struct_target(token: str) -> tuple[str, str] | None:
    """Map a declared ``struct:`` token to its (structure, token) in
    the access log's vocabulary, or ``None`` for non-struct tokens."""
    if token in ("struct:oriented", "struct:order"):
        return ("orientation", "orientation")
    if token in ("struct:undirected", "struct:csr"):
        return ("session-struct", token)
    return None


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


@contextmanager
def instrument_session(session, log: AccessLog) -> Iterator[AccessLog]:
    """Route the session's shared-structure hooks into ``log`` for the
    duration of the block; previous hooks are restored on exit."""
    cache = session._results
    scu = session.ctx.scu
    prev_cache = cache._event
    prev_memo = scu.memo_event
    cache._event = log.cache_hook
    scu.memo_event = log.memo_hook
    log.refresh(session)
    try:
        yield log
    finally:
        cache._event = prev_cache
        scu.memo_event = prev_memo
        log.detach()


_LEDGERS = ("_tenant_cycles", "_tenant_retry_cycles", "_tenant_runs")


@contextmanager
def instrument_pool_ledgers(pool, log: AccessLog) -> Iterator[AccessLog]:
    """Swap the pool's per-tenant ledger dicts for logging shims; the
    plain dicts (with any updates) come back on exit."""
    saved: dict[str, dict] = {}
    for name in _LEDGERS:
        saved[name] = getattr(pool, name)
        setattr(pool, name, LedgerShim(saved[name], log, name))
    try:
        yield log
    finally:
        for name in _LEDGERS:
            plain = saved[name]
            plain.clear()
            plain.update(getattr(pool, name))
            setattr(pool, name, plain)


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


def find_races(schedule: CertifiedSchedule, log: AccessLog) -> list[Race]:
    """Every unordered conflicting access pair in ``log`` under
    ``schedule``'s happens-before relation.

    Host accesses (``node=None``) are serialized by the coordinator
    and skipped; per ``(node, structure, token, op)`` only the first
    access matters (repeats add no new ordering information), which
    bounds the pair scan by nodes × tokens rather than raw log length.
    """
    dedup: dict[tuple, Access] = {}
    for acc in log.accesses:
        if acc.node is None:
            continue
        key = (acc.node, acc.structure, acc.token, acc.op)
        if key not in dedup:
            dedup[key] = acc
    by_structure: dict[str, dict[str | None, list[Access]]] = {}
    for acc in dedup.values():
        by_structure.setdefault(acc.structure, {}).setdefault(
            acc.token, []
        ).append(acc)
    races: list[Race] = []
    clocks = schedule.vector_clocks()
    for structure, by_token in by_structure.items():
        wild = by_token.get(None, [])
        for token, group in by_token.items():
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    _check_pair(schedule, clocks, a, b, races)
                if token is not None:
                    for b in wild:
                        _check_pair(schedule, clocks, a, b, races)
    races.sort(key=lambda r: (r.a.seq, r.b.seq))
    return races


def _check_pair(
    schedule: CertifiedSchedule,
    clocks: list[tuple[int, ...]],
    a: Access,
    b: Access,
    races: list[Race],
) -> None:
    if a.node == b.node:
        return
    if a.op != "write" and b.op != "write":
        return
    if schedule.happens_before(a.node, b.node) or schedule.happens_before(
        b.node, a.node
    ):
        return
    if a.seq > b.seq:
        a, b = b, a
    races.append(
        Race(
            structure=a.structure,
            token=a.token if a.token is not None else b.token,
            a=a,
            b=b,
            lane_a=schedule.lane_of.get(a.node),
            lane_b=schedule.lane_of.get(b.node),
            clock_a=clocks[a.node],
            clock_b=clocks[b.node],
        )
    )


def raise_on_races(races: list[Race], *, context: str = "replay") -> None:
    """Wrap a non-empty race list into a structured
    :class:`~repro.errors.RaceError` (no-op when the list is empty)."""
    if not races:
        return
    raise RaceError(
        f"{len(races)} race(s) detected during {context}: "
        + "; ".join(r.summary() for r in races[:3])
        + ("; ..." if len(races) > 3 else ""),
        details={"context": context, "races": [r.as_dict() for r in races]},
    )


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def replay_certified(
    session,
    plans: list,
    schedule: CertifiedSchedule | None = None,
    *,
    lanes: int = 4,
    fuse_width: int = 8,
    order: tuple[int, ...] | None = None,
    seed: int | None = None,
    fault_injector=None,
):
    """Certify (when no schedule is given), instrument, replay, detect.

    Executes the batch under the schedule's canonical topological order
    (or an explicit ``order``, or a ``seed``-randomized one) with the
    session's shared structures shimmed into a fresh
    :class:`AccessLog`, then checks the log against the happens-before
    relation.  Returns ``(results, races, log)`` without raising —
    callers choose between :func:`raise_on_races` (the pool, the CLI)
    and inspecting the race list (tests, benchmarks).
    """
    from repro.session.plan import PlanExecutor

    if schedule is None:
        schedule = certify_schedule(plans, lanes=lanes, fuse_width=fuse_width)
    if order is not None:
        schedule = schedule.with_order(order)
    elif seed is not None:
        schedule = schedule.with_order(schedule.random_topological_order(seed))
    log = AccessLog()
    with instrument_session(session, log):
        executor = PlanExecutor(
            session,
            fuse_width=fuse_width,
            fault_injector=fault_injector,
            schedule=schedule,
            access_log=log,
        )
        results = executor.execute(plans)
    return results, find_races(schedule, log), log
