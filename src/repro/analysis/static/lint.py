"""repolint: the project contract linter.

An AST-based rule engine over the repository's own source, mirroring
the serving validation engine's pluggable-registry idiom
(:mod:`repro.serving.validation`): small named checkers registered
with :func:`lint_rule`, composable into rule sets, each returning
structured violations instead of raising.

The rules encode *this project's* contracts — the conventions every
PR so far has enforced by review comment:

* ``unseeded-rng`` — all randomness flows through
  ``np.random.default_rng(seed)``; the legacy global-state API (and an
  unseeded ``default_rng()``) breaks replayability of benches, fault
  schedules and hypothesis repros.
* ``overbroad-except`` — a bare ``except:`` or ``except Exception``/
  ``BaseException`` that does not re-raise swallows internal errors
  the serving layer is supposed to surface as structured failures.
* ``library-assert`` — ``assert`` in library code guarding a
  user-reachable state disappears under ``python -O`` and raises an
  uninformative ``AssertionError``; raise ``SisaError`` with
  ``details`` instead.  Kernel-internal dispatch invariants are
  whitelisted with a pragma.
* ``error-details`` — serving-facing error types (``ValidationError``,
  ``AdmissionError``, and the bare ``ReproError`` base) must carry a
  machine-readable ``details`` payload.
* ``mutable-default-arg`` — a ``[]``/``{}``/``set()`` default is
  shared across calls; long-lived sessions make this a real bug class.
* ``unguarded-obs`` — observability is nullable by design (zero
  instrumentation cost when disabled): any call through an ``obs``
  handle must sit in a function that guards it against ``None``.
* ``parallel-unsafe-access`` — modules that execute inside shard
  worker processes (the spawn target and its staging helpers) must
  not import host-only layers (session, serving, streaming,
  observability); a worker that reaches host-owned structures dodges
  the runtime ownership fences in :mod:`repro.parallel.ownership`.

Suppression: a trailing ``# repolint: disable=rule-a,rule-b`` comment
on the flagged line whitelists those rules for that line.

Run it as ``python -m repro.analysis.static`` (wired into the CI
``static-analysis`` job) or call :func:`lint_paths` directly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ConfigError, SisaError

_PRAGMA = re.compile(r"#\s*repolint:\s*disable=([A-Za-z0-9_,\-\s]+)")


@dataclass(frozen=True)
class LintViolation:
    """One flagged line: the rule, where, and why."""

    rule: str
    path: str
    line: int
    message: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintRule:
    """One registered checker."""

    name: str
    check: Callable[["SourceModule"], Iterable[tuple[int, str]]]
    description: str


_LINT_RULES: dict[str, LintRule] = {}


def lint_rule(
    name: str, *, description: str = "", replace: bool = False
) -> Callable:
    """Register a lint rule under ``name``.

    The checker receives a :class:`SourceModule` and yields
    ``(line, message)`` pairs; pragma suppression is applied by the
    engine.  Re-registration raises unless ``replace=True`` — the same
    anti-shadowing contract as the workload and validation registries.
    """

    def decorate(fn: Callable) -> Callable:
        if name in _LINT_RULES and not replace:
            raise SisaError(
                f"lint rule {name!r} is already registered; pass "
                "replace=True to overwrite it deliberately"
            )
        doc_line = next(iter((fn.__doc__ or "").strip().splitlines()), "")
        _LINT_RULES[name] = LintRule(
            name=name, check=fn, description=description or doc_line
        )
        return fn

    return decorate


def available_lint_rules() -> dict[str, str]:
    """Registered rule names mapped to their descriptions."""
    return {
        name: rule.description for name, rule in sorted(_LINT_RULES.items())
    }


@dataclass
class SourceModule:
    """One parsed source file plus its pragma map."""

    path: str
    text: str
    tree: ast.Module = field(init=False)
    _disabled: dict[int, frozenset[str]] = field(init=False)

    def __post_init__(self):
        self.tree = ast.parse(self.text, filename=self.path)
        disabled: dict[int, frozenset[str]] = {}
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            m = _PRAGMA.search(line)
            if m:
                names = frozenset(
                    part.split()[0]
                    for part in m.group(1).split(",")
                    if part.split()
                )
                disabled[lineno] = names
        self._disabled = disabled

    def disabled_at(self, line: int) -> frozenset[str]:
        return self._disabled.get(line, frozenset())


def lint_source(
    text: str, path: str = "<string>", *, rules: Iterable[str] | None = None
) -> list[LintViolation]:
    """Lint one source string; returns pragma-filtered violations."""
    module = SourceModule(path=path, text=text)
    names = tuple(rules) if rules is not None else tuple(sorted(_LINT_RULES))
    unknown = [n for n in names if n not in _LINT_RULES]
    if unknown:
        raise ConfigError(
            f"unknown lint rule(s) {unknown}; available: "
            f"{sorted(_LINT_RULES)}",
            details={"unknown_rules": unknown},
        )
    found: list[LintViolation] = []
    for name in names:
        rule = _LINT_RULES[name]
        for line, message in rule.check(module):
            if name in module.disabled_at(line):
                continue
            found.append(
                LintViolation(rule=name, path=path, line=line, message=message)
            )
    found.sort(key=lambda v: (v.path, v.line, v.rule))
    return found


def lint_paths(
    paths: Iterable[str | Path], *, rules: Iterable[str] | None = None
) -> list[LintViolation]:
    """Lint files and directories (recursively, ``*.py``)."""
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    found: list[LintViolation] = []
    for f in files:
        found.extend(
            lint_source(f.read_text(encoding="utf-8"), str(f), rules=rules)
        )
    return found


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _attr_chain(node: ast.AST) -> tuple[str, ...] | None:
    """``a.b.c`` as ``("a", "b", "c")``; None for non-name bases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ---------------------------------------------------------------------------
# Built-in rules
# ---------------------------------------------------------------------------


@lint_rule("unseeded-rng")
def _unseeded_rng(module: SourceModule):
    """np.random.* is forbidden except default_rng(seed): global-state
    or unseeded RNG breaks deterministic replay of benches and fault
    schedules."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if not chain or len(chain) < 3:
            continue
        if chain[0] not in ("np", "numpy") or chain[1] != "random":
            continue
        fn = chain[2]
        if fn != "default_rng":
            yield (
                node.lineno,
                f"np.random.{fn} uses legacy global RNG state; use "
                "np.random.default_rng(seed)",
            )
        elif not node.args and not node.keywords:
            yield (
                node.lineno,
                "default_rng() without a seed is not replayable; pass an "
                "explicit seed",
            )


@lint_rule("overbroad-except")
def _overbroad_except(module: SourceModule):
    """A bare/Exception/BaseException handler must re-raise: swallowing
    unexpected errors hides bugs the serving layer should surface."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names: list[str] = []
        if node.type is None:
            names = ["<bare>"]
        else:
            types = (
                node.type.elts
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for t in types:
                chain = _attr_chain(t)
                if chain and chain[-1] in ("Exception", "BaseException"):
                    names.append(chain[-1])
        if not names:
            continue
        reraises = any(
            isinstance(inner, ast.Raise) and inner.exc is None
            for inner in ast.walk(node)
        )
        if reraises:
            continue
        yield (
            node.lineno,
            f"overbroad handler catches {', '.join(names)} without "
            "re-raising; narrow to the intended error types",
        )


@lint_rule("library-assert")
def _library_assert(module: SourceModule):
    """assert in library code vanishes under -O and raises an opaque
    AssertionError; raise SisaError with details (or whitelist
    kernel-internal dispatch invariants with a pragma)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assert):
            yield (
                node.lineno,
                "assert in library code; raise SisaError(..., details=...) "
                "for user-reachable states or add a pragma for "
                "kernel-internal invariants",
            )


_DETAIL_ERRORS = ("ReproError", "ValidationError", "AdmissionError")


@lint_rule("error-details")
def _error_details(module: SourceModule):
    """Serving-facing errors must carry a machine-readable details
    payload."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Raise) or not isinstance(
            node.exc, ast.Call
        ):
            continue
        chain = _attr_chain(node.exc.func)
        if not chain or chain[-1] not in _DETAIL_ERRORS:
            continue
        if any(kw.arg == "details" for kw in node.exc.keywords):
            continue
        yield (
            node.lineno,
            f"{chain[-1]} raised without details=; serving callers rely on "
            "the machine-readable payload",
        )


@lint_rule("mutable-default-arg")
def _mutable_default_arg(module: SourceModule):
    """A mutable default argument is shared across calls — a real bug
    class in long-lived sessions."""
    ctor_names = ("list", "dict", "set")
    for fn in _walk_functions(module.tree):
        defaults = list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ctor_names
            ):
                mutable = True
            if mutable:
                yield (
                    default.lineno,
                    f"mutable default argument in {fn.name}(); default to "
                    "None and allocate inside the function",
                )


def _obs_base(node: ast.AST) -> ast.AST | None:
    """The shallowest sub-expression of an attribute chain that is an
    ``obs`` handle (``obs`` name or ``….obs`` attribute), or None."""
    parts: list[ast.AST] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur)
        cur = cur.value
    parts.append(cur)
    # parts is outermost-first; walk from the innermost base outward.
    for expr in reversed(parts):
        if isinstance(expr, ast.Name) and expr.id == "obs":
            return expr
        if isinstance(expr, ast.Attribute) and expr.attr == "obs":
            return expr
    return None


@lint_rule("unguarded-obs")
def _unguarded_obs(module: SourceModule):
    """Calls through a nullable obs handle need a None guard in the
    enclosing function (observability must cost nothing when off)."""
    # Map every node to its chain of enclosing functions.
    enclosing: dict[int, list[ast.AST]] = {}

    def visit(node: ast.AST, stack: tuple[ast.AST, ...]):
        enclosing[id(node)] = list(stack)
        child_stack = (
            stack + (node,)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else stack
        )
        for child in ast.iter_child_nodes(node):
            visit(child, child_stack)

    visit(module.tree, ())
    # Guard expressions per function: dumps of `X is (not) None` lefts.
    guards: dict[int, set[str]] = {}
    for fn in _walk_functions(module.tree):
        found: set[str] = set()
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Is, ast.IsNot))
                and isinstance(node.comparators[0], ast.Constant)
                and node.comparators[0].value is None
            ):
                found.add(ast.dump(node.left))
        guards[id(fn)] = found
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        base = _obs_base(node.func)
        if base is None:
            continue
        base_dump = ast.dump(base)
        fns = enclosing.get(id(node), [])
        if not fns:
            continue  # module-level code: out of scope for this rule
        if any(base_dump in guards.get(id(fn), ()) for fn in fns):
            continue
        yield (
            node.lineno,
            "call through a nullable obs handle without an `is not None` "
            "guard in the enclosing function",
        )


#: Mutating container methods — calling one of these on a watched
#: attribute is a write just like assigning into it.
_MUTATING_METHODS = frozenset(
    (
        "clear",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "move_to_end",
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "fill",
        "sort",
    )
)


def _watched_write_target(node: ast.AST, watched) -> str | None:
    """The watched attribute a write target touches: ``x.<attr> = …``
    or ``x.<attr>[k] = …`` / ``del x.<attr>[k]``."""
    if isinstance(node, ast.Attribute) and node.attr in watched:
        return node.attr
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr in watched
    ):
        return node.value.attr
    return None


def _shared_mutations(module: SourceModule, watched: dict):
    """Yield ``(line, attr)`` for every mutation of a watched internal
    attribute outside its owner module(s).  ``watched`` maps attribute
    name → tuple of owner path suffixes where mutation is legal."""
    path = module.path.replace("\\", "/")

    def foreign(attr: str) -> bool:
        return not any(path.endswith(suffix) for suffix in watched[attr])

    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                targets = node.targets
            else:
                targets = [node.target]
            for target in targets:
                attr = _watched_write_target(target, watched)
                if attr is not None and foreign(attr):
                    yield node.lineno, attr
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _watched_write_target(target, watched)
                if attr is not None and foreign(attr):
                    yield node.lineno, attr
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Attribute)
                and func.value.attr in watched
                and foreign(func.value.attr)
            ):
                yield node.lineno, func.value.attr


#: Shared-structure internals and the modules allowed to mutate them.
#: The race detector's event hooks live inside these owner modules, so
#: confining mutation there is what keeps the dynamic access log
#: complete (an out-of-module write would bypass the hooks entirely).
_SHARED_INTERNALS = {
    # ResultCache entry table (and the SMB LRU model, which reuses the
    # attribute name for its own entry table).
    "_entries": ("session/cache.py", "hw/cache.py"),
    # The (possibly pool-shared) SCU decision memo.
    "_decision_memo": ("isa/scu.py",),
}


@lint_rule("shared-structure-write")
def _shared_structure_write(module: SourceModule):
    """Direct mutation of shared-structure internals (cache entry
    table, SCU decision memo) outside the owning module bypasses the
    guarded APIs — and with them the race detector's access hooks."""
    for line, attr in _shared_mutations(module, _SHARED_INTERNALS):
        owners = ", ".join(_SHARED_INTERNALS[attr])
        yield (
            line,
            f"direct mutation of shared-structure internal {attr!r} "
            f"outside its owner module ({owners}); go through the guarded "
            "API so the race detector's access hooks see the write",
        )


#: Shared session/pool serving state and its owner modules.  The
#: racecheck module is a sanctioned co-owner of the tenant ledgers:
#: its LedgerShim install/restore is the instrumentation point itself.
#: (observability/hub.py has an unrelated counter named
#: ``_tenant_cycles``; it owns that attribute on its own objects.)
_SESSION_STATE = {
    "_tenant_cycles": (
        "session/pool.py",
        "analysis/static/racecheck.py",
        "observability/hub.py",
    ),
    "_tenant_retry_cycles": (
        "session/pool.py",
        "analysis/static/racecheck.py",
    ),
    "_tenant_runs": ("session/pool.py", "analysis/static/racecheck.py"),
    "_results": ("session/session.py",),
    "_orientation_maintainer": ("session/session.py",),
    "rank": ("streaming/orientation.py",),
    "out_degree": ("streaming/orientation.py",),
}


@lint_rule("session-state-mutation")
def _session_state_mutation(module: SourceModule):
    """Bare mutation of shared session/pool serving state (tenant
    ledgers, the result-cache binding, the orientation maintainer and
    its rank/out-degree arrays) outside the owning module: a future
    concurrent scheduler cannot order writes it cannot see declared."""
    for line, attr in _shared_mutations(module, _SESSION_STATE):
        owners = ", ".join(_SESSION_STATE[attr])
        yield (
            line,
            f"mutation of shared session state {attr!r} outside its owner "
            f"module ({owners}); route it through the owner's API (or its "
            "declared effect tokens) so schedules can order it",
        )


#: Host-only packages a worker-reachable module must never import:
#: everything in these layers assumes host ownership (tenant ledgers,
#: result caches, orientation maintainers) and is fenced at runtime by
#: :func:`repro.parallel.ownership.assert_host_owned`; the lint rule
#: catches the dependency before it can ship.
_HOST_ONLY_PREFIXES = (
    "repro.session",
    "repro.serving",
    "repro.streaming",
    "repro.observability",
)

#: Modules that execute inside shard worker processes — the spawn
#: target module and everything it imports transitively.  The host-only
#: executor (``parallel/executor.py``) is deliberately absent: it runs
#: in the host process and subclasses the plan executor.
_WORKER_SIDE_SUFFIXES = (
    "parallel/workers.py",
    "parallel/shards.py",
    "parallel/merge.py",
    "parallel/ownership.py",
)


def _is_host_only(name: str) -> bool:
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in _HOST_ONLY_PREFIXES
    )


@lint_rule("parallel-unsafe-access")
def _parallel_unsafe_access(module: SourceModule):
    """Worker-side parallel modules must not import host-only layers
    (session, serving, streaming, observability): a shard worker is a
    pure shard-partial count service, and any dependency on host-owned
    structures would dodge the runtime ownership fences."""
    path = module.path.replace("\\", "/")
    if not any(path.endswith(sfx) for sfx in _WORKER_SIDE_SUFFIXES):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            offending = [
                alias.name
                for alias in node.names
                if _is_host_only(alias.name)
            ]
        elif isinstance(node, ast.ImportFrom):
            offending = (
                [node.module]
                if node.module is not None and _is_host_only(node.module)
                else []
            )
        else:
            continue
        for name in offending:
            yield (
                node.lineno,
                f"worker-side parallel module imports host-only module "
                f"{name!r}; shard workers are a pure count service and "
                "must not reach host-owned structures",
            )


#: The stock rule set, in a stable order.
DEFAULT_RULES = (
    "unseeded-rng",
    "overbroad-except",
    "library-assert",
    "error-details",
    "mutable-default-arg",
    "unguarded-obs",
    "parallel-unsafe-access",
    "shared-structure-write",
    "session-state-mutation",
)
