"""The plan effect system: a typed vocabulary for what stages touch.

Every :class:`~repro.session.plan.PlanStage` (and the
:class:`~repro.session.plan.BurstUnit` streams a ``bursts`` stage
produces) declares its *effects* — what it reads and writes — as plain
string tokens over four namespaces:

``struct:<name>``
    A session-cached derived structure (``undirected``/``oriented``
    SetGraph, the degeneracy ``order``, the ``csr`` view).  Building
    one is idempotent ("build-once"), so concurrent *writes* of the
    same struct token are legal sharing, not a WAW hazard.
``state:<slot>``
    A slot of the plan's private execution-state dict (the accumulator
    a burst sink folds counts into).  State is per-plan: the verifier
    qualifies these tokens with the owning plan's identity before any
    cross-plan comparison, so two plans' ``state:triangles`` slots are
    distinct objects unless they are deduped through a shared cache
    key.
``sets:session`` / ``sets:scratch``
    The set-ID domain: ``sets:session`` is the session's long-lived
    neighborhood registrations (every burst reads them);
    ``sets:scratch`` marks a stage that registers and releases its own
    temporary sets (legal only in ``call`` stages, which the executor
    never interleaves with buffered bursts).
``cache:…`` / ``stream:version``
    Result-cache keys (dedup domain) and the compile-time stream
    version pin.

Declaration is lightweight — tuples of tokens on the stage/unit — and
bare structure names (``"oriented"``) are accepted anywhere a token is
and expanded here, so the existing ``PlanStage.reads`` spelling keeps
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

STRUCTS = ("undirected", "oriented", "order", "csr")

SETS_SESSION = "sets:session"
SETS_SCRATCH = "sets:scratch"
STREAM_VERSION = "stream:version"

# Bare structure-name expansion: ``oriented`` implies the degeneracy
# order (orienting peels it), ``both`` is the kclique_star intersect
# variant's double requirement, ``none`` reads no cached structure.
_BARE = {
    "undirected": ("struct:undirected",),
    "oriented": ("struct:oriented", "struct:order"),
    "order": ("struct:order",),
    "csr": ("struct:csr",),
    "both": ("struct:undirected", "struct:oriented", "struct:order"),
    "none": (),
}


def normalize_token(token: str) -> tuple[str, ...]:
    """Expand one declared token into canonical namespaced form."""
    if token in _BARE:
        return _BARE[token]
    return (token,)


def normalize_tokens(tokens: Iterable[str]) -> frozenset[str]:
    out: set[str] = set()
    for token in tokens:
        out.update(normalize_token(token))
    return frozenset(out)


def state_slot(token: str) -> str | None:
    """The raw state-dict key of a ``state:`` token (else ``None``)."""
    if token.startswith("state:"):
        return token.split(":", 1)[1]
    return None


def qualify(token: str, plan_id: str) -> str:
    """Make a per-plan-private token unique across a batch.

    Only ``state:`` tokens are plan-private (each ``_PlanRun`` owns its
    state dict); every other namespace is genuinely shared and passes
    through unchanged.
    """
    if token.startswith("state:"):
        return f"state:{plan_id}:{token.split(':', 1)[1]}"
    return token


@dataclass(frozen=True)
class EffectSet:
    """One stage's (or unit's) declared reads and writes."""

    reads: frozenset[str]
    writes: frozenset[str]

    @classmethod
    def of(
        cls, reads: Iterable[str] = (), writes: Iterable[str] = ()
    ) -> "EffectSet":
        return cls(normalize_tokens(reads), normalize_tokens(writes))

    def qualified(self, plan_id: str) -> "EffectSet":
        return EffectSet(
            frozenset(qualify(t, plan_id) for t in self.reads),
            frozenset(qualify(t, plan_id) for t in self.writes),
        )

    def conflicts(self, other: "EffectSet") -> list[tuple[str, str]]:
        """Hazard pairs ``(kind, token)`` between this effect set and a
        concurrently-schedulable one.

        RAW: ``self`` writes what ``other`` reads; WAR: ``self`` reads
        what ``other`` writes; WAW: both write.  ``struct:`` writes are
        idempotent build-once constructions and never conflict with
        each other (WAW) — but a struct *write* against a struct *read*
        is still ordered work and reported, except that prep-style
        builds are filtered by the verifier before this is called.
        """
        found: list[tuple[str, str]] = []
        for token in sorted(self.writes & other.reads):
            found.append(("RAW", token))
        for token in sorted(self.reads & other.writes):
            found.append(("WAR", token))
        for token in sorted(self.writes & other.writes):
            if not token.startswith("struct:"):
                found.append(("WAW", token))
        return found


def stage_effects(stage) -> EffectSet:
    """The declared :class:`EffectSet` of one plan stage.

    ``bursts`` stages implicitly read the session's registered sets
    (every burst operand is a session set ID); declared ``reads``/
    ``writes`` tuples are normalized through the token vocabulary.
    """
    reads = list(stage.reads)
    if stage.kind == "bursts":
        reads.append(SETS_SESSION)
    return EffectSet.of(reads, stage.writes)


def unit_effects(unit) -> EffectSet:
    """The declared :class:`EffectSet` of one burst unit: the burst
    reads session sets, the sink writes the unit's declared slots."""
    return EffectSet.of((SETS_SESSION,), unit.writes)
