"""The schedule certifier: from a certified batch to a provable plan.

:func:`analyze_batch` certifies that a plan batch *has no hazards*;
this module goes one step further and says *what order is legal*.
:func:`certify_schedule` lowers a certified
:class:`~repro.analysis.static.verifier.AnalysisReport` into an
explicit dependency DAG over every ``(plan, stage)`` node of the
batch, with the effect tokens of :mod:`repro.analysis.static.effects`
as the edges:

* ``program`` edges keep each plan's own stages in compile order;
* ``struct:`` edges order every consumer of a build-once structure
  after its designated builder (the first writer in batch order —
  further writers are idempotent no-ops once the builder ran);
* ``dedup`` edges order each result-cache key's owner (the first
  stage/plan carrying the key in batch order) before every follower
  that will be *seeded* from the published value, so which plan
  executes and which seeds is the same in every admissible order;
* remaining cross-plan effect conflicts (``sets:scratch`` WAW between
  opaque call stages, any RAW/WAR the effect sets expose) become
  edges in batch order — the conservative serialization a shared
  set-manager demands until per-shard contexts land (ROADMAP item 1).

Any topological order of the DAG executes bit-identically to the
sequential reference (property-tested over the registered-workload
grid), which is exactly the freedom a concurrent scheduler needs.

On top of the DAG, the certifier computes a deterministic lane
assignment under a ``lanes=N`` width (critical-path list scheduling)
and a **what-if model** mirroring the engine's multi-lane cost rule
(:meth:`~repro.hw.engine.ExecutionEngine.on_lane`): modeled parallel
cycles are the makespan — max over lane finish times — plus a host
merge charge per cross-lane dependency edge, against the sequential
cycles of the same measured work.  Per-node costs are measured during
a scheduled replay (``PlanExecutor(schedule=...)`` records each
node's attributed tenant-work delta), so the speedup curve is a
*modeled, provable* number for ROADMAP item 1 before any
``multiprocessing`` exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.analysis.static.effects import stage_effects
from repro.analysis.static.verifier import AnalysisReport, analyze_batch, _plan_id
from repro.errors import ConfigError, HazardError, SisaError
from repro.session.cache import canonical_param

#: Modeled host cycles charged per cross-lane dependency edge: the
#: coordinator synchronizing one producer lane's published value into a
#: consumer lane's context (the software analogue of the fused macro's
#: host merge in the paper's multi-lane model).  Deliberately larger
#: than one SCU dispatch and far smaller than any kernel stage, so the
#: model punishes gratuitous cross-lane chatter without drowning real
#: parallelism.
MERGE_CYCLES_PER_EDGE = 32.0

#: Cost assumed for a node before its replay measurement lands —
#: certification-time lane assignment only needs relative structure.
_UNMEASURED_COST = 1.0


@dataclass(frozen=True)
class ScheduleNode:
    """One schedulable unit: a single stage of one plan in the batch."""

    node_id: int
    plan_index: int
    stage_index: int
    plan_id: str  # verifier-style "p<i>:<workload>"
    label: str  # the stage label
    kind: str  # "call" | "bursts"

    def as_dict(self) -> dict[str, Any]:
        return {
            "node": self.node_id,
            "plan": self.plan_id,
            "stage": self.label,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class ScheduleEdge:
    """One happens-before constraint, labeled with why it exists."""

    src: int
    dst: int
    kind: str  # "program" | "struct" | "dedup" | "RAW" | "WAR" | "WAW"
    token: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "kind": self.kind,
            "token": self.token,
        }


@dataclass(frozen=True)
class ScheduleModel:
    """One what-if evaluation of a schedule at a given lane width."""

    lanes: int
    parallel_cycles: float  # makespan + host merge charge
    sequential_cycles: float  # sum of all node costs
    makespan: float  # max over lane finish times
    merge_cycles: float  # total host merge charge
    cross_edges: int  # dependency edges crossing lanes
    lane_busy: tuple[float, ...]  # per-lane busy time
    measured: bool  # True when every cost came from a replay

    @property
    def speedup(self) -> float:
        """Modeled sequential/parallel ratio (1.0 for an empty batch)."""
        if self.parallel_cycles <= 0.0:
            return 1.0
        return self.sequential_cycles / self.parallel_cycles

    def as_dict(self) -> dict[str, Any]:
        return {
            "lanes": self.lanes,
            "parallel_cycles": self.parallel_cycles,
            "sequential_cycles": self.sequential_cycles,
            "makespan": self.makespan,
            "merge_cycles": self.merge_cycles,
            "cross_edges": self.cross_edges,
            "speedup": self.speedup,
            "measured": self.measured,
        }


class CertifiedSchedule:
    """An admissible parallel schedule for one certified plan batch.

    Carries the dependency DAG, a deterministic lane assignment at the
    certified width, the canonical execution order (the list
    scheduler's simulated order — always topological), per-node costs
    (recorded by the scheduled executor's replay) and the happens-
    before relation the race detector checks against.  ``order`` may
    be swapped for *any* topological order via :meth:`with_order`;
    certification guarantees every such order is output-identical.
    """

    def __init__(
        self,
        nodes: list[ScheduleNode],
        edges: list[ScheduleEdge],
        *,
        lanes: int,
        report: AnalysisReport,
        plan_names: tuple[str, ...],
        stage_labels: tuple[tuple[str, ...], ...],
        merge_cycles_per_edge: float = MERGE_CYCLES_PER_EDGE,
        order: tuple[int, ...] | None = None,
        costs: dict[int, float] | None = None,
    ):
        if lanes < 1:
            raise ConfigError("lanes must be positive")
        self.nodes = list(nodes)
        self.edges = list(edges)
        self.lanes = int(lanes)
        self.report = report
        self.plan_names = plan_names
        self.stage_labels = stage_labels
        self.merge_cycles_per_edge = float(merge_cycles_per_edge)
        n = len(self.nodes)
        self.preds: list[tuple[int, ...]] = [()] * n
        self.succs: list[tuple[int, ...]] = [()] * n
        pred_sets: list[set[int]] = [set() for _ in range(n)]
        succ_sets: list[set[int]] = [set() for _ in range(n)]
        for edge in self.edges:
            pred_sets[edge.dst].add(edge.src)
            succ_sets[edge.src].add(edge.dst)
        self.preds = [tuple(sorted(s)) for s in pred_sets]
        self.succs = [tuple(sorted(s)) for s in succ_sets]
        # Measured per-node work cycles; shared (not copied) by
        # with_order() so a replay under any order feeds one cost table.
        self.costs: dict[int, float] = {} if costs is None else costs
        self._ancestors: list[int] | None = None
        self._clocks: list[tuple[int, ...]] | None = None
        if order is None:
            self.lane_of, self.order = self._assign(self.lanes)
        else:
            order = tuple(int(i) for i in order)
            if not self.is_topological(order):
                raise SisaError(
                    "order is not a topological order of the certified "
                    "schedule's dependency DAG",
                    details={"order": list(order)},
                )
            self.lane_of, __ = self._assign(self.lanes)
            self.order = order

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def measured(self) -> bool:
        """True once a scheduled replay recorded every node's cost."""
        return len(self.costs) == len(self.nodes)

    def record_cost(self, node_id: int, cycles: float) -> None:
        """Record one node's measured work cycles (replay feedback)."""
        self.costs[int(node_id)] = float(cycles)

    def matches(self, plans: Iterable[Any]) -> bool:
        """True when ``plans`` is the batch this schedule certifies
        (same workloads, same stage labels, same order)."""
        plans = list(plans)
        if len(plans) != len(self.plan_names):
            return False
        for i, plan in enumerate(plans):
            if plan.name != self.plan_names[i]:
                return False
            if tuple(plan.describe()) != self.stage_labels[i]:
                return False
        return True

    def is_topological(self, order: Iterable[int]) -> bool:
        """Whether ``order`` is a permutation of the nodes respecting
        every dependency edge."""
        order = list(order)
        if sorted(order) != list(range(len(self.nodes))):
            return False
        position = {node: i for i, node in enumerate(order)}
        return all(position[e.src] < position[e.dst] for e in self.edges)

    def with_order(self, order: Iterable[int]) -> "CertifiedSchedule":
        """This schedule under a different (validated) topological
        execution order; the cost table is shared."""
        return CertifiedSchedule(
            self.nodes,
            self.edges,
            lanes=self.lanes,
            report=self.report,
            plan_names=self.plan_names,
            stage_labels=self.stage_labels,
            merge_cycles_per_edge=self.merge_cycles_per_edge,
            order=tuple(order),
            costs=self.costs,
        )

    def random_topological_order(self, seed: int) -> tuple[int, ...]:
        """A seeded random topological order (Kahn with random choice
        among ready nodes) — the property tests' interleaving source."""
        rng = np.random.default_rng(seed)
        indeg = [len(p) for p in self.preds]
        ready = sorted(i for i, d in enumerate(indeg) if d == 0)
        out: list[int] = []
        while ready:
            pick = ready.pop(int(rng.integers(len(ready))))
            out.append(pick)
            for succ in self.succs[pick]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(out) != len(self.nodes):  # pragma: no cover - DAG by construction
            raise SisaError("schedule dependency graph has a cycle")
        return tuple(out)

    # ------------------------------------------------------------------
    # Happens-before
    # ------------------------------------------------------------------

    def _ancestor_masks(self) -> list[int]:
        """Per-node ancestor sets as bitmasks, in one topological pass."""
        if self._ancestors is None:
            masks = [0] * len(self.nodes)
            for node in self.order:
                acc = 0
                for pred in self.preds[node]:
                    acc |= masks[pred] | (1 << pred)
                masks[node] = acc
            self._ancestors = masks
        return self._ancestors

    def happens_before(self, a: int, b: int) -> bool:
        """True when the dependency DAG orders node ``a`` before ``b``.

        This is DAG reachability, independent of the lane assignment:
        the certificate must hold for *every* admissible schedule, not
        just the one lane placement this object happens to carry.
        """
        return bool((self._ancestor_masks()[b] >> a) & 1)

    def vector_clocks(self) -> list[tuple[int, ...]]:
        """Per-node vector clocks over the certified logical lanes.

        Each node's clock is the elementwise max of its DAG
        predecessors' clocks and its same-lane predecessor's clock,
        with its own lane component incremented — the classic
        happens-before witness for the *chosen* lane assignment.  The
        race checker's ordering test is the stricter lane-independent
        :meth:`happens_before`; the clocks are reported alongside each
        race so the offending interleaving is concrete.
        """
        if self._clocks is None:
            clocks: list[tuple[int, ...]] = [()] * len(self.nodes)
            counters = [0] * self.lanes
            last_on_lane: list[int | None] = [None] * self.lanes
            for node in self.order:
                lane = self.lane_of[node]
                clock = [0] * self.lanes
                chain = list(self.preds[node])
                if last_on_lane[lane] is not None:
                    chain.append(last_on_lane[lane])
                for pred in chain:
                    for i, value in enumerate(clocks[pred]):
                        if value > clock[i]:
                            clock[i] = value
                counters[lane] += 1
                clock[lane] = counters[lane]
                clocks[node] = tuple(clock)
                last_on_lane[lane] = node
            self._clocks = clocks
        return self._clocks

    # ------------------------------------------------------------------
    # Lane assignment and the what-if model
    # ------------------------------------------------------------------

    def _cost(self, node_id: int) -> float:
        return self.costs.get(node_id, _UNMEASURED_COST)

    def _critical_path(self) -> list[float]:
        """Longest-path-to-exit length per node (list-scheduler
        priority)."""
        cp = [0.0] * len(self.nodes)
        for node in reversed(self.order):
            tail = max((cp[s] for s in self.succs[node]), default=0.0)
            cp[node] = self._cost(node) + tail
        return cp

    def _assign(
        self, lanes: int
    ) -> tuple[dict[int, int], tuple[int, ...]]:
        """Deterministic critical-path list scheduling onto ``lanes``.

        Among ready nodes the longest remaining critical path goes
        first (ties by node id); each node starts at the max of its
        predecessors' finish times and lands on the lane that finishes
        it earliest (ties to the lowest lane).  Returns the lane map
        and the simulated execution order (by start time, then id) —
        topological by construction.
        """
        n = len(self.nodes)
        # Bootstrap priority: before lane_of/order exist, compute the
        # critical path over a plain Kahn order.
        indeg = [len(p) for p in self.preds]
        topo: list[int] = [i for i, d in enumerate(indeg) if d == 0]
        head = 0
        indeg_work = list(indeg)
        while head < len(topo):
            node = topo[head]
            head += 1
            for succ in self.succs[node]:
                indeg_work[succ] -= 1
                if indeg_work[succ] == 0:
                    topo.append(succ)
        if len(topo) != n:  # pragma: no cover - DAG by construction
            raise SisaError("schedule dependency graph has a cycle")
        cp = [0.0] * n
        for node in reversed(topo):
            tail = max((cp[s] for s in self.succs[node]), default=0.0)
            cp[node] = self._cost(node) + tail
        lane_free = [0.0] * lanes
        finish = [0.0] * n
        start = [0.0] * n
        lane_of: dict[int, int] = {}
        indeg_work = list(indeg)
        ready = [i for i, d in enumerate(indeg) if d == 0]
        scheduled = 0
        while ready:
            ready.sort(key=lambda i: (-cp[i], i))
            node = ready.pop(0)
            est = max((finish[p] for p in self.preds[node]), default=0.0)
            lane = min(
                range(lanes), key=lambda l: (max(lane_free[l], est), l)
            )
            t0 = max(lane_free[lane], est)
            t1 = t0 + self._cost(node)
            start[node] = t0
            finish[node] = t1
            lane_free[lane] = t1
            lane_of[node] = lane
            scheduled += 1
            for succ in self.succs[node]:
                indeg_work[succ] -= 1
                if indeg_work[succ] == 0:
                    ready.append(succ)
        if scheduled != n:  # pragma: no cover - DAG by construction
            raise SisaError("schedule dependency graph has a cycle")
        order = tuple(sorted(range(n), key=lambda i: (start[i], i)))
        return lane_of, order

    def assign(self, lanes: int) -> tuple[dict[int, int], tuple[int, ...]]:
        """The deterministic lane assignment (and simulated order) this
        schedule's list scheduler produces at ``lanes``, using whatever
        costs are recorded *now*.

        This is the public seam the parallel executor uses twice: at
        admission time (certification costs) the assignment is the lane
        ticket each node must present, and at reconcile time (measured
        costs) it is the assignment :meth:`what_if` prices — calling it
        here guarantees both sides simulate the identical placement.
        """
        if lanes < 1:
            raise ConfigError("lanes must be positive")
        return self._assign(int(lanes))

    def what_if(self, lanes: int | None = None) -> ScheduleModel:
        """Modeled parallel cycles at ``lanes`` (default: the certified
        width), mirroring the engine's lane rule: max over lane finish
        times plus a host merge charge per cross-lane dependency edge.
        """
        lanes = self.lanes if lanes is None else int(lanes)
        if lanes < 1:
            raise ConfigError("lanes must be positive")
        lane_of, __ = self._assign(lanes)
        n = len(self.nodes)
        lane_busy = [0.0] * lanes
        finish = [0.0] * n
        # Re-simulate with the chosen assignment to read lane times.
        for node in self.order:
            est = max((finish[p] for p in self.preds[node]), default=0.0)
            lane = lane_of[node]
            t0 = max(lane_busy[lane], est)
            t1 = t0 + self._cost(node)
            finish[node] = t1
            lane_busy[lane] = t1
        cross = sum(
            1 for e in self.edges if lane_of[e.src] != lane_of[e.dst]
        )
        makespan = max(lane_busy, default=0.0)
        merge = self.merge_cycles_per_edge * cross
        return ScheduleModel(
            lanes=lanes,
            parallel_cycles=makespan + merge,
            sequential_cycles=float(
                sum(self._cost(i) for i in range(n))
            ),
            makespan=makespan,
            merge_cycles=merge,
            cross_edges=cross,
            lane_busy=tuple(lane_busy),
            measured=self.measured,
        )

    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "lanes": self.lanes,
            "nodes": [n.as_dict() for n in self.nodes],
            "edges": [e.as_dict() for e in self.edges],
            "order": list(self.order),
            "lane_of": {str(k): v for k, v in sorted(self.lane_of.items())},
            "measured": self.measured,
        }
        if self.measured:
            out["model"] = self.what_if().as_dict()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"CertifiedSchedule(nodes={len(self.nodes)}, "
            f"edges={len(self.edges)}, lanes={self.lanes}, "
            f"measured={self.measured})"
        )


# ---------------------------------------------------------------------------
# DAG construction
# ---------------------------------------------------------------------------


def certify_schedule(
    plans: list,
    *,
    lanes: int = 4,
    fuse_width: int = 8,
    report: AnalysisReport | None = None,
    merge_cycles_per_edge: float = MERGE_CYCLES_PER_EDGE,
) -> CertifiedSchedule:
    """Lower a certified batch into a :class:`CertifiedSchedule`.

    Runs :func:`analyze_batch` first when no ``report`` is supplied;
    an uncertified batch raises :class:`~repro.errors.HazardError` —
    the schedule certifier only reorders work the verifier admitted.
    All plans must share one session (cross-graph batches schedule per
    session inside the pool).
    """
    plans = list(plans)
    if lanes < 1:
        raise ConfigError("lanes must be positive")
    sessions = {id(plan.session) for plan in plans}
    if len(sessions) > 1:
        raise ConfigError(
            "certify_schedule takes a single-session batch; the pool "
            "certifies one schedule per session"
        )
    if report is None:
        report = analyze_batch(plans, fuse_width=fuse_width)
    if not report.certified:
        raise HazardError(
            f"cannot schedule an uncertified batch: {report.summary()}",
            details=report.as_dict(),
        )
    nodes: list[ScheduleNode] = []
    node_of: dict[tuple[int, int], int] = {}
    effects = []
    for i, plan in enumerate(plans):
        pid = _plan_id(i, plan)
        for j, stage in enumerate(plan.stages):
            node_id = len(nodes)
            nodes.append(
                ScheduleNode(
                    node_id=node_id,
                    plan_index=i,
                    stage_index=j,
                    plan_id=pid,
                    label=stage.label,
                    kind=stage.kind,
                )
            )
            node_of[(i, j)] = node_id
            effects.append(stage_effects(stage).qualified(pid))
    seen: set[tuple[int, int, str, str | None]] = set()
    edges: list[ScheduleEdge] = []

    def add(src: int, dst: int, kind: str, token: str | None) -> None:
        if src == dst:
            return
        key = (src, dst, kind, token)
        if key not in seen:
            seen.add(key)
            edges.append(ScheduleEdge(src, dst, kind, token))

    # 1. Program order: each plan's stages in compile order.
    for i, plan in enumerate(plans):
        for j in range(1, len(plan.stages)):
            add(node_of[(i, j - 1)], node_of[(i, j)], "program", None)

    # 2. Build-once structures: the first writer in batch order is the
    #    builder; every other toucher (reader or redundant writer) is
    #    ordered after it.  A struct nobody writes is session-prebuilt
    #    and needs no edges.
    touchers: dict[str, list[int]] = {}
    builders: dict[str, int] = {}
    for node_id, eff in enumerate(effects):
        for token in sorted(eff.reads | eff.writes):
            if token.startswith("struct:"):
                touchers.setdefault(token, []).append(node_id)
        for token in sorted(eff.writes):
            if token.startswith("struct:") and token not in builders:
                builders[token] = node_id
    for token, members in touchers.items():
        builder = builders.get(token)
        if builder is None:
            continue
        for node_id in members:
            add(builder, node_id, "struct", token)

    # 3. Dedup groups: owner executes, followers seed from the
    #    published value — the owner must come first in every order.
    #    (a) stage-level sub-request keys, (b) whole-plan cache keys
    #    (owner's last stage before the follower's first).
    stage_groups: dict[tuple, list[int]] = {}
    for i, plan in enumerate(plans):
        for j, stage in enumerate(plan.stages):
            if stage.key is not None:
                stage_groups.setdefault(
                    (*stage.key, plan.version), []
                ).append(node_of[(i, j)])
    for key, members in stage_groups.items():
        owner = members[0]
        for node_id in members[1:]:
            add(owner, node_id, "dedup", f"cache:{key[0]}")
    plan_groups: dict[tuple, list[int]] = {}
    for i, plan in enumerate(plans):
        canon = canonical_param(plan.cache_params)
        if canon is None:
            continue  # uncacheable plan: never deduped, never seeded
        plan_groups.setdefault(
            (plan.name, canon, plan.version), []
        ).append(i)
    for key, members in plan_groups.items():
        owner = members[0]
        owner_last = node_of[(owner, len(plans[owner].stages) - 1)]
        for i in members[1:]:
            add(owner_last, node_of[(i, 0)], "dedup", f"cache:{key[0]}")

    # 4. Remaining cross-plan effect conflicts, serialized in batch
    #    order.  ``state:`` tokens are already plan-qualified (never
    #    collide cross-plan); ``struct:`` conflicts were handled by the
    #    builder edges above.  What is left is the shared set-ID
    #    domain: opaque kernels registering and releasing scratch sets
    #    contend on one set manager, so their WAW serializes until
    #    per-shard contexts land.
    for a in range(len(nodes)):
        pa = nodes[a].plan_index
        for b in range(a + 1, len(nodes)):
            if nodes[b].plan_index == pa:
                continue
            for kind, token in effects[a].conflicts(effects[b]):
                if token.startswith("struct:"):
                    continue
                add(a, b, kind, token)

    return CertifiedSchedule(
        nodes,
        edges,
        lanes=lanes,
        report=report,
        plan_names=tuple(plan.name for plan in plans),
        stage_labels=tuple(tuple(plan.describe()) for plan in plans),
        merge_cycles_per_edge=merge_cycles_per_edge,
    )
