"""Verifier smoke coverage: the full workload grid, compiled and
certified.

Two batch builders shared by the CLI (``python -m
repro.analysis.static --verify``), the CI ``static-analysis`` job and
the test suite:

* :func:`full_grid` — one representative parameterization of **every**
  registered workload (the acceptance bar: all 15 certify hazard-free);
* :func:`soak_batch` — the multi-tenant robustness-soak mix from
  ``benchmarks/bench_robustness.py`` (8 tenants × 5 workloads), the
  batch shape the hardened serving path actually fuses.

Everything runs on a small G(n, p) graph so the smoke completes in
seconds; certification is static, so graph size only affects the
compile step anyway.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.analysis.static.verifier import AnalysisReport, analyze_batch
from repro.graphs.generators import gnp_random_graph
from repro.session import ExecutionConfig, SisaSession


def _watchlist(n: int, count: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, n, size=(count * 2, 2))
    pairs = pairs[pairs[:, 0] != pairs[:, 1]][:count]
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def full_grid(n: int = 60) -> list[tuple[str, dict[str, Any]]]:
    """One representative ``(workload, params)`` per registered
    workload — every entry must compile and certify."""
    from repro.algorithms.subgraph_iso import star_pattern

    pairs = _watchlist(n, 24)
    return [
        ("triangles", {}),
        ("clustering_coefficient", {}),
        ("local_clustering", {}),
        ("similarity_pairs", {"pairs": pairs, "measure": "jaccard"}),
        ("similarity", {"u": 1, "v": 2, "measure": "jaccard"}),
        ("kclique", {"k": 3}),
        ("four_clique", {}),
        ("kclique_star", {"k": 3}),
        ("kclique_star", {"k": 3, "variant": "intersect"}),
        ("maximal_cliques", {"max_patterns": 200}),
        ("subgraph_iso", {"pattern": star_pattern(3), "max_matches": 100}),
        ("fsm", {"sigma": 0.6, "max_size": 3}),
        ("jarvis_patrick", {"tau": 0.2, "measure": "jaccard"}),
        ("link_prediction", {"removal_fraction": 0.2, "seed": 7}),
        ("approx_degeneracy", {"eps": 0.5}),
        ("bfs", {"root": 0}),
    ]


#: The robustness-soak workload mix (mirrors bench_robustness.py).
SOAK_WORKLOADS = (
    ("triangles", {}),
    ("clustering_coefficient", {}),
    ("local_clustering", {}),
    ("kclique", {"k": 3}),
    ("bfs", {"root": 0}),
)


def make_session(
    *, n: int = 60, p: float = 0.12, seed: int = 3, threads: int = 8
) -> SisaSession:
    graph = gnp_random_graph(n, p, seed=seed)
    return SisaSession(graph, ExecutionConfig(threads=threads))


def compile_batch(session: SisaSession, grid) -> list:
    return [
        session.compile(name, **dict(params)) for name, params in grid
    ]


def soak_batch(session: SisaSession, *, tenants: int = 8) -> list:
    """The robustness-soak plan batch: each tenant compiles the full
    soak mix against one shared session."""
    plans = []
    for tenant in range(tenants):
        for name, params in SOAK_WORKLOADS:
            plan = session.compile(name, **dict(params))
            plan.tenant = f"tenant-{tenant}"
            plans.append(plan)
    return plans


def smoke_batches(session: SisaSession, n: int = 60):
    """The two smoke batches as ``(label, plans)`` pairs — the shape
    every smoke entry point (verify, schedule, racecheck) iterates."""
    return [
        ("full-grid", compile_batch(session, full_grid(n))),
        ("robustness-soak", soak_batch(session)),
    ]


def schedule_smoke(*, n: int = 60, lanes: int = 4):
    """Certify a parallel schedule for both smoke batches; returns
    ``(label, schedule)`` pairs (certification raises on hazards)."""
    from repro.analysis.static.schedule import certify_schedule

    session = make_session(n=n)
    return [
        (label, certify_schedule(plans, lanes=lanes))
        for label, plans in smoke_batches(session, n)
    ]


def racecheck_smoke(*, n: int = 60, lanes: int = 4):
    """Replay both smoke batches under their certified schedules with
    the happens-before race detector armed; returns
    ``(label, schedule, races)`` triples.  The schedules come back
    cost-measured, so ``schedule.what_if()`` reports the measured
    speedup curve.  Races are returned, not raised — callers decide."""
    from repro.analysis.static.racecheck import replay_certified
    from repro.analysis.static.schedule import certify_schedule

    out = []
    for label, build in (
        ("full-grid", lambda s: compile_batch(s, full_grid(n))),
        ("robustness-soak", soak_batch),
    ):
        # A fresh session per batch: the replay executes for real, and
        # a warm result cache would collapse the cost measurements.
        session = make_session(n=n)
        plans = build(session)
        schedule = certify_schedule(plans, lanes=lanes)
        _results, races, _log = replay_certified(
            session, plans, schedule, lanes=lanes
        )
        out.append((label, schedule, races))
    return out


def run_smoke(*, n: int = 60, verbose: bool = False) -> list[tuple[str, AnalysisReport]]:
    """Certify the full workload grid and the soak batch; returns
    ``(label, report)`` pairs (all must be certified)."""
    session = make_session(n=n)
    reports = [
        ("full-grid", analyze_batch(compile_batch(session, full_grid(n)))),
        ("robustness-soak", analyze_batch(soak_batch(session))),
    ]
    if verbose:
        for label, report in reports:
            print(f"{label}: {report.summary()}")
    return reports
