"""Static analysis for the plan engine and the project's own source.

Two layers:

* the **plan effect system and hazard verifier** — stages declare
  typed effect sets (:mod:`~repro.analysis.static.effects`) and
  :func:`analyze_batch` certifies a compiled batch free of fusion
  hazards, dedup divergence and version-pin mismatches before the
  fused executor touches it (:mod:`~repro.analysis.static.verifier`),
  with :func:`check_plan_dynamic` validating the burst-generator
  contract by instrumented execution
  (:mod:`~repro.analysis.static.dynamic`);
* the **schedule certifier and happens-before race detector** —
  :func:`certify_schedule` lowers a certified batch into an explicit
  dependency DAG, assigns legal lanes and models the parallel what-if
  speedup (:mod:`~repro.analysis.static.schedule`);
  :func:`replay_certified` executes any admissible interleaving with
  an access log armed and :func:`find_races` proves the replay free of
  read/write pairs unordered by the DAG
  (:mod:`~repro.analysis.static.racecheck`);
* the **project contract linter** — an AST rule engine
  (:mod:`~repro.analysis.static.lint`) enforcing the repository's own
  coding contracts (seeded RNG, narrow excepts, no library asserts,
  structured error details, guarded observability, and shared-state
  mutation confined to owner modules).

Run everything from the command line::

    PYTHONPATH=src python -m repro.analysis.static          # lint + verify
    PYTHONPATH=src python -m repro.analysis.static --lint
    PYTHONPATH=src python -m repro.analysis.static --verify
    PYTHONPATH=src python -m repro.analysis.static --schedule --lanes 4
    PYTHONPATH=src python -m repro.analysis.static --racecheck
    PYTHONPATH=src python -m repro.analysis.static --json report.json
    PYTHONPATH=src python -m repro.analysis.static --mypy   # if installed
"""

from repro.analysis.static.dynamic import (
    ContractViolation,
    DynamicReport,
    check_plan_dynamic,
)
from repro.analysis.static.effects import (
    EffectSet,
    normalize_tokens,
    stage_effects,
    unit_effects,
)
from repro.analysis.static.lint import (
    DEFAULT_RULES,
    LintRule,
    LintViolation,
    available_lint_rules,
    lint_paths,
    lint_rule,
    lint_source,
)
from repro.analysis.static.racecheck import (
    Access,
    AccessLog,
    Race,
    find_races,
    instrument_session,
    raise_on_races,
    replay_certified,
)
from repro.analysis.static.schedule import (
    MERGE_CYCLES_PER_EDGE,
    CertifiedSchedule,
    ScheduleEdge,
    ScheduleModel,
    ScheduleNode,
    certify_schedule,
)
from repro.analysis.static.verifier import (
    HAZARD_KINDS,
    AnalysisReport,
    Hazard,
    PlanVerifier,
    analyze_batch,
)

__all__ = [
    "Access",
    "AccessLog",
    "AnalysisReport",
    "CertifiedSchedule",
    "ContractViolation",
    "DEFAULT_RULES",
    "DynamicReport",
    "EffectSet",
    "HAZARD_KINDS",
    "Hazard",
    "LintRule",
    "LintViolation",
    "MERGE_CYCLES_PER_EDGE",
    "PlanVerifier",
    "Race",
    "ScheduleEdge",
    "ScheduleModel",
    "ScheduleNode",
    "analyze_batch",
    "available_lint_rules",
    "certify_schedule",
    "check_plan_dynamic",
    "find_races",
    "instrument_session",
    "lint_paths",
    "lint_rule",
    "lint_source",
    "normalize_tokens",
    "raise_on_races",
    "replay_certified",
    "stage_effects",
    "unit_effects",
]
