"""Static analysis for the plan engine and the project's own source.

Two layers:

* the **plan effect system and hazard verifier** — stages declare
  typed effect sets (:mod:`~repro.analysis.static.effects`) and
  :func:`analyze_batch` certifies a compiled batch free of fusion
  hazards, dedup divergence and version-pin mismatches before the
  fused executor touches it (:mod:`~repro.analysis.static.verifier`),
  with :func:`check_plan_dynamic` validating the burst-generator
  contract by instrumented execution
  (:mod:`~repro.analysis.static.dynamic`);
* the **project contract linter** — an AST rule engine
  (:mod:`~repro.analysis.static.lint`) enforcing the repository's own
  coding contracts (seeded RNG, narrow excepts, no library asserts,
  structured error details, guarded observability).

Run both from the command line::

    PYTHONPATH=src python -m repro.analysis.static          # lint + verify
    PYTHONPATH=src python -m repro.analysis.static --lint
    PYTHONPATH=src python -m repro.analysis.static --verify
    PYTHONPATH=src python -m repro.analysis.static --mypy   # if installed
"""

from repro.analysis.static.dynamic import (
    ContractViolation,
    DynamicReport,
    check_plan_dynamic,
)
from repro.analysis.static.effects import (
    EffectSet,
    normalize_tokens,
    stage_effects,
    unit_effects,
)
from repro.analysis.static.lint import (
    DEFAULT_RULES,
    LintRule,
    LintViolation,
    available_lint_rules,
    lint_paths,
    lint_rule,
    lint_source,
)
from repro.analysis.static.verifier import (
    HAZARD_KINDS,
    AnalysisReport,
    Hazard,
    PlanVerifier,
    analyze_batch,
)

__all__ = [
    "AnalysisReport",
    "ContractViolation",
    "DEFAULT_RULES",
    "DynamicReport",
    "EffectSet",
    "HAZARD_KINDS",
    "Hazard",
    "LintRule",
    "LintViolation",
    "PlanVerifier",
    "analyze_batch",
    "available_lint_rules",
    "check_plan_dynamic",
    "lint_paths",
    "lint_rule",
    "lint_source",
    "normalize_tokens",
    "stage_effects",
    "unit_effects",
]
