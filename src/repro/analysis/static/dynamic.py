"""Dynamic checking of the burst-generator contract.

The static verifier certifies what stages *declare*; this module
checks what they *do*.  The plan IR's burst-generator contract
(:class:`~repro.session.plan.PlanStage`) says: under fusion, unit
generation may run ahead of earlier units' sinks, so generation must
not depend on (read) — or race with (write) — the state slots the
sinks fold counts into.

:func:`check_plan_dynamic` executes one plan under the contract's
*worst legal schedule*: every burst stage's generator is drained to
exhaustion first (maximal sink deferral), then every deferred burst
executes on its own lane and its sink runs.  The plan's state dict is
replaced by an instrumented mapping that records every read/write with
the phase it happened in, which catches:

* **generator-reads-sink-state** — the generator touched a slot a sink
  writes after units were already outstanding (the canonical contract
  violation: under fusion it would have observed a partial value);
* **generator-writes-sink-state** — the generator mutated a deferred
  sink's slot mid-stream (a write-race under deferral);
* **undeclared-effect** — a sink wrote a state slot the stage (or its
  units) never declared, so the static verifier certified the plan on
  a false effect set.

The checker also re-runs the plan through the sequential reference
executor and compares outputs bit-for-bit (``repr`` equality) — a
violation that slipped past the tracing (e.g. state smuggled outside
the dict) still surfaces as a divergence.  Test-harness tool: it
charges the engine like a normal run and is not meant for serving
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.static.effects import state_slot, stage_effects


@dataclass(frozen=True)
class ContractViolation:
    """One observed violation of the burst-generator contract."""

    kind: str  # generator-reads-sink-state | generator-writes-sink-state | undeclared-effect
    stage: str
    slot: str
    message: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "stage": self.stage,
            "slot": self.slot,
            "message": self.message,
        }


@dataclass
class DynamicReport:
    """Result of one :func:`check_plan_dynamic` run."""

    workload: str
    output: Any = None
    violations: list[ContractViolation] = field(default_factory=list)
    matches_reference: bool | None = None

    @property
    def certified(self) -> bool:
        return not self.violations and self.matches_reference is not False

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "certified": self.certified,
            "matches_reference": self.matches_reference,
            "violations": [v.as_dict() for v in self.violations],
        }


class _TracingState(dict):
    """A state dict that reports reads/writes to the checker."""

    def __init__(self, on_access):
        super().__init__()
        self._on_access = on_access

    def __getitem__(self, key):
        self._on_access("read", key)
        return super().__getitem__(key)

    def get(self, key, default=None):
        self._on_access("read", key)
        return super().get(key, default)

    def __setitem__(self, key, value):
        self._on_access("write", key)
        super().__setitem__(key, value)

    def setdefault(self, key, default=None):
        self._on_access("write", key)
        return super().setdefault(key, default)


def check_plan_dynamic(
    session, plan, *, compare: bool = True
) -> DynamicReport:
    """Execute ``plan`` under maximal sink deferral with instrumented
    state; returns a :class:`DynamicReport` of observed contract
    violations (empty = the generators honored the contract even on
    the worst legal schedule)."""
    plan.check_version()
    report = DynamicReport(workload=plan.name)
    ctx = session.ctx
    phase = {"mode": "call", "outstanding": 0, "stage": "", "slots": set()}

    def on_access(op: str, key: Any) -> None:
        if phase["mode"] != "generate" or phase["outstanding"] == 0:
            return
        if key not in phase["slots"]:
            return
        kind = (
            "generator-reads-sink-state"
            if op == "read"
            else "generator-writes-sink-state"
        )
        report.violations.append(
            ContractViolation(
                kind=kind,
                stage=phase["stage"],
                slot=str(key),
                message=(
                    f"burst generator of stage {phase['stage']!r} {op}s "
                    f"state slot {key!r} while {phase['outstanding']} "
                    "unit(s) have deferred sinks writing it"
                ),
            )
        )

    state = _TracingState(on_access)
    value: Any = None
    for stage in plan.stages:
        if stage.kind == "call":
            phase["mode"] = "call"
            value = stage.run(session, state)
            continue
        eff = stage_effects(stage)
        declared = {
            slot
            for slot in (state_slot(t) for t in eff.writes)
            if slot is not None
        }
        phase.update(
            mode="generate", outstanding=0, stage=stage.label, slots=declared
        )
        produced = []
        gen = stage.units(session, state)
        while True:
            unit = next(gen, None)
            if unit is None:
                break
            produced.append(unit)
            phase["outstanding"] += 1
            for token in unit.writes:
                slot = state_slot(token)
                if slot is not None:
                    phase["slots"].add(slot)
        phase["mode"] = "sink"
        written: set = set()
        before = dict.copy(state)
        for unit in produced:
            with ctx.on_lane(unit.lane):
                counts = getattr(ctx, f"{unit.kind}_count_batch")(
                    unit.a, unit.bs
                )
                unit.sink(counts)
        for key in dict.keys(state):
            if key not in before or before[key] is not dict.__getitem__(
                state, key
            ):
                written.add(key)
        for slot in sorted(written - declared, key=str):
            report.violations.append(
                ContractViolation(
                    kind="undeclared-effect",
                    stage=stage.label,
                    slot=str(slot),
                    message=(
                        f"sinks of stage {stage.label!r} wrote state slot "
                        f"{slot!r} outside the declared effect set "
                        f"{sorted(declared)}"
                    ),
                )
            )
        phase["mode"] = "call"
        value = stage.result(state)
    report.output = value
    if compare:
        from repro.session.plan import PlanExecutor, compile_plan

        reference = compile_plan(session, plan.name, dict(plan.params))
        (ref,) = PlanExecutor(session, fuse=False).execute([reference])
        report.matches_reference = repr(ref.output) == repr(value)
    return report
