"""Static hazard verification of compiled plan batches.

:func:`analyze_batch` builds the dataflow graph over a batch of
compiled :class:`~repro.session.plan.WorkloadPlan`\\ s from their
declared effect sets (:mod:`repro.analysis.static.effects`) and
certifies, *without executing anything*, the three properties the
fused :class:`~repro.session.plan.PlanExecutor` relies on:

1. **Fusion legality** — burst units from different plans may be
   buffered into one macro dispatch, and their sinks deferred past
   other plans' unit generation, only if no RAW/WAR/WAW hazard exists
   between the constituents: every ``bursts`` stage must write only
   its own plan-private ``state:`` slots (a burst stage writing
   ``sets:``/``struct:`` tokens would mutate state another buffered
   unit reads), and cross-plan effect sets must be disjoint after
   plan-qualification.  ``call`` stages may freely write ``sets:``/
   ``struct:`` tokens because the executor drains the buffer before
   running them — the verifier checks the declaration, the executor
   provides the barrier.
2. **Dedup-key soundness** — a stage carrying a result-cache ``key``
   can be *seeded* from another plan's published value instead of
   executing.  Seeding must be unobservable: the stage's declared
   writes must be exactly the slots its ``seed`` installs, and every
   stage sharing one key must declare the same effect shape.  A later
   stage reading a ``state:`` slot must find it provided by an earlier
   stage (whether that stage executed or seeded), so a seeded plan can
   never diverge from an executed one.
3. **Stream-version pin consistency** — all plans of one session in
   the batch are pinned at one stream version, and none is stale;
   result-cache keys embed the pinned version, so a certified batch
   can never mix epochs through the dedup path.

The report is structured (:class:`AnalysisReport`): each
:class:`Hazard` names the kind, the offending token and the plans and
stages involved, machine-readably — the same shape the serving
validation engine gives rejected requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.static.effects import (
    EffectSet,
    stage_effects,
)

#: Hazard kinds the verifier can report.
HAZARD_KINDS = (
    "RAW",
    "WAR",
    "WAW",
    "illegal-burst-write",
    "unsatisfied-read",
    "dedup-divergence",
    "version-pin",
    "stale-plan",
)


@dataclass(frozen=True)
class Hazard:
    """One certification failure."""

    kind: str
    message: str
    token: str | None = None
    plans: tuple[str, ...] = ()
    stages: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "token": self.token,
            "plans": list(self.plans),
            "stages": list(self.stages),
        }


@dataclass
class AnalysisReport:
    """The structured result of one :func:`analyze_batch` call."""

    hazards: list[Hazard] = field(default_factory=list)
    plans: list[dict[str, Any]] = field(default_factory=list)
    checks: dict[str, int] = field(default_factory=dict)

    @property
    def certified(self) -> bool:
        """True when the batch carries zero hazards — fused execution
        is provably equivalent to the sequential reference."""
        return not self.hazards

    def count(self, check: str, n: int = 1) -> None:
        self.checks[check] = self.checks.get(check, 0) + n

    def summary(self) -> str:
        if self.certified:
            return (
                f"certified: {len(self.plans)} plan(s), "
                f"{sum(self.checks.values())} check(s), 0 hazards"
            )
        kinds: dict[str, int] = {}
        for h in self.hazards:
            kinds[h.kind] = kinds.get(h.kind, 0) + 1
        detail = ", ".join(f"{k}×{v}" for k, v in sorted(kinds.items()))
        return f"{len(self.hazards)} hazard(s): {detail}"

    def as_dict(self) -> dict[str, Any]:
        return {
            "certified": self.certified,
            "summary": self.summary(),
            "plans": list(self.plans),
            "checks": dict(self.checks),
            "hazards": [h.as_dict() for h in self.hazards],
        }


def _plan_id(index: int, plan) -> str:
    return f"p{index}:{plan.name}"


class PlanVerifier:
    """Certifies a batch of compiled plans conflict-free.

    ``fuse_width`` is recorded for the report (the buffer bound does
    not change legality — any two cross-plan units may share a macro
    at any width ≥ 2, so certification is width-independent).
    """

    def __init__(self, *, fuse_width: int = 8):
        self.fuse_width = fuse_width

    # ------------------------------------------------------------------

    def analyze(self, plans: list) -> AnalysisReport:
        report = AnalysisReport()
        report.checks["fuse_width"] = self.fuse_width
        by_session: dict[int, list[tuple[str, Any]]] = {}
        order: list[Any] = []
        for i, plan in enumerate(plans):
            pid = _plan_id(i, plan)
            report.plans.append(
                {
                    "id": pid,
                    "workload": plan.name,
                    "version": list(plan.version),
                    "stages": plan.describe(),
                    "fusable": plan.fusable,
                    "tenant": plan.tenant,
                }
            )
            key = id(plan.session)
            if plan.session not in order:
                order.append(plan.session)
            by_session.setdefault(key, []).append((pid, plan))
        for session in order:
            group = by_session[id(session)]
            self._check_version_pins(session, group, report)
            for pid, plan in group:
                self._check_plan_dataflow(pid, plan, report)
            self._check_fusion(group, report)
            self._check_dedup_groups(group, report)
        return report

    # ------------------------------------------------------------------
    # Stream-version pins
    # ------------------------------------------------------------------

    def _check_version_pins(self, session, group, report) -> None:
        report.count("version-pin", len(group))
        versions = {plan.version for __, plan in group}
        if len(versions) > 1:
            report.hazards.append(
                Hazard(
                    kind="version-pin",
                    message=(
                        "plans of one session are pinned at different "
                        f"stream versions {sorted(versions)}; a fused batch "
                        "would mix epochs"
                    ),
                    plans=tuple(pid for pid, __ in group),
                )
            )
        for pid, plan in group:
            if plan.stale:
                report.hazards.append(
                    Hazard(
                        kind="stale-plan",
                        message=(
                            f"plan {pid} pinned at version {plan.version} "
                            f"but the session is at {session._version}; "
                            "recompile before executing"
                        ),
                        plans=(pid,),
                    )
                )

    # ------------------------------------------------------------------
    # Per-plan dataflow (RAW within one plan's stage order)
    # ------------------------------------------------------------------

    def _check_plan_dataflow(self, pid, plan, report) -> None:
        available: set[str] = set()
        for stage in plan.stages:
            eff = stage_effects(stage)
            report.count("dataflow-stage")
            for token in sorted(eff.reads):
                if token.startswith("state:") and token not in available:
                    report.hazards.append(
                        Hazard(
                            kind="unsatisfied-read",
                            message=(
                                f"stage {stage.label!r} of {pid} reads "
                                f"{token!r} but no earlier stage writes or "
                                "seeds it"
                            ),
                            token=token,
                            plans=(pid,),
                            stages=(stage.label,),
                        )
                    )
            available.update(eff.writes)
            available.update(f"state:{slot}" for slot in _seed_slots(stage))
            if stage.key is not None:
                self._check_keyed_stage(pid, stage, eff, report)

    def _check_keyed_stage(self, pid, stage, eff: EffectSet, report) -> None:
        """Dedup-key soundness for one stage: the seeded path must be
        indistinguishable from the executed path."""
        report.count("dedup-soundness")
        label = stage.label
        if stage.seed is None or stage.result is None:
            report.hazards.append(
                Hazard(
                    kind="dedup-divergence",
                    message=(
                        f"keyed stage {label!r} of {pid} lacks a "
                        f"{'seed' if stage.seed is None else 'result'} hook; "
                        "a deduped plan could not install the shared value"
                    ),
                    plans=(pid,),
                    stages=(label,),
                )
            )
            return
        state_writes = {t for t in eff.writes if t.startswith("state:")}
        seeded = {f"state:{slot}" for slot in _seed_slots(stage)}
        if state_writes != seeded:
            report.hazards.append(
                Hazard(
                    kind="dedup-divergence",
                    message=(
                        f"keyed stage {label!r} of {pid} writes "
                        f"{sorted(state_writes)} but its seed installs "
                        f"{sorted(seeded)}; a seeded plan would diverge from "
                        "an executed one"
                    ),
                    plans=(pid,),
                    stages=(label,),
                )
            )
        non_state = {t for t in eff.writes if not t.startswith("state:")}
        if non_state:
            report.hazards.append(
                Hazard(
                    kind="dedup-divergence",
                    message=(
                        f"keyed stage {label!r} of {pid} declares shared "
                        f"effect(s) {sorted(non_state)}; seeding would skip "
                        "them"
                    ),
                    token=sorted(non_state)[0],
                    plans=(pid,),
                    stages=(label,),
                )
            )

    # ------------------------------------------------------------------
    # Cross-plan fusion legality
    # ------------------------------------------------------------------

    def _check_fusion(self, group, report) -> None:
        """Burst stages of different plans may interleave unit
        generation, macro execution and deferred sinks in any order:
        their qualified effect sets must be conflict-free, and no burst
        stage may write outside its plan-private state."""
        bursts: list[tuple[str, Any, Any, EffectSet]] = []
        for pid, plan in group:
            for stage in plan.stages:
                if stage.kind != "bursts":
                    continue
                eff = stage_effects(stage)
                report.count("fusion-legality")
                illegal = {
                    t for t in eff.writes if not t.startswith("state:")
                }
                for token in sorted(illegal):
                    report.hazards.append(
                        Hazard(
                            kind="illegal-burst-write",
                            message=(
                                f"burst stage {stage.label!r} of {pid} "
                                f"declares write {token!r}; deferred sinks "
                                "would mutate shared state other buffered "
                                "units read"
                            ),
                            token=token,
                            plans=(pid,),
                            stages=(stage.label,),
                        )
                    )
                bursts.append((pid, plan, stage, eff.qualified(pid)))
        for i in range(len(bursts)):
            pid_a, plan_a, stage_a, eff_a = bursts[i]
            for j in range(i + 1, len(bursts)):
                pid_b, plan_b, stage_b, eff_b = bursts[j]
                if plan_a is plan_b:
                    continue  # stages of one plan execute in order
                if _same_key(stage_a, plan_a, stage_b, plan_b):
                    continue  # dedup group: one executes, others seed
                report.count("fusion-pair")
                for kind, token in eff_a.conflicts(eff_b):
                    report.hazards.append(
                        Hazard(
                            kind=kind,
                            message=(
                                f"{kind} hazard on {token!r} between fused "
                                f"burst stages {stage_a.label!r} ({pid_a}) "
                                f"and {stage_b.label!r} ({pid_b})"
                            ),
                            token=token,
                            plans=(pid_a, pid_b),
                            stages=(stage_a.label, stage_b.label),
                        )
                    )

    # ------------------------------------------------------------------
    # Cross-plan dedup groups
    # ------------------------------------------------------------------

    def _check_dedup_groups(self, group, report) -> None:
        """Every stage sharing one (version-qualified) cache key must
        declare the same effect shape — otherwise which plan happens to
        execute first changes what the others are seeded with."""
        groups: dict[tuple, list[tuple[str, Any]]] = {}
        for pid, plan in group:
            for stage in plan.stages:
                if stage.key is not None:
                    groups.setdefault(
                        (*stage.key, plan.version), []
                    ).append((pid, stage))
        for key, members in groups.items():
            if len(members) < 2:
                continue
            report.count("dedup-group")
            shapes = {
                (
                    frozenset(stage_effects(stage).writes),
                    frozenset(_seed_slots(stage)),
                )
                for __, stage in members
            }
            if len(shapes) > 1:
                report.hazards.append(
                    Hazard(
                        kind="dedup-divergence",
                        message=(
                            "stages sharing dedup key "
                            f"{key[0]!r} declare different effect shapes; "
                            "seeding one from the other would diverge"
                        ),
                        plans=tuple(pid for pid, __ in members),
                        stages=tuple(s.label for __, s in members),
                    )
                )


def _seed_slots(stage) -> tuple[str, ...]:
    from repro.analysis.static.effects import state_slot

    slots = []
    for token in stage.seeds:
        slot = state_slot(token)
        slots.append(slot if slot is not None else token)
    return tuple(slots)


def _same_key(stage_a, plan_a, stage_b, plan_b) -> bool:
    if stage_a.key is None or stage_b.key is None:
        return False
    return (*stage_a.key, plan_a.version) == (*stage_b.key, plan_b.version)


def analyze_batch(plans: list, *, fuse_width: int = 8) -> AnalysisReport:
    """Statically certify a batch of compiled plans conflict-free.

    Pure host-side analysis: no instructions dispatch, no structures
    build, modeled cycles are untouched.  Consulted by
    ``PlanExecutor(verify=True)`` / ``session.run_many(verify=True)`` /
    ``pool.run(verify=True)``, which raise
    :class:`~repro.errors.HazardError` when certification fails.
    """
    return PlanVerifier(fuse_width=fuse_width).analyze(list(plans))
